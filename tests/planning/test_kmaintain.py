"""Tests for K-maintainability (repro.planning.kmaintain) including the
brute-force soundness/completeness property check."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, UnmaintainableError
from repro.planning.kmaintain import (
    compute_levels,
    construct_policy,
    require_policy,
)
from repro.planning.transition import TransitionSystem
from repro.planning.verify import brute_force_maintainable, verify_policy
from repro.rng import make_rng


def chain(n=4):
    ts = TransitionSystem(states=frozenset(range(n)))
    for s in range(1, n):
        ts.add_agent_action("repair", s, [s - 1])
    ts.add_exo_action("hit", 0, [n - 1])
    return ts


class TestComputeLevels:
    def test_goal_states_level_zero(self):
        levels, actions = compute_levels(chain(4), [0])
        assert levels[0] == 0
        assert 0 not in actions

    def test_chain_levels_are_distances(self):
        levels, _ = compute_levels(chain(5), [0])
        assert levels == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_unreachable_states_absent(self):
        ts = TransitionSystem(states=frozenset([0, 1, 2]))
        ts.add_agent_action("a", 1, [0])
        # state 2 has no actions -> never recoverable
        levels, _ = compute_levels(ts, [0])
        assert 2 not in levels

    def test_nondeterminism_needs_all_outcomes_covered(self):
        """An action with one bad outcome cannot justify a level."""
        ts = TransitionSystem(states=frozenset(["goal", "s", "trap"]))
        ts.add_agent_action("gamble", "s", ["goal", "trap"])
        levels, _ = compute_levels(ts, ["goal"])
        assert "s" not in levels  # trap is unrecoverable, gamble unsafe

    def test_nondeterminism_ok_when_all_outcomes_good(self):
        ts = TransitionSystem(states=frozenset(["goal1", "goal2", "s"]))
        ts.add_agent_action("gamble", "s", ["goal1", "goal2"])
        levels, actions = compute_levels(ts, ["goal1", "goal2"])
        assert levels["s"] == 1
        assert actions["s"] == "gamble"

    def test_unknown_goal_rejected(self):
        with pytest.raises(ConfigurationError):
            compute_levels(chain(3), [99])

    def test_max_level_truncates(self):
        levels, _ = compute_levels(chain(6), [0], max_level=2)
        assert max(levels.values()) == 2
        assert 5 not in levels


class TestConstructPolicy:
    def test_maintainable_chain(self):
        ts = chain(4)
        result = construct_policy(ts, [0], [0], k=3)
        assert result.maintainable
        assert result.policy is not None
        assert verify_policy(ts, result.policy, [0])

    def test_not_maintainable_with_small_k(self):
        ts = chain(4)
        result = construct_policy(ts, [0], [0], k=2)
        assert not result.maintainable
        assert 3 in result.uncovered

    def test_envelope_includes_exo_closure_of_goals(self):
        """Shocks can strike again from the recovered (goal) state."""
        ts = TransitionSystem(states=frozenset([0, 1]))
        ts.add_exo_action("hit", 0, [1])
        ts.add_agent_action("fix", 1, [0])
        result = construct_policy(ts, [0], [0], k=1)
        assert 1 in result.envelope
        assert result.maintainable

    def test_negative_k_rejected(self):
        with pytest.raises(ConfigurationError):
            construct_policy(chain(3), [0], [0], k=-1)

    def test_require_policy_raises_when_unmaintainable(self):
        with pytest.raises(UnmaintainableError):
            require_policy(chain(5), [0], [0], k=1)

    def test_policy_execution_reaches_goal(self):
        ts = chain(4)
        policy = require_policy(ts, [0], [0], k=3)
        trace = policy.execute(ts, 3)
        assert trace[-1] == 0
        assert len(trace) - 1 <= 3

    def test_zero_k_only_goals(self):
        ts = chain(3)
        result = construct_policy(ts, [0], [0], k=0)
        # exo closure of {0} is {0, 2}; state 2 not recoverable in 0 steps
        assert not result.maintainable


def random_system(rng, n_states=4, n_agent=2, n_exo=1, branching=2):
    """A small random nondeterministic transition system."""
    states = frozenset(range(n_states))
    ts = TransitionSystem(states=states)
    for a in range(n_agent):
        for s in range(n_states):
            if rng.random() < 0.7:
                k = 1 + int(rng.integers(branching))
                outs = rng.choice(n_states, size=min(k, n_states), replace=False)
                ts.add_agent_action(f"a{a}", s, [int(o) for o in outs])
    for e in range(n_exo):
        for s in range(n_states):
            if rng.random() < 0.4:
                k = 1 + int(rng.integers(branching))
                outs = rng.choice(n_states, size=min(k, n_states), replace=False)
                ts.add_exo_action(f"e{e}", s, [int(o) for o in outs])
    return ts


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000), k=st.integers(0, 3))
def test_property_polynomial_matches_brute_force(seed, k):
    """Baral–Eiter construction agrees with exhaustive policy search."""
    rng = make_rng(seed)
    ts = random_system(rng)
    goals = [0]
    starts = [0]
    result = construct_policy(ts, starts, goals, k)
    brute = brute_force_maintainable(ts, starts, goals, k)
    assert result.maintainable == brute
    if result.maintainable:
        assert verify_policy(ts, result.policy, starts)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_levels_monotone_in_k(seed):
    """If k-maintainable then (k+1)-maintainable."""
    rng = make_rng(seed)
    ts = random_system(rng)
    for k in range(3):
        if construct_policy(ts, [0], [0], k).maintainable:
            assert construct_policy(ts, [0], [0], k + 1).maintainable
