"""Tests for maintenance policies (repro.planning.policy) and the
verification oracles (repro.planning.verify)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, PolicyError
from repro.planning.kmaintain import require_policy
from repro.planning.policy import MaintenancePolicy
from repro.planning.transition import TransitionSystem
from repro.planning.verify import brute_force_maintainable, verify_policy


def chain(n=4):
    ts = TransitionSystem(states=frozenset(range(n)))
    for s in range(1, n):
        ts.add_agent_action("repair", s, [s - 1])
    ts.add_exo_action("hit", 0, [n - 1])
    return ts


class TestMaintenancePolicy:
    def test_action_for_goal_state_is_none(self):
        policy = require_policy(chain(3), [0], [0], k=2)
        assert policy.action_for(0) is None

    def test_action_for_uncovered_state_raises(self):
        policy = MaintenancePolicy(
            actions={}, levels={0: 0}, goal_states=frozenset([0]), k=1
        )
        with pytest.raises(PolicyError):
            policy.action_for(42)

    def test_covers(self):
        policy = require_policy(chain(3), [0], [0], k=2)
        assert policy.covers(0)
        assert policy.covers(2)
        assert 0 in policy.covered_states

    def test_execute_worst_and_best_case(self):
        ts = TransitionSystem(states=frozenset(["g", "s", "far"]))
        ts.add_agent_action("move", "s", ["g", "far"])
        ts.add_agent_action("move", "far", ["g"])
        policy = MaintenancePolicy(
            actions={"s": "move", "far": "move"},
            levels={"g": 0, "far": 1, "s": 2},
            goal_states=frozenset(["g"]),
            k=2,
        )
        worst = policy.execute(ts, "s", worst_case=True)
        best = policy.execute(ts, "s", worst_case=False)
        assert worst == ["s", "far", "g"]
        assert best == ["s", "g"]

    def test_execute_raises_when_budget_too_small(self):
        policy = require_policy(chain(5), [0], [0], k=4)
        with pytest.raises(PolicyError):
            policy.execute(chain(5), 4, max_steps=2)


class TestVerifyOracles:
    def test_verify_rejects_wrong_policy(self):
        ts = chain(4)
        # a policy that loops state 3 onto itself via a bogus action
        ts.add_agent_action("noop", 3, [3])
        bad = MaintenancePolicy(
            actions={1: "repair", 2: "repair", 3: "noop"},
            levels={0: 0, 1: 1, 2: 2, 3: 99},
            goal_states=frozenset([0]),
            k=3,
        )
        assert not verify_policy(ts, bad, [0])

    def test_verify_accepts_correct_policy(self):
        ts = chain(4)
        good = require_policy(ts, [0], [0], k=3)
        assert verify_policy(ts, good, [0])

    def test_brute_force_budget_guard(self):
        ts = TransitionSystem(states=frozenset(range(12)))
        for s in range(1, 12):
            for a in range(4):
                ts.add_agent_action(f"a{a}", s, [s - 1])
        with pytest.raises(ConfigurationError):
            brute_force_maintainable(ts, [0], [0], k=11, max_policies=100)

    def test_brute_force_negative_k(self):
        with pytest.raises(ConfigurationError):
            brute_force_maintainable(chain(3), [0], [0], k=-1)
