"""Tests for transition systems (repro.planning.transition)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.planning.transition import TransitionSystem


def chain(n=4):
    """States 0..n-1; repair moves i -> i-1; one exo hit 0 -> n-1."""
    ts = TransitionSystem(states=frozenset(range(n)))
    for s in range(1, n):
        ts.add_agent_action("repair", s, [s - 1])
    ts.add_exo_action("hit", 0, [n - 1])
    return ts


class TestConstruction:
    def test_empty_states_rejected(self):
        with pytest.raises(ConfigurationError):
            TransitionSystem(states=frozenset())

    def test_action_on_unknown_state_rejected(self):
        with pytest.raises(ConfigurationError):
            TransitionSystem(
                states=frozenset([0]),
                agent_actions={"a": {1: frozenset([0])}},
            )

    def test_action_to_unknown_state_rejected(self):
        with pytest.raises(ConfigurationError):
            TransitionSystem(
                states=frozenset([0]),
                agent_actions={"a": {0: frozenset([7])}},
            )

    def test_empty_outcome_rejected(self):
        with pytest.raises(ConfigurationError):
            TransitionSystem(
                states=frozenset([0]),
                exo_actions={"e": {0: frozenset()}},
            )

    def test_add_merges_outcomes(self):
        ts = TransitionSystem(states=frozenset([0, 1, 2]))
        ts.add_agent_action("a", 0, [1])
        ts.add_agent_action("a", 0, [2])
        assert ts.agent_outcomes(0, "a") == frozenset([1, 2])


class TestQueries:
    def test_applicable_actions_sorted(self):
        ts = TransitionSystem(states=frozenset([0, 1]))
        ts.add_agent_action("zeta", 0, [1])
        ts.add_agent_action("alpha", 0, [1])
        assert ts.applicable_agent_actions(0) == ["alpha", "zeta"]
        assert ts.applicable_agent_actions(1) == []

    def test_agent_outcomes_inapplicable_raises(self):
        ts = chain()
        with pytest.raises(ConfigurationError):
            ts.agent_outcomes(0, "repair")

    def test_exo_successors(self):
        ts = chain(4)
        assert ts.exo_successors(0) == {3}
        assert ts.exo_successors(2) == set()

    def test_exo_closure_includes_seeds(self):
        ts = chain(4)
        closure = ts.exo_closure([0])
        assert closure == frozenset([0, 3])

    def test_exo_closure_transitive(self):
        ts = TransitionSystem(states=frozenset([0, 1, 2]))
        ts.add_exo_action("e1", 0, [1])
        ts.add_exo_action("e2", 1, [2])
        assert ts.exo_closure([0]) == frozenset([0, 1, 2])

    def test_exo_closure_unknown_seed(self):
        ts = chain()
        with pytest.raises(ConfigurationError):
            ts.exo_closure([99])
