"""Tests for stochastic maintainability (repro.planning.stochastic)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.planning.kmaintain import require_policy
from repro.planning.stochastic import evaluate_under_interference
from repro.planning.transition import TransitionSystem


def chain(n=5):
    ts = TransitionSystem(states=frozenset(range(n)))
    for s in range(1, n):
        ts.add_agent_action("repair", s, [s - 1])
    ts.add_exo_action("hit", 0, [n - 1])
    # mid-recovery interference: any state can be knocked one step worse
    for s in range(n - 1):
        ts.add_exo_action("aftershock", s, [s + 1])
    return ts


class TestNoInterference:
    def test_reduces_to_windowed_guarantee(self):
        ts = chain(5)
        policy = require_policy(ts, [0], [0], k=4)
        verdict = evaluate_under_interference(
            ts, policy, [0], interference_p=0.0, episodes=300, seed=0
        )
        assert verdict.recovery_rate == 1.0
        assert verdict.worst_steps is not None
        assert verdict.worst_steps <= policy.k


class TestWithInterference:
    def test_interference_degrades_gracefully(self):
        ts = chain(5)
        policy = require_policy(ts, [0], [0], k=4)
        quiet = evaluate_under_interference(
            ts, policy, [0], interference_p=0.0, episodes=400, seed=1
        )
        noisy = evaluate_under_interference(
            ts, policy, [0], interference_p=0.3, episodes=400, seed=1
        )
        stormy = evaluate_under_interference(
            ts, policy, [0], interference_p=0.8, episodes=400, seed=1
        )
        assert quiet.recovery_rate >= noisy.recovery_rate >= \
            stormy.recovery_rate - 0.05
        # moderate interference still mostly recovers (repair wins races)
        assert noisy.recovery_rate > 0.5
        # but recoveries take longer than the windowed k
        assert noisy.mean_steps >= quiet.mean_steps

    def test_overwhelming_interference_defeats_repair(self):
        """If the environment strikes faster than repair, the windowed
        k-guarantee says nothing — recovery becomes rare."""
        ts = chain(6)
        policy = require_policy(ts, [0], [0], k=5)
        stormy = evaluate_under_interference(
            ts, policy, [0], interference_p=1.0, episodes=300,
            budget=10, seed=2,
        )
        assert stormy.recovery_rate < 0.6

    def test_budget_extends_recovery(self):
        ts = chain(5)
        policy = require_policy(ts, [0], [0], k=4)
        short = evaluate_under_interference(
            ts, policy, [0], interference_p=0.5, budget=4, episodes=400,
            seed=3,
        )
        long = evaluate_under_interference(
            ts, policy, [0], interference_p=0.5, budget=40, episodes=400,
            seed=3,
        )
        assert long.recovery_rate >= short.recovery_rate


class TestValidation:
    def test_bad_parameters(self):
        ts = chain(4)
        policy = require_policy(ts, [0], [0], k=3)
        with pytest.raises(ConfigurationError):
            evaluate_under_interference(ts, policy, [0], interference_p=1.5)
        with pytest.raises(ConfigurationError):
            evaluate_under_interference(ts, policy, [0], 0.1, episodes=0)
        with pytest.raises(ConfigurationError):
            evaluate_under_interference(ts, policy, [0], 0.1, budget=0)
