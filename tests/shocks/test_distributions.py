"""Tests for magnitude distributions (repro.shocks.distributions)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.shocks.distributions import (
    ExponentialMagnitudes,
    GaussianMagnitudes,
    LognormalMagnitudes,
    ParetoMagnitudes,
)


class TestMomentVerdicts:
    def test_gaussian_has_finite_moments(self):
        d = GaussianMagnitudes(mu=2.0, sigma=0.5)
        assert d.has_finite_mean
        assert d.has_finite_variance

    def test_pareto_moment_regimes(self):
        """The paper's point: the power-law parameter decides whether a
        mean or variance even exists."""
        assert not ParetoMagnitudes(alpha=0.9).has_finite_mean
        assert ParetoMagnitudes(alpha=1.5).has_finite_mean
        assert not ParetoMagnitudes(alpha=1.5).has_finite_variance
        assert ParetoMagnitudes(alpha=2.5).has_finite_variance

    def test_lognormal_all_moments_finite(self):
        d = LognormalMagnitudes(0.0, 1.5)
        assert d.has_finite_mean and d.has_finite_variance


class TestSampling:
    def test_samples_nonnegative(self):
        for d in (
            GaussianMagnitudes(),
            LognormalMagnitudes(),
            ExponentialMagnitudes(),
            ParetoMagnitudes(),
        ):
            x = d.sample(1000, seed=1)
            assert np.all(x >= 0)
            assert len(x) == 1000

    def test_deterministic_by_seed(self):
        d = ParetoMagnitudes(alpha=1.5)
        assert np.allclose(d.sample(100, seed=3), d.sample(100, seed=3))

    def test_pareto_min_is_xmin(self):
        d = ParetoMagnitudes(alpha=2.0, xmin=5.0)
        x = d.sample(10_000, seed=4)
        assert x.min() >= 5.0

    def test_exponential_mean_matches(self):
        d = ExponentialMagnitudes(scale=3.0)
        x = d.sample(50_000, seed=5)
        assert x.mean() == pytest.approx(3.0, rel=0.05)

    def test_pareto_sample_mean_matches_when_finite(self):
        d = ParetoMagnitudes(alpha=3.0, xmin=1.0)
        x = d.sample(100_000, seed=6)
        assert x.mean() == pytest.approx(d.mean, rel=0.05)

    def test_lognormal_mean_matches(self):
        d = LognormalMagnitudes(0.0, 0.5)
        x = d.sample(100_000, seed=7)
        assert x.mean() == pytest.approx(d.mean, rel=0.05)


class TestParetoSurvival:
    def test_survival_at_xmin_is_one(self):
        d = ParetoMagnitudes(alpha=1.5, xmin=2.0)
        assert d.survival(2.0) == pytest.approx(1.0)
        assert d.survival(1.0) == pytest.approx(1.0)

    def test_survival_decreases(self):
        d = ParetoMagnitudes(alpha=1.5, xmin=1.0)
        xs = np.asarray([1.0, 2.0, 4.0, 8.0])
        s = d.survival(xs)
        assert np.all(np.diff(s) < 0)

    def test_empirical_tail_matches_survival(self):
        d = ParetoMagnitudes(alpha=1.5, xmin=1.0)
        x = d.sample(200_000, seed=8)
        for threshold in (2.0, 5.0):
            empirical = np.mean(x > threshold)
            assert empirical == pytest.approx(
                float(d.survival(threshold)), rel=0.1
            )


class TestValidation:
    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            GaussianMagnitudes(sigma=0.0)
        with pytest.raises(ConfigurationError):
            LognormalMagnitudes(sigma=-1.0)
        with pytest.raises(ConfigurationError):
            ExponentialMagnitudes(scale=0.0)
        with pytest.raises(ConfigurationError):
            ParetoMagnitudes(alpha=0.0)
        with pytest.raises(ConfigurationError):
            ParetoMagnitudes(xmin=0.0)


@settings(max_examples=20, deadline=None)
@given(alpha=st.floats(0.5, 4.0), xmin=st.floats(0.1, 10.0))
def test_property_pareto_variance_finite_iff_alpha_gt_2(alpha, xmin):
    d = ParetoMagnitudes(alpha=alpha, xmin=xmin)
    assert d.has_finite_variance == (alpha > 2.0)
    assert d.has_finite_mean == (alpha > 1.0)
