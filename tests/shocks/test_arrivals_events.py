"""Tests for shock events and arrival processes (repro.shocks)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.shocks.arrivals import (
    ClusteredArrivals,
    PoissonArrivals,
    ScheduledArrivals,
)
from repro.shocks.distributions import ExponentialMagnitudes
from repro.shocks.events import Knowability, Shock, ShockType, Targeting


class TestShock:
    def test_x_event_threshold(self):
        """The motivating example: 14 m tsunami vs 5.7 m design envelope."""
        tsunami = Shock(time=0.0, magnitude=14.0)
        assert tsunami.is_x_event(5.7)
        assert not tsunami.is_x_event(15.0)

    def test_negative_magnitude_rejected(self):
        with pytest.raises(ConfigurationError):
            Shock(time=0.0, magnitude=-1.0)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            Shock(time=0.0, magnitude=1.0).is_x_event(-1.0)

    def test_ordering_by_time(self):
        a = Shock(time=2.0, magnitude=1.0)
        b = Shock(time=1.0, magnitude=9.0)
        assert sorted([a, b])[0] is b

    def test_shock_type_axes(self):
        st_ = ShockType("quake", Targeting.RANDOM,
                        Knowability.KNOWN_DISTRIBUTION)
        assert st_.targeting is Targeting.RANDOM
        with pytest.raises(ConfigurationError):
            ShockType("")


class TestPoissonArrivals:
    def test_count_near_rate_times_horizon(self):
        process = PoissonArrivals(rate=0.5,
                                  magnitudes=ExponentialMagnitudes())
        counts = [len(process.generate(100.0, seed=s)) for s in range(30)]
        assert np.mean(counts) == pytest.approx(50, rel=0.2)

    def test_times_sorted_within_horizon(self):
        process = PoissonArrivals(rate=1.0)
        shocks = process.generate(20.0, seed=1)
        times = [s.time for s in shocks]
        assert times == sorted(times)
        assert all(0 <= t < 20.0 for t in times)

    def test_zero_rate_empty(self):
        assert PoissonArrivals(rate=0.0).generate(10.0, seed=1) == []

    def test_negative_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            PoissonArrivals(rate=-1.0)

    def test_negative_horizon_rejected(self):
        with pytest.raises(ConfigurationError):
            PoissonArrivals(rate=1.0).generate(-1.0)


class TestClusteredArrivals:
    def test_produces_more_events_than_base(self):
        base = PoissonArrivals(rate=0.3, magnitudes=ExponentialMagnitudes())
        clustered = ClusteredArrivals(
            base_rate=0.3, branching=0.8, magnitudes=ExponentialMagnitudes()
        )
        n_base = np.mean([len(base.generate(200.0, seed=s)) for s in range(10)])
        n_clustered = np.mean(
            [len(clustered.generate(200.0, seed=s)) for s in range(10)]
        )
        assert n_clustered > n_base

    def test_aftershocks_damped(self):
        clustered = ClusteredArrivals(
            base_rate=0.2, branching=0.9, aftershock_damping=0.5,
            magnitudes=ExponentialMagnitudes(),
        )
        shocks = clustered.generate(100.0, seed=2)
        assert shocks == sorted(shocks)

    def test_branching_stability_guard(self):
        with pytest.raises(ConfigurationError):
            ClusteredArrivals(base_rate=0.1, branching=1.0)

    def test_invalid_damping(self):
        with pytest.raises(ConfigurationError):
            ClusteredArrivals(base_rate=0.1, aftershock_damping=0.0)


class TestScheduledArrivals:
    def test_scripted_times(self):
        process = ScheduledArrivals.at([(5.0, 10.0), (1.0, 3.0)])
        shocks = process.generate(10.0)
        assert [s.time for s in shocks] == [1.0, 5.0]

    def test_horizon_filters(self):
        process = ScheduledArrivals.at([(5.0, 1.0), (15.0, 1.0)])
        assert len(process.generate(10.0)) == 1

    def test_generation_is_deterministic(self):
        process = ScheduledArrivals.at([(1.0, 2.0)])
        assert process.generate(5.0) == process.generate(5.0)
