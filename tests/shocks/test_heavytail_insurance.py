"""Tests for heavy-tail diagnostics and insurance (repro.shocks)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import AnalysisError, ConfigurationError
from repro.shocks.distributions import GaussianMagnitudes, ParetoMagnitudes
from repro.shocks.heavytail import (
    hill_estimator,
    mean_stability_ratio,
    pareto_mle,
    running_mean,
)
from repro.shocks.insurance import Insurer


class TestHillEstimator:
    def test_recovers_pareto_alpha(self):
        for alpha in (1.0, 1.5, 2.5):
            x = ParetoMagnitudes(alpha=alpha).sample(50_000, seed=int(alpha * 7))
            est = hill_estimator(x)
            assert est == pytest.approx(alpha, rel=0.15)

    def test_k_out_of_range(self):
        x = ParetoMagnitudes().sample(100, seed=1)
        with pytest.raises(AnalysisError):
            hill_estimator(x, k=1)
        with pytest.raises(AnalysisError):
            hill_estimator(x, k=100)

    def test_too_few_samples(self):
        with pytest.raises(AnalysisError):
            hill_estimator(np.asarray([1.0, 2.0]))

    def test_degenerate_tail(self):
        with pytest.raises(AnalysisError):
            hill_estimator(np.ones(100))


class TestParetoMLE:
    def test_recovers_alpha_and_moment_verdicts(self):
        x = ParetoMagnitudes(alpha=0.8).sample(50_000, seed=3)
        fit = pareto_mle(x)
        assert fit.alpha == pytest.approx(0.8, rel=0.1)
        assert not fit.finite_mean
        assert not fit.insurable

    def test_insurable_when_alpha_high(self):
        x = ParetoMagnitudes(alpha=3.0).sample(50_000, seed=4)
        fit = pareto_mle(x)
        assert fit.finite_mean
        assert fit.finite_variance
        assert fit.insurable

    def test_explicit_xmin(self):
        x = ParetoMagnitudes(alpha=1.5, xmin=1.0).sample(50_000, seed=5)
        fit = pareto_mle(x, xmin=2.0)
        assert fit.xmin == 2.0
        assert fit.n_tail < len(x)
        assert fit.alpha == pytest.approx(1.5, rel=0.15)

    def test_invalid_xmin(self):
        x = ParetoMagnitudes().sample(100, seed=6)
        with pytest.raises(AnalysisError):
            pareto_mle(x, xmin=-1.0)
        with pytest.raises(AnalysisError):
            pareto_mle(x, xmin=1e9)


class TestMeanStability:
    def test_running_mean_shape(self):
        x = np.asarray([1.0, 3.0, 5.0])
        assert np.allclose(running_mean(x), [1.0, 2.0, 3.0])

    def test_gaussian_mean_stabilizes(self):
        x = GaussianMagnitudes(mu=5.0, sigma=1.0).sample(50_000, seed=7)
        assert mean_stability_ratio(x) < 0.02

    def test_infinite_mean_pareto_unstable(self):
        """Taleb's point made quantitative: for alpha < 1 the sample mean
        never settles."""
        x = ParetoMagnitudes(alpha=0.8).sample(50_000, seed=8)
        assert mean_stability_ratio(x) > 0.1

    def test_window_validation(self):
        x = np.ones(100)
        with pytest.raises(AnalysisError):
            mean_stability_ratio(x, window=0.0)
        with pytest.raises(AnalysisError):
            mean_stability_ratio(x, window=0.001)


class TestInsurer:
    def test_gaussian_losses_are_insurable(self):
        insurer = Insurer(initial_capital=50.0, loading=0.2)
        outcome = insurer.simulate(
            GaussianMagnitudes(mu=1.0, sigma=0.3), periods=200, trials=200,
            seed=9,
        )
        assert outcome.ruin_probability < 0.05
        assert outcome.mean_final_capital > 50.0

    def test_infinite_mean_pareto_ruins(self):
        """'We can not rely on insurance' for alpha <= 1."""
        insurer = Insurer(initial_capital=50.0, loading=0.2)
        outcome = insurer.simulate(
            ParetoMagnitudes(alpha=0.9), periods=200, trials=200, seed=10
        )
        assert outcome.ruin_probability > 0.3

    def test_loading_helps_thin_tails_only(self):
        thin = GaussianMagnitudes(mu=1.0, sigma=0.3)
        fat = ParetoMagnitudes(alpha=0.9)
        low = Insurer(initial_capital=20.0, loading=0.05)
        high = Insurer(initial_capital=20.0, loading=0.5)
        thin_low = low.simulate(thin, trials=150, seed=11).ruin_probability
        thin_high = high.simulate(thin, trials=150, seed=11).ruin_probability
        fat_high = high.simulate(fat, trials=150, seed=11).ruin_probability
        assert thin_high <= thin_low
        assert fat_high > thin_high + 0.2

    def test_fixed_premium_respected(self):
        insurer = Insurer(initial_capital=10.0)
        outcome = insurer.simulate(
            GaussianMagnitudes(), periods=10, trials=10, seed=12, premium=5.0
        )
        assert outcome.premium == 5.0

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            Insurer(initial_capital=-1.0)
        with pytest.raises(ConfigurationError):
            Insurer(loading=-0.1)
        with pytest.raises(ConfigurationError):
            Insurer(estimation_window=1)
        insurer = Insurer()
        with pytest.raises(ConfigurationError):
            insurer.simulate(GaussianMagnitudes(), periods=0)
