"""Tests for return-level estimation (repro.shocks.returnlevels)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.shocks.distributions import ParetoMagnitudes
from repro.shocks.envelope import design_height_for_return_period
from repro.shocks.returnlevels import (
    empirical_return_level,
    extrapolated_return_level,
    return_level_curve,
)


@pytest.fixture(scope="module")
def pareto_record():
    dist = ParetoMagnitudes(alpha=2.0, xmin=1.0)
    return dist, dist.sample(5000, seed=42)  # ~50 years at 100 events/yr


class TestEmpirical:
    def test_inside_record_matches_truth(self, pareto_record):
        dist, record = pareto_record
        # 1-year level at 100 events/year: 50 in-record exceedances, so
        # the order statistic is well resolved
        estimated = empirical_return_level(record, 100.0, 1.0)
        true = design_height_for_return_period(dist, 100.0, 1.0)
        assert estimated == pytest.approx(true, rel=0.15)
        # deeper levels get noisier but stay the right order of magnitude
        deep = empirical_return_level(record, 100.0, 10.0)
        deep_true = design_height_for_return_period(dist, 100.0, 10.0)
        assert deep == pytest.approx(deep_true, rel=0.5)

    def test_beyond_record_raises(self, pareto_record):
        _, record = pareto_record
        with pytest.raises(AnalysisError):
            empirical_return_level(record, 100.0, 100.0)

    def test_monotone_in_return_period(self, pareto_record):
        _, record = pareto_record
        levels = [
            empirical_return_level(record, 100.0, y) for y in (1, 5, 20)
        ]
        assert levels == sorted(levels)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            empirical_return_level(np.asarray([1.0, 2.0]), 1.0, 1.0)
        with pytest.raises(AnalysisError):
            empirical_return_level(np.ones(10), 0.0, 1.0)


class TestExtrapolated:
    def test_beyond_record_tracks_truth(self, pareto_record):
        dist, record = pareto_record
        # 500-year level: 10x beyond the 50-year record
        estimated = extrapolated_return_level(record, 100.0, 500.0)
        true = design_height_for_return_period(dist, 100.0, 500.0)
        assert estimated == pytest.approx(true, rel=0.3)

    def test_falls_back_to_empirical_inside_record(self, pareto_record):
        _, record = pareto_record
        inside = extrapolated_return_level(record, 100.0, 2.0)
        empirical = empirical_return_level(record, 100.0, 2.0)
        assert inside == pytest.approx(empirical)

    def test_curve_monotone(self, pareto_record):
        _, record = pareto_record
        curve = return_level_curve(record, 100.0, [10, 100, 1000, 10000])
        assert np.all(np.diff(curve.levels) > 0)
        assert curve.method.startswith("pareto-tail")

    def test_validation(self, pareto_record):
        _, record = pareto_record
        with pytest.raises(AnalysisError):
            extrapolated_return_level(record[:5], 1.0, 10.0)
        with pytest.raises(AnalysisError):
            extrapolated_return_level(record, 1.0, 10.0, tail_fraction=0.0)
        with pytest.raises(AnalysisError):
            return_level_curve(record, 1.0, [])
