"""Tests for design envelopes / the sea-wall problem (repro.shocks.envelope)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import AnalysisError, ConfigurationError
from repro.shocks.distributions import LognormalMagnitudes, ParetoMagnitudes
from repro.shocks.envelope import (
    DesignProblem,
    design_height_for_return_period,
)


class TestReturnLevels:
    def test_return_level_grows_with_horizon(self):
        dist = ParetoMagnitudes(alpha=2.0, xmin=1.0)
        h10 = design_height_for_return_period(dist, 0.2, 10)
        h100 = design_height_for_return_period(dist, 0.2, 100)
        h1000 = design_height_for_return_period(dist, 0.2, 1000)
        assert h10 < h100 < h1000

    def test_return_level_exact_for_pareto(self):
        """P(X > h) * rate * years == 1 at the computed height."""
        dist = ParetoMagnitudes(alpha=1.5, xmin=2.0)
        h = design_height_for_return_period(dist, 0.5, 200)
        assert float(dist.survival(h)) * 0.5 * 200 == pytest.approx(1.0)

    def test_short_horizon_clamps_to_xmin(self):
        dist = ParetoMagnitudes(alpha=2.0, xmin=3.0)
        assert design_height_for_return_period(dist, 10.0, 0.01) == 3.0

    def test_validation(self):
        dist = ParetoMagnitudes()
        with pytest.raises(ConfigurationError):
            design_height_for_return_period(dist, 0.0, 10)
        with pytest.raises(ConfigurationError):
            design_height_for_return_period(dist, 1.0, 0.0)


class TestDesignProblem:
    def problem(self, **kw):
        defaults = dict(
            magnitudes=ParetoMagnitudes(alpha=1.8, xmin=1.0),
            events_per_year=0.2,
            horizon_years=100.0,
            build_cost_per_unit=2.0,
            build_cost_exponent=1.5,
            breach_loss=500.0,
        )
        defaults.update(kw)
        return DesignProblem(**defaults)

    def test_taller_wall_fewer_breaches_more_build_cost(self):
        problem = self.problem()
        low = problem.evaluate(2.0)
        high = problem.evaluate(10.0)
        assert high.breach_probability < low.breach_probability
        assert high.build_cost > low.build_cost
        assert high.expected_breach_loss < low.expected_breach_loss

    def test_optimum_is_interior_and_below_historic_max(self):
        """The paper's point: a 40 m wall is never optimal."""
        problem = self.problem()
        grid = np.linspace(1.0, 40.0, 79)
        best = problem.optimize(grid)
        # optimum is strictly inside the grid (not the historic maximum)
        assert 1.0 < best.height < 40.0
        # and cheaper than both extremes
        assert best.total_cost < problem.evaluate(1.0).total_cost
        assert best.total_cost < problem.evaluate(40.0).total_cost

    def test_residual_risk_remains_at_optimum(self):
        """X-events stay possible: the optimal wall still breaches."""
        problem = self.problem()
        best = problem.optimize(np.linspace(1.0, 40.0, 79))
        assert best.breach_probability > 0.0

    def test_monte_carlo_path_for_non_pareto(self):
        problem = self.problem(magnitudes=LognormalMagnitudes(0.5, 0.8))
        evaluation = problem.evaluate(5.0)
        assert 0.0 <= evaluation.breach_probability <= 1.0

    def test_costlier_disasters_push_the_optimum_up(self):
        cheap = self.problem(breach_loss=100.0)
        dear = self.problem(breach_loss=5000.0)
        grid = np.linspace(1.0, 40.0, 79)
        assert dear.optimize(grid).height > cheap.optimize(grid).height

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            self.problem(events_per_year=0.0)
        with pytest.raises(ConfigurationError):
            self.problem(build_cost_exponent=0.5)
        problem = self.problem()
        with pytest.raises(ConfigurationError):
            problem.evaluate(-1.0)
        with pytest.raises(AnalysisError):
            problem.optimize([])
