"""Tests for scenario planning (repro.anticipation.scenario)."""

from __future__ import annotations

import pytest

from repro.anticipation.scenario import (
    ActionProfile,
    Scenario,
    ScenarioAnalysis,
)
from repro.errors import ConfigurationError


def analysis():
    """Classic robustness setup: bet vs hedge vs insure."""
    scenarios = [
        Scenario("calm", 0.95),
        Scenario("disaster", 0.05),
    ]
    actions = [
        ActionProfile("bet-on-calm", {"calm": 100.0, "disaster": -900.0}),
        ActionProfile("hedge", {"calm": 80.0, "disaster": -100.0}),
        ActionProfile("insure", {"calm": 60.0, "disaster": 40.0}),
    ]
    return ScenarioAnalysis(scenarios, actions)


class TestDecisionRules:
    def test_expected_value_computation(self):
        a = analysis()
        bet = a.actions[0]
        assert a.expected_value(bet) == pytest.approx(
            0.95 * 100 - 0.05 * 900
        )

    def test_ev_picks_the_gamble(self):
        assert analysis().best_by_expected_value().name == "insure" or True
        # with these numbers: bet EV 50, hedge EV 71, insure EV 59
        assert analysis().best_by_expected_value().name == "hedge"

    def test_maximin_picks_the_safe_action(self):
        assert analysis().best_by_worst_case().name == "insure"

    def test_minimax_regret(self):
        a = analysis()
        # regrets in calm: bet 0, hedge 20, insure 40
        # regrets in disaster: bet 940, hedge 140, insure 0
        assert a.max_regret(a.actions[0]) == pytest.approx(940.0)
        assert a.max_regret(a.actions[1]) == pytest.approx(140.0)
        assert a.max_regret(a.actions[2]) == pytest.approx(40.0)
        assert a.best_by_minimax_regret().name == "insure"

    def test_table_rows(self):
        rows = analysis().table()
        assert len(rows) == 3
        assert {"action", "expected_value", "worst_case", "max_regret"} <= \
            set(rows[0])

    def test_different_rules_can_disagree(self):
        """The X-event point: distrusting probabilities changes the
        chosen action."""
        a = analysis()
        assert a.best_by_expected_value().name != \
            a.best_by_worst_case().name


class TestValidation:
    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ConfigurationError):
            ScenarioAnalysis(
                [Scenario("a", 0.5), Scenario("b", 0.6)],
                [ActionProfile("x", {"a": 1.0, "b": 1.0})],
            )

    def test_missing_payoffs_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioAnalysis(
                [Scenario("a", 1.0)],
                [ActionProfile("x", {"other": 1.0})],
            )

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioAnalysis(
                [Scenario("a", 0.5), Scenario("a", 0.5)],
                [ActionProfile("x", {"a": 1.0})],
            )
        with pytest.raises(ConfigurationError):
            ScenarioAnalysis(
                [Scenario("a", 1.0)],
                [ActionProfile("x", {"a": 1.0}),
                 ActionProfile("x", {"a": 2.0})],
            )

    def test_empty_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioAnalysis([], [ActionProfile("x", {"a": 1.0})])
        with pytest.raises(ConfigurationError):
            ScenarioAnalysis([Scenario("a", 1.0)], [])
        with pytest.raises(ConfigurationError):
            Scenario("", 0.5)
        with pytest.raises(ConfigurationError):
            Scenario("a", 1.5)
        with pytest.raises(ConfigurationError):
            ActionProfile("", {"a": 1.0})
        with pytest.raises(ConfigurationError):
            ActionProfile("x", {})
