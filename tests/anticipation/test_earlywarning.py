"""Tests for early-warning signals (repro.anticipation.earlywarning)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.anticipation.earlywarning import (
    compute_indicators,
    detrend,
    kendall_trend,
    rolling_autocorrelation,
    rolling_skewness,
    rolling_variance,
    warning_verdict,
)
from repro.errors import AnalysisError
from repro.rng import make_rng


def ar1_series(phi, n, sigma=1.0, seed=0):
    rng = make_rng(seed)
    x = np.zeros(n)
    for t in range(1, n):
        x[t] = phi * x[t - 1] + rng.normal(0, sigma)
    return x


class TestRollingStatistics:
    def test_variance_of_constant_is_zero(self):
        x = np.ones(50)
        assert np.allclose(rolling_variance(x, 10), 0.0)

    def test_variance_detects_growth(self):
        rng = make_rng(1)
        quiet = rng.normal(0, 0.1, 200)
        loud = rng.normal(0, 2.0, 200)
        series = np.concatenate([quiet, loud])
        var = rolling_variance(series, 50)
        assert var[-1] > var[0] * 10

    def test_autocorrelation_of_white_noise_near_zero(self):
        x = make_rng(2).normal(0, 1, 2000)
        ac = rolling_autocorrelation(x, 500)
        assert abs(np.mean(ac)) < 0.1

    def test_autocorrelation_of_persistent_process_high(self):
        x = ar1_series(0.95, 2000, seed=3)
        ac = rolling_autocorrelation(x, 500)
        assert np.mean(ac) > 0.7

    def test_skewness_of_symmetric_noise_near_zero(self):
        x = make_rng(4).normal(0, 1, 1000)
        sk = rolling_skewness(x, 200)
        assert abs(np.mean(sk)) < 0.3

    def test_window_validation(self):
        x = np.ones(20)
        with pytest.raises(AnalysisError):
            rolling_variance(x, 2)
        with pytest.raises(AnalysisError):
            rolling_variance(np.ones(5), 10)

    def test_nonfinite_rejected(self):
        x = np.asarray([1.0, np.nan, 2.0, 3.0, 4.0])
        with pytest.raises(AnalysisError):
            rolling_variance(x, 3)


class TestDetrend:
    def test_removes_linear_trend(self):
        t = np.arange(500, dtype=float)
        x = 0.05 * t + make_rng(5).normal(0, 0.5, 500)
        residuals = detrend(x, 50)
        # residual mean should be near zero, trend removed
        assert abs(residuals.mean()) < 0.2
        assert abs(np.polyfit(t[50:-50], residuals[50:-50], 1)[0]) < 0.005

    def test_window_validation(self):
        with pytest.raises(AnalysisError):
            detrend(np.ones(10), 1)


class TestKendallTrend:
    def test_increasing_series_tau_one(self):
        assert kendall_trend(np.arange(50.0)) == pytest.approx(1.0)

    def test_decreasing_series_tau_minus_one(self):
        assert kendall_trend(np.arange(50.0)[::-1]) == pytest.approx(-1.0)

    def test_constant_series_tau_zero(self):
        assert kendall_trend(np.ones(50)) == 0.0

    def test_noise_tau_small(self):
        x = make_rng(6).normal(0, 1, 500)
        assert abs(kendall_trend(x)) < 0.15


class TestIndicatorsAndVerdict:
    def test_critical_slowing_down_detected(self):
        """Rising AR(1) persistence mimics approach to a tipping point."""
        rng = make_rng(7)
        n = 3000
        phis = np.linspace(0.3, 0.97, n)
        x = np.zeros(n)
        for t in range(1, n):
            x[t] = phis[t] * x[t - 1] + rng.normal(0, 0.5)
        ind = compute_indicators(x, window=400)
        assert ind.autocorrelation_trend > 0.5
        assert ind.variance_trend > 0.5
        assert warning_verdict(ind, tau_threshold=0.5)

    def test_stationary_series_gives_no_warning(self):
        x = ar1_series(0.5, 3000, seed=8)
        ind = compute_indicators(x, window=400)
        assert not warning_verdict(ind, tau_threshold=0.5)

    def test_require_both_stricter_than_either(self):
        x = ar1_series(0.5, 2000, seed=9)
        ind = compute_indicators(x, window=300)
        either = warning_verdict(ind, tau_threshold=0.0, require_both=False)
        both = warning_verdict(ind, tau_threshold=0.0, require_both=True)
        assert either or not both  # both => either

    def test_bad_threshold_rejected(self):
        x = ar1_series(0.5, 1000, seed=10)
        ind = compute_indicators(x, window=200)
        with pytest.raises(AnalysisError):
            warning_verdict(ind, tau_threshold=2.0)
