"""Tests for staged alerts and forecasting (repro.anticipation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.anticipation.alerts import AlertPhase, StagedAlertSystem, who_pandemic_scale
from repro.anticipation.forecast import (
    AR1Forecaster,
    CombinedForecaster,
    ExpertPrior,
    MovingAverageForecaster,
    PersistenceForecaster,
    evaluate_forecaster,
    mean_squared_error,
)
from repro.errors import AnalysisError, ConfigurationError
from repro.rng import make_rng


class TestStagedAlerts:
    def make(self, hysteresis=0.1):
        phases = [
            AlertPhase(0, "quiet", 0.0),
            AlertPhase(1, "watch", 10.0),
            AlertPhase(2, "warn", 20.0),
            AlertPhase(3, "respond", 40.0),
        ]
        return StagedAlertSystem(phases, hysteresis=hysteresis)

    def test_escalates_to_matching_threshold(self):
        alerts = self.make()
        assert alerts.observe(25.0).level == 2
        assert alerts.observe(45.0).level == 3

    def test_skips_levels_on_big_jump(self):
        alerts = self.make()
        assert alerts.observe(100.0).level == 3

    def test_hysteresis_delays_deescalation(self):
        alerts = self.make(hysteresis=0.2)
        alerts.observe(25.0)  # level 2, threshold 20
        # 17 is below 20 but above 20*(1-0.2)=16 -> stays at 2
        assert alerts.observe(17.0).level == 2
        # 15 is below 16 -> drops (possibly multiple levels)
        assert alerts.observe(15.0).level < 2

    def test_run_and_escalations(self):
        alerts = self.make()
        levels = alerts.run([5, 12, 12, 25, 5])
        assert levels[0] == 0
        assert levels[1] == 1
        assert levels[3] == 2
        escalation_points = alerts.escalations([5, 12, 12, 25, 5])
        assert escalation_points == [1, 3]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StagedAlertSystem([AlertPhase(0, "only", 0.0)])
        with pytest.raises(ConfigurationError):
            StagedAlertSystem(
                [AlertPhase(1, "a", 5.0), AlertPhase(0, "b", 10.0)]
            )
        with pytest.raises(ConfigurationError):
            StagedAlertSystem(
                [AlertPhase(0, "a", 5.0), AlertPhase(1, "b", 5.0)]
            )

    def test_who_scale_shape(self):
        alerts = who_pandemic_scale(base_threshold=1.0, ratio=2.0)
        assert len(alerts.phases) == 7
        assert alerts.observe(0.5).level == 0
        assert alerts.observe(33.0).level == 6

    def test_who_scale_validation(self):
        with pytest.raises(ConfigurationError):
            who_pandemic_scale(base_threshold=0.0)
        with pytest.raises(ConfigurationError):
            who_pandemic_scale(ratio=1.0)


class TestForecasters:
    def test_persistence(self):
        assert PersistenceForecaster().forecast(np.asarray([1.0, 5.0])) == 5.0

    def test_moving_average(self):
        f = MovingAverageForecaster(window=2)
        assert f.forecast(np.asarray([1.0, 2.0, 4.0])) == pytest.approx(3.0)

    def test_ar1_learns_persistence(self):
        rng = make_rng(1)
        x = np.zeros(300)
        for t in range(1, 300):
            x[t] = 0.9 * x[t - 1] + rng.normal(0, 0.1)
        pred = AR1Forecaster().forecast(x)
        assert pred == pytest.approx(0.9 * x[-1], abs=0.15)

    def test_ar1_constant_history(self):
        pred = AR1Forecaster().forecast(np.ones(10))
        assert pred == pytest.approx(1.0)

    def test_combined_beats_both_when_each_imperfect(self):
        """Silver's thesis (§3.4.1): data + expert beats either alone."""
        rng = make_rng(2)
        true_level = 10.0
        x = true_level + rng.normal(0, 2.0, 300)  # noisy stationary series
        base = PersistenceForecaster()  # bad: chases noise
        expert = ExpertPrior(mean=true_level, std=1.0)  # good but vague
        combined = CombinedForecaster(base=base, expert=expert)
        mse_base = evaluate_forecaster(base, x, burn_in=20)
        mse_combined = evaluate_forecaster(combined, x, burn_in=20)
        assert mse_combined < mse_base

    def test_combined_tracks_data_when_expert_is_bad(self):
        rng = make_rng(3)
        x = 100.0 + rng.normal(0, 0.5, 200)
        bad_expert = ExpertPrior(mean=0.0, std=50.0)  # wrong but humble
        combined = CombinedForecaster(
            base=MovingAverageForecaster(10), expert=bad_expert
        )
        pred = combined.forecast(x)
        assert pred == pytest.approx(100.0, abs=5.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MovingAverageForecaster(window=0)
        with pytest.raises(ConfigurationError):
            ExpertPrior(mean=0.0, std=0.0)
        with pytest.raises(ConfigurationError):
            CombinedForecaster(PersistenceForecaster(),
                               ExpertPrior(0.0, 1.0), error_window=2)
        with pytest.raises(AnalysisError):
            PersistenceForecaster().forecast(np.asarray([]))

    def test_mse_validation(self):
        with pytest.raises(AnalysisError):
            mean_squared_error(np.ones(3), np.ones(4))

    def test_evaluate_walk_forward(self):
        x = np.arange(50, dtype=float)
        mse = evaluate_forecaster(PersistenceForecaster(), x, burn_in=5)
        assert mse == pytest.approx(1.0)  # always off by exactly 1
