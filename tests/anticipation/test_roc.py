"""Tests for early-warning ROC utilities (repro.anticipation.earlywarning)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.anticipation.earlywarning import detection_roc, roc_auc
from repro.errors import AnalysisError


class TestDetectionRoc:
    def test_perfect_separation_auc_one(self):
        pos = np.asarray([0.8, 0.9, 0.95])
        neg = np.asarray([0.1, 0.2, 0.3])
        assert roc_auc(pos, neg) == pytest.approx(1.0)

    def test_no_skill_auc_half(self):
        rng = np.random.default_rng(0)
        pos = rng.random(2000)
        neg = rng.random(2000)
        assert roc_auc(pos, neg) == pytest.approx(0.5, abs=0.03)

    def test_inverted_scores_auc_below_half(self):
        pos = np.asarray([0.1, 0.2])
        neg = np.asarray([0.8, 0.9])
        assert roc_auc(pos, neg) < 0.1

    def test_curve_monotone_and_bounded(self):
        rng = np.random.default_rng(1)
        pos = rng.normal(0.6, 0.2, 100)
        neg = rng.normal(0.3, 0.2, 100)
        fprs, tprs = detection_roc(pos, neg)
        assert fprs[0] == 0.0 and fprs[-1] == 1.0
        assert tprs[0] == 0.0 and tprs[-1] == 1.0
        assert np.all(np.diff(fprs) >= -1e-12)
        assert np.all(np.diff(tprs) >= -1e-12)

    def test_empty_scores_rejected(self):
        with pytest.raises(AnalysisError):
            detection_roc(np.asarray([]), np.asarray([0.5]))

    def test_tipping_vs_control_auc_is_high(self):
        """End-to-end: indicator trends separate ramps from controls."""
        from repro.anticipation.earlywarning import compute_indicators
        from repro.anticipation.tipping import SaddleNodeSystem

        system = SaddleNodeSystem(noise=0.06, dt=0.05)
        pos, neg = [], []
        for seed in range(6):
            ramp = system.ramp_to_tipping(12_000, a_start=-0.5, a_end=0.45,
                                          seed=seed)
            if not ramp.tipped:
                continue
            ind = compute_indicators(ramp.pre_tip(margin=50)[-4000:],
                                     window=600)
            pos.append(ind.autocorrelation_trend)
            control = system.stationary_control(12_000, a=-0.45,
                                                seed=100 + seed)
            ind_c = compute_indicators(control.state[-4000:], window=600)
            neg.append(ind_c.autocorrelation_trend)
        assert len(pos) >= 4
        assert roc_auc(np.asarray(pos), np.asarray(neg)) > 0.75
