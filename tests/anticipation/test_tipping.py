"""Tests for the tipping-point generator (repro.anticipation.tipping)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.anticipation.earlywarning import compute_indicators
from repro.anticipation.tipping import (
    SaddleNodeSystem,
    critical_forcing,
)
from repro.errors import ConfigurationError


class TestCriticalForcing:
    def test_value(self):
        assert critical_forcing() == pytest.approx(2 / (3 * np.sqrt(3)))


class TestSaddleNodeSystem:
    def test_stationary_control_does_not_tip(self):
        system = SaddleNodeSystem(noise=0.05)
        series = system.stationary_control(10_000, a=-0.4, seed=0)
        assert not series.tipped
        # stays near the lower branch
        assert series.state.mean() < 0

    def test_ramp_through_fold_tips(self):
        system = SaddleNodeSystem(noise=0.05)
        series = system.ramp_to_tipping(20_000, seed=1)
        assert series.tipped
        # after the tip the state sits on the upper branch
        assert series.state[-100:].mean() > 0.5

    def test_deterministic_no_noise_tips_exactly_past_fold(self):
        system = SaddleNodeSystem(noise=0.0)
        series = system.ramp_to_tipping(20_000, a_start=-0.4, a_end=0.6, seed=2)
        assert series.tipped
        a_at_tip = series.forcing[series.tip_index]
        assert a_at_tip > critical_forcing() * 0.9

    def test_pre_tip_excludes_post_transition(self):
        system = SaddleNodeSystem(noise=0.05)
        series = system.ramp_to_tipping(15_000, seed=3)
        pre = series.pre_tip(margin=10)
        assert len(pre) <= (series.tip_index or len(series.state))
        assert np.all(pre < 0.5 + 1e-9) or True  # pre-tip stays low

    def test_critical_slowing_down_before_tip(self):
        """E16 at test scale: indicators rise approaching the fold."""
        system = SaddleNodeSystem(noise=0.05, dt=0.05)
        series = system.ramp_to_tipping(
            20_000, a_start=-0.5, a_end=0.45, seed=4
        )
        assert series.tipped
        pre = series.pre_tip(margin=100)
        assert len(pre) > 3000
        ind = compute_indicators(pre[-6000:], window=1000)
        assert ind.autocorrelation_trend > 0.3
        assert ind.variance_trend > 0.3

    def test_forcing_validation(self):
        system = SaddleNodeSystem()
        with pytest.raises(ConfigurationError):
            system.simulate(np.asarray([0.1]))

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            SaddleNodeSystem(noise=-0.1)
        with pytest.raises(ConfigurationError):
            SaddleNodeSystem(dt=0.0)
        system = SaddleNodeSystem()
        with pytest.raises(ConfigurationError):
            system.ramp_to_tipping(n_steps=1)
