"""Tests for the multi-agent testbed (repro.agents)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents.environment import ConstraintEnvironment, ShockSchedule
from repro.agents.organism import Organism
from repro.agents.population import Population, seed_population
from repro.agents.simulation import EvolutionSimulator
from repro.core.strategies import Strategy, StrategyMix
from repro.csp.bitstring import BitString
from repro.errors import ConfigurationError
from repro.rng import make_rng


class TestOrganism:
    def test_alive_iff_resources_positive(self):
        org = Organism(genome=BitString.ones(4), resources=1.0)
        assert org.alive
        assert not org.with_resources(0.0).alive
        assert not org.with_resources(-5.0).alive  # floored at zero

    def test_adapt_toward_respects_budget(self):
        rng = make_rng(0)
        target = BitString.ones(8)
        org = Organism(genome=BitString.zeros(8), resources=1.0,
                       adaptability=3)
        adapted = org.adapt_toward(target, rng)
        assert adapted.genome.hamming(target) == 5  # fixed 3 of 8

    def test_adapt_when_already_fit_is_noop(self):
        rng = make_rng(1)
        target = BitString.ones(4)
        org = Organism(genome=target, resources=1.0, adaptability=2)
        assert org.adapt_toward(target, rng).genome == target

    def test_adapt_zero_adaptability_is_noop(self):
        rng = make_rng(2)
        org = Organism(genome=BitString.zeros(4), resources=1.0,
                       adaptability=0)
        assert org.adapt_toward(BitString.ones(4), rng).genome == \
            BitString.zeros(4)

    def test_split_halves_resources(self):
        org = Organism(genome=BitString.ones(4), resources=10.0)
        parent, child = org.split(BitString.zeros(4))
        assert parent.resources == 5.0
        assert child.resources == 5.0
        assert child.parent_id == org.organism_id
        assert child.age == 0

    def test_genome_length_change_rejected(self):
        org = Organism(genome=BitString.ones(4), resources=1.0)
        with pytest.raises(ConfigurationError):
            org.adapted(BitString.ones(5))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Organism(genome=BitString.ones(2), resources=-1.0)
        with pytest.raises(ConfigurationError):
            Organism(genome=BitString.ones(2), resources=1.0, adaptability=-1)


class TestConstraintEnvironment:
    def test_fitness_linear_in_distance(self):
        env = ConstraintEnvironment(target=BitString.ones(10))
        assert env.fitness(BitString.ones(10)) == 1.0
        assert env.fitness(BitString.zeros(10)) == 0.0
        g = BitString.ones(10).flip(0, 1)
        assert env.fitness(g) == pytest.approx(0.8)

    def test_satisfies_with_tolerance(self):
        env = ConstraintEnvironment(target=BitString.ones(6), tolerance=2)
        assert env.satisfies(BitString.ones(6).flip(0, 1))
        assert not env.satisfies(BitString.ones(6).flip(0, 1, 2))

    def test_shocked_moves_target_exactly_severity(self):
        env = ConstraintEnvironment.random(12, seed=0)
        shocked = env.shocked(4, seed=1)
        assert env.target.hamming(shocked.target) == 4
        assert shocked.tolerance == env.tolerance

    def test_zero_severity_is_identity(self):
        env = ConstraintEnvironment.random(6, seed=2)
        assert env.shocked(0) is env

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ConstraintEnvironment(target=BitString.ones(4), tolerance=-1)
        with pytest.raises(ConfigurationError):
            ConstraintEnvironment(target=BitString.ones(4), tolerance=5)
        env = ConstraintEnvironment.random(4, seed=3)
        with pytest.raises(ConfigurationError):
            env.shocked(9)


class TestShockSchedule:
    def test_periodic_firing(self):
        sched = ShockSchedule(period=10, severity=2)
        fires = [t for t in range(45) if sched.fires_at(t)]
        assert fires == [10, 20, 30, 40]

    def test_first_offset(self):
        sched = ShockSchedule(period=10, severity=2, first=5)
        fires = [t for t in range(30) if sched.fires_at(t)]
        assert fires == [5, 15, 25]

    def test_degenerate_never_fires(self):
        assert not any(
            ShockSchedule(period=0, severity=2).fires_at(t) for t in range(50)
        )
        assert not any(
            ShockSchedule(period=5, severity=0).fires_at(t) for t in range(50)
        )


class TestPopulation:
    def test_diversity_index_over_genotypes(self):
        genomes = [BitString.ones(4)] * 3 + [BitString.zeros(4)] * 3
        pop = Population([Organism(genome=g, resources=1.0) for g in genomes])
        # two genotype classes of size 3: G = 2 / (9 + 9) = 1/9
        assert pop.diversity_index() == pytest.approx(1.0 / 9.0)

    def test_empty_population_metrics(self):
        pop = Population([])
        assert pop.extinct
        assert pop.diversity_index() == 0.0
        assert pop.mean_resources() == 0.0

    def test_mixed_genome_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            Population([
                Organism(genome=BitString.ones(4), resources=1.0),
                Organism(genome=BitString.ones(5), resources=1.0),
            ])

    def test_satisfied_fraction(self):
        env = ConstraintEnvironment(target=BitString.ones(4))
        pop = Population([
            Organism(genome=BitString.ones(4), resources=1.0),
            Organism(genome=BitString.zeros(4), resources=1.0),
        ])
        assert pop.satisfied_fraction(env) == 0.5

    def test_mean_pairwise_hamming(self):
        pop = Population([
            Organism(genome=BitString.ones(4), resources=1.0),
            Organism(genome=BitString.zeros(4), resources=1.0),
        ])
        assert pop.mean_pairwise_hamming(seed=0) == pytest.approx(4.0)


class TestSeedPopulation:
    def test_redundancy_buys_resources(self):
        env = ConstraintEnvironment.random(16, seed=0)
        rich = seed_population(StrategyMix.pure(Strategy.REDUNDANCY), env,
                               n_agents=10, budget=100.0, seed=1)
        poor = seed_population(StrategyMix.pure(Strategy.ADAPTABILITY), env,
                               n_agents=10, budget=100.0, seed=1)
        assert rich.mean_resources() > poor.mean_resources()

    def test_diversity_buys_genome_spread(self):
        env = ConstraintEnvironment.random(16, seed=0)
        diverse = seed_population(StrategyMix.pure(Strategy.DIVERSITY), env,
                                  n_agents=20, seed=2)
        uniform = seed_population(StrategyMix.pure(Strategy.REDUNDANCY), env,
                                  n_agents=20, seed=2)
        assert diverse.diversity_index() > uniform.diversity_index()
        assert uniform.diversity_index() == pytest.approx(
            1.0 / 20.0**2 * 1, rel=1e-6
        ) or uniform.diversity_index() > 0

    def test_adaptability_buys_flip_speed(self):
        env = ConstraintEnvironment.random(16, seed=0)
        fast = seed_population(StrategyMix.pure(Strategy.ADAPTABILITY), env,
                               n_agents=10, max_adaptability=4, seed=3)
        slow = seed_population(StrategyMix.pure(Strategy.REDUNDANCY), env,
                               n_agents=10, max_adaptability=4, seed=3)
        assert fast.mean_adaptability() == 4.0
        assert slow.mean_adaptability() == 1.0

    def test_validation(self):
        env = ConstraintEnvironment.random(8, seed=0)
        with pytest.raises(ConfigurationError):
            seed_population(StrategyMix.uniform(), env, n_agents=0)
        with pytest.raises(ConfigurationError):
            seed_population(StrategyMix.uniform(), env, budget=-1.0)


class TestEvolutionSimulator:
    def test_quiet_environment_population_grows(self):
        env = ConstraintEnvironment.random(12, tolerance=2, seed=0)
        pop = seed_population(StrategyMix.uniform(), env, n_agents=20, seed=1)
        sim = EvolutionSimulator(capacity=100)
        result = sim.run(pop, env, steps=80, seed=2)
        assert result.survived
        assert result.alive[-1] > 20
        assert result.alive[-1] <= 100

    def test_input_population_not_mutated(self):
        env = ConstraintEnvironment.random(8, seed=0)
        pop = seed_population(StrategyMix.uniform(), env, n_agents=5, seed=1)
        before = list(pop.organisms)
        EvolutionSimulator().run(pop, env, steps=10, seed=2)
        assert pop.organisms == before

    def test_starvation_kills(self):
        """Unfit organisms with no income die when resources run out."""
        env = ConstraintEnvironment(target=BitString.ones(8))
        hopeless = Population([
            Organism(genome=BitString.zeros(8), resources=2.0,
                     adaptability=0)
        ])
        sim = EvolutionSimulator(income_rate=0.0, living_cost=1.0)
        result = sim.run(hopeless, env, steps=10, seed=0)
        assert not result.survived
        assert len(result.alive) < 10  # run stops at extinction

    def test_shocks_recorded_and_fitness_dips(self):
        env = ConstraintEnvironment.random(16, tolerance=2, seed=3)
        pop = seed_population(StrategyMix.uniform(), env, n_agents=30,
                              seed=4)
        sim = EvolutionSimulator()
        result = sim.run(
            pop, env, steps=60, shocks=ShockSchedule(period=25, severity=6),
            seed=5,
        )
        assert result.shock_times == (25, 50)
        # fitness right after the first shock is below the pre-shock level
        assert result.mean_fitness[25] < result.mean_fitness[24]

    def test_quality_trace_usable_by_bruneau(self):
        from repro.core.bruneau import assess

        env = ConstraintEnvironment.random(12, tolerance=2, seed=6)
        pop = seed_population(StrategyMix.uniform(), env, n_agents=25,
                              seed=7)
        result = EvolutionSimulator().run(
            pop, env, steps=50, shocks=ShockSchedule(period=20, severity=4),
            seed=8,
        )
        a = assess(result.quality_trace())
        assert a.loss >= 0.0

    def test_capacity_enforced(self):
        env = ConstraintEnvironment.random(8, tolerance=8, seed=9)
        pop = seed_population(StrategyMix.uniform(), env, n_agents=10,
                              seed=10)
        sim = EvolutionSimulator(capacity=30, income_rate=3.0)
        result = sim.run(pop, env, steps=60, seed=11)
        assert np.all(result.alive <= 30)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EvolutionSimulator(income_rate=-1.0)
        with pytest.raises(ConfigurationError):
            EvolutionSimulator(replication_threshold=0.0)
        with pytest.raises(ConfigurationError):
            EvolutionSimulator(capacity=0)
        env = ConstraintEnvironment.random(8, seed=0)
        pop = seed_population(StrategyMix.uniform(), env, n_agents=5, seed=1)
        with pytest.raises(ConfigurationError):
            EvolutionSimulator().run(pop, env, steps=0)
