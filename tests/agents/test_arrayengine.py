"""Equivalence suite: object engine vs array engine (repro.agents).

The array engine promises observational equivalence with
``EvolutionSimulator``: exact agreement wherever the dynamics are
deterministic, statistical agreement (the random streams differ) over
seeds everywhere else.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.agents.arrayengine import ArraySimulator, make_engine
from repro.agents.environment import ConstraintEnvironment, ShockSchedule
from repro.agents.lineage import founder_of
from repro.agents.organism import Organism
from repro.agents.population import Population, seed_population
from repro.agents.simulation import EvolutionSimulator
from repro.core.strategies import Strategy, StrategyMix
from repro.csp.bitstring import BitString
from repro.errors import ConfigurationError

N_SEEDS = 24

ENGINE_PARAMS = dict(
    income_rate=1.0, living_cost=1.0, replication_threshold=15.0,
    mutation_rate=0.01, capacity=120,
)


def paired_run(cls, seed, steps=80, shocks=ShockSchedule(period=12, severity=3)):
    env = ConstraintEnvironment.random(24, tolerance=3, seed=500 + seed)
    population = seed_population(
        StrategyMix.uniform(), env, n_agents=40, budget=400.0,
        seed=900 + seed,
    )
    return cls(**ENGINE_PARAMS).run(
        population, env, steps=steps, shocks=shocks, seed=seed
    )


class TestDeterministicPathExact:
    """No shocks + zero mutation + trivial adaptation = exact agreement."""

    def deterministic_pair(self, adaptability, seed=1):
        env = ConstraintEnvironment.random(16, tolerance=2, seed=0)
        population = seed_population(
            StrategyMix.pure(Strategy.DIVERSITY), env, n_agents=20,
            budget=60.0, seed=seed,
        )
        population.organisms = [
            replace(o, adaptability=adaptability)
            for o in population.organisms
        ]
        kw = dict(income_rate=1.5, living_cost=1.0,
                  replication_threshold=6.0, mutation_rate=0.0, capacity=60)
        # different run seeds on purpose: the path must not depend on them
        a = EvolutionSimulator(**kw).run(population, env, steps=40, seed=7)
        b = ArraySimulator(**kw).run(population, env, steps=40, seed=12345)
        return a, b

    @pytest.mark.parametrize("adaptability", [0, 16])
    def test_series_agree_exactly(self, adaptability):
        a, b = self.deterministic_pair(adaptability)
        assert np.array_equal(a.alive, b.alive)
        np.testing.assert_allclose(a.mean_fitness, b.mean_fitness,
                                   rtol=0, atol=1e-12)
        np.testing.assert_allclose(a.satisfied_fraction,
                                   b.satisfied_fraction, rtol=0, atol=1e-12)
        np.testing.assert_allclose(a.diversity, b.diversity,
                                   rtol=0, atol=1e-12)
        assert a.survived == b.survived
        assert a.shock_times == b.shock_times == ()

    def test_final_population_state_agrees(self):
        a, b = self.deterministic_pair(16)
        assert len(a.final_population) == len(b.final_population)
        for oa, ob in zip(a.final_population.organisms,
                          b.final_population.organisms):
            assert oa.genome == ob.genome
            assert oa.resources == pytest.approx(ob.resources)
            assert oa.age == ob.age
            assert oa.adaptability == ob.adaptability


class TestStatisticalEquivalence:
    """Seeded runs agree in distribution over >= 20 seeds."""

    @pytest.fixture(scope="class")
    def ensembles(self):
        out = {}
        for cls in (EvolutionSimulator, ArraySimulator):
            survived, alive, satisfied = [], [], []
            for seed in range(N_SEEDS):
                r = paired_run(cls, seed)
                survived.append(r.survived)
                alive.append(float(r.alive.mean()))
                satisfied.append(float(r.satisfied_fraction.mean()))
            out[cls.__name__] = (
                np.asarray(survived), np.asarray(alive),
                np.asarray(satisfied),
            )
        return out

    def test_survived_distribution(self, ensembles):
        a = ensembles["EvolutionSimulator"][0].mean()
        b = ensembles["ArraySimulator"][0].mean()
        assert abs(a - b) <= 0.25

    def test_alive_series(self, ensembles):
        a = ensembles["EvolutionSimulator"][1].mean()
        b = ensembles["ArraySimulator"][1].mean()
        assert b == pytest.approx(a, rel=0.15)

    def test_satisfied_fraction(self, ensembles):
        a = ensembles["EvolutionSimulator"][2].mean()
        b = ensembles["ArraySimulator"][2].mean()
        assert b == pytest.approx(a, abs=0.1)


class TestArrayEngineContract:
    """Array-engine behaviors that must mirror the object engine."""

    def test_input_population_not_mutated(self):
        env = ConstraintEnvironment.random(8, seed=0)
        pop = seed_population(StrategyMix.uniform(), env, n_agents=5, seed=1)
        before = list(pop.organisms)
        ArraySimulator().run(pop, env, steps=10, seed=2)
        assert pop.organisms == before

    def test_capacity_enforced(self):
        env = ConstraintEnvironment.random(8, tolerance=8, seed=9)
        pop = seed_population(StrategyMix.uniform(), env, n_agents=10,
                              seed=10)
        result = ArraySimulator(capacity=30, income_rate=3.0).run(
            pop, env, steps=60, seed=11
        )
        assert np.all(result.alive <= 30)

    def test_extinction_stops_run(self):
        env = ConstraintEnvironment(target=BitString.ones(8))
        hopeless = Population([
            Organism(genome=BitString.zeros(8), resources=2.0,
                     adaptability=0)
        ])
        result = ArraySimulator(income_rate=0.0, living_cost=1.0).run(
            hopeless, env, steps=10, seed=0
        )
        assert not result.survived
        assert len(result.alive) < 10

    def test_shock_times_and_severity(self):
        env = ConstraintEnvironment.random(16, tolerance=2, seed=3)
        pop = seed_population(StrategyMix.uniform(), env, n_agents=30,
                              seed=4)
        result = ArraySimulator().run(
            pop, env, steps=60, shocks=ShockSchedule(period=25, severity=6),
            seed=5,
        )
        assert result.shock_times == (25, 50)
        assert result.mean_fitness[25] < result.mean_fitness[24]

    def test_lineage_recording(self):
        env = ConstraintEnvironment.random(12, tolerance=2, seed=0)
        pop = seed_population(StrategyMix.uniform(), env, n_agents=10,
                              budget=50.0, seed=1)
        sim = ArraySimulator(income_rate=2.0, living_cost=1.0,
                             replication_threshold=4.0, capacity=80)
        silent = sim.run(pop, env, steps=60, seed=2)
        assert silent.parents is None
        result = sim.run(pop, env, steps=60, seed=2, record_lineage=True)
        founder_ids = {o.organism_id for o in pop.organisms}
        assert len(result.final_population) > len(pop)
        for organism in result.final_population.organisms:
            assert founder_of(organism, result.parents) in founder_ids

    def test_final_population_preserves_ids(self):
        env = ConstraintEnvironment.random(12, tolerance=4, seed=6)
        pop = seed_population(StrategyMix.uniform(), env, n_agents=15,
                              seed=7)
        result = ArraySimulator(replication_threshold=1e9).run(
            pop, env, steps=20, seed=8
        )
        initial_ids = {o.organism_id for o in pop.organisms}
        # no replication: every survivor is one of the founders
        assert {o.organism_id
                for o in result.final_population.organisms} <= initial_ids

    def test_genome_length_mismatch_rejected(self):
        env = ConstraintEnvironment.random(8, seed=0)
        pop = Population([Organism(genome=BitString.ones(6), resources=1.0)])
        with pytest.raises(ConfigurationError):
            ArraySimulator().run(pop, env, steps=5, seed=0)

    def test_quality_trace_usable_by_bruneau(self):
        from repro.core.bruneau import assess

        env = ConstraintEnvironment.random(12, tolerance=2, seed=6)
        pop = seed_population(StrategyMix.uniform(), env, n_agents=25,
                              seed=7)
        result = ArraySimulator().run(
            pop, env, steps=50, shocks=ShockSchedule(period=20, severity=4),
            seed=8,
        )
        assert assess(result.quality_trace()).loss >= 0.0


class TestMakeEngine:
    def test_kinds(self):
        assert isinstance(make_engine("object"), EvolutionSimulator)
        assert not isinstance(make_engine("object"), ArraySimulator)
        assert isinstance(make_engine("array"), ArraySimulator)

    def test_default_from_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_AGENT_ENGINE", raising=False)
        assert isinstance(make_engine(), ArraySimulator)
        monkeypatch.setenv("REPRO_AGENT_ENGINE", "object")
        engine = make_engine()
        assert isinstance(engine, EvolutionSimulator)
        assert not isinstance(engine, ArraySimulator)

    def test_params_forwarded(self):
        engine = make_engine("array", capacity=7, income_rate=2.5)
        assert engine.capacity == 7
        assert engine.income_rate == 2.5

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            make_engine("vectorized")

    def test_unknown_env_value_rejected_naming_choices(self, monkeypatch):
        """A typo'd REPRO_AGENT_ENGINE must fail loudly, naming the
        valid choices and the env var — never silently fall back."""
        monkeypatch.setenv("REPRO_AGENT_ENGINE", "vectorised")
        with pytest.raises(ConfigurationError) as excinfo:
            make_engine()
        message = str(excinfo.value)
        assert "vectorised" in message
        assert "REPRO_AGENT_ENGINE" in message
        assert "'array'" in message and "'object'" in message

    def test_empty_env_value_means_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_AGENT_ENGINE", "")
        assert isinstance(make_engine(), ArraySimulator)

    def test_unknown_kind_error_names_choices(self):
        with pytest.raises(ConfigurationError) as excinfo:
            make_engine("vectorized")
        assert "'array'" in str(excinfo.value)
        assert "kind argument" in str(excinfo.value)
