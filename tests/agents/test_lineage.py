"""Tests for species clustering and lineage (repro.agents.lineage)."""

from __future__ import annotations

import pytest

from repro.agents.lineage import (
    cluster_species,
    founder_of,
    survival_flags_by_species,
)
from repro.agents.organism import Organism
from repro.agents.population import Population
from repro.analysis.granularity import granularity_scores
from repro.csp.bitstring import BitString
from repro.errors import ConfigurationError


def org(genome: str, resources: float = 1.0) -> Organism:
    return Organism(genome=BitString.from_string(genome), resources=resources)


class TestClusterSpecies:
    def test_radius_zero_is_exact_genotypes(self):
        pop = Population([org("0000"), org("0000"), org("1111"),
                          org("0001")])
        clustering = cluster_species(pop, radius=0)
        assert clustering.n_species == 3
        assert sorted(clustering.sizes()) == [1, 1, 2]

    def test_radius_groups_near_genomes(self):
        pop = Population([org("0000"), org("0001"), org("1111"),
                          org("1110")])
        clustering = cluster_species(pop, radius=1)
        assert clustering.n_species == 2
        assert clustering.sizes() == [2, 2]

    def test_huge_radius_single_species(self):
        pop = Population([org("0000"), org("1111"), org("1010")])
        clustering = cluster_species(pop, radius=4)
        assert clustering.n_species == 1

    def test_members(self):
        a, b = org("0000"), org("1111")
        clustering = cluster_species(Population([a, b]), radius=0)
        assert clustering.members(0) == (a.organism_id,)
        with pytest.raises(ConfigurationError):
            clustering.members(5)

    def test_negative_radius_rejected(self):
        with pytest.raises(ConfigurationError):
            cluster_species(Population([org("01")]), radius=-1)


class TestFounder:
    def test_walks_parent_chain(self):
        a = org("0000")
        pa, child = a.split(BitString.from_string("0001"))
        parents = {a.organism_id: None, child.organism_id: a.organism_id}
        assert founder_of(child, parents) == a.organism_id
        assert founder_of(a, parents) == a.organism_id

    def test_cycle_detected(self):
        a = org("00")
        parents = {a.organism_id: a.organism_id}
        with pytest.raises(ConfigurationError):
            founder_of(a, parents)


class TestSurvivalFlags:
    def test_flags_feed_granularity(self):
        survivors = [org("0000"), org("0001")]
        casualties = [org("1111"), org("1110")]
        before = Population(survivors + casualties)
        after = Population(list(survivors))
        flags = survival_flags_by_species(before, after, radius=1)
        assert len(flags) == 2
        scores = granularity_scores(flags)
        assert scores.individual == pytest.approx(0.5)
        assert scores.species == pytest.approx(0.5)
        assert scores.ecosystem == 1.0
        assert scores.is_monotone()

    def test_everything_survives(self):
        pop = Population([org("00"), org("11")])
        flags = survival_flags_by_species(pop, pop, radius=0)
        assert all(all(v) for v in flags.values())
