"""Tests for lineage tracking through the simulation loop."""

from __future__ import annotations

import pytest

from repro.agents.environment import ConstraintEnvironment
from repro.agents.lineage import cluster_species, founder_of
from repro.agents.population import seed_population
from repro.agents.simulation import EvolutionSimulator
from repro.core.strategies import StrategyMix


def grown_run(steps=60, record_lineage=True):
    env = ConstraintEnvironment.random(12, tolerance=2, seed=0)
    population = seed_population(StrategyMix.uniform(), env, n_agents=10,
                                 budget=50.0, seed=1)
    simulator = EvolutionSimulator(income_rate=2.0, living_cost=1.0,
                                   replication_threshold=4.0, capacity=80)
    return population, simulator.run(population, env, steps=steps, seed=2,
                                     record_lineage=record_lineage)


class TestLineageTracking:
    def test_lineage_off_by_default(self):
        """Long sweeps must not accumulate an unbounded id -> parent map."""
        _, result = grown_run(record_lineage=False)
        assert result.parents is None
    def test_parents_cover_every_final_organism(self):
        _, result = grown_run()
        for organism in result.final_population.organisms:
            assert organism.organism_id in result.parents

    def test_founders_have_none_parent(self):
        population, result = grown_run()
        for organism in population.organisms:
            assert result.parents[organism.organism_id] is None

    def test_population_actually_grew(self):
        population, result = grown_run()
        assert len(result.final_population) > len(population)

    def test_every_survivor_traces_to_a_founder(self):
        population, result = grown_run()
        founder_ids = {o.organism_id for o in population.organisms}
        for organism in result.final_population.organisms:
            root = founder_of(organism, result.parents)
            assert root in founder_ids

    def test_clades_partition_survivors(self):
        population, result = grown_run()
        founder_ids = {o.organism_id for o in population.organisms}
        clades = {fid: 0 for fid in founder_ids}
        for organism in result.final_population.organisms:
            clades[founder_of(organism, result.parents)] += 1
        assert sum(clades.values()) == len(result.final_population)
        # growth means some clade has multiple descendants
        assert max(clades.values()) >= 2

    def test_species_clustering_on_final_population(self):
        _, result = grown_run()
        clustering = cluster_species(result.final_population, radius=2)
        assert clustering.n_species >= 1
        assert sum(clustering.sizes()) == len(result.final_population)
