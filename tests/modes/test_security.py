"""Tests for situational security switching (repro.modes.security)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.modes.security import (
    LOCKDOWN_POLICY,
    OPEN_POLICY,
    AttackCampaign,
    SecurityPolicy,
    SituationalController,
    simulate_security,
)


class TestPolicies:
    def test_builtin_shapes(self):
        assert OPEN_POLICY.usability > LOCKDOWN_POLICY.usability
        assert LOCKDOWN_POLICY.protection > OPEN_POLICY.protection

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SecurityPolicy("", 0.5, 0.5)
        with pytest.raises(ConfigurationError):
            SecurityPolicy("x", 1.5, 0.5)
        with pytest.raises(ConfigurationError):
            SecurityPolicy("x", 0.5, -0.1)


class TestController:
    def test_sustained_attacks_trigger_lockdown(self):
        controller = SituationalController(raise_at=0.5, lower_at=0.2,
                                           smoothing=0.5)
        policy = controller.peace
        for _ in range(5):
            policy = controller.observe(True)
        assert policy is controller.war

    def test_quiet_spell_lifts_lockdown(self):
        controller = SituationalController(raise_at=0.5, lower_at=0.2,
                                           smoothing=0.5)
        for _ in range(5):
            controller.observe(True)
        policy = controller.war
        for _ in range(10):
            policy = controller.observe(False)
        assert policy is controller.peace

    def test_hysteresis_band(self):
        controller = SituationalController(raise_at=0.6, lower_at=0.1,
                                           smoothing=1.0)
        controller.observe(True)  # indicator 1.0 -> lock
        # one quiet period: indicator 0.0 < lower -> unlock next
        assert controller.observe(False) is controller.peace

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SituationalController(raise_at=0.2, lower_at=0.5)
        with pytest.raises(ConfigurationError):
            SituationalController(smoothing=0.0)


class TestSimulation:
    campaigns = (AttackCampaign(start=100, length=30, damage=3.0),)

    def test_ichigan_beats_both_static_policies(self):
        """The paper's [11] claim: situation-based switching dominates
        both static stances over a mixed peace/attack history."""
        switching = simulate_security(
            SituationalController(), self.campaigns, horizon=300, seed=0
        )
        always_open = simulate_security(
            SituationalController.static(OPEN_POLICY), self.campaigns,
            horizon=300, seed=0,
        )
        always_locked = simulate_security(
            SituationalController.static(LOCKDOWN_POLICY), self.campaigns,
            horizon=300, seed=0,
        )
        assert switching.total_value > always_open.total_value
        assert switching.total_value > always_locked.total_value
        assert 0 < switching.lockdown_periods < 300

    def test_static_controllers_never_count_lockdown(self):
        outcome = simulate_security(
            SituationalController.static(LOCKDOWN_POLICY), self.campaigns,
            horizon=100, seed=1,
        )
        assert outcome.lockdown_periods == 0  # same policy both modes

    def test_no_attacks_open_is_best(self):
        open_run = simulate_security(
            SituationalController.static(OPEN_POLICY), (), horizon=200,
            base_attack_p=0.0, seed=2,
        )
        locked_run = simulate_security(
            SituationalController.static(LOCKDOWN_POLICY), (), horizon=200,
            base_attack_p=0.0, seed=2,
        )
        assert open_run.total_value > locked_run.total_value
        assert open_run.damage_taken == 0.0

    def test_campaign_windows(self):
        campaign = AttackCampaign(start=10, length=5, damage=1.0)
        assert campaign.active_at(10)
        assert campaign.active_at(14)
        assert not campaign.active_at(15)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AttackCampaign(start=-1, length=5, damage=1.0)
        with pytest.raises(ConfigurationError):
            AttackCampaign(start=0, length=0, damage=1.0)
        with pytest.raises(ConfigurationError):
            simulate_security(SituationalController(), (), horizon=0)
        with pytest.raises(ConfigurationError):
            simulate_security(SituationalController(), (), base_attack_p=2.0)
