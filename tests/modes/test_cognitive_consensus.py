"""Tests for cognitive errors and consensus building (repro.modes)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.modes.cognitive import (
    CognitiveBias,
    ThreatAssessment,
    allocate_protection,
    residual_risk,
)
from repro.modes.consensus import (
    RecoveryOption,
    Stakeholder,
    deliberate,
)


def threats():
    # terrorism: rare but dreaded; flu: common but banal
    return [
        ThreatAssessment("terrorism", true_probability=0.001, loss=1000.0,
                         dread=20.0),
        ThreatAssessment("influenza", true_probability=0.2, loss=50.0,
                         dread=0.8),
    ]


class TestCognitiveBias:
    def test_unbiased_is_identity_without_dread(self):
        bias = CognitiveBias.unbiased()
        assert bias.perceived_probability(0.3) == pytest.approx(0.3)
        assert bias.perceived_probability(0.0) == 0.0
        assert bias.perceived_probability(1.0) == 1.0

    def test_small_probabilities_overweighted(self):
        """Prelec gamma < 1 inflates rare events (§3.4.4)."""
        bias = CognitiveBias(gamma=0.65)
        assert bias.perceived_probability(0.001) > 0.001

    def test_dread_multiplies(self):
        bias = CognitiveBias(gamma=1.0)
        assert bias.perceived_probability(0.01, dread=5.0) == pytest.approx(0.05)

    def test_perceived_probability_capped_at_one(self):
        bias = CognitiveBias(gamma=1.0)
        assert bias.perceived_probability(0.5, dread=10.0) == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CognitiveBias(gamma=0.0)
        bias = CognitiveBias()
        with pytest.raises(ConfigurationError):
            bias.perceived_probability(1.5)


class TestAllocation:
    def test_biased_overprotects_dread_threat(self):
        biased = allocate_protection(threats(), 10.0, CognitiveBias(0.65))
        rational = allocate_protection(threats(), 10.0,
                                       CognitiveBias.unbiased())
        assert biased["terrorism"] > rational["terrorism"]

    def test_allocation_sums_to_budget(self):
        alloc = allocate_protection(threats(), 10.0, CognitiveBias())
        assert sum(alloc.values()) == pytest.approx(10.0)

    def test_biased_allocation_leaves_more_residual_risk(self):
        """The measurable cost of overreaction."""
        ts = threats()
        biased = allocate_protection(ts, 10.0, CognitiveBias(0.5))
        rational = allocate_protection(ts, 10.0, CognitiveBias.unbiased())
        assert residual_risk(ts, biased) > residual_risk(ts, rational)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            allocate_protection([], 10.0, CognitiveBias())
        with pytest.raises(ConfigurationError):
            allocate_protection(threats(), -1.0, CognitiveBias())
        dup = [threats()[0], threats()[0]]
        with pytest.raises(ConfigurationError):
            allocate_protection(dup, 1.0, CognitiveBias())
        with pytest.raises(ConfigurationError):
            residual_risk(threats(), {"terrorism": -1.0})
        with pytest.raises(ConfigurationError):
            residual_risk(threats(), {}, effectiveness=0.0)

    def test_threat_validation(self):
        with pytest.raises(ConfigurationError):
            ThreatAssessment("", 0.1, 1.0)
        with pytest.raises(ConfigurationError):
            ThreatAssessment("x", 1.5, 1.0)
        with pytest.raises(ConfigurationError):
            ThreatAssessment("x", 0.1, -1.0)
        with pytest.raises(ConfigurationError):
            ThreatAssessment("x", 0.1, 1.0, dread=0.0)


class TestConsensus:
    def options(self):
        return [RecoveryOption("industry"), RecoveryOption("wellness")]

    def test_aligned_stakeholders_agree_immediately(self):
        stakeholders = [
            Stakeholder("a", {"industry": 0.9, "wellness": 0.2}),
            Stakeholder("b", {"industry": 0.8, "wellness": 0.1}),
        ]
        result = deliberate(stakeholders, self.options())
        assert result.agreed
        assert result.option.name == "industry"
        assert result.rounds == 1

    def test_divided_stakeholders_converge_via_flexibility(self):
        """Miyagi vs Iwate: positions converge over deliberation rounds."""
        stakeholders = [
            Stakeholder("miyagi", {"industry": 0.9, "wellness": 0.1},
                        flexibility=0.4),
            Stakeholder("iwate", {"industry": 0.1, "wellness": 0.9},
                        flexibility=0.4),
            Stakeholder("sendai", {"industry": 0.1, "wellness": 0.8},
                        flexibility=0.4),
        ]
        result = deliberate(stakeholders, self.options(), required_share=1.0)
        assert result.agreed
        assert result.rounds > 1
        assert result.option.name == "wellness"

    def test_stubborn_stakeholders_stall(self):
        stakeholders = [
            Stakeholder("a", {"industry": 0.9, "wellness": 0.0},
                        flexibility=0.0),
            Stakeholder("b", {"industry": 0.0, "wellness": 0.9},
                        flexibility=0.0),
        ]
        result = deliberate(stakeholders, self.options(),
                            required_share=1.0, max_rounds=10)
        assert not result.agreed
        assert result.option is None
        assert result.rounds == 10

    def test_inputs_not_mutated(self):
        s = Stakeholder("a", {"industry": 0.9}, flexibility=0.5)
        deliberate([s, Stakeholder("b", {"industry": 0.0}, flexibility=0.5)],
                   [RecoveryOption("industry")], required_share=1.0)
        assert s.utilities == {"industry": 0.9}

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            deliberate([], self.options())
        with pytest.raises(ConfigurationError):
            deliberate([Stakeholder("a", {"x": 1.0})], [])
        with pytest.raises(ConfigurationError):
            deliberate(
                [Stakeholder("a", {"x": 1.0})],
                [RecoveryOption("x"), RecoveryOption("x")],
            )
        with pytest.raises(ConfigurationError):
            Stakeholder("a", {})
        with pytest.raises(ConfigurationError):
            Stakeholder("a", {"x": 1.0}, flexibility=2.0)
        with pytest.raises(ConfigurationError):
            RecoveryOption("")
