"""Tests for mode switching (repro.modes.switching, .policies)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.modes.policies import (
    ALWAYS_PREPARED_POLICY,
    EFFICIENCY_POLICY,
    EMERGENCY_POLICY,
    OperatingPolicy,
)
from repro.modes.switching import ModeController, SocietySimulator
from repro.shocks.arrivals import ScheduledArrivals


class TestOperatingPolicy:
    def test_builtin_policies_valid(self):
        assert EFFICIENCY_POLICY.reserve_rate == 0.0
        assert EMERGENCY_POLICY.mutual_aid > EFFICIENCY_POLICY.mutual_aid
        assert ALWAYS_PREPARED_POLICY.reserve_rate > 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            OperatingPolicy("", 0.1, 0.1, 1.0)
        with pytest.raises(ConfigurationError):
            OperatingPolicy("x", 1.0, 0.1, 1.0)
        with pytest.raises(ConfigurationError):
            OperatingPolicy("x", 0.1, 1.5, 1.0)
        with pytest.raises(ConfigurationError):
            OperatingPolicy("x", 0.1, 0.1, -1.0)


class TestModeController:
    def test_declares_on_threshold(self):
        ctrl = ModeController(declare_at=20.0, stand_down_at=5.0)
        assert ctrl.policy_for(10.0) is ctrl.normal
        assert ctrl.policy_for(25.0) is ctrl.emergency
        assert ctrl.in_emergency

    def test_hysteresis_band(self):
        ctrl = ModeController(declare_at=20.0, stand_down_at=5.0)
        ctrl.policy_for(25.0)
        # damage drops below declare but above stand-down: stay emergency
        assert ctrl.policy_for(10.0) is ctrl.emergency
        assert ctrl.policy_for(4.0) is ctrl.normal

    def test_reset(self):
        ctrl = ModeController()
        ctrl.policy_for(100.0)
        ctrl.reset()
        assert not ctrl.in_emergency

    def test_never_switching(self):
        ctrl = ModeController.never_switching()
        ctrl.policy_for(1e9)
        assert not ctrl.in_emergency

    def test_always_prepared_uses_single_policy(self):
        ctrl = ModeController.always_prepared(ALWAYS_PREPARED_POLICY)
        assert ctrl.policy_for(0.0) is ALWAYS_PREPARED_POLICY
        assert ctrl.policy_for(1e6) is ALWAYS_PREPARED_POLICY

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ModeController(declare_at=5.0, stand_down_at=5.0)
        with pytest.raises(ConfigurationError):
            ModeController(declare_at=5.0, stand_down_at=-1.0)
        ctrl = ModeController()
        with pytest.raises(ConfigurationError):
            ctrl.policy_for(-1.0)


class TestSocietySimulator:
    def quiet_society(self):
        return SocietySimulator(
            ScheduledArrivals.at([]), output=1.0, base_repair=1.0
        )

    def shocked_society(self, magnitude=40.0, time=50.0):
        return SocietySimulator(
            ScheduledArrivals.at([(time, magnitude)]),
            output=1.0,
            base_repair=1.0,
        )

    def test_quiet_life_accrues_full_welfare(self):
        outcome = self.quiet_society().run(
            ModeController.never_switching(), horizon=100, seed=0
        )
        assert outcome.total_welfare == pytest.approx(100.0)
        assert not outcome.collapsed
        assert outcome.trace.min_quality == 100.0

    def test_shock_registers_in_trace(self):
        outcome = self.shocked_society().run(
            ModeController(), horizon=120, seed=1
        )
        assert outcome.damage_peak == pytest.approx(40.0)
        assert outcome.trace.min_quality < 100.0
        assert not outcome.collapsed

    def test_emergency_mode_recovers_faster(self):
        switching = self.shocked_society().run(
            ModeController(declare_at=20.0, stand_down_at=2.0),
            horizon=120, seed=2,
        )
        frozen = self.shocked_society().run(
            ModeController.never_switching(), horizon=120, seed=2
        )
        assert switching.emergency_periods > 0
        t_switch = switching.trace.time_to_recover(threshold=99.0)
        t_frozen = frozen.trace.time_to_recover(threshold=99.0)
        assert t_switch is not None and t_frozen is not None
        assert t_switch < t_frozen

    def test_collapse_on_overwhelming_shock(self):
        society = self.shocked_society(magnitude=500.0)
        outcome = society.run(ModeController(), horizon=100, seed=3)
        assert outcome.collapsed
        assert outcome.total_welfare < 100.0

    def test_reserves_absorb_shock(self):
        """Always-prepared societies blunt the same shock."""
        prepared = self.shocked_society(magnitude=30.0).run(
            ModeController.always_prepared(ALWAYS_PREPARED_POLICY),
            horizon=120, seed=4,
        )
        naive = self.shocked_society(magnitude=30.0).run(
            ModeController.never_switching(), horizon=120, seed=4
        )
        assert prepared.damage_peak < naive.damage_peak

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SocietySimulator(ScheduledArrivals.at([]), output=0.0)
        with pytest.raises(ConfigurationError):
            self.quiet_society().run(ModeController(), horizon=1)
