"""End-to-end tests for :class:`repro.service.ResilienceService`."""

import time

import pytest

from repro.analysis.sweep import grid_sweep
from repro.errors import BackpressureError, ConfigurationError, ServiceError
from repro.runtime import supervisor as supervisor_module
from repro.runtime.supervisor import Supervisor
from repro.service import CANCELLED, DONE, FAILED, ResilienceService


def square(x, seed=None):
    return {"sq": x * x}


def seeded(x, seed=None):
    salt = 0 if seed is None else int(seed.generate_state(1)[0]) % 101
    return {"v": x + salt * 1e-6}


def napper(i, seed=None):
    time.sleep(0.05)
    return {"v": i * 2}


def boom(x, seed=None):
    raise ValueError(f"boom at {x}")


GRID = {"x": [0, 1, 2, 3]}


class TestSubmitAwaitResult:
    def test_rows_match_batch_grid_sweep(self):
        with ResilienceService() as svc:
            job = svc.submit("exp", seeded, grid=GRID, seed=11)
            assert job.wait(30)
            assert job.state == DONE
        expected = grid_sweep(GRID, seeded, seed=11)
        assert job.result().rows == expected.rows

    def test_explicit_points_submission(self):
        with ResilienceService() as svc:
            job = svc.submit("exp", square, points=[{"x": 5}, {"x": 6}])
            assert job.wait(30)
        assert [r["sq"] for r in job.result().rows] == [25, 36]

    def test_failures_surface_like_sweep_failures(self):
        with ResilienceService() as svc:
            job = svc.submit("exp", boom, grid={"x": [1]})
            assert job.wait(30)
            assert job.state == FAILED
        result = job.result()
        assert len(result.failures) == 1
        assert "boom at 1" in result.failures[0].error
        assert result.rows[0]["error"]

    def test_submit_validation(self):
        with ResilienceService() as svc:
            with pytest.raises(ConfigurationError, match="exactly one"):
                svc.submit("exp", square)
            with pytest.raises(ConfigurationError, match="exactly one"):
                svc.submit("exp", square, grid=GRID, points=[{"x": 1}])
            with pytest.raises(ConfigurationError, match="at least one"):
                svc.submit("exp", square, points=[])
            with pytest.raises(ConfigurationError, match="collides"):
                svc.submit("exp", square, grid={"seed": [1]}, seed=3)

    def test_submit_requires_running_service(self):
        svc = ResilienceService()
        with pytest.raises(ServiceError, match="not serving"):
            svc.submit("exp", square, grid=GRID)
        svc.start()
        svc.close()
        with pytest.raises(ServiceError, match="not serving"):
            svc.submit("exp", square, grid=GRID)


class TestCacheAndDedupe:
    def test_identical_resubmission_is_fully_cache_served(self):
        with ResilienceService() as svc:
            first = svc.submit("exp", seeded, grid=GRID, seed=11)
            assert first.wait(30)
            resub = svc.submit("exp", seeded, grid=GRID, seed=11)
            # served at admission: already done, nothing executed
            assert resub.done and resub.state == DONE
            p = resub.progress()
            assert p["cached"] == len(GRID["x"])
            assert p["executed"] == 0
            assert svc.tracer.counters["service.jobs.cache_served"] == 1
            assert resub.result().rows == first.result().rows

    def test_cache_keyed_on_seed_and_experiment(self):
        with ResilienceService() as svc:
            svc.submit("exp", seeded, grid=GRID, seed=11).wait(30)
            other_seed = svc.submit("exp", seeded, grid=GRID, seed=12)
            other_name = svc.submit("exp2", seeded, grid=GRID, seed=11)
            assert other_seed.wait(30) and other_name.wait(30)
            assert other_seed.progress()["cached"] == 0
            assert other_name.progress()["cached"] == 0

    def test_failures_are_never_cached(self):
        with ResilienceService() as svc:
            svc.submit("exp", boom, grid={"x": [1]}).wait(30)
            again = svc.submit("exp", boom, grid={"x": [1]})
            assert again.wait(30)
            assert again.progress()["cached"] == 0
            assert again.progress()["failed"] == 1  # re-ran, failed again
            assert svc.tracer.counters["service.points.failed"] == 2

    def test_inflight_twin_never_reexecutes(self):
        grid = {"i": list(range(6))}
        with ResilienceService() as svc:
            first = svc.submit("exp", napper, grid=grid, seed=1)
            twin = svc.submit("exp", napper, grid=grid, seed=1)
            assert first.wait(30) and twin.wait(30)
            p = twin.progress()
            # every twin point rode the first job's execution (dedup)
            # or its cached result — never a second execution
            assert p["executed"] == 0
            assert p["deduped"] + p["cached"] == p["total"]
            assert twin.result().rows == first.result().rows
            executed = svc.tracer.counters["service.points.executed"]
            assert executed == len(grid["i"])


class TestCancellation:
    def test_cancel_pending_work(self):
        with ResilienceService() as svc:
            job = svc.submit("exp", napper, grid={"i": list(range(20))})
            assert svc.cancel(job.id)
            assert job.state == CANCELLED
            assert svc.tracer.counters["service.jobs.cancelled"] == 1
            # service keeps serving after the cancellation
            probe = svc.submit("probe", square, grid={"x": [2]})
            assert probe.wait(30)
            assert probe.result().rows[0]["sq"] == 4

    def test_cancel_unknown_job(self):
        with ResilienceService() as svc:
            with pytest.raises(ServiceError, match="unknown job"):
                svc.cancel("job-999999")

    def test_close_without_drain_cancels(self):
        svc = ResilienceService().start()
        job = svc.submit("exp", napper, grid={"i": list(range(50))})
        svc.close(drain=False)
        assert job.state == CANCELLED


class TestGracefulDegradation:
    def test_saturation_backpressure(self):
        with ResilienceService(max_pending=1) as svc:
            held = svc.submit("exp", napper, grid={"i": list(range(10))})
            with pytest.raises(BackpressureError, match="saturated"):
                svc.submit("exp2", square, grid=GRID)
            assert held.wait(30)  # accepted work still finishes
            # drained: admission opens again
            assert svc.submit("exp3", square, grid={"x": [1]}).wait(30)

    def test_breaker_trip_sheds_new_work_only(self):
        sup = Supervisor(families=("agents",))
        with supervisor_module.use(sup):
            with ResilienceService() as svc:
                accepted = svc.submit(
                    "exp", napper, grid={"i": list(range(8))}
                )
                sup.trip("agents", "test-induced fault")
                assert svc.degraded
                with pytest.raises(BackpressureError, match="degraded"):
                    svc.submit("exp2", square, grid=GRID)
                assert accepted.wait(30)
                assert accepted.state == DONE
                assert accepted.progress()["filled"] == 8
                assert svc.status()["degraded"]

    def test_spent_deadline_sheds_new_work(self):
        sup = Supervisor(deadline_s=0.01)
        with supervisor_module.use(sup):
            with ResilienceService() as svc:
                time.sleep(0.05)  # spend the whole budget
                assert sup.deadline_exceeded()
                with pytest.raises(BackpressureError, match="degraded"):
                    svc.submit("exp", square, grid=GRID)


class TestObservability:
    def test_job_event_stream(self):
        with ResilienceService() as svc:
            job = svc.submit("exp", square, grid=GRID)
            assert job.wait(30)
            kinds = [e["event"] for e in job.events]
            assert "service.job.accepted" in kinds
            assert "service.job.progress" in kinds
            assert "service.job.done" in kinds

    def test_status_snapshot(self):
        with ResilienceService() as svc:
            svc.submit("exp", square, grid=GRID).wait(30)
            status = svc.status()
            assert status["serving"]
            assert not status["degraded"]
            assert status["jobs"] == {"done": 1}
            assert status["pending_jobs"] == 0
            assert status["cache"]["entries"] == len(GRID["x"])
            assert status["counters"]["service.jobs.accepted"] == 1
        assert not svc.status()["serving"]


class TestConfiguration:
    def test_env_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_WORKERS", "2")
        monkeypatch.setenv("REPRO_SERVICE_MAX_PENDING", "7")
        monkeypatch.setenv("REPRO_SERVICE_BATCH", "33")
        monkeypatch.setenv("REPRO_SERVICE_CACHE_MAX", "5")
        svc = ResilienceService()
        assert (svc.workers, svc.max_pending, svc.batch) == (2, 7, 33)
        assert svc.cache.max_entries == 5

    def test_constructor_wins_over_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_WORKERS", "4")
        assert ResilienceService(workers=1).workers == 1

    def test_bad_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_BATCH", "many")
        with pytest.raises(ConfigurationError, match="REPRO_SERVICE_BATCH"):
            ResilienceService()
        monkeypatch.setenv("REPRO_SERVICE_BATCH", "0")
        with pytest.raises(ConfigurationError, match="REPRO_SERVICE_BATCH"):
            ResilienceService()

    def test_empty_service_dir_env_means_in_memory(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_DIR", "")
        assert ResilienceService().persistence is None


class TestLoadTestDurability:
    def _small(self, **kwargs):
        from repro.service.loadtest import run_load_test

        return run_load_test(
            total_points=64,
            n_jobs=2,
            submitters=2,
            cancel_points=10,
            **kwargs,
        )

    def test_repeated_runs_one_process_do_not_collide(self):
        # run-salted experiment names: the second drill must execute its
        # own points, not be served from the first drill's cache
        first = self._small()
        second = self._small()
        assert first["passed"], first["checks"]
        assert second["passed"], second["checks"]

    def test_durable_run_against_persistent_dir(self, tmp_path):
        report = self._small(service_dir=str(tmp_path))
        assert report["passed"], report["checks"]
        assert report["service_dir"] == str(tmp_path)
        # the same directory again: recovery replays, salting keeps the
        # second drill's points disjoint, every check still holds
        again = self._small(service_dir=str(tmp_path))
        assert again["passed"], again["checks"]
