"""Tests for the service's durable spine (repro.service.persistence).

Covers the journal/store corruption matrix (torn tail, mid-file
garble, duplicate records, empty file, version-mismatch header), the
job round-trip (encode -> journal -> rebuild), and full service
recovery: restart re-admits incomplete jobs, warm-starts the cache,
skips already-stored points, and keeps final jobs final.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.errors import CheckpointError
from repro.service import ResilienceService
from repro.service.jobs import CANCELLED, DONE, Job, JobSpec
from repro.service.persistence import (
    JOURNAL_NAME,
    RESULTS_NAME,
    ServicePersistence,
    encode_job,
    rebuild_job,
)


def point_fn(x: int, y: int = 0, seed=None) -> dict:
    """Module-level (importable) deterministic point function."""
    return {"value": x * 10 + y}


def _job(job_id="job-000001", *, fn=point_fn, seed=7, points=None) -> Job:
    spec = JobSpec(
        experiment="exp",
        fn=fn,
        points=tuple(points or ({"x": 1}, {"x": 2})),
        seed=seed,
    )
    return Job(job_id, spec)


def _read_lines(path):
    with open(path, encoding="utf-8") as fh:
        return fh.read().splitlines()


class TestAppendAndReplay:
    def test_full_lifecycle_round_trips(self, tmp_path):
        p = ServicePersistence(str(tmp_path))
        job = _job()
        p.record_accepted(job)
        fps = [pt.fingerprint for pt in job.points]
        p.record_dispatched(fps)
        p.store_result(fps[0], {"value": 10})
        p.record_point_done(fps[0])
        p.close()

        p2 = ServicePersistence(str(tmp_path))
        state = p2.load()
        assert state.rows == {fps[0]: {"value": 10}}
        assert state.done_fingerprints == {fps[0]}
        assert [r["job"] for r in state.incomplete] == ["job-000001"]
        assert state.max_job_number == 1
        assert state.final_jobs == 0
        assert state.warnings == []
        p2.close()

    def test_completed_jobs_are_final(self, tmp_path):
        p = ServicePersistence(str(tmp_path))
        job = _job()
        p.record_accepted(job)
        p.record_completed(job)
        state = ServicePersistence(str(tmp_path)).load()
        assert state.incomplete == []
        assert state.final_jobs == 1
        p.close()

    def test_cancelled_jobs_are_final(self, tmp_path):
        p = ServicePersistence(str(tmp_path))
        job = _job()
        p.record_accepted(job)
        p.record_cancelled(job)
        state = ServicePersistence(str(tmp_path)).load()
        assert state.incomplete == []
        p.close()

    def test_stats_report_appends_and_lag(self, tmp_path):
        p = ServicePersistence(str(tmp_path))
        p.store_result("fp", {"a": 1})
        stats = p.stats()
        assert stats["appended"] == stats["fsynced"] == 1
        assert stats["lag"] == 0
        assert stats["stored_rows"] == 1
        assert stats["dir"] == str(tmp_path)
        p.close()


class TestCorruptionMatrix:
    """Every cell of the damage matrix degrades, never silently lies."""

    def _seeded(self, tmp_path) -> tuple:
        p = ServicePersistence(str(tmp_path))
        job = _job()
        p.record_accepted(job)
        for i, pt in enumerate(job.points):
            p.store_result(pt.fingerprint, {"value": (i + 1) * 10})
            p.record_point_done(pt.fingerprint)
        p.close()
        return (
            os.path.join(str(tmp_path), JOURNAL_NAME),
            os.path.join(str(tmp_path), RESULTS_NAME),
            [pt.fingerprint for pt in job.points],
        )

    def test_torn_journal_tail_dropped(self, tmp_path):
        journal, _, fps = self._seeded(tmp_path)
        with open(journal, "a") as fh:
            fh.write('{"record": "point-done", "fingerprint": "to')
        state = ServicePersistence(str(tmp_path)).load()
        # the torn record vanishes; everything durably appended survives
        assert state.done_fingerprints == set(fps)
        assert any(
            "torn tail" in w["reason"] for w in state.warnings
        )
        assert state.quarantined == 0

    def test_midfile_garble_quarantined_and_healed(self, tmp_path):
        journal, _, fps = self._seeded(tmp_path)
        lines = _read_lines(journal)
        lines[2] = lines[2][:10] + "~chaos~"
        with open(journal, "w") as fh:
            fh.write("\n".join(lines) + "\n")
        with pytest.warns(RuntimeWarning, match="quarantined"):
            p = ServicePersistence(str(tmp_path))
        state = p.load()
        assert state.quarantined == 1
        assert os.path.exists(journal + ".corrupt")
        # the heal is durable: reopening is clean
        p.close()
        p2 = ServicePersistence(str(tmp_path))
        assert p2.load().quarantined == 0
        p2.close()

    def test_duplicate_store_records_newest_wins(self, tmp_path):
        _, results, _ = self._seeded(tmp_path)
        p = ServicePersistence(str(tmp_path))
        p.store_result("fp-dup", {"value": 1})
        p.store_result("fp-dup", {"value": 2})
        p.close()
        state = ServicePersistence(str(tmp_path)).load()
        assert state.rows["fp-dup"] == {"value": 2}
        assert any(
            "duplicate fingerprint" in w["reason"] for w in state.warnings
        )

    def test_empty_files_initialize_cleanly(self, tmp_path):
        # zero-byte files (crash before the header fsync) are re-headed
        for name in (JOURNAL_NAME, RESULTS_NAME):
            open(os.path.join(str(tmp_path), name), "w").close()
        p = ServicePersistence(str(tmp_path))
        state = p.load()
        assert state.rows == {} and state.incomplete == []
        assert state.warnings == []
        p.close()

    def test_version_mismatch_header_refused(self, tmp_path):
        journal, _, _ = self._seeded(tmp_path)
        lines = _read_lines(journal)
        lines[0] = json.dumps({"kind": "service-journal", "version": 99})
        with open(journal, "w") as fh:
            fh.write("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="not a v1 service journal"):
            ServicePersistence(str(tmp_path))

    def test_foreign_kind_header_refused(self, tmp_path):
        _, results, _ = self._seeded(tmp_path)
        lines = _read_lines(results)
        lines[0] = json.dumps({"kind": "sweep-checkpoint", "version": 1})
        with open(results, "w") as fh:
            fh.write("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="service result store"):
            ServicePersistence(str(tmp_path))

    def test_malformed_but_parseable_records_quarantined(self, tmp_path):
        _, results, _ = self._seeded(tmp_path)
        lines = _read_lines(results)
        # valid JSON, wrong shape: no fingerprint string
        lines.insert(2, json.dumps({"fingerprint": 3, "row": {}}))
        with open(results, "w") as fh:
            fh.write("\n".join(lines) + "\n")
        with pytest.warns(RuntimeWarning, match="will re-execute"):
            p = ServicePersistence(str(tmp_path))
        assert p.load().quarantined == 1
        p.close()


class TestJobRoundTrip:
    def test_importable_job_rebuilds_identically(self):
        job = _job(seed=np.random.SeedSequence(42))
        record = json.loads(json.dumps(encode_job(job)))
        assert record["resumable"] is True
        rebuilt, reason = rebuild_job(record)
        assert reason is None
        assert rebuilt.id == job.id
        assert [p.fingerprint for p in rebuilt.points] == [
            p.fingerprint for p in job.points
        ]

    def test_int_and_none_seeds_round_trip(self):
        for seed in (None, 7):
            record = encode_job(_job(seed=seed))
            rebuilt, reason = rebuild_job(record)
            assert reason is None, reason
            assert rebuilt.spec.seed == seed

    def test_lambda_job_journaled_unresumable(self):
        job = _job(fn=lambda x, seed=None: {"v": x})
        record = encode_job(job)
        assert record["resumable"] is False
        assert "importable" in record["reason"]
        rebuilt, reason = rebuild_job(record)
        assert rebuilt is None and reason

    def test_prespawned_seedsequence_caught_by_fingerprints(self):
        # a parent the caller already spawned from: its children resume
        # at a later spawn key, so the rebuilt job's fingerprints
        # diverge and recovery refuses it instead of silently
        # recomputing different seeds
        seed = np.random.SeedSequence(1)
        seed.spawn(2)
        record = json.loads(json.dumps(encode_job(_job(seed=seed))))
        assert record["resumable"] is True
        rebuilt, reason = rebuild_job(record)
        assert rebuilt is None
        assert "diverge" in reason

    def test_vanished_function_refused_at_rebuild(self):
        record = encode_job(_job())
        record["fn"] = "repro.service.persistence:does_not_exist"
        rebuilt, reason = rebuild_job(record)
        assert rebuilt is None
        assert "no longer importable" in reason

    def test_fingerprint_divergence_refused(self):
        record = encode_job(_job())
        record["fingerprints"] = ["tampered"] * len(record["fingerprints"])
        rebuilt, reason = rebuild_job(record)
        assert rebuilt is None
        assert "diverge" in reason


class TestServiceRecovery:
    def test_unset_dir_means_no_persistence(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_SERVICE_DIR", raising=False)
        with ResilienceService(workers=1) as svc:
            assert svc.persistence is None
            assert svc.status()["journal"] is None
            assert svc.status()["recovery"] is None
        assert list(tmp_path.iterdir()) == []

    def test_env_knob_enables_persistence(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_DIR", str(tmp_path))
        with ResilienceService(workers=1) as svc:
            assert svc.persistence is not None
            job = svc.submit("env-knob", point_fn, grid={"x": [1, 2]})
            job.wait(30)
        assert os.path.exists(tmp_path / JOURNAL_NAME)
        assert os.path.exists(tmp_path / RESULTS_NAME)

    def test_restart_serves_completed_work_from_store(self, tmp_path):
        with ResilienceService(
            workers=1, service_dir=str(tmp_path)
        ) as svc:
            job = svc.submit("warm", point_fn, grid={"x": [1, 2, 3]}, seed=3)
            assert job.wait(30)
            rows = job.result().rows
        with ResilienceService(
            workers=1, service_dir=str(tmp_path)
        ) as svc:
            assert svc.recovery["rows_warmed"] == 3
            again = svc.submit(
                "warm", point_fn, grid={"x": [1, 2, 3]}, seed=3
            )
            assert again.wait(30)
            assert again.progress()["cached"] == 3
            assert again.progress()["executed"] == 0
            assert again.result().rows == rows

    def test_restart_reexecutes_only_missing_points(self, tmp_path):
        with ResilienceService(
            workers=1, service_dir=str(tmp_path)
        ) as svc:
            job = svc.submit(
                "partial", point_fn, grid={"x": [1, 2, 3, 4]}, seed=5
            )
            assert job.wait(30)
            baseline = job.result().rows
        # simulate a crash that lost the last store append: drop the
        # final result row (and its point-done, which trails it)
        results = tmp_path / RESULTS_NAME
        lines = _read_lines(results)
        with open(results, "w") as fh:
            fh.write("\n".join(lines[:-1]) + "\n")
        journal = tmp_path / JOURNAL_NAME
        kept = [
            line
            for line in _read_lines(journal)
            if '"completed"' not in line
        ][:-1]
        with open(journal, "w") as fh:
            fh.write("\n".join(kept) + "\n")
        with ResilienceService(
            workers=1, service_dir=str(tmp_path)
        ) as svc:
            recovered = svc.job("job-000001")
            assert recovered.wait(30)
            assert recovered.state == DONE
            assert recovered.result().rows == baseline
            assert recovered.progress()["cached"] == 3
            assert recovered.progress()["executed"] == 1
            assert svc.recovery["jobs"] == 1
            assert svc.recovery["points_rerun"] == 1

    def test_recovered_twins_still_deduplicate(self, tmp_path):
        with ResilienceService(
            workers=1, service_dir=str(tmp_path)
        ) as svc:
            a = svc.submit("twin", point_fn, grid={"x": [1, 2]}, seed=9)
            b = svc.submit("twin", point_fn, grid={"x": [1, 2]}, seed=9)
            assert a.wait(30) and b.wait(30)
        # forget everything executed, keep both accepted records
        journal = tmp_path / JOURNAL_NAME
        kept = [
            line
            for line in _read_lines(journal)
            if '"accepted"' in line or '"service-journal"' in line
        ]
        with open(journal, "w") as fh:
            fh.write("\n".join(kept) + "\n")
        results = tmp_path / RESULTS_NAME
        header = _read_lines(results)[0]
        with open(results, "w") as fh:
            fh.write(header + "\n")
        with ResilienceService(
            workers=1, service_dir=str(tmp_path)
        ) as svc:
            for job_id in ("job-000001", "job-000002"):
                job = svc.job(job_id)
                assert job.wait(30) and job.state == DONE
            executed = svc.tracer.counters["service.points.executed"]
        assert executed == 2  # two unique points, two jobs: no doubling

    def test_cancelled_jobs_stay_cancelled_after_restart(self, tmp_path):
        with ResilienceService(
            workers=1, service_dir=str(tmp_path)
        ) as svc:
            job = svc.submit("gone", point_fn, grid={"x": [1]})
            svc.cancel(job.id)
            job.wait(30)
        with ResilienceService(
            workers=1, service_dir=str(tmp_path)
        ) as svc:
            assert svc.recovery["jobs"] == 0
            with pytest.raises(Exception, match="unknown job"):
                svc.job("job-000001")

    def test_job_counter_resumes_past_journal(self, tmp_path):
        with ResilienceService(
            workers=1, service_dir=str(tmp_path)
        ) as svc:
            svc.submit("count", point_fn, grid={"x": [1]}).wait(30)
        with ResilienceService(
            workers=1, service_dir=str(tmp_path)
        ) as svc:
            job = svc.submit("count-2", point_fn, grid={"x": [2]})
            assert job.id == "job-000002"
            job.wait(30)

    def test_unresumable_job_skipped_with_warning(self, tmp_path):
        with ResilienceService(
            workers=1, service_dir=str(tmp_path)
        ) as svc:
            job = svc.submit(
                "lambda-job", lambda x, seed=None: {"v": x},
                grid={"x": [1]},
            )
            assert job.wait(30)
        # strip its completion so recovery has to consider it
        journal = tmp_path / JOURNAL_NAME
        kept = [
            line
            for line in _read_lines(journal)
            if '"completed"' not in line
        ]
        with open(journal, "w") as fh:
            fh.write("\n".join(kept) + "\n")
        with ResilienceService(
            workers=1, service_dir=str(tmp_path)
        ) as svc:
            assert svc.recovery["jobs"] == 0
            assert svc.recovery["skipped"] == 1

    def test_status_surfaces_journal_and_job_counts(self, tmp_path):
        with ResilienceService(
            workers=1, service_dir=str(tmp_path)
        ) as svc:
            job = svc.submit("status", point_fn, grid={"x": [1, 2]})
            job.wait(30)
            status = svc.status()
        assert status["journal"]["stored_rows"] == 2
        assert status["journal"]["lag"] == 0
        assert status["job_counts"][DONE] == 1
        assert status["job_counts"][CANCELLED] == 0
        assert status["recovery"] is not None
