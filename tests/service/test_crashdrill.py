"""Tests for the R03 crash drill (repro.service.crashdrill).

The drill itself is the test: SIGKILL a durable service mid-load in a
subprocess, corrupt the journal tail and the result store, recover in
a fresh subprocess, and assert nothing was lost, duplicated, or
changed.  Kept small here (two jobs) — the benchmark harness runs the
full drill twice and compares rows across runs.
"""

from __future__ import annotations

import json

from repro.service.crashdrill import (
    _count_done,
    _durable_rows,
    _journal_state,
    drill_point,
    run_crash_drill,
)


class TestHelpers:
    def test_drill_point_deterministic(self):
        import numpy as np

        seed = np.random.SeedSequence(7)
        assert drill_point(2, 3, seed) == drill_point(2, 3, seed)
        assert drill_point(2, 3, None)["salt"] == 0

    def test_count_done_missing_file(self, tmp_path):
        assert _count_done(str(tmp_path / "nope.jsonl")) == 0

    def test_durable_rows_skips_invalid_lines(self, tmp_path):
        path = tmp_path / "results.jsonl"
        path.write_text(
            json.dumps({"kind": "service-results", "version": 1}) + "\n"
            + json.dumps({"fingerprint": "a", "row": {"v": 1}}) + "\n"
            + "garbage~\n"
            + json.dumps({"fingerprint": "a", "row": {"v": 2}}) + "\n"
            + '{"fingerprint": "torn'
        )
        rows = _durable_rows(str(path))
        assert rows == {"a": {"v": 2}}  # newest wins, damage skipped

    def test_journal_state_tracks_final_jobs(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text(
            json.dumps({"kind": "service-journal", "version": 1}) + "\n"
            + json.dumps(
                {"record": "accepted", "job": "job-1", "fingerprints": ["f"]}
            ) + "\n"
            + json.dumps(
                {"record": "accepted", "job": "job-2", "fingerprints": ["g"]}
            ) + "\n"
            + json.dumps({"record": "completed", "job": "job-1"}) + "\n"
        )
        accepted, final = _journal_state(str(path))
        assert set(accepted) == {"job-1", "job-2"}
        assert final == {"job-1"}


class TestDrill:
    def test_small_drill_passes_every_check(self, tmp_path):
        report = run_crash_drill(
            seed=17, workdir=str(tmp_path), n_jobs=2, points_per_job=24
        )
        assert report["checks"] == {
            label: True for label in report["checks"]
        }, report["checks"]
        assert report["passed"]
        # the kill landed mid-run and recovery really had work to do
        assert 0 < report["points_done_at_kill"] < report["unique_points"]
        assert report["expected_reexecutions"] > 0
