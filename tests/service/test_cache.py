"""Unit tests for the content-addressed result cache."""

import pytest

from repro.errors import ConfigurationError
from repro.runtime.trace import Tracer
from repro.service.cache import MISS, ResultCache


class TestBasics:
    def test_miss_then_hit(self):
        cache = ResultCache()
        assert cache.get("fp") is MISS
        cache.put("fp", {"score": 1})
        assert cache.get("fp") == {"score": 1}
        assert cache.hits == 1
        assert cache.misses == 1

    def test_miss_is_not_a_falsy_row(self):
        cache = ResultCache()
        cache.put("empty", {})
        row = cache.get("empty")
        assert row is not MISS
        assert row == {}

    def test_hit_returns_a_copy(self):
        cache = ResultCache()
        cache.put("fp", {"score": 1})
        row = cache.get("fp")
        row["score"] = 99
        assert cache.get("fp") == {"score": 1}

    def test_put_normalizes_like_checkpoints(self):
        # tuples become lists, exactly as a checkpoint round-trip would
        cache = ResultCache()
        kept = cache.put("fp", {"pair": (1, 2)})
        assert kept == {"pair": [1, 2]}
        assert cache.get("fp") == {"pair": [1, 2]}

    def test_contains_len_clear(self):
        cache = ResultCache()
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})
        assert "a" in cache and "b" in cache
        assert len(cache) == 2
        cache.clear()
        assert len(cache) == 0
        assert "a" not in cache

    def test_negative_max_entries_rejected(self):
        with pytest.raises(ConfigurationError):
            ResultCache(-1)


class TestEviction:
    def test_lru_evicts_least_recently_used(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})
        assert cache.get("a") == {"v": 1}  # touch: "b" is now LRU
        cache.put("c", {"v": 3})
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert cache.evictions == 1

    def test_unbounded_by_default(self):
        cache = ResultCache()
        for i in range(500):
            cache.put(f"fp-{i}", {"v": i})
        assert len(cache) == 500
        assert cache.evictions == 0


class TestTelemetry:
    def test_counters_on_tracer(self):
        tr = Tracer(keep_events=False)
        cache = ResultCache(max_entries=1, tracer=tr)
        cache.get("nope")
        cache.put("a", {"v": 1})
        cache.get("a")
        cache.put("b", {"v": 2})  # evicts "a"
        assert tr.counters["service.cache.misses"] == 1
        assert tr.counters["service.cache.hits"] == 1
        assert tr.counters["service.cache.stores"] == 2
        assert tr.counters["service.cache.evictions"] == 1

    def test_stats_snapshot(self):
        cache = ResultCache(max_entries=8)
        cache.put("a", {"v": 1})
        cache.get("a")
        cache.get("missing")
        stats = cache.stats()
        assert stats == {
            "entries": 1,
            "max_entries": 8,
            "hits": 1,
            "misses": 1,
            "evictions": 0,
        }
