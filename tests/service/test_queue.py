"""Unit tests for the admission-controlled job ledger."""

import pytest

from repro.errors import BackpressureError, ConfigurationError
from repro.service.jobs import DONE, Job, JobSpec
from repro.service.queue import JobQueue


def _job(job_id="job-1", n=2):
    spec = JobSpec(
        experiment="exp",
        fn=dict,
        points=tuple({"x": i} for i in range(n)),
    )
    return Job(job_id, spec)


class TestAdmission:
    def test_admit_and_get(self):
        q = JobQueue()
        job = _job()
        q.admit(job)
        assert q.get("job-1") is job
        assert q.get("nope") is None
        assert q.jobs() == [job]

    def test_saturation_backpressure(self):
        q = JobQueue(max_pending=2)
        q.admit(_job("a"))
        q.admit(_job("b"))
        with pytest.raises(BackpressureError, match="saturated"):
            q.admit(_job("c"))

    def test_finished_jobs_free_admission_slots(self):
        q = JobQueue(max_pending=1)
        done = _job("a", n=1)
        q.admit(done)
        done.fill(0, {"x": 0}, source="executed")
        assert done.state == DONE
        q.admit(_job("b"))  # does not raise: "a" no longer pending

    def test_degraded_refusal_wins_over_capacity(self):
        q = JobQueue(max_pending=100)
        with pytest.raises(BackpressureError, match="degraded"):
            q.admit(_job(), degraded=True)

    def test_max_pending_validation(self):
        with pytest.raises(ConfigurationError):
            JobQueue(max_pending=0)


class TestLedger:
    def test_unfinished_and_states(self):
        q = JobQueue()
        a, b = _job("a", n=1), _job("b", n=1)
        q.admit(a)
        q.admit(b)
        assert q.pending() == 2
        a.fill(0, {"x": 0}, source="cache")
        assert q.unfinished() == [b]
        b.cancel()
        assert q.pending() == 0
        assert q.states() == {"done": 1, "cancelled": 1}
