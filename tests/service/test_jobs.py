"""Unit tests for the job model: resolution, filling, results."""

import pytest

from repro.analysis.sweep import SweepResult
from repro.errors import ConfigurationError, ServiceError
from repro.service.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    PENDING,
    RUNNING,
    Job,
    JobSpec,
)


def point_fn(x, seed=None):
    return {"sq": x * x}


def other_fn(x, seed=None):
    return {"sq": x * x}


def _spec(experiment="exp", fn=point_fn, n=3, seed=None):
    return JobSpec(
        experiment=experiment,
        fn=fn,
        points=tuple({"x": i} for i in range(n)),
        seed=seed,
    )


class TestResolution:
    def test_needs_at_least_one_point(self):
        with pytest.raises(ConfigurationError):
            Job("j", _spec(n=0))

    def test_fingerprints_are_deterministic(self):
        a = Job("a", _spec(seed=7))
        b = Job("b", _spec(seed=7))
        assert [p.fingerprint for p in a.points] == \
            [p.fingerprint for p in b.points]

    def test_fingerprints_distinct_per_point(self):
        job = Job("j", _spec(seed=7))
        fps = [p.fingerprint for p in job.points]
        assert len(set(fps)) == len(fps)

    @pytest.mark.parametrize(
        "variant",
        [
            _spec(seed=8),
            _spec(experiment="other"),
            _spec(fn=other_fn),
        ],
        ids=["seed", "experiment", "fn-identity"],
    )
    def test_fingerprints_keyed_on_full_identity(self, variant):
        base = {p.fingerprint for p in Job("a", _spec(seed=7)).points}
        assert base.isdisjoint(
            p.fingerprint for p in Job("b", variant).points
        )

    def test_per_point_child_seeds_match_sweep_spawning(self):
        job = Job("j", _spec(seed=7))
        seeds = [p.seed for p in job.points]
        assert all(s is not None for s in seeds)
        words = {int(s.generate_state(1)[0]) for s in seeds}
        assert len(words) == len(seeds)


class TestFilling:
    def test_lifecycle_to_done(self):
        job = Job("j", _spec(n=2))
        assert job.state == PENDING
        job.mark_running()
        assert job.state == RUNNING
        job.fill(0, {"x": 0, "sq": 0}, source="executed")
        assert not job.done
        job.fill(1, {"x": 1, "sq": 1}, source="cache")
        assert job.done and job.state == DONE
        assert job.wait(0)
        p = job.progress()
        assert (p["executed"], p["cached"], p["filled"]) == (1, 1, 2)

    def test_duplicate_fill_is_an_error(self):
        job = Job("j", _spec(n=2))
        job.fill(0, {"sq": 0}, source="executed")
        with pytest.raises(ServiceError, match="resolved twice"):
            job.fill(0, {"sq": 0}, source="dedup")

    def test_failure_rows_and_final_state(self):
        job = Job("j", _spec(n=2))
        job.fill(0, {"x": 0, "sq": 0}, source="executed")
        job.fail(1, error="ValueError: nope", traceback=None, attempts=2)
        assert job.state == FAILED
        result = job.result()
        assert isinstance(result, SweepResult)
        assert len(result.failures) == 1
        assert result.failures[0].index == 1
        assert result.failures[0].attempts == 2
        with pytest.raises(ServiceError, match="resolved twice"):
            job.fail(1, error="again", traceback=None, attempts=1)

    def test_result_requires_final_state(self):
        job = Job("j", _spec(n=1))
        with pytest.raises(ServiceError, match="wait"):
            job.result()


class TestCancellation:
    def test_cancel_unfinished(self):
        job = Job("j", _spec(n=2))
        assert job.cancel()
        assert job.state == CANCELLED
        assert job.done  # wait() wakes on cancellation too
        assert not job.cancel()  # second cancel is a no-op

    def test_cancel_after_done_refused(self):
        job = Job("j", _spec(n=1))
        job.fill(0, {"sq": 0}, source="executed")
        assert not job.cancel()
        assert job.state == DONE

    def test_late_results_discarded_quietly(self):
        job = Job("j", _spec(n=2))
        job.cancel()
        job.fill(0, {"sq": 0}, source="executed")  # no error, no effect
        job.fail(1, error="late", traceback=None, attempts=1)
        assert job.progress()["filled"] == 0
        with pytest.raises(ServiceError, match="cancelled"):
            job.result()
