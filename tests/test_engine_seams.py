"""One behavior, three seams: shared engine-kind resolution.

All three engine factories (``make_engine`` / ``make_network_engine`` /
``make_csp_engine``) resolve their ``kind`` through
:func:`repro.runtime.engines.resolve_engine_kind`; these tests pin the
shared contract — default/env/argument precedence, the unified error
message, and the :class:`~repro.errors.EngineError` type — once for
every family instead of three drifting copies.
"""

from __future__ import annotations

import pytest

from repro.agents.arrayengine import ArraySimulator, make_engine
from repro.agents.simulation import EvolutionSimulator
from repro.csp.engine import BitCSPEngine, ObjectCSPEngine, make_csp_engine
from repro.errors import ConfigurationError, EngineError
from repro.networks.engine import make_network_engine
from repro.runtime.engines import SEAMS, resolve_engine_kind, seam

FACTORIES = {
    "agents": make_engine,
    "networks": make_network_engine,
    "csp": make_csp_engine,
}

FAMILIES = sorted(SEAMS)


@pytest.mark.parametrize("family", FAMILIES)
class TestSharedResolution:
    def test_default_when_nothing_set(self, family, monkeypatch):
        monkeypatch.delenv(SEAMS[family].env_var, raising=False)
        assert resolve_engine_kind(family) == SEAMS[family].default

    def test_empty_env_var_means_unset(self, family, monkeypatch):
        monkeypatch.setenv(SEAMS[family].env_var, "")
        assert resolve_engine_kind(family) == SEAMS[family].default

    def test_env_var_selects_kind(self, family, monkeypatch):
        for kind in SEAMS[family].choices:
            monkeypatch.setenv(SEAMS[family].env_var, kind)
            assert resolve_engine_kind(family) == kind

    def test_argument_beats_environment(self, family, monkeypatch):
        s = SEAMS[family]
        monkeypatch.setenv(s.env_var, s.choices[0])
        assert resolve_engine_kind(family, s.choices[-1]) == s.choices[-1]

    def test_unknown_argument_message_names_choices(self, family):
        with pytest.raises(EngineError) as exc:
            resolve_engine_kind(family, "warp")
        message = str(exc.value)
        assert f"unknown {family} engine kind 'warp'" in message
        assert "kind argument" in message
        for kind in SEAMS[family].choices:
            assert repr(kind) in message

    def test_unknown_env_value_message_names_env_var(
        self, family, monkeypatch
    ):
        s = SEAMS[family]
        monkeypatch.setenv(s.env_var, "warp")
        with pytest.raises(EngineError, match=s.env_var):
            resolve_engine_kind(family)

    def test_factory_raises_same_error(self, family):
        # EngineError IS a ConfigurationError: callers that predate the
        # shared resolver keep catching what they always caught
        with pytest.raises(ConfigurationError) as exc:
            FACTORIES[family]("warp")
        assert isinstance(exc.value, EngineError)
        assert "valid choices" in str(exc.value)


class TestFactoryDispatch:
    def test_agents_kinds(self):
        assert type(make_engine("object")) is EvolutionSimulator
        assert type(make_engine("array")) is ArraySimulator

    def test_networks_kinds(self):
        assert make_network_engine("object").name == "object"
        assert make_network_engine("array").name == "array"
        assert make_network_engine("mmap").name == "mmap"

    def test_csp_kinds_and_instance_passthrough(self):
        assert type(make_csp_engine("object")) is ObjectCSPEngine
        assert type(make_csp_engine("bit")) is BitCSPEngine
        engine = BitCSPEngine(max_bits=8)
        assert make_csp_engine(engine) is engine


def test_unknown_family_rejected():
    with pytest.raises(EngineError, match="unknown engine family"):
        seam("quantum")
    with pytest.raises(EngineError, match="valid families"):
        resolve_engine_kind("quantum", "object")
