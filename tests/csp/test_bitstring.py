"""Tests for bit-string configuration spaces (repro.csp.bitstring)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.csp.bitstring import (BitSpace, BitString, from_matrix,
                                 pack_matrix, packed_hamming, to_matrix)
from repro.errors import ConfigurationError

bitstrings = st.integers(min_value=1, max_value=10).flatmap(
    lambda n: st.integers(min_value=0, max_value=(1 << n) - 1).map(
        lambda mask: BitString(n, mask)
    )
)


class TestConstruction:
    def test_from_bits(self):
        b = BitString.from_bits([1, 0, 1])
        assert b.to_string() == "101"
        assert b.popcount == 2

    def test_from_string_roundtrip(self):
        assert BitString.from_string("0110").to_string() == "0110"

    def test_from_string_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            BitString.from_string("01x0")

    def test_from_bits_rejects_non_boolean(self):
        with pytest.raises(ConfigurationError):
            BitString.from_bits([0, 2, 1])

    def test_ones_and_zeros(self):
        assert BitString.ones(4).popcount == 4
        assert BitString.zeros(4).popcount == 0

    def test_mask_out_of_range(self):
        with pytest.raises(ConfigurationError):
            BitString(3, 8)
        with pytest.raises(ConfigurationError):
            BitString(3, -1)

    def test_negative_length(self):
        with pytest.raises(ConfigurationError):
            BitString(-1, 0)

    def test_random_deterministic_by_seed(self):
        assert BitString.random(16, seed=7) == BitString.random(16, seed=7)

    def test_random_p_one_extremes(self):
        assert BitString.random(8, seed=1, p_one=1.0) == BitString.ones(8)
        assert BitString.random(8, seed=1, p_one=0.0) == BitString.zeros(8)


class TestAccess:
    def test_indexing(self):
        b = BitString.from_string("011")
        assert (b[0], b[1], b[2]) == (0, 1, 1)

    def test_index_out_of_range(self):
        with pytest.raises(IndexError):
            BitString.from_string("01")[2]

    def test_iteration_matches_string(self):
        b = BitString.from_string("0101")
        assert list(b) == [0, 1, 0, 1]

    def test_to_array(self):
        arr = BitString.from_string("110").to_array()
        assert arr.tolist() == [1, 1, 0]

    def test_indices(self):
        b = BitString.from_string("0110")
        assert b.ones_indices() == (1, 2)
        assert b.zeros_indices() == (0, 3)


class TestOperations:
    def test_flip_single(self):
        b = BitString.from_string("000").flip(1)
        assert b.to_string() == "010"

    def test_flip_multiple(self):
        b = BitString.from_string("0000").flip(0, 3)
        assert b.to_string() == "1001"

    def test_flip_is_involution(self):
        b = BitString.from_string("0110")
        assert b.flip(2).flip(2) == b

    def test_flip_out_of_range(self):
        with pytest.raises(ConfigurationError):
            BitString.from_string("01").flip(2)

    def test_set_bits(self):
        b = BitString.from_string("0000").set_bits([1, 2], 1)
        assert b.to_string() == "0110"
        assert b.set_bits([1], 0).to_string() == "0010"

    def test_hamming(self):
        a = BitString.from_string("1010")
        b = BitString.from_string("0011")
        assert a.hamming(b) == 2

    def test_hamming_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            BitString.ones(3).hamming(BitString.ones(4))


class TestBitSpace:
    def test_size(self):
        assert BitSpace(5).size == 32

    def test_all_states_distinct_and_complete(self):
        states = list(BitSpace(3).all_states())
        assert len(states) == 8
        assert len(set(states)) == 8

    def test_neighbors_differ_by_one(self):
        space = BitSpace(4)
        center = BitString.from_string("0101")
        neighbors = list(space.neighbors(center))
        assert len(neighbors) == 4
        assert all(center.hamming(n) == 1 for n in neighbors)

    def test_ball_sizes(self):
        space = BitSpace(4)
        ball = list(space.ball(BitString.zeros(4), 2))
        # C(4,0)+C(4,1)+C(4,2) = 11
        assert len(ball) == 11

    def test_ball_radius_clamps_to_n(self):
        space = BitSpace(2)
        ball = list(space.ball(BitString.zeros(2), 10))
        assert len(ball) == 4

    def test_recovery_distance(self):
        space = BitSpace(4)
        fit = [BitString.ones(4)]
        assert space.recovery_distance(BitString.from_string("1010"), fit) == 2

    def test_recovery_distance_empty_fit(self):
        space = BitSpace(3)
        assert space.recovery_distance(BitString.zeros(3), []) == -1

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            list(BitSpace(3).neighbors(BitString.ones(4)))


@given(a=bitstrings)
def test_property_hamming_self_is_zero(a):
    assert a.hamming(a) == 0


@given(data=st.data())
def test_property_hamming_symmetry(data):
    a = data.draw(bitstrings)
    b = BitString(a.n, data.draw(st.integers(0, (1 << a.n) - 1)))
    assert a.hamming(b) == b.hamming(a)


@given(data=st.data())
def test_property_hamming_triangle_inequality(data):
    a = data.draw(bitstrings)
    b = BitString(a.n, data.draw(st.integers(0, (1 << a.n) - 1)))
    c = BitString(a.n, data.draw(st.integers(0, (1 << a.n) - 1)))
    assert a.hamming(c) <= a.hamming(b) + b.hamming(c)


@given(a=bitstrings)
def test_property_popcount_matches_indices(a):
    assert a.popcount == len(a.ones_indices())
    assert a.popcount + len(a.zeros_indices()) == a.n


@settings(max_examples=30)
@given(data=st.data())
def test_property_flip_changes_exactly_those_bits(data):
    a = data.draw(bitstrings)
    k = data.draw(st.integers(0, a.n - 1))
    flipped = a.flip(k)
    assert a.hamming(flipped) == 1
    assert flipped[k] == 1 - a[k]


class TestArrayConverters:
    """to_array / from_array round trips and the bulk matrix forms."""

    def test_empty_bitstring_roundtrip(self):
        empty = BitString.zeros(0)
        arr = empty.to_array()
        assert arr.shape == (0,)
        assert arr.dtype == np.uint8
        assert BitString.from_array(arr) == empty

    def test_from_array_accepts_bools(self):
        arr = np.asarray([True, False, True])
        assert BitString.from_array(arr) == BitString.from_string("101")

    def test_from_array_rejects_non_bits(self):
        with pytest.raises(ConfigurationError):
            BitString.from_array(np.asarray([0, 2, 1]))
        with pytest.raises(ConfigurationError):
            BitString.from_array(np.asarray([0.5, 0.5]))
        with pytest.raises(ConfigurationError):
            BitString.from_array(np.zeros((2, 2), dtype=np.uint8))

    def test_to_matrix_roundtrip(self):
        strings = [BitString.from_string(s) for s in ("0110", "1111", "0001")]
        matrix = to_matrix(strings)
        assert matrix.shape == (3, 4)
        assert matrix.dtype == np.uint8
        assert from_matrix(matrix) == strings

    def test_to_matrix_empty(self):
        assert to_matrix([]).shape == (0, 0)
        assert from_matrix(np.zeros((0, 0), dtype=np.uint8)) == []

    def test_to_matrix_rejects_mixed_lengths(self):
        with pytest.raises(ConfigurationError):
            to_matrix([BitString.ones(3), BitString.ones(4)])

    def test_packed_hamming_matches_bitstring_hamming(self):
        rng = np.random.default_rng(0)
        wide = 130  # forces multiple uint64 words
        a = BitString.from_array((rng.random(wide) < 0.5).astype(np.uint8))
        b = BitString.from_array((rng.random(wide) < 0.5).astype(np.uint8))
        packed = pack_matrix(to_matrix([a, b]))
        assert int(packed_hamming(packed[0], packed[1])) == a.hamming(b)

    @settings(max_examples=60)
    @given(bits=st.lists(st.integers(0, 1), max_size=200))
    def test_property_bits_roundtrip(self, bits):
        b = BitString.from_bits(bits)
        arr = b.to_array()
        assert arr.dtype == np.uint8
        assert arr.tolist() == bits  # order: index 0 first
        assert BitString.from_array(arr) == b

    @settings(max_examples=60)
    @given(data=st.data())
    def test_property_mask_roundtrip(self, data):
        n = data.draw(st.integers(0, 150))
        mask = data.draw(st.integers(0, (1 << n) - 1)) if n else 0
        b = BitString(n, mask)
        assert BitString.from_array(b.to_array()).mask == mask

    @settings(max_examples=30)
    @given(data=st.data())
    def test_property_packed_hamming(self, data):
        n = data.draw(st.integers(1, 150))
        a = BitString(n, data.draw(st.integers(0, (1 << n) - 1)))
        b = BitString(n, data.draw(st.integers(0, (1 << n) - 1)))
        packed = pack_matrix(to_matrix([a, b]))
        assert int(packed_hamming(packed[0], packed[1])) == a.hamming(b)
