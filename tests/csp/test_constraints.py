"""Tests for constraint types (repro.csp.constraints)."""

from __future__ import annotations

import pytest

from repro.csp.constraints import (
    AllDifferentConstraint,
    CardinalityConstraint,
    LinearConstraint,
    PredicateConstraint,
    TableConstraint,
    all_components_good,
    at_least_k_good,
)
from repro.errors import ConfigurationError


class TestScopes:
    def test_empty_scope_rejected(self):
        with pytest.raises(ConfigurationError):
            PredicateConstraint([], lambda: True)

    def test_duplicate_scope_rejected(self):
        with pytest.raises(ConfigurationError):
            PredicateConstraint(["a", "a"], lambda x, y: True)

    def test_applicable_requires_all_bound(self):
        c = PredicateConstraint(["a", "b"], lambda x, y: x == y)
        assert not c.applicable({"a": 1})
        assert c.applicable({"a": 1, "b": 1})


class TestPredicateConstraint:
    def test_satisfied(self):
        c = PredicateConstraint(["a", "b"], lambda x, y: x < y)
        assert c.satisfied({"a": 1, "b": 2})
        assert c.violated({"a": 2, "b": 1})

    def test_name_from_function(self):
        def my_rule(x):
            return bool(x)

        c = PredicateConstraint(["a"], my_rule)
        assert c.name == "my_rule"


class TestTableConstraint:
    def test_allowed_rows(self):
        c = TableConstraint(["a", "b"], [(0, 1), (1, 0)])
        assert c.satisfied({"a": 0, "b": 1})
        assert not c.satisfied({"a": 1, "b": 1})

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            TableConstraint(["a", "b"], [(0, 1, 2)])


class TestLinearConstraint:
    def test_operators(self):
        assign = {"a": 2, "b": 3}
        assert LinearConstraint(["a", "b"], [1, 1], "<=", 5).satisfied(assign)
        assert LinearConstraint(["a", "b"], [1, 1], ">=", 5).satisfied(assign)
        assert not LinearConstraint(["a", "b"], [1, 1], "<", 5).satisfied(assign)
        assert LinearConstraint(["a", "b"], [2, -1], "==", 1).satisfied(assign)
        assert LinearConstraint(["a", "b"], [1, 0], "!=", 5).satisfied(assign)
        assert LinearConstraint(["a", "b"], [0, 1], ">", 2).satisfied(assign)

    def test_unknown_operator(self):
        with pytest.raises(ConfigurationError):
            LinearConstraint(["a"], [1], "~=", 0)

    def test_weight_arity_mismatch(self):
        with pytest.raises(ConfigurationError):
            LinearConstraint(["a", "b"], [1], "<=", 0)


class TestAllDifferent:
    def test_satisfied(self):
        c = AllDifferentConstraint(["a", "b", "c"])
        assert c.satisfied({"a": 1, "b": 2, "c": 3})
        assert not c.satisfied({"a": 1, "b": 1, "c": 3})


class TestCardinality:
    def test_range(self):
        c = CardinalityConstraint(["a", "b", "c"], value=1, lo=1, hi=2)
        assert not c.satisfied({"a": 0, "b": 0, "c": 0})
        assert c.satisfied({"a": 1, "b": 0, "c": 0})
        assert c.satisfied({"a": 1, "b": 1, "c": 0})
        assert not c.satisfied({"a": 1, "b": 1, "c": 1})

    def test_hi_defaults_to_scope_size(self):
        c = CardinalityConstraint(["a", "b"], value=1, lo=0)
        assert c.hi == 2

    def test_invalid_bounds(self):
        with pytest.raises(ConfigurationError):
            CardinalityConstraint(["a"], value=1, lo=2, hi=1)
        with pytest.raises(ConfigurationError):
            CardinalityConstraint(["a"], value=1, lo=-1)


class TestPaperConstraints:
    def test_all_components_good_is_1n(self):
        """The spacecraft constraint C = 1^n."""
        names = ["x0", "x1", "x2"]
        c = all_components_good(names)
        assert c.satisfied({"x0": 1, "x1": 1, "x2": 1})
        assert not c.satisfied({"x0": 1, "x1": 0, "x2": 1})

    def test_at_least_k_good(self):
        names = ["x0", "x1", "x2"]
        c = at_least_k_good(names, 2)
        assert c.satisfied({"x0": 1, "x1": 1, "x2": 0})
        assert not c.satisfied({"x0": 1, "x1": 0, "x2": 0})
        assert c.name == "at_least_2_good"
