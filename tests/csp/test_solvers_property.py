"""Property tests for the constructive solver (repro.csp.solvers).

:func:`backtracking_solve` prunes with forward checking and restores
domains on backtrack; a bug in either direction silently changes
satisfiability.  These tests pin the solver against brute-force
enumeration on randomly generated small CSPs.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.csp.generators import random_binary_csp, random_clause_csp
from repro.csp.solvers import backtracking_solve


def brute_force_satisfiable(csp):
    return any(csp.is_fit(a) for a in csp.all_assignments())


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=6),
    n_clauses=st.integers(min_value=1, max_value=18),
    clause_size=st.integers(min_value=1, max_value=3),
    gen_seed=st.integers(min_value=0, max_value=10_000),
    solve_seed=st.integers(min_value=0, max_value=10_000),
)
def test_clause_csp_satisfiability_matches_brute_force(
    n, n_clauses, clause_size, gen_seed, solve_seed
):
    """Solver finds a model iff exhaustive enumeration finds one, and
    any returned model is complete and fit."""
    csp = random_clause_csp(
        n, n_clauses, min(clause_size, n), seed=gen_seed
    )
    solution = backtracking_solve(csp, seed=solve_seed)
    if solution is None:
        assert not brute_force_satisfiable(csp)
    else:
        assert set(solution) == set(csp.names)
        assert csp.is_fit(solution)


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=5),
    density=st.floats(min_value=0.1, max_value=1.0),
    tightness=st.floats(min_value=0.1, max_value=0.9),
    gen_seed=st.integers(min_value=0, max_value=10_000),
)
def test_binary_csp_satisfiability_matches_brute_force(
    n, density, tightness, gen_seed
):
    csp = random_binary_csp(
        n, domain_size=3, density=density, tightness=tightness, seed=gen_seed
    )
    solution = backtracking_solve(csp, seed=0)
    if solution is None:
        assert not brute_force_satisfiable(csp)
    else:
        assert csp.is_fit(solution)


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=5),
    gen_seed=st.integers(min_value=0, max_value=5_000),
    seed_a=st.integers(min_value=0, max_value=5_000),
    seed_b=st.integers(min_value=0, max_value=5_000),
)
def test_solve_outcome_is_seed_independent(n, gen_seed, seed_a, seed_b):
    """Value-ordering shuffles may change *which* model is returned,
    never *whether* one is found (domain restore must be exact)."""
    csp = random_clause_csp(n, 2 * n, min(3, n), seed=gen_seed)
    a = backtracking_solve(csp, seed=seed_a)
    b = backtracking_solve(csp, seed=seed_b)
    assert (a is None) == (b is None)
    if a is not None:
        assert csp.is_fit(a) and csp.is_fit(b)
