"""Tests for solvers and repair (repro.csp.solvers)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.csp.bitstring import BitString
from repro.csp.constraints import (
    AllDifferentConstraint,
    LinearConstraint,
    PredicateConstraint,
    all_components_good,
    at_least_k_good,
)
from repro.csp.problem import CSP, boolean_csp
from repro.csp.solvers import backtracking_solve, greedy_bitflip_repair, min_conflicts
from repro.csp.variables import Variable
from repro.errors import ConfigurationError


def names(n):
    return [f"x{i}" for i in range(n)]


class TestBacktracking:
    def test_finds_the_unique_solution(self):
        csp = boolean_csp(4, [all_components_good(names(4))])
        sol = backtracking_solve(csp, seed=0)
        assert sol == {f"x{i}": 1 for i in range(4)}

    def test_detects_unsatisfiable(self):
        csp = boolean_csp(
            2,
            [
                all_components_good(names(2)),
                PredicateConstraint(names(2), lambda a, b: a + b == 0),
            ],
        )
        assert backtracking_solve(csp, seed=0) is None

    def test_solves_graph_coloring(self):
        """3-coloring of a cycle of 5 nodes (odd cycle needs 3 colors)."""
        variables = [Variable(f"v{i}", (0, 1, 2)) for i in range(5)]
        constraints = [
            PredicateConstraint(
                [f"v{i}", f"v{(i + 1) % 5}"], lambda a, b: a != b,
                name=f"edge{i}",
            )
            for i in range(5)
        ]
        csp = CSP(variables, constraints)
        sol = backtracking_solve(csp, seed=1)
        assert sol is not None
        for i in range(5):
            assert sol[f"v{i}"] != sol[f"v{(i + 1) % 5}"]

    def test_all_different_with_tight_domains(self):
        variables = [Variable(f"v{i}", (0, 1, 2)) for i in range(3)]
        csp = CSP(variables, [AllDifferentConstraint([v.name for v in variables])])
        sol = backtracking_solve(csp, seed=2)
        assert sol is not None
        assert len(set(sol.values())) == 3

    def test_node_budget_enforced(self):
        variables = [Variable(f"v{i}", tuple(range(6))) for i in range(8)]
        constraints = [
            AllDifferentConstraint([v.name for v in variables])
        ]  # unsatisfiable: 8 vars, 6 values
        csp = CSP(variables, constraints)
        with pytest.raises(ConfigurationError):
            backtracking_solve(csp, seed=0, max_nodes=10)

    def test_deterministic_given_seed(self):
        csp = boolean_csp(5, [at_least_k_good(names(5), 3)])
        assert backtracking_solve(csp, seed=9) == backtracking_solve(csp, seed=9)


class TestMinConflicts:
    def test_repairs_single_violation(self):
        csp = boolean_csp(4, [all_components_good(names(4))])
        start = {f"x{i}": 1 for i in range(4)}
        start["x2"] = 0
        result = min_conflicts(csp, start, seed=0)
        assert result.success
        assert result.final == {f"x{i}": 1 for i in range(4)}

    def test_trajectory_starts_at_input(self):
        csp = boolean_csp(3, [all_components_good(names(3))])
        start = {"x0": 0, "x1": 1, "x2": 1}
        result = min_conflicts(csp, start, seed=1)
        assert result.trajectory[0] == start
        assert result.conflicts[0] == 1

    def test_requires_complete_assignment(self):
        csp = boolean_csp(3, [])
        with pytest.raises(ConfigurationError):
            min_conflicts(csp, {"x0": 1}, seed=0)

    def test_already_fit_needs_no_steps(self):
        csp = boolean_csp(3, [all_components_good(names(3))])
        result = min_conflicts(csp, {n: 1 for n in names(3)}, seed=0)
        assert result.success
        assert result.steps == 0
        assert result.recovered_within == 0

    def test_max_steps_caps_failure(self):
        csp = boolean_csp(
            2,
            [
                all_components_good(names(2)),
                PredicateConstraint(names(2), lambda a, b: a + b == 0),
            ],
        )
        result = min_conflicts(csp, {"x0": 0, "x1": 0}, max_steps=20, seed=0)
        assert not result.success
        assert result.recovered_within is None


class TestGreedyBitflip:
    def test_repairs_toward_all_good(self):
        csp = boolean_csp(5, [at_least_k_good(names(5), 5)])
        start = csp.assignment_from_bits(BitString.from_string("10101"))
        result = greedy_bitflip_repair(csp, start, seed=0)
        assert result.success

    def test_flips_per_step_counts_rounds(self):
        """Higher adaptability recovers in fewer rounds."""
        csp = boolean_csp(6, [at_least_k_good(names(6), 6)])
        start = csp.assignment_from_bits(BitString.zeros(6))
        slow = greedy_bitflip_repair(csp, start, seed=1, flips_per_step=1)
        fast = greedy_bitflip_repair(csp, start, seed=1, flips_per_step=3)
        assert slow.success and fast.success
        assert fast.steps < slow.steps

    def test_rejects_non_boolean(self):
        csp = CSP([Variable("a", (0, 1, 2))], [])
        with pytest.raises(ConfigurationError):
            greedy_bitflip_repair(csp, {"a": 0})

    def test_rejects_bad_flips_per_step(self):
        csp = boolean_csp(2, [])
        with pytest.raises(ConfigurationError):
            greedy_bitflip_repair(csp, {"x0": 0, "x1": 0}, flips_per_step=0)

    def test_gradient_constraint_repairs_greedily(self):
        """With per-component constraints the greedy repair is direct."""
        constraints = [
            LinearConstraint([f"x{i}"], [1.0], ">=", 1.0, name=f"good{i}")
            for i in range(5)
        ]
        csp = boolean_csp(5, constraints)
        start = csp.assignment_from_bits(BitString.from_string("00110"))
        result = greedy_bitflip_repair(csp, start, seed=3)
        assert result.success
        # three failed components, factored constraints: exactly 3 rounds
        assert result.steps == 3


@settings(max_examples=20, deadline=None)
@given(n=st.integers(min_value=2, max_value=6), seed=st.integers(0, 100))
def test_property_backtracking_solution_is_fit(n, seed):
    csp = boolean_csp(n, [at_least_k_good(names(n), n // 2)])
    sol = backtracking_solve(csp, seed=seed)
    assert sol is not None
    assert csp.is_fit(sol)


@settings(max_examples=20, deadline=None)
@given(mask=st.integers(min_value=0, max_value=31), seed=st.integers(0, 50))
def test_property_min_conflicts_reaches_factored_target(mask, seed):
    """With per-component constraints, min-conflicts always recovers."""
    n = 5
    constraints = [
        LinearConstraint([f"x{i}"], [1.0], ">=", 1.0, name=f"good{i}")
        for i in range(n)
    ]
    csp = boolean_csp(n, constraints)
    start = csp.assignment_from_bits(BitString(n, mask))
    result = min_conflicts(csp, start, seed=seed)
    assert result.success
    assert result.steps == n - BitString(n, mask).popcount
