"""Tests for AC-3 propagation and soft CSPs (repro.csp.propagation/.soft)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.csp.bitstring import BitString
from repro.csp.constraints import (
    LinearConstraint,
    PredicateConstraint,
    all_components_good,
)
from repro.csp.problem import CSP, boolean_csp
from repro.csp.propagation import ac3
from repro.csp.soft import SoftCSP, WeightedConstraint
from repro.csp.variables import Variable
from repro.errors import ConfigurationError


def names(n):
    return [f"x{i}" for i in range(n)]


class TestAC3:
    def test_prunes_binary_chain(self):
        """x0 < x1 < x2 over {0,1,2} forces x0=0, x1=1, x2=2."""
        variables = [Variable(f"v{i}", (0, 1, 2)) for i in range(3)]
        constraints = [
            PredicateConstraint(["v0", "v1"], lambda a, b: a < b),
            PredicateConstraint(["v1", "v2"], lambda a, b: a < b),
        ]
        result = ac3(CSP(variables, constraints))
        assert result.consistent
        assert result.domain_of("v0") == (0,)
        assert result.domain_of("v1") == (1,)
        assert result.domain_of("v2") == (2,)

    def test_detects_binary_unsat(self):
        variables = [Variable("a", (0,)), Variable("b", (0,))]
        constraints = [PredicateConstraint(["a", "b"], lambda x, y: x != y)]
        result = ac3(CSP(variables, constraints))
        assert not result.consistent

    def test_unary_constraints_filter_domains(self):
        variables = [Variable("a", (0, 1, 2))]
        constraints = [PredicateConstraint(["a"], lambda x: x > 0)]
        result = ac3(CSP(variables, constraints))
        assert result.consistent
        assert result.domain_of("a") == (1, 2)

    def test_unary_wipeout_is_inconsistent(self):
        variables = [Variable("a", (0, 1))]
        constraints = [PredicateConstraint(["a"], lambda x: x > 5)]
        assert not ac3(CSP(variables, constraints)).consistent

    def test_higher_arity_left_untouched(self):
        csp = boolean_csp(3, [all_components_good(names(3))])
        result = ac3(csp)
        assert result.consistent  # AC-3 cannot prune a ternary constraint
        assert result.total_values == 6

    def test_unknown_variable_in_result(self):
        result = ac3(boolean_csp(2, []))
        with pytest.raises(ConfigurationError):
            result.domain_of("zz")

    def test_consistency_is_sound(self):
        """AC-3 never prunes a value used by a real solution."""
        from repro.csp.solvers import backtracking_solve

        variables = [Variable(f"v{i}", (0, 1, 2)) for i in range(4)]
        constraints = [
            PredicateConstraint([f"v{i}", f"v{i + 1}"],
                                lambda a, b: a != b, name=f"ne{i}")
            for i in range(3)
        ]
        csp = CSP(variables, constraints)
        result = ac3(csp)
        solution = backtracking_solve(csp, seed=0)
        assert solution is not None
        for name, value in solution.items():
            assert value in result.domain_of(name)


class TestSoftCSP:
    def soft(self, n=4, weights=None, hard=()):
        base = boolean_csp(n, [
            LinearConstraint([f"x{i}"], [1.0], ">=", 1.0, name=f"good{i}")
            for i in range(n)
        ])
        return SoftCSP(base, weights=weights, hard_indices=hard)

    def test_cost_adds_weights(self):
        soft = self.soft(4, weights=[1.0, 2.0, 3.0, 4.0])
        assignment = {"x0": 0, "x1": 1, "x2": 0, "x3": 1}
        assert soft.cost(assignment) == pytest.approx(1.0 + 3.0)

    def test_quality_scales(self):
        soft = self.soft(4)
        all_bad = {f"x{i}": 0 for i in range(4)}
        half = {"x0": 1, "x1": 1, "x2": 0, "x3": 0}
        assert soft.quality(all_bad) == 0.0
        assert soft.quality(half) == pytest.approx(50.0)
        assert soft.quality({f"x{i}": 1 for i in range(4)}) == 100.0

    def test_hard_constraint_infinite_cost(self):
        soft = self.soft(3, hard=[0])
        violating = {"x0": 0, "x1": 1, "x2": 1}
        assert soft.cost(violating) == float("inf")
        assert soft.quality(violating) == 0.0
        assert not soft.is_fit(violating)

    def test_descend_reaches_zero_cost(self):
        soft = self.soft(5)
        start = {f"x{i}": 0 for i in range(5)}
        final, costs = soft.descend(start, seed=0)
        assert costs[0] == pytest.approx(5.0)
        assert costs[-1] == 0.0
        assert soft.is_fit(final)
        # each step repairs exactly one unit of cost here
        assert len(costs) == 6

    def test_descend_prefers_heavy_constraints_first(self):
        soft = self.soft(3, weights=[1.0, 10.0, 1.0])
        start = {"x0": 0, "x1": 0, "x2": 0}
        _, costs = soft.descend(start, max_steps=1, seed=1)
        # the single allowed step removes the weight-10 violation
        assert costs[-1] == pytest.approx(2.0)

    def test_descend_requires_complete_assignment(self):
        soft = self.soft(3)
        with pytest.raises(ConfigurationError):
            soft.descend({"x0": 1})

    def test_weight_validation(self):
        base = boolean_csp(2, [all_components_good(names(2))])
        with pytest.raises(ConfigurationError):
            SoftCSP(base, weights=[1.0, 2.0])  # wrong arity
        with pytest.raises(ConfigurationError):
            SoftCSP(base, hard_indices=[5])
        with pytest.raises(ConfigurationError):
            WeightedConstraint(all_components_good(names(2)), weight=0.0)


@settings(max_examples=25, deadline=None)
@given(mask=st.integers(0, 63))
def test_property_soft_descend_monotone_costs(mask):
    """Greedy descent never increases cost."""
    n = 6
    base = boolean_csp(n, [
        LinearConstraint([f"x{i}"], [1.0], ">=", 1.0, name=f"g{i}")
        for i in range(n)
    ])
    soft = SoftCSP(base)
    start = base.assignment_from_bits(BitString(n, mask))
    _, costs = soft.descend(start, seed=0)
    assert all(b <= a for a, b in zip(costs, costs[1:]))
    assert costs[-1] == 0.0
