"""Tests for dynamic CSPs (repro.csp.dynamic)."""

from __future__ import annotations

import pytest

from repro.csp.constraints import (
    LinearConstraint,
    all_components_good,
    at_least_k_good,
)
from repro.csp.dynamic import (
    DCSPSimulator,
    DynamicCSP,
    EnvironmentShift,
    StateDamage,
)
from repro.csp.variables import boolean_variables
from repro.errors import ConfigurationError, SimulationError


def names(n):
    return [f"x{i}" for i in range(n)]


def factored_constraints(n, value=1):
    """Per-component constraints so repair has a gradient."""
    return [
        LinearConstraint([f"x{i}"], [1.0], ">=" if value else "<=", float(value),
                         name=f"want{value}_{i}")
        for i in range(n)
    ]


class TestEvents:
    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            StateDamage(-1, (("x0", 0),))
        with pytest.raises(ConfigurationError):
            EnvironmentShift(-1, ())

    def test_failing_helper(self):
        d = StateDamage.failing(3, ["x0", "x2"])
        assert d.assignment_update == (("x0", 0), ("x2", 0))

    def test_unknown_damage_variable_rejected(self):
        with pytest.raises(ConfigurationError):
            DynamicCSP(
                boolean_variables(2),
                factored_constraints(2),
                [StateDamage.failing(0, ["zz"])],
            )

    def test_shift_constraints_validated(self):
        with pytest.raises(ConfigurationError):
            DynamicCSP(
                boolean_variables(2),
                [],
                [EnvironmentShift(0, tuple(factored_constraints(3)))],
            )


class TestDynamicCSP:
    def test_csp_at_tracks_shifts(self):
        variables = boolean_variables(2)
        dyn = DynamicCSP(
            variables,
            factored_constraints(2, value=1),
            [EnvironmentShift(5, tuple(factored_constraints(2, value=0)))],
        )
        before = dyn.csp_at(4)
        after = dyn.csp_at(5)
        assert before.is_fit({"x0": 1, "x1": 1})
        assert not after.is_fit({"x0": 1, "x1": 1})
        assert after.is_fit({"x0": 0, "x1": 0})

    def test_events_sorted_and_horizon(self):
        variables = boolean_variables(2)
        dyn = DynamicCSP(
            variables,
            [],
            [StateDamage.failing(7, ["x0"]), StateDamage.failing(2, ["x1"])],
        )
        assert [e.time for e in dyn.events] == [2, 7]
        assert dyn.horizon == 7

    def test_events_at(self):
        variables = boolean_variables(1)
        dyn = DynamicCSP(variables, [], [StateDamage.failing(2, ["x0"])])
        assert len(dyn.events_at(2)) == 1
        assert dyn.events_at(1) == []


class TestSimulator:
    def test_damage_then_recovery(self):
        n = 4
        dyn = DynamicCSP(
            boolean_variables(n),
            factored_constraints(n),
            [StateDamage.failing(2, ["x0", "x1"])],
        )
        sim = DCSPSimulator(dyn, flips_per_step=1)
        run = sim.run({f"x{i}": 1 for i in range(n)}, horizon=8, seed=0)
        assert run.fit[0] and run.fit[1]
        # at t=2 the damage lands and one in-step repair leaves 1 broken
        assert not run.fit[2]
        assert run.trace.quality[2] == pytest.approx(75.0)
        assert run.fit[3]  # second repair completes recovery
        assert run.recovery_steps_after(2) == 1

    def test_faster_adaptation_recovers_sooner(self):
        n = 6
        failed = [f"x{i}" for i in range(4)]

        def run_with(flips):
            dyn = DynamicCSP(
                boolean_variables(n),
                factored_constraints(n),
                [StateDamage.failing(1, failed)],
            )
            sim = DCSPSimulator(dyn, flips_per_step=flips)
            run = sim.run({f"x{i}": 1 for i in range(n)}, horizon=10, seed=1)
            return run.recovery_steps_after(1)

        assert run_with(4) < run_with(1)

    def test_environment_shift_triggers_adaptation(self):
        """Fig. 4: environment changes; system adapts to the new constraint."""
        n = 3
        dyn = DynamicCSP(
            boolean_variables(n),
            factored_constraints(n, value=1),
            [EnvironmentShift(3, tuple(factored_constraints(n, value=0)))],
        )
        sim = DCSPSimulator(dyn, flips_per_step=1)
        run = sim.run({f"x{i}": 1 for i in range(n)}, horizon=10, seed=2)
        assert not run.fit[3]  # old config unfit in the new environment
        assert run.fit[-1]  # adapted to the new fit set
        assert run.states[-1] == {f"x{i}": 0 for i in range(n)}

    def test_quality_trace_reflects_degradation(self):
        n = 4
        dyn = DynamicCSP(
            boolean_variables(n),
            factored_constraints(n),
            [StateDamage.failing(2, [f"x{i}" for i in range(n)])],
        )
        sim = DCSPSimulator(dyn, flips_per_step=0)  # no repair at all
        run = sim.run({f"x{i}": 1 for i in range(n)}, horizon=5, seed=0)
        assert run.trace.min_quality == pytest.approx(0.0)
        assert not run.always_fit

    def test_incomplete_initial_rejected(self):
        dyn = DynamicCSP(boolean_variables(2), factored_constraints(2), [])
        sim = DCSPSimulator(dyn)
        with pytest.raises(SimulationError):
            sim.run({"x0": 1}, horizon=3)

    def test_recovery_steps_out_of_range(self):
        dyn = DynamicCSP(boolean_variables(2), factored_constraints(2), [])
        run = DCSPSimulator(dyn).run({"x0": 1, "x1": 1}, horizon=3, seed=0)
        with pytest.raises(ConfigurationError):
            run.recovery_steps_after(99)

    def test_events_applied_recorded(self):
        dyn = DynamicCSP(
            boolean_variables(2),
            factored_constraints(2),
            [StateDamage.failing(1, ["x0"], label="meteor")],
        )
        run = DCSPSimulator(dyn).run({"x0": 1, "x1": 1}, horizon=4, seed=0)
        assert (1, "meteor") in run.events_applied
