"""Equivalence suite for the tiled (block-streamed) CSP engine.

Three contracts, mirroring the ISSUE acceptance:

* **cross-engine** (n ≤ 20): tiled results — fit sets, quality,
  violation views, distances, recoverability witnesses,
  maintainability policies, DCSP runs — are byte-identical to the bit
  engine, which is itself pinned to the object engine;
* **self-consistency** (n ∈ {22, 24}): beyond the bit envelope the
  tiled engine must agree with itself across block sizes and with the
  object oracle on subsampled check sets;
* **degradation**: the MAPE supervisor trips ``tiled → object`` on an
  injected chaos-style OOM, while the engine-level compile chain
  (``tiled → bit → object``) picks the right compiled form per CSP.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.recoverability import (
    BoundedComponentDamage,
    PackedFitSet,
    adaptation_bound,
    is_k_recoverable,
)
from repro.csp import (
    CSP,
    LinearConstraint,
    PredicateConstraint,
    TableConstraint,
    all_components_good,
    at_least_k_good,
    boolean_csp,
)
from repro.csp.bitengine import CompiledBitCSP, compile_csp
from repro.csp.bitstring import BitString
from repro.csp.dynamic import DCSPSimulator, DynamicCSP, StateDamage
from repro.csp.engine import (
    BitCSPEngine,
    ObjectCSPEngine,
    TiledCSPEngine,
    make_csp_engine,
)
from repro.csp.solvers import greedy_bitflip_repair, min_conflicts
from repro.csp.tiledengine import (
    DEFAULT_BLOCK_BITS,
    MAX_BLOCK_BITS,
    MIN_BLOCK_BITS,
    TiledBitCSP,
    derive_block_bits,
    implicit_add_bit_levels,
    implicit_clear_bit_ball,
)
from repro.csp.variables import Variable
from repro.errors import ConfigurationError, EngineError
from repro.runtime import supervisor, trace
from repro.runtime.engines import SEAMS, resolve_engine_kind
from repro.spacecraft.system import Spacecraft


def names(n):
    return [f"x{i}" for i in range(n)]


def mixed_csp(n=10):
    """All four lowering paths: cardinality, linear, table, predicate."""
    ns = names(n)
    return boolean_csp(n, [
        at_least_k_good(ns, n // 3),
        LinearConstraint(ns[:3], (0.1, 0.2, 0.7), "<=", 0.8),
        TableConstraint(ns[1:3], [(0, 1), (1, 1), (1, 0)]),
        PredicateConstraint(
            ns[2:5], lambda a, b, c: a + b + c != 1, name="not_exactly_one"
        ),
    ])


# -- cross-engine equivalence at n <= 20 ------------------------------------


class TestBitEquivalence:
    @pytest.mark.parametrize("block_bits", [4, 7, 10])
    def test_fit_violations_quality_identical(self, block_bits):
        csp = mixed_csp(10)
        bit = compile_csp(csp)
        tiled = TiledBitCSP(csp, block_bits=block_bits)
        assert np.array_equal(bit.fit_indices, tiled.fit_indices)
        assert bit.fit_bitstrings() == tiled.fit_bitstrings()
        masks = np.arange(1 << 10, dtype=np.int64)
        assert bit.violations[masks].tobytes() == \
            tiled.violations[masks].tobytes()
        assert bit.quality_table()[masks].tobytes() == \
            tiled.quality_table()[masks].tobytes()
        assert bit.quality(masks[:17]).tobytes() == \
            tiled.quality(masks[:17]).tobytes()

    def test_lazy_views_accept_bit_engine_index_shapes(self):
        csp = mixed_csp(10)
        bit = compile_csp(csp)
        tiled = TiledBitCSP(csp, block_bits=6)
        # scalar (solver inner loop)
        assert int(bit.violations[5]) == int(tiled.violations[5])
        assert float(bit.quality_table()[5]) == \
            float(tiled.quality_table()[5])
        # 1-D flip neighborhood (greedy repair)
        nb = bit.violations[np.int64(9) ^ bit.flip_masks]
        nt = tiled.violations[np.int64(9) ^ tiled.flip_masks]
        assert nb.tobytes() == nt.tobytes()
        # 2-D batched neighborhoods (batched DCSP repair)
        masks = np.arange(8, dtype=np.int64)
        b2 = bit.violations[masks[:, None] ^ bit.flip_masks]
        t2 = tiled.violations[masks[:, None] ^ tiled.flip_masks]
        assert b2.shape == t2.shape and b2.tobytes() == t2.tobytes()

    def test_min_distances_and_conflict_order_identical(self):
        csp = mixed_csp(10)
        bit = compile_csp(csp)
        tiled = TiledBitCSP(csp, block_bits=6)
        masks = np.arange(1 << 10, dtype=np.int64)
        assert bit.min_distances_masks(masks).tobytes() == \
            tiled.min_distances_masks(masks).tobytes()
        states = [BitString(10, m) for m in (0, 5, 513, 1023)]
        assert bit.min_distances(states).tobytes() == \
            tiled.min_distances(states).tobytes()
        for m in (0, 5, 77, 1023):
            assert bit.conflicted_variable_order(m) == \
                tiled.conflicted_variable_order(m)
            assert bit.assignment_of(m) == tiled.assignment_of(m)

    def test_empty_fit_distances_are_minus_one(self):
        ns = names(6)
        csp = boolean_csp(6, [
            all_components_good(ns),
            at_least_k_good(ns, 3, hi=4),  # contradiction
        ]) if False else boolean_csp(6, [
            LinearConstraint(ns, (1,) * 6, ">=", 7.0),  # unsatisfiable
        ])
        tiled = TiledBitCSP(csp, block_bits=4)
        assert len(tiled.fit_indices) == 0
        d = tiled.min_distances_masks(np.arange(8, dtype=np.int64))
        assert (d == -1).all()
        assert (tiled.min_distances([BitString(6, 0)]) == -1).all()

    @pytest.mark.parametrize("engine_kind", ["object", "bit"])
    def test_recoverability_reports_identical(self, engine_kind):
        sc = Spacecraft(8)
        ref = sc.recoverability_report(3, 3, engine=engine_kind)
        got = sc.recoverability_report(3, 3, engine="tiled")
        assert got.is_k_recoverable == ref.is_k_recoverable
        assert got.worst_steps == ref.worst_steps
        assert got.witness == ref.witness
        assert got.event_label == ref.event_label

    def test_adaptation_bound_identical(self):
        ns = names(8)
        before = boolean_csp(8, [at_least_k_good(ns, 6)])
        after = boolean_csp(8, [all_components_good(ns[:5])])
        vals = {
            kind: adaptation_bound(before, after, engine=kind)
            for kind in ("object", "bit", "tiled")
        }
        assert vals["object"] == vals["bit"] == vals["tiled"]

    @pytest.mark.parametrize("engine_kind", ["object", "bit"])
    def test_maintainability_field_for_field(self, engine_kind):
        sc = Spacecraft(7)
        ref = sc.maintainability(2, 3, engine=engine_kind)
        got = sc.maintainability(2, 3, engine="tiled")
        assert got.maintainable == ref.maintainable
        assert got.levels == ref.levels
        assert got.envelope == ref.envelope
        assert got.uncovered == ref.uncovered
        assert got.policy.actions == ref.policy.actions
        assert got.policy.goal_states == ref.policy.goal_states

    def test_dcsp_and_solvers_draw_for_draw(self):
        ns = names(10)
        csp = boolean_csp(10, [at_least_k_good(ns, 7)])
        dyn = DynamicCSP(
            variables=csp.variables,
            initial_constraints=csp.constraints,
            events=[StateDamage.failing(3, ["x1", "x2", "x3"])],
        )
        initial = {n: 1 for n in ns}
        runs = {
            kind: DCSPSimulator(dyn, flips_per_step=1, engine=kind).run(
                horizon=8, initial=initial, seed=7
            )
            for kind in ("object", "bit", "tiled")
        }
        assert runs["object"].states == runs["bit"].states == \
            runs["tiled"].states
        assert np.array_equal(
            runs["object"].trace.quality, runs["tiled"].trace.quality
        )
        start = {n: (1 if i % 3 else 0) for i, n in enumerate(ns)}
        res = {
            kind: min_conflicts(
                csp, dict(start), max_steps=50, seed=3, engine=kind
            )
            for kind in ("object", "bit", "tiled")
        }
        assert res["object"].final == res["bit"].final == res["tiled"].final
        assert res["object"].steps == res["tiled"].steps
        rep = {
            kind: greedy_bitflip_repair(
                csp, dict(start), max_flips=30, seed=5, engine=kind
            )
            for kind in ("object", "bit", "tiled")
        }
        assert rep["object"].final == rep["tiled"].final
        assert rep["bit"].final == rep["tiled"].final

    def test_implicit_bfs_kernels_match_dense(self):
        from repro.csp.bitengine import add_bit_levels, clear_bit_ball

        csp = mixed_csp(10)
        bit = compile_csp(csp)
        for k in (0, 1, 3, None):
            dense = add_bit_levels(bit.fit_mask, 10, max_level=k)
            st, lv = implicit_add_bit_levels(bit.fit_indices, 10, max_level=k)
            leveled = np.nonzero(dense >= 0)[0]
            assert np.array_equal(st, leveled)
            assert np.array_equal(lv, dense[leveled])
        for r in (0, 1, 2):
            dense = clear_bit_ball(bit.fit_mask, 10, r)
            imp = implicit_clear_bit_ball(bit.fit_indices, 10, r)
            assert np.array_equal(imp, np.nonzero(dense)[0])


# -- self-consistency past the bit envelope ---------------------------------


class TestLargeNSelfConsistency:
    @pytest.mark.parametrize("n", [22, 24])
    def test_block_size_invariance(self, n):
        sc = Spacecraft(n)
        small = TiledCSPEngine(block_bits=min(16, n))
        large = TiledCSPEngine(block_bits=min(20, n))
        ca = small.try_compile(sc.csp)
        assert isinstance(ca, TiledBitCSP) and ca.n_blocks > 1
        rep_a = sc.recoverability_report(3, 3, engine=small)
        # block size changed → fresh compile, not the cached schedule
        cb = large.try_compile(sc.csp)
        assert isinstance(cb, TiledBitCSP) and cb.block_bits != ca.block_bits
        rep_b = sc.recoverability_report(3, 3, engine=large)
        assert rep_a.worst_steps == rep_b.worst_steps == 3
        assert rep_a.witness == rep_b.witness
        assert rep_a.is_k_recoverable and rep_b.is_k_recoverable

    @pytest.mark.parametrize("n", [22, 24])
    def test_subsampled_check_set_matches_object_oracle(self, n):
        sc = Spacecraft(n)
        compiled = TiledCSPEngine(block_bits=min(18, n)).try_compile(sc.csp)
        oracle = PackedFitSet([BitString.ones(n)])
        rng = np.random.default_rng(n)
        sub = [
            BitString(n, int(m))
            for m in rng.integers(0, 1 << n, size=48)
        ]
        assert compiled.min_distances(sub).tobytes() == \
            oracle.min_distances(sub).tobytes()

    def test_maintainability_past_bit_envelope(self):
        n = 22
        sc = Spacecraft(n)
        result = sc.maintainability(2, 2, engine=TiledCSPEngine(block_bits=16))
        assert result.maintainable
        # envelope = states with <= 2 failed bits; levels likewise
        expected = 1 + n + n * (n - 1) // 2
        assert len(result.envelope) == expected
        assert len(result.levels) == expected
        assert result.policy.actions[BitString.ones(n).flip(0)] == "repair_0"


# -- budget -> block scheduling and the compile chain -----------------------


class TestBlockScheduler:
    def test_no_budget_uses_default(self):
        assert derive_block_bits(24, 1) == DEFAULT_BLOCK_BITS
        assert derive_block_bits(8, 1) == 8  # clamped to n

    def test_budget_shrinks_blocks(self):
        loose = derive_block_bits(24, 1, 1 << 30)
        tight = derive_block_bits(24, 1, 1 << 22)
        assert loose > tight >= min(24, MIN_BLOCK_BITS)

    def test_impossible_budget_never_refuses(self):
        b = derive_block_bits(28, 64, memory_budget_bytes=1)
        assert b == MIN_BLOCK_BITS  # smallest schedule, still a schedule

    def test_block_cap(self):
        assert derive_block_bits(32, 1, 1 << 62) == MAX_BLOCK_BITS

    def test_workers_count_against_the_budget(self):
        one = derive_block_bits(24, 1, 1 << 24, workers=1)
        four = derive_block_bits(24, 1, 1 << 24, workers=4)
        assert four == one - 2  # 4x footprint -> 2 fewer block bits

    def test_supervisor_budget_schedules_instead_of_refusing(self):
        sc = Spacecraft(22)
        sup = supervisor.Supervisor(memory_budget_mb=8)
        with supervisor.use(sup):
            assert BitCSPEngine().try_compile(sc.csp) is None  # refusal
            compiled = TiledCSPEngine().try_compile(sc.csp)
        assert isinstance(compiled, TiledBitCSP)
        assert compiled.n_blocks > 1
        assert compiled.block_size * 31 <= 8 * 1024 * 1024


class TestCompileChain:
    def test_small_csp_gets_full_bit_compile(self):
        csp = mixed_csp(8)
        compiled = TiledCSPEngine().try_compile(csp)
        assert isinstance(compiled, CompiledBitCSP)
        assert compiled.engine_label == "bit"

    def test_large_csp_gets_tiled_compile(self):
        sc = Spacecraft(22)
        compiled = TiledCSPEngine().try_compile(sc.csp)
        assert isinstance(compiled, TiledBitCSP)
        assert compiled.engine_label == "tiled"

    def test_over_budget_small_csp_degrades_to_tiled_not_object(self):
        csp = mixed_csp(14)
        sup = supervisor.Supervisor(memory_budget_mb=0.05)
        tr = trace.Tracer()
        with trace.use(tr):
            with supervisor.use(sup):
                compiled = TiledCSPEngine().try_compile(csp)
        assert isinstance(compiled, TiledBitCSP)
        assert tr.counters["csp.tiled.degrades"] == 1

    def test_non_boolean_falls_back_to_object(self):
        csp = CSP((Variable("x", (0, 1)), Variable("y", (0, 1, 2))), ())
        tr = trace.Tracer()
        with trace.use(tr):
            assert TiledCSPEngine().try_compile(csp) is None
        assert tr.counters["csp.fallbacks"] == 1

    def test_beyond_cap_falls_back_to_object(self):
        csp = boolean_csp(12, [at_least_k_good(names(12), 3)])
        tr = trace.Tracer()
        with trace.use(tr):
            assert TiledCSPEngine(max_bits=10).try_compile(csp) is None
        assert tr.counters["csp.fallbacks"] == 1

    def test_explicit_block_bits_skips_the_bit_fast_path(self):
        csp = mixed_csp(8)
        compiled = TiledCSPEngine(block_bits=5).try_compile(csp)
        assert isinstance(compiled, TiledBitCSP)
        assert compiled.block_bits == 5


# -- seam registration, worker fan-out, supervisor degradation --------------


class TestSeamAndDegradation:
    def test_tiled_registered_in_seam(self):
        s = SEAMS["csp"]
        assert "tiled" in s.choices
        assert "tiled" in s.fast
        assert s.fallback == "object"

    def test_env_var_selects_tiled(self, monkeypatch):
        monkeypatch.setenv("REPRO_CSP_ENGINE", "tiled")
        assert resolve_engine_kind("csp") == "tiled"
        assert type(make_csp_engine()) is TiledCSPEngine

    def test_unknown_kind_names_all_three(self):
        with pytest.raises(EngineError) as exc:
            make_csp_engine("warp")
        msg = str(exc.value)
        for kind in ("'bit'", "'object'", "'tiled'"):
            assert kind in msg

    def test_tiled_rejected_without_bitwise_count(self, monkeypatch):
        monkeypatch.delattr(np, "bitwise_count")
        with pytest.raises(EngineError, match="bitwise_count"):
            make_csp_engine("tiled")

    def test_tile_workers_env_validation(self, monkeypatch):
        monkeypatch.setenv("REPRO_CSP_TILE_WORKERS", "banana")
        with pytest.raises(EngineError, match="REPRO_CSP_TILE_WORKERS"):
            TiledCSPEngine()
        monkeypatch.setenv("REPRO_CSP_TILE_WORKERS", "0")
        with pytest.raises(EngineError, match="REPRO_CSP_TILE_WORKERS"):
            TiledCSPEngine()
        monkeypatch.setenv("REPRO_CSP_TILE_WORKERS", "3")
        assert TiledCSPEngine().workers == 3

    def test_worker_fanout_matches_serial(self):
        csp = mixed_csp(12)
        serial = TiledBitCSP(csp, block_bits=9, workers=1)
        fanned = TiledBitCSP(csp, block_bits=9, workers=2)
        assert fanned.workers == 2
        assert np.array_equal(serial.fit_indices, fanned.fit_indices)

    def test_chaos_oom_degrades_tiled_to_object(self, monkeypatch):
        # an engine-attributable OOM while the seam points at the tiled
        # fast kind must open the csp breaker and pin the fallback, the
        # same once-open-always-open contract the bit kind has
        monkeypatch.setenv("REPRO_CSP_ENGINE", "tiled")
        sup = supervisor.Supervisor()
        with supervisor.use(sup):
            assert resolve_engine_kind("csp") == "tiled"
            tripped = sup.record_fault(
                "MemoryError: chaos: simulated out-of-memory at point 3"
            )
            assert "csp" in tripped
            assert resolve_engine_kind("csp") == "object"
            assert type(make_csp_engine()) is ObjectCSPEngine
            # explicit requests degrade too, engine-level chain included
            assert resolve_engine_kind("csp", "tiled") == "object"
            assert resolve_engine_kind("csp", "bit") == "object"

    def test_trace_counters_use_tiled_labels(self):
        sc = Spacecraft(8)
        tr = trace.Tracer()
        with trace.use(tr):
            sc.recoverability_report(2, 2, engine=TiledCSPEngine(block_bits=5))
            sc.maintainability(2, 2, engine=TiledCSPEngine(block_bits=5))
        assert tr.counters["csp.recover.checks.tiled"] == 1
        assert tr.counters["csp.kmaintain.runs.tiled"] == 1
        assert "csp.recover.tiled" in tr.timers
        assert "csp.kmaintain.tiled" in tr.timers


class TestGuards:
    def test_workers_validated(self):
        with pytest.raises(ConfigurationError, match="workers"):
            TiledBitCSP(mixed_csp(6), workers=0)

    def test_mismatched_bitstring_size_raises(self):
        tiled = TiledBitCSP(mixed_csp(8), block_bits=4)
        with pytest.raises(ConfigurationError, match="bits"):
            tiled.min_distances([BitString(5, 0)])

    def test_negative_ball_radius_raises(self):
        with pytest.raises(ConfigurationError, match="radius"):
            implicit_clear_bit_ball(np.array([0]), 4, -1)

    def test_no_constraint_csp(self):
        csp = boolean_csp(6, [])
        tiled = TiledBitCSP(csp, block_bits=3)
        assert len(tiled.fit_indices) == 1 << 6
        masks = np.arange(1 << 6, dtype=np.int64)
        assert (tiled.violations[masks] == 0).all()
        assert (tiled.quality_table()[masks] == 100.0).all()
