"""Tests for CSP problems (repro.csp.problem)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.csp.bitstring import BitString
from repro.csp.constraints import (
    PredicateConstraint,
    all_components_good,
    at_least_k_good,
)
from repro.csp.problem import CSP, boolean_csp
from repro.csp.variables import Variable, boolean_variables
from repro.errors import ConfigurationError


def names(n):
    return [f"x{i}" for i in range(n)]


class TestConstruction:
    def test_duplicate_variable_names_rejected(self):
        with pytest.raises(ConfigurationError):
            CSP([Variable("a"), Variable("a")], [])

    def test_constraint_on_unknown_variable_rejected(self):
        with pytest.raises(ConfigurationError):
            CSP([Variable("a")], [PredicateConstraint(["b"], bool)])

    def test_num_configurations(self):
        csp = CSP(
            [Variable("a", (0, 1)), Variable("b", (0, 1, 2))], []
        )
        assert csp.num_configurations == 6

    def test_constraints_of(self):
        c = all_components_good(names(2))
        csp = boolean_csp(2, [c])
        assert csp.constraints_of("x0") == (c,)
        with pytest.raises(ConfigurationError):
            csp.constraints_of("zz")

    def test_constraints_of_served_from_precomputed_index(self):
        # the per-variable index is built once at construction: repeated
        # lookups return the identical tuple, not a fresh scan
        c1 = at_least_k_good(names(3), 1)
        c2 = all_components_good(names(3))
        csp = boolean_csp(3, [c1, c2])
        first = csp.constraints_of("x1")
        assert first == (c1, c2)  # declaration order preserved
        assert csp.constraints_of("x1") is first

    def test_constraints_of_partial_scope(self):
        narrow = PredicateConstraint(["x1"], lambda v: v == 1)
        wide = at_least_k_good(names(3), 1)
        csp = boolean_csp(3, [narrow, wide])
        assert csp.constraints_of("x0") == (wide,)
        assert csp.constraints_of("x1") == (narrow, wide)
        # quality still counts every constraint exactly once
        assert csp.quality({"x0": 1, "x1": 0, "x2": 0}) == pytest.approx(50.0)


class TestEvaluation:
    def test_is_fit(self):
        csp = boolean_csp(3, [all_components_good(names(3))])
        assert csp.is_fit({"x0": 1, "x1": 1, "x2": 1})
        assert not csp.is_fit({"x0": 1, "x1": 0, "x2": 1})

    def test_incomplete_assignment_not_fit(self):
        csp = boolean_csp(2, [all_components_good(names(2))])
        assert not csp.is_fit({"x0": 1})

    def test_validate_assignment_unknown_variable(self):
        csp = boolean_csp(2, [])
        with pytest.raises(ConfigurationError):
            csp.validate_assignment({"zz": 1})

    def test_validate_assignment_bad_value(self):
        csp = boolean_csp(2, [])
        with pytest.raises(ConfigurationError):
            csp.validate_assignment({"x0": 7})

    def test_conflict_count(self):
        csp = boolean_csp(
            3,
            [all_components_good(names(3)), at_least_k_good(names(3), 1)],
        )
        assert csp.conflict_count({"x0": 0, "x1": 0, "x2": 0}) == 2
        assert csp.conflict_count({"x0": 1, "x1": 0, "x2": 0}) == 1

    def test_quality_percent(self):
        csp = boolean_csp(
            3,
            [all_components_good(names(3)), at_least_k_good(names(3), 1)],
        )
        assert csp.quality({"x0": 1, "x1": 0, "x2": 0}) == pytest.approx(50.0)

    def test_quality_no_constraints_is_full(self):
        csp = boolean_csp(2, [])
        assert csp.quality({"x0": 0, "x1": 0}) == 100.0


class TestEnumeration:
    def test_all_assignments_count(self):
        csp = boolean_csp(3, [])
        assert len(list(csp.all_assignments())) == 8

    def test_fit_assignments_match_constraint(self):
        csp = boolean_csp(3, [at_least_k_good(names(3), 2)])
        fits = list(csp.fit_assignments())
        # C(3,2) + C(3,3) = 4 assignments with >= 2 ones
        assert len(fits) == 4

    def test_fit_bitstrings(self):
        csp = boolean_csp(2, [all_components_good(names(2))])
        assert csp.fit_bitstrings() == frozenset([BitString.ones(2)])


class TestBitBridge:
    def test_roundtrip(self):
        csp = boolean_csp(4, [])
        bits = BitString.from_string("0110")
        assign = csp.assignment_from_bits(bits)
        assert csp.bits_from_assignment(assign) == bits

    def test_length_mismatch(self):
        csp = boolean_csp(3, [])
        with pytest.raises(ConfigurationError):
            csp.assignment_from_bits(BitString.ones(4))

    def test_non_boolean_variable_rejected(self):
        csp = CSP([Variable("a", (0, 1, 2))], [])
        with pytest.raises(ConfigurationError):
            csp.assignment_from_bits(BitString.ones(1))
        with pytest.raises(ConfigurationError):
            csp.bits_from_assignment({"a": 1})

    def test_missing_variable_in_assignment(self):
        csp = boolean_csp(2, [])
        with pytest.raises(ConfigurationError):
            csp.bits_from_assignment({"x0": 1})


@settings(max_examples=30, deadline=None)
@given(n=st.integers(min_value=1, max_value=5),
       k=st.integers(min_value=0, max_value=5))
def test_property_fit_count_matches_binomial_tail(n, k):
    """|C| for at-least-k-good equals the binomial tail sum."""
    from math import comb

    k = min(k, n)
    csp = boolean_csp(n, [at_least_k_good(names(n), k)])
    expected = sum(comb(n, j) for j in range(k, n + 1))
    assert len(csp.fit_bitstrings()) == expected
