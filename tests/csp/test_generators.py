"""Tests for random CSP generators (repro.csp.generators)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.csp.generators import random_binary_csp, random_clause_csp
from repro.csp.propagation import ac3
from repro.csp.solvers import backtracking_solve
from repro.errors import ConfigurationError


class TestRandomBinaryCSP:
    def test_structure(self):
        csp = random_binary_csp(6, 3, density=0.5, tightness=0.3, seed=0)
        assert len(csp.variables) == 6
        assert all(len(v.domain) == 3 for v in csp.variables)
        # density 0.5 of C(6,2)=15 pairs -> 8 constraints (rounded)
        assert len(csp.constraints) == 8
        assert all(len(c.scope) == 2 for c in csp.constraints)

    def test_deterministic_by_seed(self):
        a = random_binary_csp(5, 3, 0.6, 0.4, seed=7)
        b = random_binary_csp(5, 3, 0.6, 0.4, seed=7)
        sol_a = backtracking_solve(a, seed=1)
        sol_b = backtracking_solve(b, seed=1)
        assert sol_a == sol_b

    def test_loose_instances_satisfiable(self):
        csp = random_binary_csp(8, 4, density=0.3, tightness=0.1, seed=1)
        assert backtracking_solve(csp, seed=0) is not None

    def test_maximally_tight_unsatisfiable(self):
        csp = random_binary_csp(4, 2, density=1.0, tightness=1.0, seed=2)
        assert backtracking_solve(csp, seed=0) is None
        assert not ac3(csp).consistent

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            random_binary_csp(1, 2, 0.5, 0.5)
        with pytest.raises(ConfigurationError):
            random_binary_csp(3, 0, 0.5, 0.5)
        with pytest.raises(ConfigurationError):
            random_binary_csp(3, 2, 1.5, 0.5)
        with pytest.raises(ConfigurationError):
            random_binary_csp(3, 2, 0.5, -0.1)


class TestRandomClauseCSP:
    def test_structure(self):
        csp = random_clause_csp(8, 20, clause_size=3, seed=0)
        assert len(csp.variables) == 8
        assert len(csp.constraints) == 20
        assert all(len(c.scope) == 3 for c in csp.constraints)

    def test_underconstrained_satisfiable(self):
        csp = random_clause_csp(12, 12, seed=1)  # ratio 1 << 4.27
        assert backtracking_solve(csp, seed=0) is not None

    def test_overconstrained_usually_unsatisfiable(self):
        unsat = 0
        for seed in range(5):
            csp = random_clause_csp(6, 80, seed=seed)  # ratio >> 4.27
            if backtracking_solve(csp, seed=0) is None:
                unsat += 1
        assert unsat >= 4

    def test_clause_semantics(self):
        """Each clause is a disjunction: the all-satisfying assignment of
        one clause's literals satisfies it."""
        csp = random_clause_csp(4, 1, clause_size=2, seed=3)
        clause = csp.constraints[0]
        # brute force: the clause forbids exactly one of the 4 scope
        # assignments
        forbidden = 0
        for a in (0, 1):
            for b in (0, 1):
                if not clause.satisfied({clause.scope[0]: a,
                                         clause.scope[1]: b}):
                    forbidden += 1
        assert forbidden == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            random_clause_csp(0, 5)
        with pytest.raises(ConfigurationError):
            random_clause_csp(3, 5, clause_size=4)
        with pytest.raises(ConfigurationError):
            random_clause_csp(3, -1)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 500))
def test_property_solver_agrees_with_enumeration(seed):
    """Backtracking's verdict matches brute-force satisfiability on small
    random instances."""
    csp = random_binary_csp(4, 3, density=0.8, tightness=0.5, seed=seed)
    solution = backtracking_solve(csp, seed=0)
    brute = any(
        csp.conflict_count(a) == 0 for a in csp.all_assignments()
    )
    assert (solution is not None) == brute
    if solution is not None:
        assert csp.is_fit(solution)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 500))
def test_property_ac3_soundness_on_random_instances(seed):
    """If AC-3 says inconsistent, the instance truly has no solution."""
    csp = random_binary_csp(4, 2, density=1.0, tightness=0.6, seed=seed)
    if not ac3(csp).consistent:
        assert backtracking_solve(csp, seed=0) is None
