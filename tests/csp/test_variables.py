"""Tests for variables (repro.csp.variables)."""

from __future__ import annotations

import pytest

from repro.csp.variables import Variable, boolean_variable, boolean_variables
from repro.errors import ConfigurationError


class TestVariable:
    def test_defaults_to_boolean(self):
        v = Variable("a")
        assert v.domain == (0, 1)
        assert v.is_boolean

    def test_custom_domain(self):
        v = Variable("color", ("r", "g", "b"))
        assert v.contains("g")
        assert not v.contains("x")
        assert not v.is_boolean

    def test_list_domain_coerced_to_tuple(self):
        v = Variable("a", [0, 1, 2])
        assert isinstance(v.domain, tuple)

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            Variable("")

    def test_empty_domain_rejected(self):
        with pytest.raises(ConfigurationError):
            Variable("a", ())

    def test_duplicate_domain_rejected(self):
        with pytest.raises(ConfigurationError):
            Variable("a", (1, 1))


class TestHelpers:
    def test_boolean_variable(self):
        assert boolean_variable("p").is_boolean

    def test_boolean_variables_names(self):
        vs = boolean_variables(3, prefix="c")
        assert [v.name for v in vs] == ["c0", "c1", "c2"]

    def test_boolean_variables_zero(self):
        assert boolean_variables(0) == ()

    def test_boolean_variables_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            boolean_variables(-1)
