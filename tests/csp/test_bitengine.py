"""Equivalence suite: compiled bit-matrix CSP engine == object engine.

The bit engine (``repro.csp.bitengine`` behind
``make_csp_engine``/``REPRO_CSP_ENGINE``) must reproduce the object
engine exactly — fit sets, quality values (float-for-float), recovery
distances and witnesses, K-maintainability results, and every seeded
repair trajectory draw-for-draw — or fall back to the object path for
CSPs it cannot compile (non-boolean variables, n beyond the memory
envelope).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.recoverability import (
    AdversarialBitDamage,
    BoundedComponentDamage,
    PackedFitSet,
    adaptation_bound,
    is_k_recoverable,
    minimal_recovery_bound,
    recovery_steps,
)
from repro.csp import (
    BitCSPEngine,
    BitEngineUnsupported,
    BitString,
    DCSPSimulator,
    DynamicCSP,
    EnvironmentShift,
    LinearConstraint,
    PredicateConstraint,
    StateDamage,
    TableConstraint,
    all_components_good,
    at_least_k_good,
    boolean_csp,
    compile_csp,
    greedy_bitflip_repair,
    make_csp_engine,
    min_conflicts,
    random_clause_csp,
)
from repro.csp.bitengine import (
    add_bit_levels,
    clear_bit_ball,
    hamming_distances,
)
from repro.csp.bitstring import BitSpace
from repro.csp.engine import CSPEngine, ObjectCSPEngine
from repro.csp.variables import Variable, boolean_variables
from repro.errors import ConfigurationError
from repro.runtime.trace import Tracer
from repro.runtime import trace
from repro.spacecraft.system import Spacecraft


def names(n):
    return [f"x{i}" for i in range(n)]


def mixed_csp(n=5):
    """One CSP exercising every lowering path (cardinality, linear,
    table, generic predicate)."""
    ns = names(n)
    return boolean_csp(n, [
        at_least_k_good(ns, 2),
        LinearConstraint(ns[:3], (0.1, 0.2, 0.7), "<=", 0.8),
        TableConstraint(ns[1:3], [(0, 1), (1, 1), (1, 0)]),
        PredicateConstraint(
            ns[2:5], lambda a, b, c: a + b + c != 1, name="not_exactly_one"
        ),
    ])


class TestCompile:
    def test_fit_set_exact(self):
        csp = mixed_csp()
        assert compile_csp(csp).fit_bitstrings() == csp.fit_bitstrings()

    def test_quality_and_conflicts_exact_per_state(self):
        csp = mixed_csp()
        comp = compile_csp(csp)
        for mask in range(comp.size):
            a = comp.assignment_of(mask)
            # exact float equality: same operations in the same order
            assert comp.quality([mask])[0] == csp.quality(a)
            assert comp.conflict_counts([mask])[0] == csp.conflict_count(a)
            assert bool(comp.fit_mask[mask]) == csp.is_fit(a)

    def test_quality_no_constraints_is_full(self):
        comp = compile_csp(boolean_csp(3, []))
        assert comp.quality([0, 5, 7]).tolist() == [100.0, 100.0, 100.0]
        assert comp.fit_mask.all()

    def test_assignment_roundtrip(self):
        comp = compile_csp(mixed_csp())
        for mask in (0, 7, 19, 31):
            assert comp.mask_of(comp.assignment_of(mask)) == mask

    def test_compile_cached_on_the_csp(self):
        csp = mixed_csp()
        with Tracer() as tr:
            with trace.use(tr):
                first = compile_csp(csp)
                second = compile_csp(csp)
        assert first is second
        assert tr.counters["csp.compiles"] == 1

    def test_non_boolean_rejected(self):
        csp = type(mixed_csp())(
            [Variable("a", (0, 1, 2))],
            [PredicateConstraint(["a"], lambda v: v != 2)],
        )
        with pytest.raises(BitEngineUnsupported):
            compile_csp(csp)
        assert make_csp_engine("bit").try_compile(csp) is None

    def test_too_large_falls_back(self):
        csp = boolean_csp(5, [all_components_good(names(5))])
        with pytest.raises(BitEngineUnsupported):
            compile_csp(csp, max_bits=4)
        engine = BitCSPEngine(max_bits=4)
        with Tracer() as tr:
            with trace.use(tr):
                assert engine.try_compile(csp) is None
        assert tr.counters["csp.fallbacks"] == 1
        # within the envelope the same engine compiles fine
        assert BitCSPEngine(max_bits=5).try_compile(csp) is not None

    def test_conflicted_variable_order_is_name_sorted(self):
        # n = 11 so lexicographic name order differs from index order
        csp = boolean_csp(11, [all_components_good(names(11))])
        comp = compile_csp(csp)
        conflicted = comp.conflicted_variable_order(0)
        assert [comp.names[i] for i in conflicted] == sorted(names(11))
        assert conflicted != sorted(conflicted)


class TestEngineSeam:
    def test_default_is_object(self, monkeypatch):
        monkeypatch.delenv("REPRO_CSP_ENGINE", raising=False)
        assert make_csp_engine().name == "object"

    def test_env_var_selects_bit(self, monkeypatch):
        monkeypatch.setenv("REPRO_CSP_ENGINE", "bit")
        assert make_csp_engine().name == "bit"

    def test_empty_env_var_means_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_CSP_ENGINE", "")
        assert make_csp_engine().name == "object"

    def test_unknown_kind_names_choices(self, monkeypatch):
        monkeypatch.delenv("REPRO_CSP_ENGINE", raising=False)
        with pytest.raises(ConfigurationError, match="bit.*object"):
            make_csp_engine("simd")
        monkeypatch.setenv("REPRO_CSP_ENGINE", "simd")
        with pytest.raises(ConfigurationError, match="REPRO_CSP_ENGINE"):
            make_csp_engine()

    def test_instance_passes_through(self):
        engine = ObjectCSPEngine()
        assert make_csp_engine(engine) is engine
        assert isinstance(engine, CSPEngine)

    def test_object_engine_never_compiles(self):
        assert ObjectCSPEngine().try_compile(mixed_csp()) is None


class TestBFSKernels:
    @pytest.mark.parametrize("n,thresh", [(5, 3), (6, 4), (6, 1)])
    def test_hamming_distances_match_scalar_bfs(self, n, thresh):
        csp = boolean_csp(n, [at_least_k_good(names(n), thresh)])
        comp = compile_csp(csp)
        fit = list(csp.fit_bitstrings())
        space = BitSpace(n)
        dist = hamming_distances(comp.fit_mask, n)
        for s in space.all_states():
            assert dist[s.mask] == space.recovery_distance(s, fit)

    def test_empty_fit_is_all_unreachable(self):
        dist = hamming_distances(np.zeros(16, dtype=bool), 4)
        assert (dist == -1).all()

    def test_min_distances_matches_packedfitset(self):
        csp = boolean_csp(6, [at_least_k_good(names(6), 4)])
        comp = compile_csp(csp)
        packed = PackedFitSet(csp.fit_bitstrings())
        states = [BitString(6, m) for m in range(64)]
        assert comp.min_distances(states).tolist() == \
            packed.min_distances(states).tolist()

    def test_min_distances_length_mismatch_raises(self):
        comp = compile_csp(boolean_csp(4, [all_components_good(names(4))]))
        with pytest.raises(ConfigurationError):
            comp.min_distances([BitString.zeros(5)])

    def test_recovery_steps_accepts_compiled(self):
        csp = boolean_csp(4, [all_components_good(names(4))])
        comp = compile_csp(csp)
        damaged = BitString.from_string("0011")
        assert recovery_steps(damaged, comp) == \
            recovery_steps(damaged, csp.fit_bitstrings()) == 2
        assert recovery_steps(damaged, comp, flips_per_step=2) == 1

    def test_clear_bit_ball_matches_exo_closure(self):
        craft = Spacecraft(5, required_good=3)
        comp = compile_csp(craft.csp)
        system = craft.to_transition_system(max_debris_hits=2)
        goals = craft.fit_states()
        envelope = system.exo_closure(frozenset(goals))
        ball = clear_bit_ball(comp.fit_mask, 5, 2)
        assert frozenset(
            BitString(5, int(m)) for m in np.nonzero(ball)[0]
        ) == envelope


class TestRecoverabilityEquivalence:
    @pytest.mark.parametrize("n,thresh,flips", [
        (5, 3, 1), (5, 3, 2), (6, 4, 1), (6, 2, 3),
    ])
    def test_debris_reports_identical(self, n, thresh, flips):
        csp = boolean_csp(n, [at_least_k_good(names(n), thresh)])
        damage = BoundedComponentDamage(max_failures=2)
        obj = is_k_recoverable(csp, damage, k=n, flips_per_step=flips,
                               engine="object")
        bit = is_k_recoverable(csp, damage, k=n, flips_per_step=flips,
                               engine="bit")
        assert obj == bit

    def test_adversarial_reports_identical(self):
        csp = boolean_csp(5, [at_least_k_good(names(5), 4)])
        damage = AdversarialBitDamage(radius=2)
        assert is_k_recoverable(csp, damage, k=5, engine="object") == \
            is_k_recoverable(csp, damage, k=5, engine="bit")

    def test_unrecoverable_witness_identical(self):
        sat = boolean_csp(4, [at_least_k_good(names(4), 1)])
        unsat = boolean_csp(4, [PredicateConstraint(
            names(4), lambda *vals: False, name="never_satisfied"
        )])
        damage = BoundedComponentDamage(max_failures=1)
        obj = is_k_recoverable(sat, damage, k=2, post_event_csp=unsat,
                               engine="object")
        bit = is_k_recoverable(sat, damage, k=2, post_event_csp=unsat,
                               engine="bit")
        assert not bit.recoverable
        assert obj == bit

    def test_minimal_bound_and_adaptation_identical(self):
        before = boolean_csp(6, [at_least_k_good(names(6), 2)])
        after = boolean_csp(6, [at_least_k_good(names(6), 5)])
        damage = BoundedComponentDamage(max_failures=3)
        assert minimal_recovery_bound(before, damage, engine="object") == \
            minimal_recovery_bound(before, damage, engine="bit")
        assert adaptation_bound(before, after, flips_per_step=2,
                                engine="object") == \
            adaptation_bound(before, after, flips_per_step=2, engine="bit")

    def test_spacecraft_report_identical(self):
        craft = Spacecraft(7, required_good=5, repairs_per_step=2)
        obj = craft.recoverability_report(3, 2, engine="object")
        bit = craft.recoverability_report(3, 2, engine="bit")
        assert obj == bit
        assert craft.minimal_k(3, engine="object") == \
            craft.minimal_k(3, engine="bit")

    def test_bit_engine_counts_checks(self):
        csp = boolean_csp(4, [all_components_good(names(4))])
        with Tracer() as tr:
            with trace.use(tr):
                is_k_recoverable(
                    csp, BoundedComponentDamage(1), k=1, engine="bit"
                )
        assert tr.counters["csp.recover.checks.bit"] == 1
        assert "csp.recover.bit" in tr.timers


class TestDCSPEquivalence:
    def _dynamic(self, n=11):
        ns = names(n)
        events = [
            StateDamage.failing(2, ["x0", "x3", f"x{n - 1}"]),
            EnvironmentShift(5, (at_least_k_good(ns, n),)),
            StateDamage.failing(7, ["x2", f"x{n - 2}"]),
        ]
        return DynamicCSP(
            boolean_variables(n), [at_least_k_good(ns, n - 2)], events
        )

    @pytest.mark.parametrize("flips", [1, 2])
    @pytest.mark.parametrize("seed", [0, 7, 123])
    def test_runs_identical_seed_for_seed(self, flips, seed):
        dyn = self._dynamic()
        init = {name: 1 for name in dyn.csp_at(0).names}
        obj = DCSPSimulator(dyn, flips_per_step=flips,
                            engine="object").run(init, seed=seed)
        bit = DCSPSimulator(dyn, flips_per_step=flips,
                            engine="bit").run(init, seed=seed)
        assert obj.states == bit.states
        assert obj.fit == bit.fit
        assert obj.events_applied == bit.events_applied
        assert np.array_equal(obj.trace.times, bit.trace.times)
        assert np.array_equal(obj.trace.quality, bit.trace.quality)

    def test_batch_identical_to_object_batch(self):
        dyn = self._dynamic(8)
        base = {name: 1 for name in dyn.csp_at(0).names}
        initials = [base, {**base, "x1": 0}, {**base, "x5": 0, "x6": 0}]
        obj = DCSPSimulator(dyn, engine="object").run_batch(
            initials, seed=42
        )
        bit = DCSPSimulator(dyn, engine="bit").run_batch(
            initials, seed=42
        )
        assert len(obj) == len(bit) == 3
        for o, b in zip(obj, bit):
            assert o.states == b.states
            assert o.fit == b.fit
            assert o.events_applied == b.events_applied
            assert np.array_equal(o.trace.quality, b.trace.quality)

    def test_batch_matches_per_replica_runs(self):
        from repro.rng import make_rng, spawn

        dyn = self._dynamic(6)
        base = {name: 1 for name in dyn.csp_at(0).names}
        initials = [base, {**base, "x2": 0}]
        sim = DCSPSimulator(dyn, engine="bit")
        batch = sim.run_batch(initials, seed=9)
        children = spawn(make_rng(9), 2)
        singles = [
            sim.run(init, seed=child)
            for init, child in zip(initials, children)
        ]
        for b, s in zip(batch, singles):
            assert b.states == s.states
            assert np.array_equal(b.trace.quality, s.trace.quality)

    def test_non_boolean_damage_value_falls_back(self):
        ns = names(3)
        dyn = DynamicCSP(
            boolean_variables(3),
            [at_least_k_good(ns, 1)],
            [StateDamage(1, (("x0", 2),))],
        )
        init = {n: 1 for n in ns}
        sim = DCSPSimulator(dyn, flips_per_step=0, engine="bit")
        assert sim._compiled_timeline(3) is None
        # non-0/1 damage cannot be packed into a mask: the bit engine
        # must route through the object path and match it exactly
        bit = sim.run(init, horizon=3, seed=0)
        obj = DCSPSimulator(dyn, flips_per_step=0, engine="object").run(
            init, horizon=3, seed=0
        )
        assert bit.states == obj.states
        assert np.array_equal(bit.trace.quality, obj.trace.quality)

    def test_bit_run_counts(self):
        dyn = self._dynamic(5)
        init = {name: 1 for name in dyn.csp_at(0).names}
        with Tracer() as tr:
            with trace.use(tr):
                DCSPSimulator(dyn, engine="bit").run(init, seed=0)
        assert tr.counters["csp.dcsp.runs.bit"] == 1
        assert "csp.dcsp.bit" in tr.timers


class TestSolverEquivalence:
    @pytest.mark.parametrize("seed", [0, 3, 99])
    def test_min_conflicts_identical(self, seed):
        csp = random_clause_csp(9, 25, 3, seed=5)
        start = {f"v{i}": 0 for i in range(9)}
        obj = min_conflicts(csp, start, seed=seed, engine="object")
        bit = min_conflicts(csp, start, seed=seed, engine="bit")
        assert obj.success == bit.success
        assert obj.steps == bit.steps
        assert obj.trajectory == bit.trajectory
        assert obj.conflicts == bit.conflicts
        assert obj.final == bit.final

    @pytest.mark.parametrize("seed", [0, 3, 99])
    @pytest.mark.parametrize("flips", [1, 2])
    def test_greedy_bitflip_identical(self, seed, flips):
        csp = random_clause_csp(11, 30, 3, seed=8)
        start = {f"v{i}": 0 for i in range(11)}
        obj = greedy_bitflip_repair(csp, start, seed=seed,
                                    flips_per_step=flips, engine="object")
        bit = greedy_bitflip_repair(csp, start, seed=seed,
                                    flips_per_step=flips, engine="bit")
        assert obj.success == bit.success
        assert obj.steps == bit.steps
        assert obj.trajectory == bit.trajectory
        assert obj.conflicts == bit.conflicts


class TestKMaintainEquivalence:
    @pytest.mark.parametrize("n,required,hits,k", [
        (5, None, 2, 2),
        (6, 4, 2, 2),
        (7, 5, 3, 3),
        (11, 10, 2, 2),   # n > 10: repair_10 sorts before repair_2
    ])
    def test_results_field_for_field(self, n, required, hits, k):
        craft = Spacecraft(n, required_good=required)
        obj = craft.maintainability(hits, k, engine="object")
        bit = craft.maintainability(hits, k, engine="bit")
        assert obj.maintainable == bit.maintainable
        assert obj.k == bit.k
        assert obj.levels == bit.levels
        assert obj.envelope == bit.envelope
        assert obj.uncovered == bit.uncovered
        assert obj.policy.actions == bit.policy.actions
        assert obj.policy.levels == bit.policy.levels
        assert obj.policy.goal_states == bit.policy.goal_states

    def test_unmaintainable_case_identical(self):
        craft = Spacecraft(5)
        obj = craft.maintainability(3, 1, engine="object")
        bit = craft.maintainability(3, 1, engine="bit")
        assert not bit.maintainable
        assert obj.maintainable == bit.maintainable
        assert obj.levels == bit.levels
        assert obj.envelope == bit.envelope
        assert obj.uncovered == bit.uncovered
        assert obj.policy is None and bit.policy is None

    def test_levels_match_add_bit_levels(self):
        craft = Spacecraft(6, required_good=4)
        comp = compile_csp(craft.csp)
        levels = add_bit_levels(comp.fit_mask, 6, max_level=6)
        result = craft.maintainability(2, 6, engine="bit")
        for state, level in result.levels.items():
            assert levels[state.mask] == level

    def test_invalid_hits_rejected(self):
        craft = Spacecraft(4)
        with pytest.raises(ConfigurationError):
            craft.maintainability(0, 1, engine="bit")
        with pytest.raises(ConfigurationError):
            craft.maintainability(5, 1, engine="object")

    def test_bit_path_counts(self):
        craft = Spacecraft(4)
        with Tracer() as tr:
            with trace.use(tr):
                craft.maintainability(2, 2, engine="bit")
        assert tr.counters["csp.kmaintain.runs.bit"] == 1
        assert "csp.kmaintain.bit" in tr.timers


# -- memory estimate vs measured footprint (satellite) ----------------------


class TestEstimateCompileBytes:
    """estimate_compile_bytes must upper-bound the measured compile."""

    @pytest.mark.parametrize("n", [10, 14])
    def test_estimate_upper_bounds_measured(self, n):
        from repro.csp.bitengine import (
            estimate_compile_bytes,
            measured_compile_bytes,
        )

        ns = names(n)
        csp = boolean_csp(n, [
            at_least_k_good(ns, n // 2),
            all_components_good(ns[:4]),
            LinearConstraint(ns[:3], (0.5, 0.25, 0.25), "<=", 0.9),
        ])
        estimate = estimate_compile_bytes(csp)
        compiled = compile_csp(csp)
        measured = measured_compile_bytes(compiled)
        assert estimate >= measured
        # ...but not vacuously: within the documented scratch margin
        assert estimate <= 2 * measured

    @pytest.mark.parametrize("n", [10, 14])
    def test_estimate_scales_with_constraint_count(self, n):
        from repro.csp.bitengine import (
            estimate_compile_bytes,
            measured_compile_bytes,
        )

        ns = names(n)
        few = boolean_csp(n, [at_least_k_good(ns, 2)])
        many = boolean_csp(n, [
            at_least_k_good(ns, k) for k in range(1, 9)
        ])
        est_few, est_many = map(estimate_compile_bytes, (few, many))
        # one extra sat-matrix row per extra constraint
        assert est_many - est_few == 7 * (1 << n)
        # the per-constraint accounting tracks the real sat matrix: the
        # measured delta is exactly the estimated delta
        d_measured = measured_compile_bytes(compile_csp(many)) \
            - measured_compile_bytes(compile_csp(few))
        assert est_many - est_few == d_measured

    def test_non_boolean_estimate_is_none(self):
        from repro.csp.bitengine import estimate_compile_bytes

        from repro.csp.problem import CSP as _CSP

        csp = _CSP(
            (Variable("x", (0, 1)), Variable("y", (0, 1, 2))), ()
        )
        assert estimate_compile_bytes(csp) is None
