"""Tests for analysis utilities (repro.analysis)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.granularity import granularity_scores
from repro.analysis.stats import bootstrap_ci, proportion_ci, summarize
from repro.analysis.sweep import grid_sweep, sweep
from repro.analysis.tables import format_cell, render_series, render_table
from repro.errors import AnalysisError, ConfigurationError


class TestStats:
    def test_summarize(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.n == 4
        assert s.mean == pytest.approx(2.5)
        assert s.minimum == 1.0
        assert s.maximum == 4.0
        assert s.median == pytest.approx(2.5)

    def test_summarize_single_sample_zero_std(self):
        assert summarize([5.0]).std == 0.0

    def test_summarize_rejects_empty(self):
        with pytest.raises(AnalysisError):
            summarize([])

    def test_bootstrap_ci_covers_mean(self):
        rng = np.random.default_rng(0)
        x = rng.normal(10.0, 1.0, 300)
        lo, hi = bootstrap_ci(x, seed=1)
        assert lo < 10.0 < hi
        assert hi - lo < 0.6

    def test_bootstrap_validation(self):
        with pytest.raises(AnalysisError):
            bootstrap_ci([1.0])
        with pytest.raises(AnalysisError):
            bootstrap_ci([1.0, 2.0], confidence=1.5)
        with pytest.raises(AnalysisError):
            bootstrap_ci([1.0, 2.0], n_resamples=10)

    def test_proportion_ci(self):
        lo, hi = proportion_ci(50, 100)
        assert lo < 0.5 < hi
        lo0, hi0 = proportion_ci(0, 20)
        assert lo0 == 0.0
        assert hi0 > 0.0

    def test_proportion_validation(self):
        with pytest.raises(AnalysisError):
            proportion_ci(5, 0)
        with pytest.raises(AnalysisError):
            proportion_ci(11, 10)


class TestSweep:
    def test_sweep_rows(self):
        result = sweep([1, 2, 3], lambda v: {"square": v * v}, param_name="x")
        assert result.column("x") == [1, 2, 3]
        assert result.column("square") == [1, 4, 9]
        assert len(result) == 3

    def test_sweep_key_collision_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep([1], lambda v: {"param": 1})

    def test_sweep_empty_values_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep([], lambda v: {})

    def test_grid_sweep_cartesian(self):
        result = grid_sweep(
            {"a": [1, 2], "b": [10, 20]},
            lambda a, b: {"sum": a + b},
        )
        assert len(result) == 4
        assert result.column("sum") == [11, 21, 12, 22]

    def test_grid_validation(self):
        with pytest.raises(ConfigurationError):
            grid_sweep({}, lambda: {})
        with pytest.raises(ConfigurationError):
            grid_sweep({"a": []}, lambda a: {})

    def test_missing_column_rejected(self):
        result = sweep([1], lambda v: {"y": v})
        with pytest.raises(ConfigurationError):
            result.column("zz")

    def test_to_table_renders(self):
        result = sweep([1, 2], lambda v: {"y": v * 0.5})
        table = result.to_table()
        assert "param" in table
        assert "y" in table


class TestTables:
    def test_format_cell(self):
        assert format_cell(None) == "-"
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"
        assert format_cell(0.123456789) == "0.1235"
        assert format_cell(float("nan")) == "nan"
        assert format_cell("abc") == "abc"

    def test_render_table_aligned(self):
        table = render_table([{"a": 1, "b": "xx"}, {"a": 22, "b": "y"}])
        lines = table.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1  # aligned widths

    def test_render_table_union_of_keys(self):
        table = render_table([{"a": 1}, {"b": 2}])
        assert "a" in table and "b" in table
        assert "-" in table.splitlines()[2]

    def test_render_table_empty_rejected(self):
        with pytest.raises(AnalysisError):
            render_table([])

    def test_render_series(self):
        out = render_series("giant", [0.0, 0.5], [1.0, 0.4])
        assert "giant" in out
        with pytest.raises(AnalysisError):
            render_series("s", [1], [1, 2])
        with pytest.raises(AnalysisError):
            render_series("s", [], [])


class TestGranularity:
    def test_paper_monotonicity_example(self):
        """§5.2: individual ≤ species ≤ ecosystem survival."""
        scores = granularity_scores({
            "fish": [True, False, False],
            "trout": [False, False],
            "algae": [True, True],
        })
        assert scores.individual == pytest.approx(3 / 7)
        assert scores.species == pytest.approx(2 / 3)
        assert scores.species_weighted == pytest.approx(5 / 7)
        assert scores.ecosystem == 1.0
        assert scores.is_monotone()

    def test_unweighted_species_score_can_invert(self):
        """Large surviving species + many dead small species: the
        unweighted species fraction dips below the individual fraction —
        granularity choice changes the verdict (§5.2)."""
        scores = granularity_scores({"big": [True] * 8, "tiny": [False]})
        assert scores.individual > scores.species
        assert scores.is_monotone()  # the weighted chain still holds

    def test_total_extinction(self):
        scores = granularity_scores({"a": [False], "b": [False, False]})
        assert scores.individual == 0.0
        assert scores.species == 0.0
        assert scores.ecosystem == 0.0

    def test_validation(self):
        with pytest.raises(AnalysisError):
            granularity_scores({})
        with pytest.raises(AnalysisError):
            granularity_scores({"a": []})


@settings(max_examples=50)
@given(
    data=st.dictionaries(
        st.text(min_size=1, max_size=5),
        st.lists(st.booleans(), min_size=1, max_size=10),
        min_size=1,
        max_size=8,
    )
)
def test_property_granularity_always_monotone(data):
    """The coarser-is-easier claim is a theorem of the model."""
    scores = granularity_scores(data)
    assert scores.is_monotone()
    assert 0.0 <= scores.individual <= 1.0
    assert 0.0 <= scores.species <= 1.0
    assert scores.ecosystem in (0.0, 1.0)
