"""Tests for the parallel/seeded sweep harness (repro.analysis.sweep)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.sweep import grid_sweep, sweep
from repro.errors import ConfigurationError
from repro.rng import make_rng


# worker callables are module-level so ProcessPoolExecutor can pickle them

def square(value):
    return {"square": value * value}


def seeded_draw(value, seed):
    rng = make_rng(seed)
    return {"draw": int(rng.integers(0, 10**9)), "double": value * 2}


def grid_product(x, y):
    return {"product": x * y}


def seeded_grid_draw(x, y, seed):
    rng = make_rng(seed)
    return {"draw": int(rng.integers(0, 10**9)), "sum": x + y}


class TestParallelSweep:
    def test_parallel_matches_serial(self):
        serial = sweep([1, 2, 3, 4], square, param_name="v")
        parallel = sweep([1, 2, 3, 4], square, param_name="v", n_jobs=2)
        assert serial.rows == parallel.rows

    def test_row_order_preserved(self):
        result = sweep(list(range(10)), square, n_jobs=4)
        assert result.column("param") == list(range(10))

    def test_all_cores(self):
        result = sweep([1, 2], square, n_jobs=-1)
        assert result.column("square") == [1, 4]

    def test_invalid_n_jobs(self):
        with pytest.raises(ConfigurationError):
            sweep([1], square, n_jobs=0)
        with pytest.raises(ConfigurationError):
            sweep([1], square, n_jobs=-2)


class TestSeededSweep:
    def test_same_seed_same_rows_any_worker_count(self):
        a = sweep([1, 2, 3], seeded_draw, seed=42)
        b = sweep([1, 2, 3], seeded_draw, seed=42, n_jobs=2)
        assert a.rows == b.rows

    def test_points_get_independent_seeds(self):
        result = sweep([1, 1, 1], seeded_draw, seed=7)
        draws = result.column("draw")
        assert len(set(draws)) == len(draws)

    def test_different_parent_seed_changes_draws(self):
        a = sweep([1, 2], seeded_draw, seed=1)
        b = sweep([1, 2], seeded_draw, seed=2)
        assert a.column("draw") != b.column("draw")

    def test_seed_sequence_accepted(self):
        ss = np.random.SeedSequence(99)
        a = sweep([5], seeded_draw, seed=ss)
        b = sweep([5], seeded_draw, seed=np.random.SeedSequence(99))
        assert a.rows == b.rows

    def test_generator_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep([1], seeded_draw, seed=np.random.default_rng(0))


class TestSeededGridSweep:
    def test_parallel_matches_serial(self):
        grid = {"x": [1, 2, 3], "y": [10, 20]}
        serial = grid_sweep(grid, grid_product)
        parallel = grid_sweep(grid, grid_product, n_jobs=2)
        assert serial.rows == parallel.rows

    def test_seeded_deterministic(self):
        grid = {"x": [1, 2], "y": [3]}
        a = grid_sweep(grid, seeded_grid_draw, seed=5)
        b = grid_sweep(grid, seeded_grid_draw, seed=5, n_jobs=2)
        assert a.rows == b.rows
        assert len(set(a.column("draw"))) == 2

    def test_seed_grid_name_collision_rejected(self):
        with pytest.raises(ConfigurationError):
            grid_sweep({"seed": [1, 2]}, seeded_grid_draw, seed=3)

    def test_unseeded_seed_param_still_allowed(self):
        result = grid_sweep({"x": [2], "y": [3]}, grid_product)
        assert result.rows[0]["product"] == 6
