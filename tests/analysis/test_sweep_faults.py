"""Fault-tolerance, checkpoint/resume, and input-validation tests for
the sweep harness (repro.analysis.sweep on top of repro.runtime)."""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.analysis.sweep import grid_sweep, sweep
from repro.errors import CheckpointError, ConfigurationError
from repro.rng import make_rng
from repro.runtime.trace import Tracer


# module-level workers so worker processes can run them

def square(value):
    return {"square": value * value}


def seeded_draw(value, seed):
    rng = make_rng(seed)
    return {"draw": float(rng.random()), "twice": value * 2}


def _log_call(value):
    log = os.environ.get("REPRO_TEST_SWEEP_CALLS")
    if log:
        with open(log, "a") as fh:
            fh.write(f"{value}\n")


def faulty_point(value, seed):
    """16-point worker with two injected faults (1 raise, 1 hang)."""
    _log_call(value)
    rng = make_rng(seed)
    draw = float(rng.random())
    if not os.environ.get("REPRO_TEST_SWEEP_HEALED"):
        if value == 3:
            raise ValueError("injected worker fault")
        if value == 7:
            time.sleep(60)
    return {"draw": draw, "twice": value * 2}


def raise_on_odd(value):
    if value % 2:
        raise RuntimeError(f"odd value {value}")
    return {"even": value}


def grid_raise(x, y):
    if x == 2 and y == 20:
        raise RuntimeError("bad cell")
    return {"product": x * y}


def logged_square(value, seed):
    _log_call(value)
    rng = make_rng(seed)
    return {"draw": float(rng.random())}


def _read_calls(path) -> list[int]:
    if not os.path.exists(path):
        return []
    return [int(line) for line in open(path).read().split()]


class TestInputMaterialization:
    """`values` may be any iterable — the old `if not values` choked on
    numpy arrays and silently consumed generators."""

    def test_numpy_array_values(self):
        result = sweep(np.array([1, 2, 3]), square)
        assert result.column("square") == [1, 4, 9]

    def test_range_values(self):
        result = sweep(range(4), square)
        assert result.column("square") == [0, 1, 4, 9]

    def test_generator_values(self):
        result = sweep((v for v in [2, 5]), square, param_name="v")
        assert result.column("v") == [2, 5]
        assert result.column("square") == [4, 25]

    def test_empty_generator_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep((v for v in []), square)

    def test_empty_array_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep(np.array([]), square)

    def test_grid_accepts_arrays_ranges_generators(self):
        result = grid_sweep(
            {"x": np.array([1, 2]), "y": range(3, 5)},
            lambda x, y: {"sum": x + y},
        )
        assert len(result) == 4
        assert result.rows[0]["sum"] == 4

    def test_grid_empty_array_rejected(self):
        with pytest.raises(ConfigurationError):
            grid_sweep({"x": np.array([])}, square)


class TestErrorRows:
    def test_default_still_raises(self):
        with pytest.raises(RuntimeError, match="odd value 1"):
            sweep([0, 1, 2], raise_on_odd)

    def test_keep_completes_with_error_rows(self):
        result = sweep([0, 1, 2, 3], raise_on_odd, on_error="keep")
        assert len(result) == 4
        assert len(result.ok_rows) == 2
        assert len(result.failed) == 2
        assert [f.index for f in result.failed] == [1, 3]
        failure = result.failed[0]
        assert failure.params == {"param": 1}
        assert "RuntimeError: odd value 1" in failure.error
        assert "odd value 1" in failure.traceback
        # the error row sits in `rows` at the point's position
        assert result.rows[1]["error"] == failure.error

    def test_ok_rows_preserve_order_and_content(self):
        result = sweep([0, 1, 2, 3], raise_on_odd, on_error="keep")
        assert [r["even"] for r in result.ok_rows] == [0, 2]

    def test_seeded_failure_carries_child_seed(self):
        def fail_all(value, seed):
            raise ValueError("nope")

        result = sweep([10, 11], fail_all, seed=42, on_error="keep")
        seeds = [f.seed for f in result.failed]
        assert seeds[0] == (42, (0,))
        assert seeds[1] == (42, (1,))

    def test_unseeded_failure_has_none_seed(self):
        result = sweep([1], raise_on_odd, on_error="keep")
        assert result.failed[0].seed is None

    def test_grid_sweep_keep(self):
        result = grid_sweep(
            {"x": [1, 2], "y": [10, 20]}, grid_raise, on_error="keep"
        )
        assert len(result.failed) == 1
        assert result.failed[0].params == {"x": 2, "y": 20}

    def test_invalid_on_error_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep([1], square, on_error="ignore")

    def test_mixed_table_renders(self):
        result = sweep([0, 1], raise_on_odd, on_error="keep")
        table = result.to_table()
        assert "error" in table


class TestAcceptance:
    """The ISSUE's acceptance scenario: a 16-point sweep with 2 injected
    worker faults (1 raise, 1 timeout) completes with 14 ok rows + 2
    failure rows carrying seeds/tracebacks, and resuming from its
    checkpoint re-runs only the failed points with identical values for
    the rest."""

    def test_16_points_2_faults_then_resume(self, tmp_path, monkeypatch):
        calls = str(tmp_path / "calls.log")
        ckpt = str(tmp_path / "sweep.jsonl")
        monkeypatch.setenv("REPRO_TEST_SWEEP_CALLS", calls)
        monkeypatch.delenv("REPRO_TEST_SWEEP_HEALED", raising=False)

        tr = Tracer()
        first = sweep(
            range(16),
            faulty_point,
            param_name="value",
            n_jobs=4,
            seed=42,
            on_error="keep",
            timeout=1.5,
            checkpoint=ckpt,
            tracer=tr,
        )
        assert len(first) == 16
        assert len(first.ok_rows) == 14
        assert len(first.failed) == 2
        raised = next(f for f in first.failed if f.params["value"] == 3)
        hung = next(f for f in first.failed if f.params["value"] == 7)
        assert "ValueError: injected worker fault" in raised.error
        assert "injected worker fault" in raised.traceback
        assert raised.seed == (42, (3,))
        assert "timed out after 1.5s" in hung.error
        assert hung.seed == (42, (7,))
        assert sorted(_read_calls(calls)) == list(range(16))
        assert tr.counters["sweep.points.ok"] == 14
        assert tr.counters["sweep.points.failed"] == 2
        events = [e["event"] for e in tr.events]
        assert events[0] == "sweep.start" and events[-1] == "sweep.end"

        # resume: faults healed, only the 2 failed points re-run
        open(calls, "w").close()
        monkeypatch.setenv("REPRO_TEST_SWEEP_HEALED", "1")
        resumed = sweep(
            range(16),
            faulty_point,
            param_name="value",
            n_jobs=4,
            seed=42,
            on_error="keep",
            timeout=1.5,
            checkpoint=ckpt,
        )
        assert sorted(_read_calls(calls)) == [3, 7]
        assert len(resumed.ok_rows) == 16
        assert resumed.failed == ()
        # completed points replay the exact same row values
        ok_by_value = {r["value"]: r for r in first.ok_rows}
        for row in resumed.rows:
            if row["value"] in ok_by_value:
                assert row == ok_by_value[row["value"]]
        # and the resumed rows are exactly the seeded no-fault rows
        monkeypatch.delenv("REPRO_TEST_SWEEP_CALLS")
        fresh = sweep(
            range(16),
            faulty_point,
            param_name="value",
            seed=42,
            n_jobs=1,
        )
        assert list(resumed.rows) == list(fresh.rows)


class TestCheckpointResume:
    def test_interrupted_sweep_resumes_deterministically(
        self, tmp_path, monkeypatch
    ):
        calls = str(tmp_path / "calls.log")
        ckpt = str(tmp_path / "sweep.jsonl")
        monkeypatch.setenv("REPRO_TEST_SWEEP_CALLS", calls)

        full = sweep(range(6), logged_square, seed=7, checkpoint=ckpt)
        assert sorted(_read_calls(calls)) == list(range(6))

        open(calls, "w").close()
        replay = sweep(range(6), logged_square, seed=7, checkpoint=ckpt)
        assert _read_calls(calls) == []  # nothing re-ran
        assert list(replay.rows) == list(full.rows)

    def test_changed_grid_rejects_stale_checkpoint(self, tmp_path):
        ckpt = str(tmp_path / "sweep.jsonl")
        sweep([1, 2], seeded_draw, seed=1, checkpoint=ckpt)
        with pytest.raises(CheckpointError):
            sweep([1, 3], seeded_draw, seed=1, checkpoint=ckpt)

    def test_changed_seed_rejects_stale_checkpoint(self, tmp_path):
        ckpt = str(tmp_path / "sweep.jsonl")
        sweep([1, 2], seeded_draw, seed=1, checkpoint=ckpt)
        with pytest.raises(CheckpointError):
            sweep([1, 2], seeded_draw, seed=2, checkpoint=ckpt)

    def test_checkpointed_rows_match_uncheckpointed(self, tmp_path):
        ckpt = str(tmp_path / "sweep.jsonl")
        with_ckpt = sweep([1, 2, 3], seeded_draw, seed=9, checkpoint=ckpt)
        without = sweep([1, 2, 3], seeded_draw, seed=9)
        assert list(with_ckpt.rows) == list(without.rows)

    def test_grid_sweep_checkpoint(self, tmp_path, monkeypatch):
        calls = str(tmp_path / "calls.log")
        ckpt = str(tmp_path / "grid.jsonl")
        monkeypatch.setenv("REPRO_TEST_SWEEP_CALLS", calls)

        def worker(x, y):
            _log_call(x * 10 + y)
            return {"sum": x + y}

        first = grid_sweep({"x": [1, 2], "y": [3, 4]}, worker,
                           checkpoint=ckpt)
        open(calls, "w").close()
        again = grid_sweep({"x": [1, 2], "y": [3, 4]}, worker,
                           checkpoint=ckpt)
        assert _read_calls(calls) == []
        assert list(again.rows) == list(first.rows)


class TestRetries:
    def test_transient_failure_recovered(self, tmp_path, monkeypatch):
        marker_dir = tmp_path / "markers"
        marker_dir.mkdir()
        monkeypatch.setenv("REPRO_TEST_FLAKY_DIR", str(marker_dir))

        result = sweep(
            [4, 5],
            flaky_square,
            n_jobs=2,
            retries=2,
            retry_backoff=0.01,
            on_error="keep",
        )
        assert result.failed == ()
        assert [r["square"] for r in result.rows] == [16, 25]


def flaky_square(value):
    """Fails the first attempt per value, succeeds on retry."""
    marker = os.path.join(
        os.environ["REPRO_TEST_FLAKY_DIR"], f"seen.{value}"
    )
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        raise RuntimeError("transient glitch")
    return {"square": value * value}
