"""Tests for redundancy mechanisms (repro.redundancy)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.redundancy.interop import InteropNetwork, availability_under_outages
from repro.redundancy.knockout import (
    GenomeModel,
    ecoli_like_genome,
    knockout_scan,
)
from repro.redundancy.nversion import (
    RedundantComputer,
    simulate_failures,
    system_failure_probability,
)
from repro.redundancy.raid import RaidArray, RaidLevel
from repro.redundancy.reserve import ReserveBuffer, survival_through_interruption

import numpy as np


class TestReserveBuffer:
    def test_absorb_and_refill(self):
        buf = ReserveBuffer(initial=10.0, capacity=15.0)
        assert buf.absorb(4.0) == 0.0
        assert buf.level == 6.0
        assert buf.refill(20.0) == 11.0  # only 9 fit
        assert buf.level == 15.0

    def test_absorb_returns_uncovered(self):
        buf = ReserveBuffer(initial=3.0)
        assert buf.absorb(10.0) == 7.0
        assert buf.is_empty

    def test_uncapped_refill(self):
        buf = ReserveBuffer(initial=0.0)
        assert buf.refill(100.0) == 0.0
        assert buf.level == 100.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ReserveBuffer(initial=-1.0)
        with pytest.raises(ConfigurationError):
            ReserveBuffer(initial=10.0, capacity=5.0)
        buf = ReserveBuffer(initial=1.0)
        with pytest.raises(ConfigurationError):
            buf.absorb(-1.0)
        with pytest.raises(ConfigurationError):
            buf.refill(-1.0)

    def test_survival_closed_form(self):
        assert survival_through_interruption(100.0, 10.0, 10)
        assert not survival_through_interruption(99.0, 10.0, 10)


class TestKnockout:
    def test_viability_logic(self):
        genome = GenomeModel(n_genes=4, coverage=((0, 1), (2,)))
        assert genome.viable({0})  # gene 1 covers function 0
        assert not genome.viable({2})  # sole cover of function 1
        assert not genome.viable({0, 1})
        assert genome.essential_genes() == frozenset({2})

    def test_scan_counts(self):
        genome = GenomeModel(n_genes=4, coverage=((0, 1), (2,)))
        scan = knockout_scan(genome)
        # genes 0,1,3 survive single knockout; gene 2 lethal
        assert scan.n_viable == 3
        assert scan.redundant_fraction == pytest.approx(0.75)

    def test_ecoli_like_fraction_matches_paper(self):
        """§3.1.1: ~4,000 of ~4,300 genes are redundant (≈93 %)."""
        genome = ecoli_like_genome(seed=0)
        scan = knockout_scan(genome)
        assert 0.85 <= scan.redundant_fraction <= 0.99
        assert scan.n_genes == 4300

    def test_no_redundancy_means_all_covering_genes_essential(self):
        genome = ecoli_like_genome(
            n_genes=100, n_functions=50, mean_redundancy=1.0, seed=1
        )
        scan = knockout_scan(genome)
        # every function has exactly one covering gene, but one gene may
        # cover several functions: essential = distinct covering genes
        essential = genome.essential_genes()
        assert scan.n_viable == 100 - len(essential)
        assert len(essential) <= 50

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GenomeModel(n_genes=2, coverage=((5,),))
        with pytest.raises(ConfigurationError):
            GenomeModel(n_genes=2, coverage=((),))
        with pytest.raises(ConfigurationError):
            ecoli_like_genome(n_genes=10, n_functions=20)
        with pytest.raises(ConfigurationError):
            ecoli_like_genome(mean_redundancy=0.5)


class TestRaid:
    def test_tolerances(self):
        assert RaidLevel.RAID0.tolerated_failures(4) == 0
        assert RaidLevel.RAID1.tolerated_failures(4) == 3
        assert RaidLevel.RAID5.tolerated_failures(4) == 1
        assert RaidLevel.RAID6.tolerated_failures(4) == 2

    def test_capacity_cost(self):
        assert RaidLevel.RAID0.data_disks(4) == 4
        assert RaidLevel.RAID1.data_disks(4) == 1
        assert RaidLevel.RAID5.data_disks(4) == 3
        assert RaidLevel.RAID6.data_disks(4) == 2

    def test_single_period_loss_exact(self):
        arr = RaidArray(4, RaidLevel.RAID0, disk_failure_p=0.1)
        # loss iff any disk fails: 1 - 0.9^4
        assert arr.single_period_loss_probability() == pytest.approx(
            1 - 0.9**4
        )

    def test_redundancy_ordering(self):
        """§3.1.2: redundancy keeps the system functioning through
        disk failures."""
        p = 0.02
        horizon, trials = 60, 300
        survival = {}
        for level in (RaidLevel.RAID0, RaidLevel.RAID5, RaidLevel.RAID6):
            arr = RaidArray(6, level, p, rebuild_periods=1)
            survival[level] = arr.estimate_survival(
                horizon, trials, seed=7
            ).survival_probability
        assert survival[RaidLevel.RAID0] < survival[RaidLevel.RAID5]
        assert survival[RaidLevel.RAID5] <= survival[RaidLevel.RAID6]

    def test_rebuild_improves_survival(self):
        p = 0.03
        no_rebuild = RaidArray(5, RaidLevel.RAID5, p, rebuild_periods=0)
        rebuild = RaidArray(5, RaidLevel.RAID5, p, rebuild_periods=1)
        s0 = no_rebuild.estimate_survival(50, 300, seed=8).survival_probability
        s1 = rebuild.estimate_survival(50, 300, seed=8).survival_probability
        assert s1 > s0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RaidArray(2, RaidLevel.RAID5, 0.1)
        with pytest.raises(ConfigurationError):
            RaidArray(4, RaidLevel.RAID5, 1.5)
        arr = RaidArray(4, RaidLevel.RAID5, 0.1)
        with pytest.raises(ConfigurationError):
            arr.simulate_lifetime(0)
        with pytest.raises(ConfigurationError):
            arr.survives_concurrent(-1)


class TestInterop:
    def test_siloed_vs_full_availability(self):
        """§3.1.3: interoperability is a form of redundancy."""
        siloed = availability_under_outages(
            InteropNetwork.siloed(5), outage_p=0.3, trials=500, seed=0
        )
        full = availability_under_outages(
            InteropNetwork.fully_interoperable(5), outage_p=0.3,
            trials=500, seed=0,
        )
        assert full > siloed
        # siloed availability ≈ 1 - outage_p
        assert siloed == pytest.approx(0.7, abs=0.05)

    def test_missions_served_logic(self):
        net = InteropNetwork(
            2, ((True, True), (False, True))
        )  # agency 0 can cover both; agency 1 only itself
        assert net.missions_served(np.asarray([True, False])) == 2
        assert net.missions_served(np.asarray([False, True])) == 1
        assert net.missions_served(np.asarray([False, False])) == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            InteropNetwork(2, ((True,),))
        with pytest.raises(ConfigurationError):
            InteropNetwork(2, ((False, True), (True, True)))  # no self-serve
        net = InteropNetwork.siloed(3)
        with pytest.raises(ConfigurationError):
            net.missions_served(np.asarray([True]))
        with pytest.raises(ConfigurationError):
            availability_under_outages(net, outage_p=1.5)


class TestNVersion:
    def test_design_diversity_reduces_common_mode_failure(self):
        """§3.2.2: identical designs share one flaw; diverse designs
        don't fail together."""
        p_ind, p_design = 1e-4, 1e-2
        identical = RedundantComputer.identical_triplex(p_ind, p_design)
        diverse = RedundantComputer.diverse_triplex(p_ind, p_design)
        p_identical = system_failure_probability(identical)
        p_diverse = system_failure_probability(diverse)
        # identical triplex fails at roughly the design-flaw rate
        assert p_identical == pytest.approx(p_design, rel=0.1)
        # diverse triplex is orders of magnitude safer
        assert p_diverse < p_identical / 20

    def test_simulation_matches_exact(self):
        computer = RedundantComputer.diverse_triplex(0.05, 0.05)
        exact = system_failure_probability(computer)
        estimate = simulate_failures(computer, trials=40_000, seed=1)
        assert estimate == pytest.approx(exact, abs=0.01)

    def test_quorum_of_one_is_most_forgiving(self):
        strict = RedundantComputer((0, 1, 2), 0.2, 0.0, quorum=3)
        loose = RedundantComputer((0, 1, 2), 0.2, 0.0, quorum=1)
        assert system_failure_probability(loose) < system_failure_probability(
            strict
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RedundantComputer((), 0.1, 0.1)
        with pytest.raises(ConfigurationError):
            RedundantComputer((0, 1), 1.5, 0.1)
        with pytest.raises(ConfigurationError):
            RedundantComputer((0, 1), 0.1, 0.1, quorum=3)


@settings(max_examples=25, deadline=None)
@given(
    p_design=st.floats(0.0, 0.3),
    p_ind=st.floats(0.0, 0.05),
)
def test_property_diversity_never_hurts_when_flaws_dominate(p_design, p_ind):
    """Diversity helps whenever design flaws dominate independent faults.

    (With high independent failure rates and a 2-of-3 quorum, *correlated*
    failures can actually lose quorum less often — so the property is
    stated, as in the paper's Boeing argument, for the regime where the
    shared design flaw is the dominant hazard.)"""
    identical = RedundantComputer.identical_triplex(p_ind, p_design)
    diverse = RedundantComputer.diverse_triplex(p_ind, p_design)
    assert (
        system_failure_probability(diverse)
        <= system_failure_probability(identical) + 1e-9
    )
