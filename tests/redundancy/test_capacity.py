"""Tests for generation-capacity adequacy (repro.redundancy.capacity)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.redundancy.capacity import GenerationFleet, PlantClass


def japan_like_fleet(margin_plants=0):
    """~30 % nuclear plus thermal, with optional extra thermal units."""
    return GenerationFleet([
        PlantClass("nuclear", count=10, unit_capacity=3.0, outage_p=0.02),
        PlantClass("thermal", count=35 + margin_plants, unit_capacity=2.0,
                   outage_p=0.05),
    ])


class TestFleetBasics:
    def test_installed_capacity_and_margin(self):
        fleet = japan_like_fleet()
        assert fleet.installed_capacity == pytest.approx(100.0)
        assert fleet.margin_over(80.0) == pytest.approx(0.25)

    def test_without_class(self):
        fleet = japan_like_fleet().without_class("nuclear")
        assert fleet.installed_capacity == pytest.approx(70.0)

    def test_without_unknown_class(self):
        with pytest.raises(ConfigurationError):
            japan_like_fleet().without_class("fusion")

    def test_cannot_remove_only_class(self):
        fleet = GenerationFleet([
            PlantClass("solo", count=1, unit_capacity=1.0, outage_p=0.0)
        ])
        with pytest.raises(ConfigurationError):
            fleet.without_class("solo")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GenerationFleet([])
        with pytest.raises(ConfigurationError):
            PlantClass("", 1, 1.0, 0.1)
        with pytest.raises(ConfigurationError):
            PlantClass("x", -1, 1.0, 0.1)
        with pytest.raises(ConfigurationError):
            PlantClass("x", 1, 0.0, 0.1)
        with pytest.raises(ConfigurationError):
            PlantClass("x", 1, 1.0, 1.5)
        duplicate = PlantClass("a", 1, 1.0, 0.1)
        with pytest.raises(ConfigurationError):
            GenerationFleet([duplicate, duplicate])


class TestAdequacy:
    def test_huge_margin_never_blacks_out(self):
        fleet = japan_like_fleet(margin_plants=20)
        result = fleet.simulate_adequacy(
            mean_demand=70.0, demand_sigma=5.0, periods=500, seed=0
        )
        assert result.blackout_probability < 0.01

    def test_paper_scenario_nuclear_shutdown_absorbed_by_margin(self):
        """§3.1.2: losing ~30 % of capacity without major blackout needs
        a huge excess margin — and only then."""
        demand = 60.0
        fat = japan_like_fleet(margin_plants=15)  # installed 130
        thin = japan_like_fleet(margin_plants=0)  # installed 100
        fat_after = fat.without_class("nuclear")  # 100 left
        thin_after = thin.without_class("nuclear")  # 70 left
        fat_result = fat_after.simulate_adequacy(demand, 4.0, 500, seed=1)
        thin_result = thin_after.simulate_adequacy(demand, 4.0, 500, seed=1)
        assert fat_result.blackout_probability < 0.02
        assert thin_result.blackout_probability > \
            fat_result.blackout_probability

    def test_blackout_probability_decreases_with_margin(self):
        demand = 80.0
        results = []
        for extra in (0, 5, 15):
            fleet = japan_like_fleet(margin_plants=extra)
            results.append(
                fleet.simulate_adequacy(demand, 6.0, 400, seed=2)
                .blackout_probability
            )
        assert results[0] >= results[1] >= results[2]

    def test_shortfall_reported(self):
        fleet = GenerationFleet([
            PlantClass("tiny", count=2, unit_capacity=1.0, outage_p=0.5)
        ])
        result = fleet.simulate_adequacy(5.0, 0.0, 100, seed=3)
        assert result.blackout_probability == 1.0
        assert result.worst_shortfall >= 3.0

    def test_validation(self):
        fleet = japan_like_fleet()
        with pytest.raises(ConfigurationError):
            fleet.simulate_adequacy(0.0, 1.0)
        with pytest.raises(ConfigurationError):
            fleet.simulate_adequacy(10.0, -1.0)
        with pytest.raises(ConfigurationError):
            fleet.simulate_adequacy(10.0, 1.0, periods=0)
        with pytest.raises(ConfigurationError):
            fleet.margin_over(0.0)
