"""Tests for the Bruneau resilience metric (repro.core.bruneau)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.bruneau import assess, resilience_loss, resilience_score
from repro.core.quality import QualityTrace, linear_recovery_trace, step_trace
from repro.errors import AnalysisError


class TestResilienceLoss:
    def test_triangle_area(self):
        """Fig. 3: the loss of the linear-recovery shape is the triangle area."""
        trace = linear_recovery_trace(t0=10, t1=30, depth=50)
        assert resilience_loss(trace) == pytest.approx(50 * 20 / 2, rel=1e-3)

    def test_no_degradation_is_zero_loss(self):
        trace = QualityTrace.from_samples([0, 10], [100, 100])
        assert resilience_loss(trace) == 0.0

    def test_unrecovered_integrates_to_end(self):
        trace = QualityTrace.from_samples([0, 1, 10], [100, 50, 50])
        # degraded from t=1 to t=10 at depth 50
        assert resilience_loss(trace) == pytest.approx(50 * 9, rel=0.1)

    def test_smaller_triangle_more_resilient(self):
        """The paper's reading: smaller area = more resilient."""
        quick = linear_recovery_trace(t0=0, t1=5, depth=30)
        slow = linear_recovery_trace(t0=0, t1=25, depth=30)
        assert resilience_loss(quick) < resilience_loss(slow)

    def test_shallower_drop_more_resilient(self):
        shallow = linear_recovery_trace(t0=0, t1=10, depth=10)
        deep = linear_recovery_trace(t0=0, t1=10, depth=80)
        assert resilience_loss(shallow) < resilience_loss(deep)


class TestAssess:
    def test_decomposition(self):
        trace = linear_recovery_trace(t0=10, t1=30, depth=50)
        a = assess(trace)
        assert a.drop_depth == pytest.approx(50)
        assert a.recovery_time == pytest.approx(20)
        assert a.recovered

    def test_unrecovered_flag(self):
        trace = QualityTrace.from_samples([0, 1, 5], [100, 40, 60])
        a = assess(trace)
        assert not a.recovered
        assert a.recovery_time is None

    def test_never_degraded_counts_as_recovered(self):
        trace = QualityTrace.from_samples([0, 5], [100, 100])
        a = assess(trace)
        assert a.recovered
        assert a.loss == 0.0

    def test_normalized_loss_bounds(self):
        trace = step_trace(t0=0, t1=10, depth=100)
        a = assess(trace)
        assert 0.0 <= a.normalized_loss <= 1.0
        assert a.normalized_loss == pytest.approx(1.0, rel=1e-3)


class TestResilienceScore:
    def test_perfect_system_scores_one(self):
        trace = QualityTrace.from_samples([0, 10], [100, 100])
        assert resilience_score(trace) == pytest.approx(1.0)

    def test_total_outage_scores_zero(self):
        trace = QualityTrace.from_samples([0, 10], [0, 0])
        assert resilience_score(trace) == pytest.approx(0.0, abs=1e-6)

    def test_score_orders_like_loss(self):
        quick = linear_recovery_trace(t0=0, t1=5, depth=30, t_post=40)
        slow = linear_recovery_trace(t0=0, t1=25, depth=30, t_post=40)
        assert resilience_score(quick, horizon=40) > resilience_score(
            slow, horizon=40
        )

    def test_bad_horizon_raises(self):
        trace = QualityTrace.from_samples([0, 10], [100, 100])
        with pytest.raises(AnalysisError):
            resilience_score(trace, horizon=0)


@given(
    depth=st.floats(min_value=1.0, max_value=100.0),
    duration=st.floats(min_value=1.0, max_value=100.0),
)
def test_property_loss_monotone_in_depth_and_duration(depth, duration):
    """Loss increases with both Bruneau dimensions."""
    base = linear_recovery_trace(t0=0, t1=duration, depth=depth)
    deeper = linear_recovery_trace(
        t0=0, t1=duration, depth=min(100.0, depth * 1.1 + 0.1)
    )
    assert resilience_loss(deeper) >= resilience_loss(base) - 1e-9


@given(
    t1=st.floats(min_value=1.0, max_value=50.0),
    depth=st.floats(min_value=1.0, max_value=100.0),
)
def test_property_score_in_unit_interval(t1, depth):
    trace = linear_recovery_trace(t0=0, t1=t1, depth=depth)
    s = resilience_score(trace)
    assert 0.0 <= s <= 1.0
