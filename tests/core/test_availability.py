"""Tests for QualityTrace.availability."""

from __future__ import annotations

import pytest

from repro.core.quality import QualityTrace, step_trace
from repro.errors import ConfigurationError


class TestAvailability:
    def test_flat_full_quality_is_one(self):
        trace = QualityTrace.from_samples([0, 10], [100, 100])
        assert trace.availability() == pytest.approx(1.0)

    def test_flat_degraded_is_zero_at_full_threshold(self):
        trace = QualityTrace.from_samples([0, 10], [90, 90])
        assert trace.availability(threshold=100.0) == pytest.approx(
            0.0, abs=1e-3
        )
        assert trace.availability(threshold=90.0) == pytest.approx(1.0)

    def test_rectangular_outage_fraction(self):
        # down (depth 50) from t=10 to t=20 in a 0..21 window
        trace = step_trace(t0=10, t1=20, depth=50, t_pre=0, t_post=21)
        availability = trace.availability(threshold=99.0)
        assert availability == pytest.approx(11 / 21, abs=0.02)

    def test_threshold_monotonicity(self):
        trace = step_trace(t0=2, t1=6, depth=30, t_pre=0, t_post=10)
        loose = trace.availability(threshold=50.0)
        strict = trace.availability(threshold=95.0)
        assert loose >= strict

    def test_validation(self):
        trace = QualityTrace.from_samples([0, 1], [100, 100])
        with pytest.raises(ConfigurationError):
            trace.availability(threshold=150.0)
        with pytest.raises(ConfigurationError):
            trace.availability(resolution=1)


def test_main_module_smoke(capsys):
    """python -m repro runs the self-demo end to end."""
    from repro.__main__ import main

    main()
    out = capsys.readouterr().out
    assert "spacecraft example" in out
    assert "minimal_k" in out
    assert "scale-free" in out
