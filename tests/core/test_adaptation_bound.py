"""Tests for environment-shift adaptation bounds
(repro.core.recoverability.adaptation_bound)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.recoverability import adaptation_bound
from repro.csp import (
    LinearConstraint,
    PredicateConstraint,
    all_components_good,
    boolean_csp,
)
from repro.errors import ConfigurationError


def names(n):
    return [f"x{i}" for i in range(n)]


def want_all(n, value):
    op = ">=" if value else "<="
    return boolean_csp(n, [
        LinearConstraint([f"x{i}"], [1.0], op, float(value), name=f"c{i}")
        for i in range(n)
    ])


class TestAdaptationBound:
    def test_identity_shift_is_zero(self):
        csp = want_all(4, 1)
        assert adaptation_bound(csp, csp) == 0

    def test_full_inversion_costs_n(self):
        """Fig. 4's worst case: the new environment wants the complement."""
        n = 5
        assert adaptation_bound(want_all(n, 1), want_all(n, 0)) == n

    def test_flips_per_step_divides(self):
        n = 6
        assert adaptation_bound(want_all(n, 1), want_all(n, 0),
                                flips_per_step=2) == 3
        assert adaptation_bound(want_all(n, 1), want_all(n, 0),
                                flips_per_step=6) == 1

    def test_overlapping_environments_cheaper(self):
        """New environment keeps half the old requirements."""
        n = 4
        before = want_all(n, 1)
        after = boolean_csp(n, [
            LinearConstraint(["x0"], [1.0], ">=", 1.0, name="keep0"),
            LinearConstraint(["x1"], [1.0], ">=", 1.0, name="keep1"),
            LinearConstraint(["x2"], [1.0], "<=", 0.0, name="flip2"),
            LinearConstraint(["x3"], [1.0], "<=", 0.0, name="flip3"),
        ])
        assert adaptation_bound(before, after) == 2

    def test_unsatisfiable_new_environment_none(self):
        n = 3
        before = want_all(n, 1)
        impossible = boolean_csp(n, [
            all_components_good(names(n)),
            PredicateConstraint(names(n), lambda *v: sum(v) == 0,
                                name="all_zero"),
        ])
        assert adaptation_bound(before, impossible) is None

    def test_larger_new_fit_set_never_increases_bound(self):
        """A more permissive C' can only shorten adaptation."""
        n = 4
        before = want_all(n, 1)
        strict = want_all(n, 0)
        lenient = boolean_csp(n, [
            LinearConstraint(names(n), [1.0] * n, "<=", 1.0,
                             name="at_most_one_good"),
        ])
        assert adaptation_bound(before, lenient) <= \
            adaptation_bound(before, strict)

    def test_invalid_flips(self):
        csp = want_all(2, 1)
        with pytest.raises(ConfigurationError):
            adaptation_bound(csp, csp, flips_per_step=0)


@settings(max_examples=20, deadline=None)
@given(n=st.integers(1, 5))
def test_property_inversion_bound_is_n(n):
    assert adaptation_bound(want_all(n, 1), want_all(n, 0)) == n
