"""Tests for resilience reports (repro.core.report)."""

from __future__ import annotations

import pytest

from repro.core.quality import QualityTrace, linear_recovery_trace
from repro.core.report import ResilienceReport, TrialOutcome, compare_reports
from repro.errors import AnalysisError


def make_report(name="sys", losses=(10, 20)):
    report = ResilienceReport(name)
    for depth in losses:
        report.add_trace(linear_recovery_trace(0, 10, depth))
    return report


class TestResilienceReport:
    def test_empty_report_raises_on_aggregates(self):
        report = ResilienceReport("empty")
        with pytest.raises(AnalysisError):
            _ = report.survival_rate

    def test_survival_rate(self):
        report = ResilienceReport("s")
        report.add_trace(linear_recovery_trace(0, 5, 10), survived=True)
        report.add_trace(linear_recovery_trace(0, 5, 10), survived=False)
        assert report.survival_rate == 0.5

    def test_mean_loss(self):
        report = make_report(losses=(20, 40))
        # triangle areas: 100 and 200
        assert report.mean_loss == pytest.approx(150, rel=1e-2)

    def test_recovery_rate_counts_recovered(self):
        report = ResilienceReport("r")
        report.add_trace(linear_recovery_trace(0, 5, 10))
        report.add_trace(
            QualityTrace.from_samples([0, 1, 5], [100, 50, 60])
        )  # never recovers
        assert report.recovery_rate == 0.5

    def test_mean_recovery_time_none_when_no_recoveries(self):
        report = ResilienceReport("r")
        report.add_trace(QualityTrace.from_samples([0, 1, 5], [100, 50, 60]))
        assert report.mean_recovery_time is None

    def test_summary_row_keys(self):
        row = make_report().summary_row()
        assert row["system"] == "sys"
        assert row["trials"] == 2
        assert "mean_loss" in row

    def test_add_outcome_directly(self):
        from repro.core.bruneau import assess

        report = ResilienceReport("x")
        trace = linear_recovery_trace(0, 5, 10)
        report.add(TrialOutcome(assessment=assess(trace), survived=True))
        assert report.n_trials == 1


class TestCompareReports:
    def test_renders_all_systems(self):
        table = compare_reports([make_report("alpha"), make_report("beta")])
        assert "alpha" in table
        assert "beta" in table
        assert "survival_rate" in table

    def test_missing_recovery_renders_dash(self):
        report = ResilienceReport("never")
        report.add_trace(QualityTrace.from_samples([0, 1, 5], [100, 50, 60]))
        table = compare_reports([report])
        assert "-" in table.splitlines()[-1]

    def test_empty_list_raises(self):
        with pytest.raises(AnalysisError):
            compare_reports([])
