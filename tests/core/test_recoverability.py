"""Tests for k-recoverability (repro.core.recoverability)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.recoverability import (
    AdversarialBitDamage,
    BoundedComponentDamage,
    is_k_recoverable,
    minimal_recovery_bound,
    recovery_steps,
)
from repro.csp import BitString, all_components_good, at_least_k_good, boolean_csp
from repro.errors import ConfigurationError


def all_good_csp(n: int):
    return boolean_csp(n, [all_components_good([f"x{i}" for i in range(n)])])


class TestRecoverySteps:
    def test_zero_when_already_fit(self):
        fit = [BitString.ones(4)]
        assert recovery_steps(BitString.ones(4), fit) == 0

    def test_equals_hamming_distance(self):
        fit = [BitString.ones(4)]
        damaged = BitString.from_string("1001")
        assert recovery_steps(damaged, fit) == 2

    def test_flips_per_step_divides(self):
        fit = [BitString.ones(6)]
        damaged = BitString.zeros(6)
        assert recovery_steps(damaged, fit, flips_per_step=1) == 6
        assert recovery_steps(damaged, fit, flips_per_step=2) == 3
        assert recovery_steps(damaged, fit, flips_per_step=4) == 2

    def test_nearest_of_multiple_targets(self):
        fit = [BitString.from_string("1111"), BitString.from_string("0000")]
        damaged = BitString.from_string("0001")
        assert recovery_steps(damaged, fit) == 1  # closer to 0000

    def test_empty_fit_set_returns_none(self):
        assert recovery_steps(BitString.zeros(3), []) is None

    def test_invalid_flips_per_step(self):
        with pytest.raises(ConfigurationError):
            recovery_steps(BitString.zeros(3), [BitString.ones(3)],
                           flips_per_step=0)


class TestSpacecraftExample:
    """The paper's §4.2 example: C = 1^n, debris fails ≤ k components,
    one repair per step ⇒ exactly k-recoverable."""

    @pytest.mark.parametrize("n,k", [(4, 1), (5, 2), (6, 3), (6, 6)])
    def test_paper_example_exact_bound(self, n, k):
        csp = all_good_csp(n)
        assert minimal_recovery_bound(csp, BoundedComponentDamage(k)) == k

    def test_k_recoverable_predicate(self):
        csp = all_good_csp(5)
        assert is_k_recoverable(csp, BoundedComponentDamage(2), k=2).is_k_recoverable
        assert not is_k_recoverable(
            csp, BoundedComponentDamage(2), k=1
        ).is_k_recoverable

    def test_faster_repair_halves_bound(self):
        csp = all_good_csp(6)
        assert minimal_recovery_bound(
            csp, BoundedComponentDamage(4), flips_per_step=2
        ) == 2

    def test_witness_is_worst_case(self):
        csp = all_good_csp(4)
        report = is_k_recoverable(csp, BoundedComponentDamage(3), k=3)
        assert report.witness is not None
        start, damaged = report.witness
        assert start.hamming(damaged) == report.worst_steps == 3


class TestDegradedConstraint:
    def test_tolerant_constraint_needs_fewer_repairs_from_full_health(self):
        """From full health, at-least-(n−1)-good absorbs one of two failures."""
        n = 5
        names = [f"x{i}" for i in range(n)]
        csp = boolean_csp(n, [at_least_k_good(names, n - 1)])
        report = is_k_recoverable(
            csp,
            BoundedComponentDamage(2),
            k=1,
            start_states=[BitString.ones(n)],
        )
        assert report.is_k_recoverable
        assert report.worst_steps == 1

    def test_tolerant_constraint_worst_case_starts_degraded(self):
        """Over *all* fit start states the bound matches the damage size:
        a fit-but-boundary state loses its slack."""
        n = 5
        names = [f"x{i}" for i in range(n)]
        csp = boolean_csp(n, [at_least_k_good(names, n - 1)])
        assert minimal_recovery_bound(csp, BoundedComponentDamage(2)) == 2

    def test_unsatisfiable_post_environment(self):
        """If C' is empty, the system is unrecoverable."""
        n = 3
        names = [f"x{i}" for i in range(n)]
        csp = all_good_csp(n)
        from repro.csp import PredicateConstraint

        contradiction = boolean_csp(
            n,
            [
                all_components_good(names),
                PredicateConstraint(names, lambda *vs: sum(vs) == 0,
                                    name="all_failed"),
            ],
        )
        report = is_k_recoverable(
            csp, BoundedComponentDamage(1), k=5, post_event_csp=contradiction
        )
        assert not report.recoverable
        assert not report.is_k_recoverable


class TestDamageModels:
    def test_bounded_damage_only_clears_bits(self):
        damage = BoundedComponentDamage(2)
        start = BitString.from_string("1100")
        for outcome in damage.outcomes(start):
            # no new 1s appear
            assert (outcome.mask & ~start.mask) == 0

    def test_bounded_damage_outcome_count(self):
        damage = BoundedComponentDamage(2)
        start = BitString.ones(4)
        outcomes = list(damage.outcomes(start))
        # C(4,0) + C(4,1) + C(4,2) = 1 + 4 + 6
        assert len(outcomes) == 11

    def test_adversarial_includes_bit_sets(self):
        damage = AdversarialBitDamage(1)
        start = BitString.zeros(3)
        outcomes = set(damage.outcomes(start))
        assert BitString.from_string("100") in outcomes

    def test_negative_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            BoundedComponentDamage(-1)
        with pytest.raises(ConfigurationError):
            AdversarialBitDamage(-2)


@settings(max_examples=25, deadline=None)
@given(n=st.integers(min_value=1, max_value=6),
       hits=st.integers(min_value=1, max_value=6))
def test_property_minimal_bound_equals_min_hits_n(n, hits):
    """For C = 1^n the minimal k is exactly min(hits, n)."""
    hits = min(hits, n)
    csp = all_good_csp(n)
    assert minimal_recovery_bound(csp, BoundedComponentDamage(hits)) == hits


@settings(max_examples=25, deadline=None)
@given(n=st.integers(min_value=2, max_value=6),
       radius=st.integers(min_value=0, max_value=3))
def test_property_adversarial_bound_equals_radius(n, radius):
    """Adversarial damage within Hamming radius r needs exactly r repairs."""
    radius = min(radius, n)
    csp = all_good_csp(n)
    assert minimal_recovery_bound(csp, AdversarialBitDamage(radius)) == radius
