"""Tests for the strategy taxonomy (repro.core.strategies)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.strategies import (
    STRATEGY_DESCRIPTIONS,
    ActiveMechanism,
    Strategy,
    StrategyMix,
)
from repro.errors import ConfigurationError


class TestTaxonomy:
    def test_three_passive_one_active(self):
        passive = [s for s in Strategy if s.is_passive]
        assert set(passive) == {
            Strategy.REDUNDANCY, Strategy.DIVERSITY, Strategy.ADAPTABILITY
        }
        assert not Strategy.ACTIVE.is_passive

    def test_every_strategy_documented(self):
        for s in Strategy:
            assert s in STRATEGY_DESCRIPTIONS
            assert STRATEGY_DESCRIPTIONS[s]

    def test_active_mechanisms_cover_section_34(self):
        names = {m.value for m in ActiveMechanism}
        assert "anticipation" in names
        assert "mode-switching" in names
        assert "consensus-building" in names
        assert len(names) == 5


class TestStrategyMix:
    def test_valid_mix(self):
        mix = StrategyMix(0.5, 0.3, 0.2)
        assert mix.redundancy == 0.5

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            StrategyMix(-0.1, 0.6, 0.5)

    def test_rejects_bad_sum(self):
        with pytest.raises(ConfigurationError):
            StrategyMix(0.5, 0.5, 0.5)

    def test_of_normalizes(self):
        mix = StrategyMix.of(2, 1, 1)
        assert mix.redundancy == pytest.approx(0.5)
        assert mix.diversity == pytest.approx(0.25)

    def test_of_rejects_all_zero(self):
        with pytest.raises(ConfigurationError):
            StrategyMix.of(0, 0, 0)

    def test_uniform_sums_to_one(self):
        mix = StrategyMix.uniform()
        assert mix.redundancy + mix.diversity + mix.adaptability == pytest.approx(1.0)

    def test_pure(self):
        assert StrategyMix.pure(Strategy.REDUNDANCY).redundancy == 1.0
        assert StrategyMix.pure(Strategy.DIVERSITY).diversity == 1.0
        assert StrategyMix.pure(Strategy.ADAPTABILITY).adaptability == 1.0

    def test_pure_rejects_active(self):
        with pytest.raises(ConfigurationError):
            StrategyMix.pure(Strategy.ACTIVE)

    def test_as_dict_keys(self):
        d = StrategyMix.uniform().as_dict()
        assert set(d) == {"redundancy", "diversity", "adaptability"}

    def test_blended_endpoints(self):
        a = StrategyMix.pure(Strategy.REDUNDANCY)
        b = StrategyMix.pure(Strategy.DIVERSITY)
        assert a.blended(b, 0.0) == a
        assert a.blended(b, 1.0) == b

    def test_blended_rejects_out_of_range(self):
        a = StrategyMix.uniform()
        with pytest.raises(ConfigurationError):
            a.blended(a, 1.5)


@given(
    r=st.floats(min_value=0.0, max_value=10.0),
    d=st.floats(min_value=0.0, max_value=10.0),
    a=st.floats(min_value=0.001, max_value=10.0),
)
def test_property_of_always_normalizes(r, d, a):
    mix = StrategyMix.of(r, d, a)
    assert mix.redundancy + mix.diversity + mix.adaptability == pytest.approx(1.0)
    assert mix.redundancy >= 0 and mix.diversity >= 0 and mix.adaptability >= 0
