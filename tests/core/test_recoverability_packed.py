"""Regression: packed (popcount) recoverability == scalar reference.

The exhaustive checks now route min-Hamming queries through a
:class:`PackedFitSet` (pack the fit set once, batch XOR+popcount).  This
suite pins the vectorized results against a scalar reimplementation of
the original per-outcome loop on small spaces.
"""

from __future__ import annotations

import math

import pytest

from repro.core.recoverability import (
    AdversarialBitDamage,
    BoundedComponentDamage,
    PackedFitSet,
    adaptation_bound,
    is_k_recoverable,
    recovery_steps,
)
from repro.csp import (
    BitString,
    all_components_good,
    at_least_k_good,
    boolean_csp,
)
from repro.csp.bitstring import BitSpace
from repro.errors import ConfigurationError


def _csp(n, k):
    names = [f"x{i}" for i in range(n)]
    return boolean_csp(n, [at_least_k_good(names, k)])


def _scalar_worst(csp, damage, fit_csp, flips):
    """The original scalar double loop, kept as the oracle."""
    fit_after = fit_csp.fit_bitstrings()
    worst, witness = None, None
    for start in sorted(csp.fit_bitstrings()):
        for outcome in damage.outcomes(start):
            d = BitSpace(outcome.n).recovery_distance(outcome, fit_after)
            if d < 0:
                return None, (start, outcome)
            steps = math.ceil(d / flips)
            if worst is None or steps > worst:
                worst, witness = steps, (start, outcome)
    return worst, witness


class TestPackedFitSet:
    def test_distances_match_scalar(self):
        space = BitSpace(6)
        fit = list(_csp(6, 4).fit_bitstrings())
        packed = PackedFitSet(fit)
        states = list(space.all_states())
        dists = packed.min_distances(states)
        for s, d in zip(states, dists):
            assert int(d) == space.recovery_distance(s, fit)

    def test_empty_fit_set(self):
        packed = PackedFitSet([])
        assert len(packed) == 0
        dists = packed.min_distances([BitString.zeros(4)])
        assert dists.tolist() == [-1]
        assert recovery_steps(BitString.zeros(4), packed) is None

    def test_length_mismatch_raises(self):
        packed = PackedFitSet([BitString.ones(4)])
        with pytest.raises(ConfigurationError):
            packed.min_distances([BitString.zeros(5)])

    def test_recovery_steps_accepts_packed(self):
        fit = [BitString.from_string("1111"), BitString.from_string("0000")]
        packed = PackedFitSet(fit)
        damaged = BitString.from_string("0001")
        assert recovery_steps(damaged, packed) == \
            recovery_steps(damaged, fit) == 1
        assert recovery_steps(BitString.from_string("0111"), packed,
                              flips_per_step=2) == 1


class TestVectorizedAgainstScalar:
    @pytest.mark.parametrize("n,thresh,flips", [
        (5, 3, 1), (5, 3, 2), (6, 4, 1), (6, 2, 3),
    ])
    def test_debris_worst_case_and_witness(self, n, thresh, flips):
        csp = _csp(n, thresh)
        damage = BoundedComponentDamage(max_failures=2)
        worst, witness = _scalar_worst(csp, damage, csp, flips)
        report = is_k_recoverable(csp, damage, k=n,
                                  flips_per_step=flips)
        assert report.recoverable
        assert report.worst_steps == worst
        assert report.witness == witness

    def test_adversarial_damage_matches(self):
        csp = _csp(5, 4)
        damage = AdversarialBitDamage(radius=2)
        worst, witness = _scalar_worst(csp, damage, csp, 1)
        report = is_k_recoverable(csp, damage, k=5)
        assert report.worst_steps == worst
        assert report.witness == witness

    def test_unrecoverable_witness_matches(self):
        from repro.csp import PredicateConstraint

        names = [f"x{i}" for i in range(4)]
        sat = boolean_csp(4, [at_least_k_good(names, 1)])
        unsat = boolean_csp(
            4,
            [PredicateConstraint(names, lambda *vals: False,
                                 name="never_satisfied")],
        )
        damage = BoundedComponentDamage(max_failures=1)
        worst, witness = _scalar_worst(sat, damage, unsat, 1)
        report = is_k_recoverable(sat, damage, k=2, post_event_csp=unsat)
        assert worst is None
        assert not report.recoverable
        assert report.worst_steps is None
        assert report.witness == witness

    def test_adaptation_bound_matches_scalar(self):
        before = _csp(6, 2)
        after = _csp(6, 5)
        fit_after = after.fit_bitstrings()
        space = BitSpace(6)
        scalar = max(
            math.ceil(space.recovery_distance(s, fit_after) / 2)
            for s in before.fit_bitstrings()
        )
        assert adaptation_bound(before, after, flips_per_step=2) == scalar

    def test_invalid_flips_rejected_before_search(self):
        with pytest.raises(ConfigurationError):
            is_k_recoverable(
                _csp(4, 2), BoundedComponentDamage(1), k=1,
                flips_per_step=0,
            )
