"""Tests for quality traces (repro.core.quality)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.quality import (
    FULL_QUALITY,
    QualityTrace,
    linear_recovery_trace,
    step_trace,
)
from repro.errors import AnalysisError, ConfigurationError


class TestQualityTraceConstruction:
    def test_basic_construction(self):
        trace = QualityTrace.from_samples([0, 1, 2], [100, 50, 100])
        assert trace.t_start == 0
        assert trace.t_end == 2
        assert trace.min_quality == 50

    def test_from_fraction_scales_to_percent(self):
        trace = QualityTrace.from_fraction([0, 1], [1.0, 0.5])
        assert trace.quality[1] == pytest.approx(50.0)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ConfigurationError):
            QualityTrace.from_samples([0, 1, 2], [100, 50])

    def test_rejects_single_sample(self):
        with pytest.raises(ConfigurationError):
            QualityTrace.from_samples([0], [100])

    def test_rejects_non_increasing_times(self):
        with pytest.raises(ConfigurationError):
            QualityTrace.from_samples([0, 0], [100, 100])
        with pytest.raises(ConfigurationError):
            QualityTrace.from_samples([1, 0], [100, 100])

    def test_rejects_out_of_range_quality(self):
        with pytest.raises(ConfigurationError):
            QualityTrace.from_samples([0, 1], [100, 101])
        with pytest.raises(ConfigurationError):
            QualityTrace.from_samples([0, 1], [-1, 100])

    def test_rejects_2d_arrays(self):
        with pytest.raises(ConfigurationError):
            QualityTrace(np.zeros((2, 2)), np.zeros((2, 2)))


class TestLandmarks:
    def test_shock_time_is_first_degradation(self):
        trace = QualityTrace.from_samples([0, 1, 2, 3], [100, 100, 80, 100])
        assert trace.shock_time() == 2

    def test_no_shock_returns_none(self):
        trace = QualityTrace.from_samples([0, 1], [100, 100])
        assert trace.shock_time() is None
        assert trace.recovery_time() is None
        assert trace.time_to_recover() is None

    def test_recovery_time(self):
        trace = QualityTrace.from_samples([0, 1, 2, 3], [100, 80, 90, 100])
        assert trace.recovery_time() == 3
        assert trace.time_to_recover() == 2

    def test_unrecovered_returns_none(self):
        trace = QualityTrace.from_samples([0, 1, 2], [100, 80, 90])
        assert trace.shock_time() == 1
        assert trace.recovery_time() is None

    def test_threshold_changes_landmarks(self):
        trace = QualityTrace.from_samples([0, 1, 2, 3], [100, 85, 95, 100])
        # with threshold 90, the dip to 85 is a shock; 95 already recovers
        assert trace.shock_time(threshold=90) == 1
        assert trace.recovery_time(threshold=90) == 2

    def test_drop_depth(self):
        trace = QualityTrace.from_samples([0, 1, 2], [100, 60, 100])
        assert trace.drop_depth == pytest.approx(40.0)

    def test_interpolation(self):
        trace = QualityTrace.from_samples([0, 2], [100, 0])
        assert trace.at(1.0) == pytest.approx(50.0)


class TestIntegrals:
    def test_step_trace_loss_is_rectangle(self):
        trace = step_trace(t0=10, t1=20, depth=40)
        loss = trace.degradation_integral(10, 20)
        assert loss == pytest.approx(40 * 10, rel=1e-4)

    def test_linear_recovery_loss_is_triangle(self):
        trace = linear_recovery_trace(t0=0, t1=10, depth=60)
        loss = trace.degradation_integral(0, 10)
        assert loss == pytest.approx(60 * 10 / 2, rel=1e-4)

    def test_integral_window_subset(self):
        trace = step_trace(t0=0, t1=10, depth=50)
        half = trace.degradation_integral(0, 5)
        assert half == pytest.approx(50 * 5, rel=1e-3)

    def test_empty_window_is_zero(self):
        trace = step_trace(t0=0, t1=10, depth=50)
        assert trace.degradation_integral(3, 3) == 0.0

    def test_reversed_window_raises(self):
        trace = step_trace(t0=0, t1=10, depth=50)
        with pytest.raises(AnalysisError):
            trace.degradation_integral(5, 3)

    def test_mean_quality_of_flat_trace(self):
        trace = QualityTrace.from_samples([0, 10], [100, 100])
        assert trace.mean_quality() == pytest.approx(100.0)

    def test_mean_quality_of_constant_degraded(self):
        trace = QualityTrace.from_samples([0, 10], [60, 60])
        assert trace.mean_quality() == pytest.approx(60.0)


class TestConcat:
    def test_concat_appends(self):
        a = QualityTrace.from_samples([0, 1], [100, 90])
        b = QualityTrace.from_samples([2, 3], [80, 100])
        c = a.concat(b)
        assert c.t_end == 3
        assert c.min_quality == 80

    def test_concat_rejects_overlap(self):
        a = QualityTrace.from_samples([0, 2], [100, 90])
        b = QualityTrace.from_samples([1, 3], [80, 100])
        with pytest.raises(ConfigurationError):
            a.concat(b)


@given(
    depth=st.floats(min_value=0.0, max_value=100.0),
    duration=st.floats(min_value=0.1, max_value=1000.0),
)
def test_property_step_trace_loss_scales_with_area(depth, duration):
    """Loss of a rectangular outage equals depth × duration."""
    trace = step_trace(t0=5.0, t1=5.0 + duration, depth=depth)
    loss = trace.degradation_integral(5.0, 5.0 + duration)
    assert loss == pytest.approx(depth * duration, rel=1e-3, abs=1e-6)


@given(
    qualities=st.lists(
        st.floats(min_value=0.0, max_value=100.0), min_size=2, max_size=50
    )
)
def test_property_degradation_integral_nonnegative(qualities):
    """∫(100 − Q) is non-negative for any valid trace."""
    times = list(range(len(qualities)))
    trace = QualityTrace.from_samples(times, qualities)
    assert trace.degradation_integral() >= -1e-9
