"""Tests for co-regulation adaptability (repro.management.regulation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.management.regulation import (
    CO_REGULATION,
    SELF_REGULATION,
    TOP_DOWN_LAW,
    RegulatoryRegime,
    simulate_regulation,
)


class TestRegimes:
    def test_builtin_regimes_shape(self):
        assert TOP_DOWN_LAW.update_latency > CO_REGULATION.update_latency
        assert CO_REGULATION.fidelity > SELF_REGULATION.fidelity

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RegulatoryRegime("", 5, 0.5)
        with pytest.raises(ConfigurationError):
            RegulatoryRegime("x", 0, 0.5)
        with pytest.raises(ConfigurationError):
            RegulatoryRegime("x", 5, 0.0)
        with pytest.raises(ConfigurationError):
            RegulatoryRegime("x", 5, 1.5)


class TestSimulation:
    def test_revision_count_matches_latency(self):
        outcome = simulate_regulation(TOP_DOWN_LAW, periods=400, seed=0)
        assert outcome.revisions == 400 // TOP_DOWN_LAW.update_latency

    def test_static_environment_zero_gap_after_first_revision(self):
        regime = RegulatoryRegime("instant", 1, 1.0)
        outcome = simulate_regulation(regime, periods=50, drift_sigma=0.0,
                                      seed=1)
        assert outcome.mean_gap == pytest.approx(0.0, abs=1e-12)

    def test_ikegai_claim_co_regulation_tracks_best(self):
        """§3.3.3: co-regulation adapts faster than top-down law, and
        more completely than pure self-regulation."""
        gaps = {}
        for regime in (TOP_DOWN_LAW, SELF_REGULATION, CO_REGULATION):
            runs = [
                simulate_regulation(regime, periods=400, drift_sigma=1.0,
                                    seed=s).mean_gap
                for s in range(10)
            ]
            gaps[regime.name] = float(np.mean(runs))
        assert gaps["co-regulation"] < gaps["top-down-law"]
        assert gaps["co-regulation"] < gaps["self-regulation"]

    def test_shock_hurts_rigid_regimes_most(self):
        """A disruptive jump lingers unregulated under high latency."""
        rigid = np.mean([
            simulate_regulation(TOP_DOWN_LAW, periods=200, drift_sigma=0.2,
                                shock_at=50, shock_size=20.0, seed=s).worst_gap
            for s in range(8)
        ])
        agile = np.mean([
            simulate_regulation(CO_REGULATION, periods=200, drift_sigma=0.2,
                                shock_at=50, shock_size=20.0, seed=s).worst_gap
            for s in range(8)
        ])
        # both see the initial 20-point gap; measure the *persistence*
        rigid_mean = np.mean([
            simulate_regulation(TOP_DOWN_LAW, periods=200, drift_sigma=0.2,
                                shock_at=50, shock_size=20.0, seed=s).mean_gap
            for s in range(8)
        ])
        agile_mean = np.mean([
            simulate_regulation(CO_REGULATION, periods=200, drift_sigma=0.2,
                                shock_at=50, shock_size=20.0, seed=s).mean_gap
            for s in range(8)
        ])
        assert agile_mean < rigid_mean

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            simulate_regulation(CO_REGULATION, periods=1)
        with pytest.raises(ConfigurationError):
            simulate_regulation(CO_REGULATION, drift_sigma=-1.0)
