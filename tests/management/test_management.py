"""Tests for management-domain models (repro.management)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.management.bcp import ResponseProcess, simulate_incident
from repro.management.portfolio import (
    Asset,
    Portfolio,
    simulate_portfolio,
)
from repro.management.supplychain import (
    Manufacturer,
    RegionalDisaster,
    Supplier,
    simulate_supply_chain,
)


def make_assets(n=6, bankruptcy_p=0.02):
    return tuple(
        Asset(f"a{i}", mean_return=0.08, volatility=0.25,
              bankruptcy_p=bankruptcy_p)
        for i in range(n)
    )


class TestPortfolio:
    def test_weights_validation(self):
        assets = make_assets(2)
        with pytest.raises(ConfigurationError):
            Portfolio(assets, (0.5, 0.6))
        with pytest.raises(ConfigurationError):
            Portfolio(assets, (-0.5, 1.5))
        with pytest.raises(ConfigurationError):
            Portfolio((), ())

    def test_constructors(self):
        assets = make_assets(4)
        conc = Portfolio.concentrated(assets, 2)
        assert conc.weights[2] == 1.0
        eq = Portfolio.equal_weight(assets)
        assert all(w == pytest.approx(0.25) for w in eq.weights)

    def test_expected_return_accounts_for_bankruptcy(self):
        asset = Asset("x", mean_return=0.1, volatility=0.0, bankruptcy_p=0.5)
        p = Portfolio.concentrated((asset,), 0)
        # (1.1 * 0.5) - 1 = -0.45
        assert p.expected_return() == pytest.approx(-0.45)

    def test_diversification_cuts_ruin(self):
        """§3.2.3: diversified portfolios trade a bit of return for far
        less catastrophic-loss risk."""
        assets = make_assets(8, bankruptcy_p=0.01)
        conc = simulate_portfolio(
            Portfolio.concentrated(assets, 0), periods=120, trials=500,
            seed=0,
        )
        div = simulate_portfolio(
            Portfolio.equal_weight(assets), periods=120, trials=500, seed=0
        )
        assert div.ruin_probability < conc.ruin_probability / 2

    def test_no_bankruptcy_no_ruin_for_diversified(self):
        assets = make_assets(8, bankruptcy_p=0.0)
        div = simulate_portfolio(
            Portfolio.equal_weight(assets), periods=60, trials=200, seed=1
        )
        assert div.ruin_probability < 0.05

    def test_simulation_validation(self):
        p = Portfolio.equal_weight(make_assets(2))
        with pytest.raises(ConfigurationError):
            simulate_portfolio(p, periods=0)
        with pytest.raises(ConfigurationError):
            simulate_portfolio(p, trials=0)
        with pytest.raises(ConfigurationError):
            simulate_portfolio(p, initial_wealth=0.0)
        with pytest.raises(ConfigurationError):
            simulate_portfolio(p, ruin_floor=2.0)

    def test_asset_validation(self):
        with pytest.raises(ConfigurationError):
            Asset("", 0.1, 0.1)
        with pytest.raises(ConfigurationError):
            Asset("x", -2.0, 0.1)
        with pytest.raises(ConfigurationError):
            Asset("x", 0.1, -0.1)
        with pytest.raises(ConfigurationError):
            Asset("x", 0.1, 0.1, bankruptcy_p=2.0)


def tohoku_firm(multi_source: bool, reserve: float):
    suppliers = [
        Supplier("s-engine-tohoku", "engine", "tohoku"),
        Supplier("s-body-tohoku", "body", "tohoku"),
    ]
    if multi_source:
        suppliers += [
            Supplier("s-engine-kyushu", "engine", "kyushu"),
            Supplier("s-body-kyushu", "body", "kyushu"),
        ]
    return Manufacturer(
        required_parts=("engine", "body"),
        suppliers=tuple(suppliers),
        revenue_per_period=10.0,
        fixed_cost_per_period=6.0,
        initial_reserve=reserve,
    )


class TestSupplyChain:
    def test_no_disaster_always_survives(self):
        outcome = simulate_supply_chain(tohoku_firm(False, 0.0), [],
                                        horizon=50)
        assert outcome.survived
        assert outcome.periods_halted == 0
        assert outcome.final_reserve > 0

    def test_reserve_rides_out_regional_outage(self):
        """§3.1.3: the monetary reserve compensates lost revenue.

        The quake lands at t=0 so no operating surplus has accumulated:
        survival depends purely on the pre-funded reserve."""
        quake = [RegionalDisaster(time=0, region="tohoku", outage=5)]
        thin = simulate_supply_chain(tohoku_firm(False, 10.0), quake,
                                     horizon=50)
        thick = simulate_supply_chain(tohoku_firm(False, 40.0), quake,
                                      horizon=50)
        assert not thin.survived
        assert thick.survived
        assert thick.periods_halted == 5

    def test_operating_surplus_also_builds_reserve(self):
        """A later quake is survivable even with a thin initial reserve
        because running profits refill the buffer."""
        quake = [RegionalDisaster(time=10, region="tohoku", outage=5)]
        outcome = simulate_supply_chain(tohoku_firm(False, 10.0), quake,
                                        horizon=50)
        assert outcome.survived

    def test_multi_sourcing_avoids_halt_entirely(self):
        quake = [RegionalDisaster(time=10, region="tohoku", outage=5)]
        outcome = simulate_supply_chain(tohoku_firm(True, 0.0), quake,
                                        horizon=50)
        assert outcome.survived
        assert outcome.periods_halted == 0

    def test_two_region_disaster_beats_multi_sourcing(self):
        quakes = [
            RegionalDisaster(time=0, region="tohoku", outage=5),
            RegionalDisaster(time=0, region="kyushu", outage=5),
        ]
        outcome = simulate_supply_chain(tohoku_firm(True, 0.0), quakes,
                                        horizon=50)
        assert not outcome.survived

    def test_can_produce_logic(self):
        firm = tohoku_firm(True, 0.0)
        assert firm.can_produce(frozenset(["tohoku"]))
        assert not firm.can_produce(frozenset(["tohoku", "kyushu"]))
        assert firm.regions() == ("kyushu", "tohoku")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Manufacturer(required_parts=(), suppliers=())
        with pytest.raises(ConfigurationError):
            Manufacturer(
                required_parts=("engine",),
                suppliers=(Supplier("s", "body", "r"),),
            )
        with pytest.raises(ConfigurationError):
            Supplier("", "part", "region")
        with pytest.raises(ConfigurationError):
            RegionalDisaster(time=-1, region="r", outage=1)
        with pytest.raises(ConfigurationError):
            RegionalDisaster(time=0, region="r", outage=0)


class TestBCP:
    def test_empowered_frontline_has_zero_latency(self):
        assert ResponseProcess.empowered_frontline().decision_latency == 0
        assert ResponseProcess.centralized(3, 2).decision_latency == 6

    def test_empowerment_beats_hierarchy_on_fast_incidents(self):
        """§3.4.3: ISO 22320's point — empower the frontline."""
        fast = simulate_incident(
            ResponseProcess.empowered_frontline(0.85), growth_rate=0.3,
            seed=0,
        )
        slow = simulate_incident(
            ResponseProcess.centralized(3, 2, 0.95), growth_rate=0.3, seed=0
        )
        assert fast.total_damage < slow.total_damage
        assert fast.contained_at is not None

    def test_hierarchy_fine_for_slow_incidents(self):
        slow_incident_central = simulate_incident(
            ResponseProcess.centralized(2, 1, 0.95), growth_rate=0.0, seed=1
        )
        assert slow_incident_central.contained_at is not None

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ResponseProcess("", 1)
        with pytest.raises(ConfigurationError):
            ResponseProcess("x", -1)
        with pytest.raises(ConfigurationError):
            ResponseProcess("x", 1, decision_quality=0.0)
        with pytest.raises(ConfigurationError):
            simulate_incident(ResponseProcess.empowered_frontline(),
                              growth_rate=-0.1)
        with pytest.raises(ConfigurationError):
            simulate_incident(ResponseProcess.empowered_frontline(),
                              initial_damage=0.0)
