"""Tests for betweenness centrality (repro.networks.centrality),
cross-validated against networkx."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.networks.attacks import TargetedDegreeAttack
from repro.networks.centrality import BetweennessAttack, betweenness_centrality
from repro.networks.generators import barabasi_albert, erdos_renyi
from repro.networks.graph import Graph
from repro.networks.percolation import critical_fraction, percolation_curve


def to_networkx(g: Graph) -> nx.Graph:
    h = nx.Graph()
    h.add_nodes_from(g.nodes())
    h.add_edges_from(g.edges())
    return h


class TestBetweennessCentrality:
    def test_path_graph_middle_node(self):
        g = Graph(edges=[(0, 1), (1, 2)])
        scores = betweenness_centrality(g, normalized=False)
        assert scores[1] == pytest.approx(1.0)  # mediates the (0,2) pair
        assert scores[0] == scores[2] == 0.0

    def test_star_hub_mediates_everything(self):
        g = Graph(edges=[("hub", i) for i in range(5)])
        scores = betweenness_centrality(g)
        assert scores["hub"] == pytest.approx(1.0)  # normalized maximum
        assert all(scores[i] == 0.0 for i in range(5))

    def test_cycle_is_uniform(self):
        g = Graph(edges=[(i, (i + 1) % 6) for i in range(6)])
        scores = betweenness_centrality(g)
        values = list(scores.values())
        assert max(values) == pytest.approx(min(values))

    def test_matches_networkx_on_random_graphs(self):
        for seed in (0, 1):
            g = erdos_renyi(40, 0.12, seed=seed)
            ours = betweenness_centrality(g)
            theirs = nx.betweenness_centrality(to_networkx(g))
            for node in g.nodes():
                assert ours[node] == pytest.approx(theirs[node], abs=1e-9)

    def test_matches_networkx_on_ba(self):
        g = barabasi_albert(60, 2, seed=2)
        ours = betweenness_centrality(g)
        theirs = nx.betweenness_centrality(to_networkx(g))
        for node in g.nodes():
            assert ours[node] == pytest.approx(theirs[node], abs=1e-9)

    def test_disconnected_components_handled(self):
        g = Graph(edges=[(0, 1), (1, 2), (10, 11)])
        scores = betweenness_centrality(g, normalized=False)
        assert scores[1] == pytest.approx(1.0)
        assert scores[10] == 0.0


class TestBetweennessAttack:
    def test_order_is_permutation(self):
        g = barabasi_albert(50, 2, seed=3)
        order = BetweennessAttack().removal_order(g)
        assert sorted(map(repr, order)) == sorted(map(repr, g.nodes()))

    def test_at_least_as_damaging_as_degree_attack_on_ba(self):
        g = barabasi_albert(200, 2, seed=4)
        bet_curve = percolation_curve(g, BetweennessAttack(), resolution=40)
        deg_curve = percolation_curve(g, TargetedDegreeAttack(),
                                      resolution=40)
        # betweenness targeting shatters no later than degree targeting
        assert critical_fraction(bet_curve, 0.1) <= \
            critical_fraction(deg_curve, 0.1) + 0.05

    def test_bridge_node_removed_before_high_degree_leafy_node(self):
        """A low-degree bridge can out-mediate a high-degree periphery."""
        g = Graph()
        # two cliques of 4 joined by a degree-2 bridge node "b"
        for base in ("L", "R"):
            members = [f"{base}{i}" for i in range(4)]
            for i, u in enumerate(members):
                for v in members[i + 1:]:
                    g.add_edge(u, v)
        g.add_edge("L0", "b")
        g.add_edge("b", "R0")
        order = BetweennessAttack().removal_order(g)
        # the bridge or its endpoints lead the ranking
        assert order[0] in ("b", "L0", "R0")


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 500))
def test_property_matches_networkx(seed):
    g = erdos_renyi(25, 0.15, seed=seed)
    ours = betweenness_centrality(g)
    theirs = nx.betweenness_centrality(to_networkx(g))
    for node in g.nodes():
        assert ours[node] == pytest.approx(theirs[node], abs=1e-9)
