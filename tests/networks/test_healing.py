"""Tests for network attack-and-healing (repro.networks.healing)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bruneau import assess
from repro.errors import ConfigurationError
from repro.networks.attacks import RandomFailure, TargetedDegreeAttack
from repro.networks.generators import barabasi_albert
from repro.networks.healing import NetworkRecoverySimulator


class TestNetworkRecovery:
    def test_no_attack_no_degradation(self):
        g = barabasi_albert(60, 2, seed=0)
        sim = NetworkRecoverySimulator(g, RandomFailure())
        result = sim.run(attack_fraction=0.0, horizon=10, seed=1)
        assert result.trace.min_quality == pytest.approx(100.0)
        assert result.fully_recovered

    def test_attack_degrades_then_healing_restores(self):
        g = barabasi_albert(80, 2, seed=1)
        sim = NetworkRecoverySimulator(g, TargetedDegreeAttack(),
                                       repairs_per_step=4)
        result = sim.run(attack_fraction=0.2, horizon=20, seed=2)
        assert result.trace.min_quality < 80.0
        assert result.trace.quality[-1] == pytest.approx(100.0)
        assert result.fully_recovered
        assessment = assess(result.trace)
        assert assessment.recovered
        assert assessment.loss > 0

    def test_no_healing_never_recovers(self):
        g = barabasi_albert(60, 2, seed=3)
        sim = NetworkRecoverySimulator(g, TargetedDegreeAttack(),
                                       repairs_per_step=0)
        result = sim.run(attack_fraction=0.2, horizon=10, seed=4)
        assert not result.fully_recovered
        assert result.trace.quality[-1] < 100.0

    def test_faster_repair_smaller_bruneau_loss(self):
        g = barabasi_albert(80, 2, seed=5)
        losses = {}
        for rate in (1, 4):
            sim = NetworkRecoverySimulator(g, TargetedDegreeAttack(),
                                           repairs_per_step=rate)
            result = sim.run(attack_fraction=0.25, horizon=40, seed=6)
            losses[rate] = assess(result.trace).loss
        assert losses[4] < losses[1]

    def test_targeted_attack_hurts_more_than_random(self):
        g = barabasi_albert(100, 2, seed=7)
        losses = {}
        for label, attack in (("random", RandomFailure()),
                              ("targeted", TargetedDegreeAttack())):
            sim = NetworkRecoverySimulator(g, attack, repairs_per_step=2)
            result = sim.run(attack_fraction=0.2, horizon=30, seed=8)
            losses[label] = assess(result.trace).loss
        assert losses["targeted"] > losses["random"]

    def test_removed_count(self):
        g = barabasi_albert(50, 2, seed=9)
        sim = NetworkRecoverySimulator(g, RandomFailure())
        result = sim.run(attack_fraction=0.3, horizon=5, seed=10)
        assert len(result.removed) == 15

    def test_validation(self):
        g = barabasi_albert(20, 2, seed=11)
        with pytest.raises(ConfigurationError):
            NetworkRecoverySimulator(g, RandomFailure(), repairs_per_step=-1)
        sim = NetworkRecoverySimulator(g, RandomFailure())
        with pytest.raises(ConfigurationError):
            sim.run(attack_fraction=1.5, horizon=10)
        with pytest.raises(ConfigurationError):
            sim.run(attack_fraction=0.1, horizon=1)
        with pytest.raises(ConfigurationError):
            sim.run(attack_fraction=0.1, horizon=10, shock_time=10)
