"""Tests for epidemics and immunization (repro.networks.epidemics)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.networks.epidemics import SIRModel, SISModel, immunize
from repro.networks.generators import barabasi_albert
from repro.networks.graph import Graph


def star(leaves=10):
    return Graph(edges=[("hub", i) for i in range(leaves)])


class TestImmunize:
    def test_fraction_counts(self):
        g = barabasi_albert(50, 2, seed=0)
        immune = immunize(g, 0.2, "random", seed=1)
        assert len(immune) == 10

    def test_targeted_takes_hubs(self):
        g = star(10)
        immune = immunize(g, 0.05, "targeted")  # 11 nodes * 0.05 -> 1
        assert immune == frozenset(["hub"])

    def test_invalid_inputs(self):
        g = star()
        with pytest.raises(ConfigurationError):
            immunize(g, 1.5)
        with pytest.raises(ConfigurationError):
            immunize(g, 0.5, "voodoo")


class TestSIS:
    def test_no_transmission_dies_out(self):
        g = star()
        model = SISModel(g, beta=0.0, gamma=1.0)
        result = model.run(["hub"], steps=5, seed=0)
        assert result.died_out
        assert result.total_ever_infected == 1

    def test_certain_transmission_spreads(self):
        g = star(20)
        model = SISModel(g, beta=1.0, gamma=0.0)
        result = model.run(["hub"], steps=2, seed=0)
        assert result.total_ever_infected == 21
        assert not result.died_out

    def test_immune_nodes_never_infected(self):
        g = star(10)
        immune = frozenset([0, 1])
        model = SISModel(g, beta=1.0, gamma=0.0, immune=immune)
        result = model.run(["hub"], steps=3, seed=0)
        assert immune.isdisjoint(result.final_infected)

    def test_hub_immunization_blocks_star(self):
        g = star(20)
        model = SISModel(g, beta=1.0, gamma=0.0, immune=frozenset(["hub"]))
        result = model.run([0], steps=5, seed=0)
        assert result.total_ever_infected == 1  # leaf cannot reach others

    def test_attack_rate(self):
        g = star(4)
        model = SISModel(g, beta=1.0, gamma=0.0)
        result = model.run(["hub"], steps=2, seed=0)
        assert result.attack_rate(5) == pytest.approx(1.0)
        with pytest.raises(ConfigurationError):
            result.attack_rate(0)

    def test_invalid_construction(self):
        g = star()
        with pytest.raises(ConfigurationError):
            SISModel(g, beta=2.0, gamma=0.5)
        with pytest.raises(ConfigurationError):
            SISModel(g, beta=0.5, gamma=0.5, immune=["ghost"])
        model = SISModel(g, beta=0.5, gamma=0.5)
        with pytest.raises(ConfigurationError):
            model.run(["ghost"], steps=2)


class TestSIR:
    def test_terminates_by_extinction(self):
        g = barabasi_albert(80, 2, seed=1)
        model = SIRModel(g, beta=0.3, gamma=0.4)
        result = model.run([0], seed=2)
        assert result.died_out

    def test_gamma_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            SIRModel(star(), beta=0.5, gamma=0.0)

    def test_recovered_not_reinfected(self):
        """With gamma=1 everyone recovers after one step; the epidemic on a
        path cannot backtrack."""
        g = Graph(edges=[(0, 1), (1, 2), (2, 3)])
        model = SIRModel(g, beta=1.0, gamma=1.0)
        result = model.run([0], seed=3)
        assert result.total_ever_infected == 4
        assert result.died_out

    def test_targeted_immunization_beats_random_on_scale_free(self):
        """§5.1: protecting hubs contains the hub-exploiting spread."""
        g = barabasi_albert(300, 2, seed=4)
        attack_rates = {}
        for strategy in ("random", "targeted"):
            immune = immunize(g, 0.15, strategy, seed=5)
            seeds = [n for n in g.nodes() if n not in immune][:3]
            total = 0
            for s in range(5):
                model = SIRModel(g, beta=0.35, gamma=0.3, immune=immune)
                total += model.run(seeds, seed=100 + s).total_ever_infected
            attack_rates[strategy] = total / 5
        assert attack_rates["targeted"] < attack_rates["random"]
