"""Out-of-core mmap engine suite: chunked kernels vs array kernels.

The mmap engine's contract is *stricter* than the array engine's:
byte-identity with the array kernels for deterministic **and**
stochastic outputs — the chunked frontier kernels consume the RNG
stream exactly as the single-gather kernels do (one
``bernoulli_indices`` draw over the whole frontier), so curves,
cascades, and epidemics match draw-for-draw on the same graph and
seed, at every block size.
"""

import os

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.networks import (
    Graph,
    MmapGraph,
    RandomFailure,
    SIRModel,
    SISModel,
    TargetedDegreeAttack,
    as_arraygraph,
    as_mmapgraph,
    barabasi_albert,
    erdos_renyi,
    make_network_engine,
    percolation_curve,
)
from repro.networks import mmapgraph as mmapgraph_mod
from repro.networks.arraygraph import (
    directed_edge_blocks,
    newman_ziff_giant_sizes,
    union_find_labels,
)
from repro.networks.engine import ArrayNetworkEngine, MmapNetworkEngine
from repro.networks.generators import (
    barabasi_albert_stream,
    erdos_renyi_stream,
)
from repro.networks.mmapgraph import (
    CHUNK_ELEM_BYTES,
    DEFAULT_CHUNK_BITS,
    MAX_CHUNK_BITS,
    MIN_CHUNK_BITS,
    chunked_newman_ziff_giant_sizes,
    chunked_union_find_labels,
    derive_chunk_elems,
    estimate_graph_bytes,
    frontier_slices,
)
from repro.rng import make_rng
from repro.runtime import supervisor, trace

BLOCK_SIZES = (1, 7, 64, 1 << 18)


@pytest.fixture
def ba_graph():
    return barabasi_albert(300, 2, seed=5)


@pytest.fixture
def er_graph():
    return erdos_renyi(200, 0.03, seed=8)


# -- CSR construction ------------------------------------------------------


class TestMmapGraphBuild:
    def test_from_arrays_matches_arraygraph(self, ba_graph):
        ag = as_arraygraph(ba_graph)
        mg = as_mmapgraph(ba_graph)
        assert np.array_equal(np.asarray(mg.indptr), ag.indptr)
        assert np.array_equal(np.asarray(mg.indices), ag.indices)
        assert mg.n_nodes == ag.n_nodes
        assert mg.n_edges == ag.n_edges

    def test_as_mmapgraph_cached_per_version(self, ba_graph):
        first = as_mmapgraph(ba_graph)
        assert as_mmapgraph(ba_graph) is first
        ba_graph.add_edge(0, 299)
        assert as_mmapgraph(ba_graph) is not first

    def test_from_edge_chunks_matches_graph(self, er_graph):
        mg = MmapGraph.from_edge_chunks(
            200,
            erdos_renyi_stream(200, 0.03, seed=8, chunk_pairs=53),
        )
        assert mg.n_edges == er_graph.n_edges
        for node in er_graph.nodes():
            assert mg.neighbors(node) == er_graph.neighbors(node)

    def test_from_edge_chunks_small_spill_chunks(self, er_graph):
        # re-reading the spill file in tiny chunks exercises the
        # two-pass counting-sort scatter across chunk boundaries
        mg = MmapGraph.from_edge_chunks(
            200,
            erdos_renyi_stream(200, 0.03, seed=8, chunk_pairs=53),
            spill_chunk=17,
        )
        for node in er_graph.nodes():
            assert mg.neighbors(node) == er_graph.neighbors(node)

    def test_open_round_trip(self):
        mg = MmapGraph.from_edge_chunks(
            6, [(np.array([0, 1, 2]), np.array([1, 2, 3]))]
        )
        reopened = MmapGraph.open(mg.path)
        assert np.array_equal(
            np.asarray(mg.indptr), np.asarray(reopened.indptr)
        )
        assert np.array_equal(
            np.asarray(mg.indices), np.asarray(reopened.indices)
        )
        assert reopened.giant_component_size() == 4

    def test_open_missing_path_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no mmap graph"):
            MmapGraph.open(str(tmp_path / "nope"))

    def test_int64_indptr_round_trip(self, monkeypatch):
        # force promotion past the (monkeypatched) int32 offset capacity
        monkeypatch.setattr(
            "repro.networks.arraygraph.INT32_INDPTR_CAPACITY", 4
        )
        mg = MmapGraph.from_edge_chunks(
            6, [(np.array([0, 1, 2]), np.array([1, 2, 3]))]
        )
        assert mg.indptr.dtype == np.int64
        reopened = MmapGraph.open(mg.path)
        assert reopened.indptr.dtype == np.int64
        assert reopened.giant_component_size() == 4
        order = reopened.degree_removal_order()
        assert reopened.check_removal_order(order)

    def test_duplicate_edges_rejected(self):
        with pytest.raises(ConfigurationError, match="parallel edge"):
            MmapGraph.from_edge_chunks(
                4, [(np.array([0, 0]), np.array([1, 1]))]
            )

    def test_duplicate_across_chunks_rejected(self):
        with pytest.raises(ConfigurationError, match="parallel edge"):
            MmapGraph.from_edge_chunks(
                4,
                [
                    (np.array([0]), np.array([1])),
                    (np.array([1]), np.array([0])),
                ],
            )

    def test_self_loop_rejected(self):
        with pytest.raises(ConfigurationError, match="self-loop"):
            MmapGraph.from_edge_chunks(
                4, [(np.array([2]), np.array([2]))]
            )

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError, match="out of range"):
            MmapGraph.from_edge_chunks(
                3, [(np.array([0]), np.array([5]))]
            )

    def test_spill_dir_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_MMAP_DIR", str(tmp_path))
        mg = MmapGraph.from_edge_chunks(
            3, [(np.array([0]), np.array([1]))]
        )
        assert os.path.dirname(mg.path) == str(tmp_path)

    def test_spill_cleaned_up_on_gc(self):
        mg = MmapGraph.from_edge_chunks(
            3, [(np.array([0]), np.array([1]))]
        )
        path = mg.path
        assert os.path.isdir(path)
        mg._finalizer()
        assert not os.path.exists(path)


class TestMmapGraphQueries:
    def test_graph_api_parity(self, ba_graph):
        mg = as_mmapgraph(ba_graph)
        assert len(mg) == ba_graph.n_nodes
        assert list(mg.nodes()) == list(range(300))
        assert mg.degrees() == ba_graph.degrees()
        assert 0 in mg and 299 in mg and 300 not in mg
        assert "0" not in mg and True not in mg  # bool is not a node id
        assert mg.has_edge(0, 1) == ba_graph.has_edge(0, 1)
        assert not mg.has_edge(0, 300)
        assert sorted(tuple(sorted(e)) for e in mg.edges()) == sorted(
            tuple(sorted(e)) for e in ba_graph.edges()
        )

    def test_to_graph_round_trip(self, er_graph):
        back = as_mmapgraph(er_graph).to_graph()
        assert back.n_nodes == er_graph.n_nodes
        assert {tuple(sorted(e)) for e in back.edges()} == {
            tuple(sorted(e)) for e in er_graph.edges()
        }

    def test_indices_of_ndarray_fast_path(self, ba_graph):
        mg = as_mmapgraph(ba_graph)
        idx = mg.indices_of(np.array([5, 0, 299]))
        assert idx.tolist() == [5, 0, 299]
        with pytest.raises(ConfigurationError, match="not in graph"):
            mg.indices_of(np.array([0, 300]))

    def test_check_removal_order(self, ba_graph):
        mg = as_mmapgraph(ba_graph)
        n = mg.n_nodes
        assert mg.check_removal_order(np.random.default_rng(0).permutation(n))
        assert mg.check_removal_order(list(range(n)))
        assert not mg.check_removal_order(list(range(n - 1)))
        dup = list(range(n)); dup[0] = 1
        assert not mg.check_removal_order(dup)
        assert not mg.check_removal_order(["x"] * n)

    def test_labelled_graph_preserves_labels(self):
        g = Graph(edges=[("a", "b"), ("b", "c")])
        mg = as_mmapgraph(g)
        assert not mg.identity_labels
        assert mg.neighbors("b") == frozenset({"a", "c"})
        assert set(mg.degree_removal_order()) == {"a", "b", "c"}
        # labelled graphs don't round-trip through the on-disk format
        with pytest.raises(ConfigurationError, match="identity-labelled"):
            MmapGraph.open(mg.path)

    def test_components_match_arraygraph(self, er_graph):
        ag = as_arraygraph(er_graph)
        mg = as_mmapgraph(er_graph)
        assert mg.giant_component_size() == ag.giant_component_size()
        assert sorted(map(len, mg.connected_components())) == sorted(
            map(len, ag.connected_components())
        )


# -- chunked kernels: byte-identity across block sizes ---------------------


class TestChunkedKernels:
    @pytest.mark.parametrize("block", BLOCK_SIZES)
    def test_newman_ziff_identical(self, ba_graph, block):
        ag = as_arraygraph(ba_graph)
        mg = as_mmapgraph(ba_graph)
        order = np.random.default_rng(2).permutation(ag.n_nodes)
        ref = newman_ziff_giant_sizes(ag.indptr, ag.indices, order)
        got = chunked_newman_ziff_giant_sizes(
            mg.indptr, mg.indices, order, block_elems=block
        )
        assert np.array_equal(ref, got)

    @pytest.mark.parametrize("block", BLOCK_SIZES)
    def test_newman_ziff_with_base_identical(self, ba_graph, block):
        ag = as_arraygraph(ba_graph)
        mg = as_mmapgraph(ba_graph)
        base = np.arange(120)
        adds = np.arange(120, ag.n_nodes)
        ref = newman_ziff_giant_sizes(
            ag.indptr, ag.indices, adds, base=base
        )
        got = chunked_newman_ziff_giant_sizes(
            mg.indptr, mg.indices, adds, base=base, block_elems=block
        )
        assert np.array_equal(ref, got)

    @pytest.mark.parametrize("block", BLOCK_SIZES)
    def test_union_find_identical(self, er_graph, block):
        ag = as_arraygraph(er_graph)
        mg = as_mmapgraph(er_graph)
        u, v = ag.edge_arrays()
        ref = union_find_labels(ag.n_nodes, u, v)
        got = chunked_union_find_labels(
            mg.indptr, mg.indices, block_elems=block
        )
        assert np.array_equal(ref, got)

    @pytest.mark.parametrize("block", (1, 5, 64, 1 << 18))
    def test_directed_edge_blocks_cover_flat_order(self, ba_graph, block):
        ag = as_arraygraph(ba_graph)
        rows = np.repeat(
            np.arange(ag.n_nodes, dtype=np.int64), np.diff(ag.indptr)
        )
        cols = ag.indices.astype(np.int64)
        for aligned in (False, True):
            blocks = list(
                directed_edge_blocks(
                    ag.indptr, ag.indices, block, aligned=aligned
                )
            )
            u = np.concatenate([b[0] for b in blocks])
            v = np.concatenate([b[1] for b in blocks])
            assert np.array_equal(u, rows), aligned
            assert np.array_equal(v, cols), aligned
            if aligned:
                # no row straddles a block boundary: each block ends
                # exactly where its last row's CSR range ends
                for bu, _ in blocks[:-1]:
                    last = int(bu[-1])
                    assert int(np.sum(bu == last)) == int(
                        ag.indptr[last + 1] - ag.indptr[last]
                    )

    def test_frontier_slices_respect_budget(self, ba_graph):
        ag = as_arraygraph(ba_graph)
        rows = np.random.default_rng(3).permutation(ag.n_nodes)[:100]
        deg = np.diff(ag.indptr)[rows]
        slices = list(frontier_slices(ag.indptr, rows, 16))
        assert [s for s, _ in slices][0] == 0
        assert slices[-1][1] == len(rows)
        for a, b in slices:
            # each slice fits the block unless it is a single hub row
            assert deg[a:b].sum() <= 16 or b - a == 1

    def test_frontier_slices_empty(self, ba_graph):
        ag = as_arraygraph(ba_graph)
        assert list(frontier_slices(ag.indptr, np.empty(0), 16)) == []


# -- block sizing + memory estimate ----------------------------------------


class TestBudgetDerivation:
    def test_default_block(self):
        assert derive_chunk_elems(None) == 1 << DEFAULT_CHUNK_BITS

    def test_budget_monotone_and_clamped(self):
        tiny = derive_chunk_elems(1)
        huge = derive_chunk_elems(1 << 40)
        assert tiny == 1 << MIN_CHUNK_BITS
        assert huge == 1 << MAX_CHUNK_BITS
        prev = 0
        for mb in (1, 4, 16, 64, 256, 1024):
            blk = derive_chunk_elems(mb << 20)
            assert blk >= prev
            assert blk * CHUNK_ELEM_BYTES <= max(
                mb << 20, (1 << MIN_CHUNK_BITS) * CHUNK_ELEM_BYTES
            )
            prev = blk

    def test_workers_shrink_block(self):
        budget = (1 << 16) * CHUNK_ELEM_BYTES
        assert derive_chunk_elems(budget, workers=4) <= \
            derive_chunk_elems(budget, workers=1)
        with pytest.raises(ConfigurationError):
            derive_chunk_elems(budget, workers=0)

    def test_estimate_graph_bytes(self, ba_graph):
        est = estimate_graph_bytes(ba_graph)
        assert est == (
            300 * mmapgraph_mod.ARRAY_BYTES_PER_NODE
            + 2 * ba_graph.n_edges
            * mmapgraph_mod.ARRAY_BYTES_PER_DIRECTED_EDGE
        )
        assert estimate_graph_bytes(object()) is None


# -- engine equivalence: byte-identity with the array engine ---------------


class TestMmapEngineEquivalence:
    @pytest.mark.parametrize("block", (13, 256, 1 << 18))
    def test_percolation_curves_identical(self, ba_graph, block):
        for attack in (TargetedDegreeAttack(), RandomFailure()):
            ref = percolation_curve(
                ba_graph, attack, seed=42, engine="array"
            )
            got = percolation_curve(
                ba_graph, attack, seed=42,
                engine=MmapNetworkEngine(block_elems=block),
            )
            assert np.array_equal(ref.giant_fraction, got.giant_fraction)
            assert np.array_equal(
                ref.removed_fraction, got.removed_fraction
            )

    def test_percolation_on_mmap_input(self, ba_graph):
        # percolating the MmapGraph itself exercises check_removal_order
        # and the ndarray ordering fast path end-to-end
        mg = as_mmapgraph(ba_graph)
        ref = percolation_curve(
            ba_graph, TargetedDegreeAttack(), engine="array"
        )
        got = percolation_curve(
            mg, TargetedDegreeAttack(), engine="mmap"
        )
        assert np.array_equal(ref.giant_fraction, got.giant_fraction)

    @pytest.mark.parametrize("block", (13, 1 << 18))
    def test_sir_draw_identical(self, ba_graph, block):
        ref = SIRModel(ba_graph, 0.3, 0.25, engine="array").run(
            [0, 1], seed=7
        )
        got = SIRModel(
            ba_graph, 0.3, 0.25,
            engine=MmapNetworkEngine(block_elems=block),
        ).run([0, 1], seed=7)
        assert np.array_equal(ref.infected_counts, got.infected_counts)
        assert ref.final_infected == got.final_infected
        assert ref.total_ever_infected == got.total_ever_infected

    @pytest.mark.parametrize("beta", (0.04, 0.5))
    def test_sis_draw_identical_sparse_and_dense(self, ba_graph, beta):
        # beta above and below the bernoulli_indices dense/sparse split
        ref = SISModel(ba_graph, beta, 0.3, engine="array").run(
            [0, 1, 2], steps=40, seed=13
        )
        got = SISModel(ba_graph, beta, 0.3, engine="mmap").run(
            [0, 1, 2], steps=40, seed=13
        )
        assert np.array_equal(ref.infected_counts, got.infected_counts)
        assert ref.final_infected == got.final_infected

    def test_load_cascade_float_identical(self, ba_graph):
        init = {n: 1.0 for n in ba_graph.nodes()}
        cap = {n: 1.8 for n in ba_graph.nodes()}
        ea = make_network_engine("array")
        em = MmapNetworkEngine(block_elems=29)
        assert ea.load_cascade(
            ba_graph, init, cap, frozenset([0, 5])
        ) == em.load_cascade(ba_graph, init, cap, frozenset([0, 5]))

    def test_spread_cascade_draw_identical(self, ba_graph):
        ea = make_network_engine("array")
        em = MmapNetworkEngine(block_elems=51)
        for seed in range(4):
            for p in (0.04, 0.5):
                assert ea.spread_cascade(
                    ba_graph, p, frozenset([0, 1]), make_rng(seed)
                ) == em.spread_cascade(
                    ba_graph, p, frozenset([0, 1]), make_rng(seed)
                )

    def test_healing_identical(self, ba_graph):
        ea = make_network_engine("array")
        em = MmapNetworkEngine(block_elems=33)
        assert ea.healing_episode(
            ba_graph, [0, 1, 2, 3], 2, 12, 3
        ) == em.healing_episode(ba_graph, [0, 1, 2, 3], 2, 12, 3)

    def test_ordering_identical(self, ba_graph):
        ag = as_arraygraph(ba_graph)
        mg = as_mmapgraph(ba_graph)
        assert list(ag.degree_removal_order()) == [
            int(x) for x in mg.degree_removal_order()
        ]
        small = barabasi_albert(40, 2, seed=1)
        assert as_arraygraph(small).adaptive_degree_removal_order() == \
            as_mmapgraph(small).adaptive_degree_removal_order()

    def test_object_engine_accepts_mmap_graph(self, er_graph):
        mg = as_mmapgraph(er_graph)
        eng = make_network_engine("object")
        ref = make_network_engine("array").percolation_giant_sizes(
            er_graph, list(range(200)), [50, 200]
        )
        assert eng.percolation_giant_sizes(
            mg, list(range(200)), [50, 200]
        ) == ref


# -- supervisor budget degrade ---------------------------------------------


class TestBudgetDegrade:
    def test_array_engine_degrades_over_budget(self, ba_graph):
        eng = ArrayNetworkEngine()
        ref = eng.percolation_giant_sizes(
            ba_graph, list(range(300)), [100, 300]
        )
        sup = supervisor.Supervisor(memory_budget_mb=0.001)
        tr = trace.Tracer()
        with supervisor.use(sup), trace.use(tr):
            got = eng.percolation_giant_sizes(
                ba_graph, list(range(300)), [100, 300]
            )
        assert got == ref
        counters = tr.counters
        assert counters["net.mmap.degrades"] == 1
        assert counters["supervisor.preemptions"] == 1
        assert counters["net.curves.mmap"] == 1
        assert "net.curves.array" not in counters

    def test_array_engine_stays_in_ram_under_budget(self, ba_graph):
        eng = ArrayNetworkEngine()
        sup = supervisor.Supervisor(memory_budget_mb=1024)
        tr = trace.Tracer()
        with supervisor.use(sup), trace.use(tr):
            eng.percolation_giant_sizes(ba_graph, list(range(300)), [300])
        counters = tr.counters
        assert counters["net.curves.array"] == 1
        assert "net.mmap.degrades" not in counters

    def test_mmap_block_derives_from_budget(self):
        sup = supervisor.Supervisor(memory_budget_mb=1)
        with supervisor.use(sup):
            assert MmapNetworkEngine()._block() == derive_chunk_elems(
                1 << 20
            )
        assert MmapNetworkEngine()._block() == 1 << DEFAULT_CHUNK_BITS


# -- streaming generators --------------------------------------------------


class TestStreamGenerators:
    def test_er_stream_exact_pinned_to_erdos_renyi(self):
        g = erdos_renyi(80, 0.07, seed=11)
        got = sorted(
            (int(a), int(b))
            for cu, cv in erdos_renyi_stream(
                80, 0.07, seed=11, chunk_pairs=97, method="exact"
            )
            for a, b in zip(cu, cv)
        )
        assert got == sorted(tuple(sorted(e)) for e in g.edges())

    @pytest.mark.parametrize("chunk_pairs", (1, 53, 1 << 20))
    def test_er_stream_exact_chunk_invariant(self, chunk_pairs):
        ref = [
            (c[0].tolist(), c[1].tolist())
            for c in erdos_renyi_stream(
                60, 0.1, seed=4, chunk_pairs=10**9, method="exact"
            )
        ]
        flat_ref = [
            e for cu, cv in ref for e in zip(*map(list, (cu, cv)))
        ]
        got = [
            e
            for cu, cv in erdos_renyi_stream(
                60, 0.1, seed=4, chunk_pairs=chunk_pairs, method="exact"
            )
            for e in zip(cu.tolist(), cv.tolist())
        ]
        assert got == flat_ref

    def test_er_stream_gap_same_ensemble(self):
        # different draw stream, same distribution: check edge-count
        # mean over seeds against the binomial expectation
        n, p = 400, 0.02
        counts = [
            sum(
                len(cu)
                for cu, _ in erdos_renyi_stream(n, p, seed=s, method="gap")
            )
            for s in range(20)
        ]
        expect = p * n * (n - 1) / 2
        assert abs(np.mean(counts) - expect) < 0.05 * expect

    def test_er_stream_gap_valid_edges(self):
        seen = set()
        for cu, cv in erdos_renyi_stream(
            50, 0.3, seed=2, chunk_pairs=37, method="gap"
        ):
            assert np.all(cu < cv)
            for e in zip(cu.tolist(), cv.tolist()):
                assert e not in seen
                seen.add(e)

    def test_er_stream_p_one(self):
        total = sum(
            len(cu)
            for cu, _ in erdos_renyi_stream(
                20, 1.0, seed=0, chunk_pairs=7, method="gap"
            )
        )
        assert total == 20 * 19 // 2

    def test_er_stream_empty(self):
        assert list(erdos_renyi_stream(1, 0.5, seed=0)) == []
        assert list(erdos_renyi_stream(10, 0.0, seed=0)) == []

    def test_er_stream_validation(self):
        with pytest.raises(ConfigurationError):
            list(erdos_renyi_stream(-1, 0.5))
        with pytest.raises(ConfigurationError):
            list(erdos_renyi_stream(5, 1.5))
        with pytest.raises(ConfigurationError):
            list(erdos_renyi_stream(5, 0.5, chunk_pairs=0))
        with pytest.raises(ConfigurationError):
            list(erdos_renyi_stream(5, 0.5, method="bogus"))

    def test_ba_stream_pinned_to_barabasi_albert(self):
        g = barabasi_albert(150, 3, seed=9)
        got = sorted(
            tuple(sorted((int(a), int(b))))
            for cu, cv in barabasi_albert_stream(
                150, 3, seed=9, chunk_edges=37
            )
            for a, b in zip(cu, cv)
        )
        assert got == sorted(tuple(sorted(e)) for e in g.edges())

    def test_ba_stream_chronological_chunk_invariant(self):
        ref = [
            e
            for cu, cv in barabasi_albert_stream(100, 2, seed=6)
            for e in zip(cu.tolist(), cv.tolist())
        ]
        got = [
            e
            for cu, cv in barabasi_albert_stream(
                100, 2, seed=6, chunk_edges=11
            )
            for e in zip(cu.tolist(), cv.tolist())
        ]
        assert got == ref

    def test_ba_stream_validation(self):
        with pytest.raises(ConfigurationError):
            list(barabasi_albert_stream(5, 0))
        with pytest.raises(ConfigurationError):
            list(barabasi_albert_stream(2, 3))
        with pytest.raises(ConfigurationError):
            list(barabasi_albert_stream(10, 2, chunk_edges=0))

    def test_stream_to_mmap_end_to_end(self):
        # the full out-of-core path: stream -> spill build -> kernels,
        # against the in-RAM path from the same seed
        n = 200
        mg = MmapGraph.from_edge_chunks(
            n,
            erdos_renyi_stream(n, 0.04, seed=21, chunk_pairs=101),
        )
        g = erdos_renyi(n, 0.04, seed=21)
        ref = percolation_curve(
            g, TargetedDegreeAttack(), engine="array", resolution=20
        )
        got = percolation_curve(
            mg, TargetedDegreeAttack(), engine="mmap", resolution=20
        )
        assert np.array_equal(ref.giant_fraction, got.giant_fraction)
