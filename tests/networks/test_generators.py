"""Tests for graph generators (repro.networks.generators)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.networks.generators import (
    barabasi_albert,
    configuration_star,
    degree_histogram,
    erdos_renyi,
    watts_strogatz,
)


class TestErdosRenyi:
    def test_p_zero_has_no_edges(self):
        g = erdos_renyi(20, 0.0, seed=0)
        assert g.n_edges == 0
        assert g.n_nodes == 20

    def test_p_one_is_complete(self):
        g = erdos_renyi(10, 1.0, seed=0)
        assert g.n_edges == 45

    def test_edge_count_near_expectation(self):
        n, p = 100, 0.1
        g = erdos_renyi(n, p, seed=1)
        expected = p * n * (n - 1) / 2
        assert g.n_edges == pytest.approx(expected, rel=0.2)

    def test_deterministic_by_seed(self):
        a = erdos_renyi(30, 0.2, seed=5)
        b = erdos_renyi(30, 0.2, seed=5)
        assert sorted(map(sorted, a.edges())) == sorted(map(sorted, b.edges()))

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            erdos_renyi(-1, 0.5)
        with pytest.raises(ConfigurationError):
            erdos_renyi(5, 1.5)


class TestBarabasiAlbert:
    def test_node_and_edge_counts(self):
        n, m = 200, 3
        g = barabasi_albert(n, m, seed=0)
        assert g.n_nodes == n
        # seed clique C(m+1, 2) plus m edges per added node
        expected = m * (m + 1) // 2 + (n - m - 1) * m
        assert g.n_edges == expected

    def test_min_degree_at_least_m(self):
        g = barabasi_albert(100, 2, seed=1)
        assert min(g.degrees().values()) >= 2

    def test_heavy_tailed_degrees(self):
        """BA should develop hubs: max degree far above the median."""
        g = barabasi_albert(500, 2, seed=2)
        degrees = np.asarray(list(g.degrees().values()))
        assert degrees.max() > 5 * np.median(degrees)

    def test_more_hubs_than_er_with_same_density(self):
        gb = barabasi_albert(300, 2, seed=3)
        mean_k = 2 * gb.n_edges / gb.n_nodes
        ge = erdos_renyi(300, mean_k / 299, seed=3)
        assert max(gb.degrees().values()) > 2 * max(ge.degrees().values())

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            barabasi_albert(5, 0)
        with pytest.raises(ConfigurationError):
            barabasi_albert(3, 3)


class TestWattsStrogatz:
    def test_ring_lattice_at_p_zero(self):
        g = watts_strogatz(20, 4, 0.0, seed=0)
        assert all(d == 4 for d in g.degrees().values())
        assert g.n_edges == 40

    def test_rewiring_keeps_edge_count(self):
        g = watts_strogatz(30, 4, 0.5, seed=1)
        assert g.n_edges == 60

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            watts_strogatz(10, 3, 0.1)  # odd k
        with pytest.raises(ConfigurationError):
            watts_strogatz(4, 4, 0.1)  # n <= k
        with pytest.raises(ConfigurationError):
            watts_strogatz(10, 4, 2.0)


class TestConfigurationStar:
    def test_structure(self):
        g = configuration_star(3, 5)
        assert g.n_nodes == 3 * 6
        # hubs have leaves + chain links
        degrees = sorted(g.degrees().values(), reverse=True)
        assert degrees[0] >= 5

    def test_connected(self):
        g = configuration_star(4, 3)
        assert g.giant_component_size() == g.n_nodes

    def test_removing_hubs_shatters(self):
        g = configuration_star(2, 10)
        hubs = sorted(g.degrees(), key=g.degrees().get, reverse=True)[:2]
        for h in hubs:
            g.remove_node(h)
        assert g.giant_component_size() == 1

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            configuration_star(0, 5)
        with pytest.raises(ConfigurationError):
            configuration_star(2, 0)


class TestDegreeHistogram:
    def test_counts(self):
        g = configuration_star(1, 3)  # one hub with 3 leaves
        hist = degree_histogram(g)
        assert hist[1] == 3
        assert hist[3] == 1

    def test_empty_graph(self):
        from repro.networks.graph import Graph

        hist = degree_histogram(Graph())
        assert hist.tolist() == [0]


class TestBarabasiAlbertArrayDraw:
    """Regression for the array-backed preferential-attachment multiset:
    the historical list-backed implementation is inlined as an oracle —
    same ``rng.integers`` bounds, same target-set insertions, so the
    emitted edge stream (and therefore adjacency) is pinned exactly."""

    @staticmethod
    def _reference_edges(n, m, rng):
        edges = []
        for u in range(m + 1):
            for v in range(u + 1, m + 1):
                edges.append((u, v))
        repeated = []
        for u in range(m + 1):
            repeated.extend([u] * m)
        for new in range(m + 1, n):
            targets = set()
            while len(targets) < m:
                pick = repeated[rng.integers(len(repeated))]
                targets.add(pick)
            for t in targets:
                edges.append((new, t))
                repeated.append(t)
            repeated.extend([new] * m)
        return edges

    @pytest.mark.parametrize("n,m,seed", [(50, 1, 0), (120, 2, 7), (60, 4, 3)])
    def test_edge_stream_pinned_to_list_reference(self, n, m, seed):
        from repro.networks.generators import _ba_edges
        from repro.rng import make_rng

        ref = self._reference_edges(n, m, make_rng(seed))
        got = list(_ba_edges(n, m, make_rng(seed)))
        assert got == ref
