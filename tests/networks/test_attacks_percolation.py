"""Tests for attacks and percolation (repro.networks.attacks/.percolation).

The headline §5.1 behaviour — robust to random failure, fragile to
targeted attack — is asserted here at small scale (the full sweep is
benchmark E21).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import AnalysisError, ConfigurationError
from repro.networks.attacks import (
    AdaptiveDegreeAttack,
    RandomFailure,
    TargetedDegreeAttack,
    make_attack,
)
from repro.networks.generators import barabasi_albert, configuration_star
from repro.networks.graph import Graph
from repro.networks.percolation import (
    critical_fraction,
    percolation_curve,
)


class TestAttackOrders:
    def test_random_order_is_permutation(self):
        g = barabasi_albert(50, 2, seed=0)
        order = RandomFailure().removal_order(g, seed=1)
        assert sorted(order) == sorted(g.nodes())

    def test_random_order_depends_on_seed(self):
        g = barabasi_albert(50, 2, seed=0)
        a = RandomFailure().removal_order(g, seed=1)
        b = RandomFailure().removal_order(g, seed=2)
        assert a != b

    def test_targeted_removes_hubs_first(self):
        g = configuration_star(2, 8)
        order = TargetedDegreeAttack().removal_order(g)
        degrees = g.degrees()
        assert degrees[order[0]] == max(degrees.values())

    def test_targeted_is_deterministic(self):
        g = barabasi_albert(40, 2, seed=3)
        assert (
            TargetedDegreeAttack().removal_order(g)
            == TargetedDegreeAttack().removal_order(g)
        )

    def test_adaptive_recomputes(self):
        """After removing the hub, adaptive goes for the *new* hub."""
        # path a-b-c-d plus hub h attached to a,b,c,d
        g = Graph(edges=[("h", x) for x in "abcd"] + [("a", "b"), ("c", "d")])
        order = AdaptiveDegreeAttack().removal_order(g)
        assert order[0] == "h"
        assert len(order) == 5

    def test_factory(self):
        assert isinstance(make_attack("random"), RandomFailure)
        assert isinstance(make_attack("targeted"), TargetedDegreeAttack)
        assert isinstance(make_attack("adaptive"), AdaptiveDegreeAttack)
        with pytest.raises(ConfigurationError):
            make_attack("nuke")


class TestPercolation:
    def test_curve_starts_full_ends_empty(self):
        g = barabasi_albert(60, 2, seed=0)
        curve = percolation_curve(g, RandomFailure(), seed=1)
        assert curve.giant_fraction[0] == pytest.approx(1.0)
        assert curve.giant_fraction[-1] == pytest.approx(0.0)
        assert curve.removed_fraction[0] == 0.0
        assert curve.removed_fraction[-1] == pytest.approx(1.0)

    def test_resolution_limits_points(self):
        g = barabasi_albert(100, 2, seed=0)
        curve = percolation_curve(g, RandomFailure(), seed=1, resolution=11)
        assert len(curve.removed_fraction) <= 12

    def test_giant_at_interpolates(self):
        g = barabasi_albert(60, 2, seed=0)
        curve = percolation_curve(g, RandomFailure(), seed=1)
        assert 0.0 <= curve.giant_at(0.5) <= 1.0

    def test_empty_graph_rejected(self):
        with pytest.raises(ConfigurationError):
            percolation_curve(Graph(), RandomFailure())

    def test_scale_free_targeted_more_fragile_than_random(self):
        """The §5.1 asymmetry, at test scale."""
        g = barabasi_albert(200, 2, seed=4)
        random_curve = percolation_curve(g, RandomFailure(), seed=5,
                                         resolution=40)
        targeted_curve = percolation_curve(g, TargetedDegreeAttack(),
                                           resolution=40)
        f_random = critical_fraction(random_curve, threshold=0.1)
        f_targeted = critical_fraction(targeted_curve, threshold=0.1)
        assert f_targeted < f_random

    def test_robustness_index_orders_attacks(self):
        g = barabasi_albert(200, 2, seed=6)
        random_curve = percolation_curve(g, RandomFailure(), seed=7,
                                         resolution=40)
        targeted_curve = percolation_curve(g, TargetedDegreeAttack(),
                                           resolution=40)
        assert (targeted_curve.robustness_index()
                < random_curve.robustness_index())

    def test_critical_fraction_never_reached(self):
        from repro.networks.percolation import PercolationCurve

        curve = PercolationCurve(
            np.asarray([0.0, 0.5, 1.0]), np.asarray([1.0, 0.9, 0.8])
        )
        assert critical_fraction(curve, threshold=0.1) == 1.0

    def test_critical_fraction_bad_threshold(self):
        g = barabasi_albert(20, 2, seed=0)
        curve = percolation_curve(g, RandomFailure(), seed=0)
        with pytest.raises(AnalysisError):
            critical_fraction(curve, threshold=0.0)
