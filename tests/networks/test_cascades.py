"""Tests for load cascades (repro.networks.cascades)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.networks.cascades import (
    CascadeResult,
    LoadCascadeModel,
    ProbabilisticCascadeModel,
    modular_graph,
)
from repro.networks.generators import barabasi_albert
from repro.networks.graph import Graph


class TestLoadCascadeModel:
    def test_high_tolerance_contains_failure(self):
        g = barabasi_albert(60, 2, seed=0)
        model = LoadCascadeModel(g, tolerance=10.0)
        result = model.random_trigger(seed=1)
        assert result.cascade_size == 1  # only the seed fails

    def test_zero_tolerance_spreads(self):
        g = barabasi_albert(60, 2, seed=0)
        tight = LoadCascadeModel(g, tolerance=0.0)
        loose = LoadCascadeModel(g, tolerance=5.0)
        assert (tight.hub_trigger().cascade_size
                > loose.hub_trigger().cascade_size)

    def test_hub_trigger_at_least_random(self):
        g = barabasi_albert(80, 2, seed=2)
        model = LoadCascadeModel(g, tolerance=0.4)
        hub = model.hub_trigger().cascade_size
        rnd = min(
            model.random_trigger(seed=s).cascade_size for s in range(5)
        )
        assert hub >= rnd

    def test_seed_validation(self):
        g = Graph(edges=[(1, 2)])
        model = LoadCascadeModel(g)
        with pytest.raises(ConfigurationError):
            model.trigger([99])

    def test_damage_fraction(self):
        result = CascadeResult(
            failed=frozenset([1, 2]), waves=1, initial_failures=frozenset([1])
        )
        assert result.damage_fraction(4) == pytest.approx(0.5)
        with pytest.raises(ConfigurationError):
            result.damage_fraction(0)

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            LoadCascadeModel(Graph(), tolerance=0.5)
        with pytest.raises(ConfigurationError):
            LoadCascadeModel(Graph(edges=[(1, 2)]), tolerance=-0.1)

    def test_cascade_terminates(self):
        g = barabasi_albert(100, 3, seed=3)
        model = LoadCascadeModel(g, tolerance=0.01)
        result = model.hub_trigger()
        assert result.cascade_size <= g.n_nodes
        assert result.waves >= 1


class TestModularGraph:
    def test_structure(self):
        g = modular_graph(4, 10, intra_p=0.5, bridges=1, seed=0)
        assert g.n_nodes == 40
        assert g.giant_component_size() == 40  # bridges connect modules

    def test_modularization_contains_cascades(self):
        """The §4.5 design principle: modules act as firebreaks."""
        modular = modular_graph(5, 12, intra_p=0.6, bridges=1, seed=1)
        monolith = modular_graph(1, 60, intra_p=0.12, bridges=0, seed=1)
        m_damage = ProbabilisticCascadeModel(modular, 0.5).mean_damage(
            trials=40, seed=2
        )
        g_damage = ProbabilisticCascadeModel(monolith, 0.5).mean_damage(
            trials=40, seed=2
        )
        assert m_damage < g_damage

    def test_probabilistic_spread_extremes(self):
        g = modular_graph(2, 6, intra_p=1.0, bridges=1, seed=0)
        none = ProbabilisticCascadeModel(g, 0.0).trigger([0], seed=1)
        assert none.cascade_size == 1
        everything = ProbabilisticCascadeModel(g, 1.0).trigger([0], seed=1)
        assert everything.cascade_size == g.n_nodes

    def test_probabilistic_seed_validation(self):
        g = modular_graph(2, 6, seed=0)
        model = ProbabilisticCascadeModel(g, 0.5)
        with pytest.raises(ConfigurationError):
            model.trigger([999])
        with pytest.raises(ConfigurationError):
            ProbabilisticCascadeModel(g, 1.5)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            modular_graph(0, 5)
        with pytest.raises(ConfigurationError):
            modular_graph(2, 1)
        with pytest.raises(ConfigurationError):
            modular_graph(2, 5, intra_p=0.0)
        with pytest.raises(ConfigurationError):
            modular_graph(2, 5, bridges=-1)
