"""Object/array network-engine equivalence suite.

The array engine's contract (mirroring the agents array engine): exact
equality wherever the computation is deterministic — components,
percolation curves, load cascades, healing quality traces, attack
orderings — and statistical agreement over seeds for the stochastic
spreaders (probabilistic cascades, SIS/SIR), whose random streams are
drawn in frontier batches instead of per-edge.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.networks import (
    AdaptiveDegreeAttack,
    ArrayGraph,
    BetweennessAttack,
    Graph,
    LoadCascadeModel,
    NetworkRecoverySimulator,
    ProbabilisticCascadeModel,
    RandomFailure,
    SIRModel,
    SISModel,
    TargetedDegreeAttack,
    as_arraygraph,
    barabasi_albert,
    betweenness_centrality,
    erdos_renyi,
    make_network_engine,
    modular_graph,
    percolation_curve,
    watts_strogatz,
)
from repro.networks.arraygraph import (
    bernoulli_indices,
    connected_component_labels,
    gather_rows,
    newman_ziff_giant_sizes,
    union_find_labels,
)
from repro.rng import make_rng


def _graphs():
    return [
        barabasi_albert(200, 2, seed=7),
        erdos_renyi(150, 0.03, seed=11),
        watts_strogatz(120, 4, 0.1, seed=3),
        modular_graph(4, 20, intra_p=0.3, bridges=2, seed=5),
    ]


# -- CSR structure ----------------------------------------------------------


class TestArrayGraphStructure:
    def test_roundtrip_preserves_graph(self):
        for g in _graphs():
            ag = ArrayGraph.from_graph(g)
            back = ag.to_graph()
            assert set(back.nodes()) == set(g.nodes())
            assert {frozenset(e) for e in back.edges()} == \
                {frozenset(e) for e in g.edges()}

    def test_from_edges_dedupes_and_rejects_self_loops(self):
        ag = ArrayGraph.from_edges(4, [(0, 1), (1, 0), (0, 1), (2, 3)])
        assert ag.n_edges == 2
        assert ag.has_edge(1, 0) and ag.has_edge(3, 2)
        with pytest.raises(ConfigurationError):
            ArrayGraph.from_edges(3, [(1, 1)])

    def test_degrees_and_neighbors_match(self):
        for g in _graphs():
            ag = as_arraygraph(g)
            assert ag.degrees() == g.degrees()
            for node in g.nodes():
                assert ag.neighbors(node) == g.neighbors(node)

    def test_components_match(self):
        for g in _graphs():
            ag = as_arraygraph(g)
            assert sorted(map(len, ag.connected_components())) == \
                sorted(map(len, g.connected_components()))
            assert set(map(frozenset, ag.connected_components())) == \
                set(map(frozenset, g.connected_components()))
            assert ag.giant_component_size() == g.giant_component_size()

    def test_conversion_cache_invalidated_on_mutation(self):
        g = erdos_renyi(30, 0.1, seed=0)
        first = as_arraygraph(g)
        assert as_arraygraph(g) is first
        u = next(iter(g.nodes()))
        g.remove_node(u)
        second = as_arraygraph(g)
        assert second is not first
        assert second.n_nodes == g.n_nodes


# -- kernels ----------------------------------------------------------------


class TestKernels:
    def test_gather_rows_matches_slices(self):
        ag = as_arraygraph(barabasi_albert(60, 3, seed=1))
        rows = np.asarray([5, 0, 17, 5])
        flat, counts = gather_rows(ag.indptr, ag.indices, rows)
        expected = np.concatenate([
            ag.indices[ag.indptr[r]:ag.indptr[r + 1]] for r in rows
        ])
        assert np.array_equal(flat, expected)
        assert np.array_equal(counts, np.diff(ag.indptr)[rows])

    def test_union_find_agrees_with_min_label(self):
        ag = as_arraygraph(erdos_renyi(80, 0.02, seed=4))
        u, v = ag.edge_arrays()
        a = union_find_labels(ag.n_nodes, u, v)
        b = connected_component_labels(ag.n_nodes, u, v)
        # same partition (root naming may differ)
        for arr in (a, b):
            assert len(arr) == ag.n_nodes
        pairs = set(zip(a.tolist(), b.tolist()))
        assert len(pairs) == len(set(a.tolist())) == len(set(b.tolist()))

    def test_newman_ziff_matches_incremental_object_graph(self):
        g = erdos_renyi(50, 0.05, seed=8)
        ag = as_arraygraph(g)
        order = list(g.nodes())
        make_rng(3).shuffle(order)
        sizes = newman_ziff_giant_sizes(
            ag.indptr, ag.indices, ag.indices_of(order)
        )
        assert sizes[0] == 0
        work = Graph()
        for k, node in enumerate(order, start=1):
            work.add_node(node)
            for nb in g.neighbors(node):
                if nb in work:
                    work.add_edge(node, nb)
            assert sizes[k] == work.giant_component_size()

    def test_bernoulli_indices_edge_cases(self):
        rng = make_rng(0)
        assert bernoulli_indices(rng, 0, 0.5).size == 0
        assert bernoulli_indices(rng, 10, 0.0).size == 0
        assert np.array_equal(
            bernoulli_indices(rng, 5, 1.0), np.arange(5)
        )

    @pytest.mark.parametrize("p", [0.01, 0.05, 0.3])
    def test_bernoulli_indices_rate(self, p):
        rng = make_rng(42)
        count = 200_000
        hits = bernoulli_indices(rng, count, p)
        assert hits.size == 0 or (0 <= hits[0] and hits[-1] < count)
        assert np.all(np.diff(hits) > 0)
        assert abs(hits.size / count - p) < 5 * np.sqrt(p / count)


# -- exact equivalence ------------------------------------------------------


ATTACKS = [RandomFailure(), TargetedDegreeAttack(), AdaptiveDegreeAttack(),
           BetweennessAttack()]


class TestExactEquivalence:
    @pytest.mark.parametrize("attack", ATTACKS, ids=lambda a: a.label)
    def test_percolation_curves_identical(self, attack):
        for g in _graphs()[:2]:
            obj = percolation_curve(g, attack, seed=13, resolution=30,
                                    engine="object")
            arr = percolation_curve(g, attack, seed=13, resolution=30,
                                    engine="array")
            assert np.array_equal(obj.removed_fraction, arr.removed_fraction)
            assert np.array_equal(obj.giant_fraction, arr.giant_fraction)

    def test_percolation_every_step_identical(self):
        g = erdos_renyi(60, 0.05, seed=2)
        obj = percolation_curve(g, TargetedDegreeAttack(), engine="object")
        arr = percolation_curve(g, TargetedDegreeAttack(), engine="array")
        assert np.array_equal(obj.giant_fraction, arr.giant_fraction)

    def test_attack_orderings_identical(self):
        for g in _graphs():
            ag = as_arraygraph(g)
            assert TargetedDegreeAttack().removal_order(ag) == \
                TargetedDegreeAttack().removal_order(g)
            assert AdaptiveDegreeAttack().removal_order(ag) == \
                AdaptiveDegreeAttack().removal_order(g)

    def test_load_cascades_identical(self):
        for g in _graphs():
            for tol in (0.05, 0.2, 1.0):
                obj = LoadCascadeModel(g, tol, engine="object")
                arr = LoadCascadeModel(g, tol, engine="array")
                a, b = obj.hub_trigger(), arr.hub_trigger()
                assert a.failed == b.failed
                assert a.waves == b.waves
                a, b = obj.random_trigger(seed=5), arr.random_trigger(seed=5)
                assert a.failed == b.failed and a.waves == b.waves

    def test_healing_traces_identical(self):
        g = barabasi_albert(120, 2, seed=9)
        for repairs in (0, 1, 3):
            obj = NetworkRecoverySimulator(
                g, TargetedDegreeAttack(), repairs, engine="object"
            ).run(0.3, horizon=30, shock_time=2, seed=1)
            arr = NetworkRecoverySimulator(
                g, TargetedDegreeAttack(), repairs, engine="array"
            ).run(0.3, horizon=30, shock_time=2, seed=1)
            assert obj.removed == arr.removed
            assert np.array_equal(obj.trace.quality, arr.trace.quality)
            assert obj.fully_recovered == arr.fully_recovered

    def test_betweenness_scores_close_and_order_exact_when_separated(self):
        g = barabasi_albert(80, 2, seed=6)
        obj = betweenness_centrality(g)
        arr = betweenness_centrality(as_arraygraph(g))
        assert set(obj) == set(arr)
        for node in obj:
            assert obj[node] == pytest.approx(arr[node], abs=1e-12)


# -- statistical equivalence (stochastic spreaders) -------------------------


class TestStatisticalEquivalence:
    def test_probabilistic_cascade_mean_damage(self):
        g = barabasi_albert(150, 2, seed=4)
        obj = ProbabilisticCascadeModel(g, 0.25, engine="object")
        arr = ProbabilisticCascadeModel(g, 0.25, engine="array")
        a = obj.mean_damage(trials=120, seed=17)
        b = arr.mean_damage(trials=120, seed=17)
        assert abs(a - b) <= 0.08

    def test_sir_attack_rate_distribution(self):
        g = barabasi_albert(200, 2, seed=12)
        rates = {}
        for kind in ("object", "array"):
            model = SIRModel(g, beta=0.3, gamma=0.25, engine=kind)
            vals = [
                model.run([0], seed=s).attack_rate(g.n_nodes)
                for s in range(40)
            ]
            rates[kind] = float(np.mean(vals))
        assert abs(rates["object"] - rates["array"]) <= 0.1

    def test_sis_counts_plausible(self):
        g = erdos_renyi(120, 0.05, seed=1)
        res = SISModel(g, beta=0.4, gamma=0.2, engine="array").run(
            [0, 1], steps=30, seed=5
        )
        assert res.infected_counts[0] == 2
        assert res.steps <= 30
        assert 0 <= res.total_ever_infected <= g.n_nodes
        assert res.total_ever_infected >= len(res.final_infected)

    def test_immune_nodes_never_infected(self):
        g = barabasi_albert(100, 2, seed=2)
        immune = frozenset(range(10, 30))
        res = SIRModel(g, beta=0.9, gamma=0.1, immune=immune,
                       engine="array").run([0], seed=3)
        assert not (set(res.final_infected) & immune)


# -- engine selection -------------------------------------------------------


class TestEngineSelection:
    def test_default_is_object(self, monkeypatch):
        monkeypatch.delenv("REPRO_NETWORK_ENGINE", raising=False)
        assert make_network_engine().name == "object"

    def test_empty_env_var_means_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_NETWORK_ENGINE", "")
        assert make_network_engine().name == "object"

    def test_env_var_selects_array(self, monkeypatch):
        monkeypatch.setenv("REPRO_NETWORK_ENGINE", "array")
        assert make_network_engine().name == "array"
        model = LoadCascadeModel(erdos_renyi(20, 0.2, seed=0))
        assert model.engine.name == "array"

    def test_explicit_kind_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NETWORK_ENGINE", "array")
        assert make_network_engine("object").name == "object"

    def test_engine_instance_passes_through(self):
        eng = make_network_engine("array")
        assert make_network_engine(eng) is eng

    def test_unknown_kind_fails_loudly(self, monkeypatch):
        with pytest.raises(ConfigurationError) as exc:
            make_network_engine("vectorised")
        assert "object" in str(exc.value) and "array" in str(exc.value)
        monkeypatch.setenv("REPRO_NETWORK_ENGINE", "csr")
        with pytest.raises(ConfigurationError) as exc:
            make_network_engine()
        assert "REPRO_NETWORK_ENGINE" in str(exc.value)


# -- permutation check (satellite: Counter-based) ---------------------------


class _EqualReprAttack(RandomFailure):
    """Returns the same node twice — distinct multiset, equal repr sort."""

    def removal_order(self, g, seed=None):
        order = list(g.nodes())
        order[1] = order[0]
        return order


def test_permutation_check_catches_duplicates():
    g = erdos_renyi(10, 0.3, seed=0)
    with pytest.raises(ConfigurationError):
        percolation_curve(g, _EqualReprAttack(), engine="object")


# -- neighbors cache (satellite: hot-path allocation) -----------------------


class TestNeighborsCache:
    def test_repeated_calls_return_same_object(self):
        g = erdos_renyi(20, 0.2, seed=1)
        node = next(iter(g.nodes()))
        assert g.neighbors(node) is g.neighbors(node)

    def test_cache_invalidated_on_mutation(self):
        g = Graph(nodes=[0, 1, 2])
        g.add_edge(0, 1)
        before = g.neighbors(0)
        g.add_edge(0, 2)
        after = g.neighbors(0)
        assert before == frozenset({1})
        assert after == frozenset({1, 2})
        g.remove_edge(0, 1)
        assert g.neighbors(0) == frozenset({2})
        g.remove_node(2)
        assert g.neighbors(0) == frozenset()

    def test_copy_does_not_share_cache(self):
        g = Graph(edges=[(0, 1)])
        _ = g.neighbors(0)
        h = g.copy()
        h.add_edge(0, 2)
        assert g.neighbors(0) == frozenset({1})
        assert h.neighbors(0) == frozenset({1, 2})


# -- int64 indptr promotion (satellite: multi-million-node ceiling) ---------


class TestIndptrPromotion:
    def test_small_graphs_stay_int32(self):
        for g in _graphs():
            ag = ArrayGraph.from_graph(g)
            assert ag.indptr.dtype == np.int32
            assert ag.indices.dtype == np.int32

    def test_wide_degree_graph_promotes_to_int64(self, monkeypatch):
        # a real 2^31-edge graph cannot be allocated in a test, so
        # shrink the capacity and check the same promotion logic on a
        # synthetic wide-degree (star-heavy) graph
        import repro.networks.arraygraph as agmod

        monkeypatch.setattr(agmod, "INT32_INDPTR_CAPACITY", 64)
        hub = 0
        leaves = list(range(1, 60))
        edges = [(hub, leaf) for leaf in leaves]  # 2m = 118 > 64
        ag = ArrayGraph.from_edges(60, edges)
        assert ag.indptr.dtype == np.int64
        assert ag.indices.dtype == np.int32  # node ids still fit
        assert ag.n_edges == len(leaves)
        assert ag.degree(hub) == len(leaves)
        # kernels run unchanged on the promoted offsets
        labels = ag.component_labels()
        assert (labels == labels[hub]).all()
        flat, counts = gather_rows(
            ag.indptr, ag.indices, np.array([hub], dtype=np.int64)
        )
        assert counts.tolist() == [len(leaves)]
        assert sorted(flat.tolist()) == leaves

    def test_promoted_roundtrip_matches_object_graph(self, monkeypatch):
        import repro.networks.arraygraph as agmod

        monkeypatch.setattr(agmod, "INT32_INDPTR_CAPACITY", 8)
        g = erdos_renyi(40, 0.2, seed=13)
        ag = ArrayGraph.from_graph(g)
        assert ag.indptr.dtype == np.int64
        back = ag.to_graph()
        assert set(map(frozenset, back.edges())) == set(
            map(frozenset, g.edges())
        )
