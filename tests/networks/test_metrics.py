"""Tests for network metrics (repro.networks.metrics), cross-validated
against networkx."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.errors import AnalysisError, ConfigurationError
from repro.networks.generators import barabasi_albert, erdos_renyi, watts_strogatz
from repro.networks.graph import Graph
from repro.networks.metrics import (
    assortativity,
    average_clustering,
    average_path_length,
    clustering_coefficient,
    degree_tail_exponent,
)


def to_networkx(g: Graph) -> nx.Graph:
    h = nx.Graph()
    h.add_nodes_from(g.nodes())
    h.add_edges_from(g.edges())
    return h


class TestClustering:
    def test_triangle_is_fully_clustered(self):
        g = Graph(edges=[(0, 1), (1, 2), (2, 0)])
        assert clustering_coefficient(g, 0) == 1.0
        assert average_clustering(g) == 1.0

    def test_star_has_zero_clustering(self):
        g = Graph(edges=[("hub", i) for i in range(5)])
        assert clustering_coefficient(g, "hub") == 0.0

    def test_degree_one_node_zero(self):
        g = Graph(edges=[(0, 1)])
        assert clustering_coefficient(g, 0) == 0.0

    def test_matches_networkx(self):
        g = erdos_renyi(60, 0.15, seed=0)
        ours = average_clustering(g)
        theirs = nx.average_clustering(to_networkx(g))
        assert ours == pytest.approx(theirs)

    def test_empty_graph_rejected(self):
        with pytest.raises(ConfigurationError):
            average_clustering(Graph())


class TestPathLength:
    def test_path_graph(self):
        g = Graph(edges=[(0, 1), (1, 2), (2, 3)])
        # pairs (ordered both ways cancel): mean of all pair distances
        expected = nx.average_shortest_path_length(to_networkx(g))
        assert average_path_length(g) == pytest.approx(expected)

    def test_matches_networkx_on_connected_er(self):
        g = erdos_renyi(50, 0.2, seed=1)
        h = to_networkx(g)
        if nx.is_connected(h):
            assert average_path_length(g) == pytest.approx(
                nx.average_shortest_path_length(h)
            )

    def test_sampled_estimate_close(self):
        g = barabasi_albert(200, 3, seed=2)
        full = average_path_length(g)
        sampled = average_path_length(g, sample=60, seed=3)
        assert sampled == pytest.approx(full, rel=0.15)

    def test_no_pairs_raises(self):
        g = Graph(nodes=[1, 2])
        with pytest.raises(AnalysisError):
            average_path_length(g)

    def test_small_world_signature(self):
        """WS at small rewiring: high clustering, short paths vs lattice."""
        lattice = watts_strogatz(100, 6, 0.0, seed=4)
        small_world = watts_strogatz(100, 6, 0.1, seed=4)
        assert average_clustering(small_world) > 0.25  # still clustered
        assert average_path_length(small_world) < \
            average_path_length(lattice) * 0.75  # much shorter paths


class TestDegreeTail:
    def test_ba_exponent_near_three(self):
        g = barabasi_albert(3000, 2, seed=5)
        alpha = degree_tail_exponent(g, k_min=2)
        assert 2.0 < alpha < 4.0

    def test_er_tail_much_steeper_than_ba(self):
        """Measured above the bulk (k_min ≈ mean degree), Poisson tails
        are far steeper than the BA power law."""
        ba = barabasi_albert(1500, 6, seed=6)
        er = erdos_renyi(1500, 12 / 1499, seed=6)
        assert degree_tail_exponent(er, k_min=12) > \
            degree_tail_exponent(ba, k_min=12) + 1.5

    def test_too_few_nodes_raises(self):
        g = Graph(edges=[(0, 1)])
        with pytest.raises(AnalysisError):
            degree_tail_exponent(g)


class TestAssortativity:
    def test_ba_is_disassortative_or_neutral(self):
        g = barabasi_albert(800, 2, seed=7)
        assert assortativity(g) < 0.05

    def test_matches_networkx(self):
        g = erdos_renyi(80, 0.1, seed=8)
        ours = assortativity(g)
        theirs = nx.degree_assortativity_coefficient(to_networkx(g))
        assert ours == pytest.approx(theirs, abs=0.02)

    def test_edgeless_graph_raises(self):
        with pytest.raises(AnalysisError):
            assortativity(Graph(nodes=[1, 2]))
