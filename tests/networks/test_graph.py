"""Tests for the from-scratch graph type (repro.networks.graph),
cross-validated against networkx."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.networks.graph import Graph


def to_networkx(g: Graph) -> nx.Graph:
    h = nx.Graph()
    h.add_nodes_from(g.nodes())
    h.add_edges_from(g.edges())
    return h


class TestBasics:
    def test_add_nodes_and_edges(self):
        g = Graph(nodes=[1, 2], edges=[(1, 2), (2, 3)])
        assert g.n_nodes == 3
        assert g.n_edges == 2
        assert g.has_edge(1, 2)
        assert g.has_edge(2, 1)

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(ConfigurationError):
            g.add_edge(1, 1)

    def test_duplicate_edge_idempotent(self):
        g = Graph(edges=[(1, 2), (1, 2)])
        assert g.n_edges == 1

    def test_remove_node_cleans_edges(self):
        g = Graph(edges=[(1, 2), (2, 3)])
        g.remove_node(2)
        assert 2 not in g
        assert g.n_edges == 0
        assert g.degree(1) == 0

    def test_remove_missing_node_raises(self):
        with pytest.raises(ConfigurationError):
            Graph().remove_node(5)

    def test_remove_edge(self):
        g = Graph(edges=[(1, 2)])
        g.remove_edge(1, 2)
        assert not g.has_edge(1, 2)
        assert g.n_nodes == 2

    def test_remove_missing_edge_raises(self):
        g = Graph(nodes=[1, 2])
        with pytest.raises(ConfigurationError):
            g.remove_edge(1, 2)

    def test_copy_is_independent(self):
        g = Graph(edges=[(1, 2)])
        h = g.copy()
        h.remove_node(1)
        assert g.has_edge(1, 2)

    def test_neighbors_and_degree(self):
        g = Graph(edges=[(1, 2), (1, 3)])
        assert g.neighbors(1) == frozenset([2, 3])
        assert g.degree(1) == 2
        with pytest.raises(ConfigurationError):
            g.neighbors(9)


class TestStructure:
    def test_connected_components(self):
        g = Graph(edges=[(1, 2), (3, 4)], nodes=[5])
        comps = {frozenset(c) for c in g.connected_components()}
        assert comps == {frozenset([1, 2]), frozenset([3, 4]), frozenset([5])}

    def test_giant_component_size(self):
        g = Graph(edges=[(1, 2), (2, 3), (4, 5)])
        assert g.giant_component_size() == 3

    def test_empty_graph_giant_is_zero(self):
        assert Graph().giant_component_size() == 0

    def test_subgraph(self):
        g = Graph(edges=[(1, 2), (2, 3), (3, 1)])
        sub = g.subgraph([1, 2])
        assert sub.n_nodes == 2
        assert sub.has_edge(1, 2)
        assert not sub.has_edge(2, 3)

    def test_subgraph_unknown_node_raises(self):
        with pytest.raises(ConfigurationError):
            Graph(nodes=[1]).subgraph([1, 2])

    def test_shortest_path_length(self):
        g = Graph(edges=[(1, 2), (2, 3), (3, 4)])
        assert g.shortest_path_length(1, 4) == 3
        assert g.shortest_path_length(1, 1) == 0

    def test_shortest_path_disconnected_is_none(self):
        g = Graph(edges=[(1, 2)], nodes=[3])
        assert g.shortest_path_length(1, 3) is None


@settings(max_examples=25, deadline=None)
@given(
    edges=st.lists(
        st.tuples(st.integers(0, 12), st.integers(0, 12)).filter(
            lambda e: e[0] != e[1]
        ),
        max_size=40,
    )
)
def test_property_components_match_networkx(edges):
    g = Graph(edges=edges)
    h = to_networkx(g)
    ours = sorted(sorted(map(str, c)) for c in g.connected_components())
    theirs = sorted(sorted(map(str, c)) for c in nx.connected_components(h))
    assert ours == theirs


@settings(max_examples=25, deadline=None)
@given(
    edges=st.lists(
        st.tuples(st.integers(0, 10), st.integers(0, 10)).filter(
            lambda e: e[0] != e[1]
        ),
        min_size=1,
        max_size=30,
    )
)
def test_property_degrees_match_networkx(edges):
    g = Graph(edges=edges)
    h = to_networkx(g)
    assert g.degrees() == dict(h.degree())
    assert g.n_edges == h.number_of_edges()


class TestNeighborCacheBound:
    """Regression: the per-node frozenset cache must not grow unbounded
    on large graphs (it used to retain one frozenset per touched node
    forever, doubling adjacency memory)."""

    def test_cache_bypassed_above_threshold(self, monkeypatch):
        from repro.networks import graph as graph_mod

        monkeypatch.setattr(graph_mod, "NEIGHBOR_CACHE_MAX_NODES", 5)
        g = Graph(nodes=range(10), edges=[(i, i + 1) for i in range(9)])
        for node in list(g.nodes()):
            g.neighbors(node)
        assert g._frozen == {}
        # correctness is unchanged, only the caching is skipped
        assert g.neighbors(4) == frozenset({3, 5})

    def test_cache_still_used_below_threshold(self):
        g = Graph(nodes=range(4), edges=[(0, 1), (1, 2)])
        first = g.neighbors(1)
        assert g.neighbors(1) is first
        g.add_edge(1, 3)
        assert g.neighbors(1) is not first
        assert g.neighbors(1) == frozenset({0, 2, 3})
