"""Integration tests for the extension modules."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.quality import QualityTrace
from repro.csp.generators import random_binary_csp, random_clause_csp
from repro.csp.propagation import ac3
from repro.csp.solvers import backtracking_solve
from repro.networks.attacks import RandomFailure
from repro.networks.generators import barabasi_albert
from repro.networks.percolation import percolation_curve


class TestQualityInvariants:
    @settings(max_examples=30)
    @given(
        qualities=st.lists(st.floats(0.0, 100.0), min_size=3, max_size=20),
        split=st.floats(0.1, 0.9),
    )
    def test_degradation_integral_additive(self, qualities, split):
        """∫ over [a, c] = ∫ over [a, b] + ∫ over [b, c]."""
        times = list(range(len(qualities)))
        trace = QualityTrace.from_samples(times, qualities)
        a, c = trace.t_start, trace.t_end
        b = a + split * (c - a)
        whole = trace.degradation_integral(a, c)
        parts = trace.degradation_integral(a, b) + \
            trace.degradation_integral(b, c)
        assert whole == pytest.approx(parts, rel=1e-9, abs=1e-9)

    @settings(max_examples=30)
    @given(qualities=st.lists(st.floats(0.0, 100.0), min_size=2,
                              max_size=20))
    def test_availability_between_zero_and_one(self, qualities):
        times = list(range(len(qualities)))
        trace = QualityTrace.from_samples(times, qualities)
        for threshold in (0.0, 50.0, 100.0):
            a = trace.availability(threshold=threshold, resolution=50)
            assert 0.0 <= a <= 1.0

    def test_availability_complements_mean_quality_for_binary_trace(self):
        """For a 0/100 signal, availability at 100 equals mean/100."""
        trace = QualityTrace.from_samples(
            [0, 1, 1.0001, 3, 3.0001, 4], [100, 100, 0, 0, 100, 100]
        )
        availability = trace.availability(threshold=99.9)
        assert availability == pytest.approx(
            trace.mean_quality() / 100.0, abs=0.01
        )


class TestPercolationInvariants:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 200))
    def test_giant_fraction_non_increasing(self, seed):
        g = barabasi_albert(80, 2, seed=seed)
        curve = percolation_curve(g, RandomFailure(), seed=seed + 1)
        assert np.all(np.diff(curve.giant_fraction) <= 1e-12)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 200))
    def test_giant_bounded_by_remaining_nodes(self, seed):
        g = barabasi_albert(60, 2, seed=seed)
        curve = percolation_curve(g, RandomFailure(), seed=seed + 1)
        remaining = 1.0 - curve.removed_fraction
        assert np.all(curve.giant_fraction <= remaining + 1e-12)


class TestSolverStack:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 300))
    def test_ac3_never_removes_solutions_on_random_instances(self, seed):
        csp = random_binary_csp(5, 3, density=0.7, tightness=0.4, seed=seed)
        result = ac3(csp)
        solution = backtracking_solve(csp, seed=0)
        if solution is None:
            return  # nothing to preserve
        assert result.consistent
        for name, value in solution.items():
            assert value in result.domain_of(name)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 300))
    def test_clause_csp_solutions_satisfy_every_clause(self, seed):
        csp = random_clause_csp(8, 15, seed=seed)
        solution = backtracking_solve(csp, seed=0)
        if solution is None:
            return
        for clause in csp.constraints:
            assert clause.satisfied(solution)
