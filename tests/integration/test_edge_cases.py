"""Edge-case tests across modules: degenerate inputs, simultaneous
events, and failure paths not covered by the per-module suites."""

from __future__ import annotations

import pytest

from repro.csp.constraints import LinearConstraint
from repro.csp.dynamic import (
    DCSPSimulator,
    DynamicCSP,
    EnvironmentShift,
    StateDamage,
)
from repro.csp.variables import boolean_variables
from repro.errors import InjectionError
from repro.faults.campaign import InjectionCampaign
from repro.faults.injector import SystemUnderTest
from repro.faults.spec import FaultSpec
from repro.modes.switching import ModeController, SocietySimulator
from repro.shocks.arrivals import ScheduledArrivals


def factored(n, value):
    op = ">=" if value else "<="
    return tuple(
        LinearConstraint([f"x{i}"], [1.0], op, float(value), name=f"c{i}")
        for i in range(n)
    )


class TestSimultaneousEvents:
    def test_shift_and_damage_same_step(self):
        """An environment shift and state damage landing together: the
        system must adapt to the *new* constraint from the damaged state."""
        n = 4
        dynamic = DynamicCSP(
            boolean_variables(n),
            factored(n, 1),
            [
                EnvironmentShift(3, factored(n, 0)),
                StateDamage.failing(3, ["x0"]),
            ],
        )
        run = DCSPSimulator(dynamic, flips_per_step=2).run(
            {f"x{i}": 1 for i in range(n)}, horizon=10, seed=0
        )
        assert (3, "environment-shift") in run.events_applied
        assert (3, "state-damage") in run.events_applied
        # final state satisfies the new (all-zero) environment
        assert run.fit[-1]
        assert run.states[-1] == {f"x{i}": 0 for i in range(n)}

    def test_two_damages_same_step_accumulate(self):
        n = 3
        dynamic = DynamicCSP(
            boolean_variables(n),
            factored(n, 1),
            [
                StateDamage.failing(1, ["x0"]),
                StateDamage.failing(1, ["x1"]),
            ],
        )
        run = DCSPSimulator(dynamic, flips_per_step=0).run(
            {f"x{i}": 1 for i in range(n)}, horizon=3, seed=0
        )
        assert run.states[1]["x0"] == 0
        assert run.states[1]["x1"] == 0


class TestSocietyEdges:
    def test_collapse_at_time_zero(self):
        """An overwhelming shock in the very first period: the trace must
        still be well-formed (>= 2 samples) and flagged collapsed."""
        society = SocietySimulator(
            ScheduledArrivals.at([(0.0, 1000.0)]), base_repair=1.0
        )
        outcome = society.run(ModeController(), horizon=50, seed=0)
        assert outcome.collapsed
        assert outcome.total_welfare == 0.0
        assert len(outcome.trace.times) >= 2

    def test_back_to_back_shocks_absorbed_by_emergency_mode(self):
        society = SocietySimulator(
            ScheduledArrivals.at([(10.0, 30.0), (11.0, 30.0)]),
            base_repair=1.0,
        )
        outcome = society.run(
            ModeController(declare_at=20.0, stand_down_at=2.0),
            horizon=200, seed=1,
        )
        assert not outcome.collapsed
        # emergency repair between the hits keeps the peak below 60 (=30+30)
        assert 40.0 <= outcome.damage_peak < 60.0
        assert outcome.trace.quality[-1] == pytest.approx(100.0)
        assert outcome.emergency_periods > 0


class BrokenSUT(SystemUnderTest):
    """A system under test that is never healthy — misconfigured rig."""

    def reset(self) -> None:
        pass

    def inject(self, fault: FaultSpec) -> None:
        pass

    def step(self) -> None:
        pass

    def is_healthy(self) -> bool:
        return False


class TestCampaignFailurePaths:
    def test_unhealthy_after_reset_raises(self):
        campaign = InjectionCampaign(BrokenSUT(), deadline=5)
        with pytest.raises(InjectionError):
            campaign.run_episode(FaultSpec((0,)))
