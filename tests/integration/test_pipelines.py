"""Integration tests: cross-module pipelines of the resilience model.

Each test exercises a realistic multi-subsystem flow end to end,
checking that the pieces compose — the property no unit test covers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents import (
    ConstraintEnvironment,
    EvolutionSimulator,
    ShockSchedule,
    seed_population,
)
from repro.anticipation import (
    SaddleNodeSystem,
    compute_indicators,
    who_pandemic_scale,
)
from repro.core import (
    BoundedComponentDamage,
    ResilienceReport,
    Strategy,
    StrategyMix,
    assess,
    compare_reports,
    is_k_recoverable,
)
from repro.csp import BitString, DCSPSimulator, DynamicCSP, LinearConstraint
from repro.csp.dynamic import StateDamage
from repro.csp.variables import boolean_variables
from repro.faults import FaultSpace, InjectionCampaign, SpacecraftUnderTest
from repro.modes import ModeController, SocietySimulator
from repro.planning import (
    construct_policy,
    evaluate_under_interference,
    verify_policy,
)
from repro.shocks import ParetoMagnitudes, PoissonArrivals
from repro.spacecraft import DebrisStream, Spacecraft


class TestSpacecraftTriangulation:
    """The same resilience fact established three independent ways."""

    def test_analytic_policy_and_injection_agree(self):
        craft = Spacecraft(5)
        hits = 2
        # 1) direct recoverability analysis
        analytic = craft.minimal_k(hits)
        # 2) Baral-Eiter policy construction on the encoded system
        ts = craft.to_transition_system(hits)
        goals = craft.fit_states()
        assert construct_policy(ts, goals, goals, k=analytic).maintainable
        assert not construct_policy(
            ts, goals, goals, k=analytic - 1
        ).maintainable
        # 3) exhaustive black-box fault injection
        campaign = InjectionCampaign(SpacecraftUnderTest(craft, seed=0),
                                     deadline=10)
        report = campaign.run_exhaustive(FaultSpace(craft.n, hits))
        assert report.empirical_k == analytic

    def test_policy_survives_interference_when_windowed(self):
        craft = Spacecraft(4)
        ts = craft.to_transition_system(2)
        goals = craft.fit_states()
        policy = construct_policy(ts, goals, goals, k=2).policy
        assert verify_policy(ts, policy, goals)
        verdict = evaluate_under_interference(
            ts, policy, goals, interference_p=0.0, episodes=200, seed=1
        )
        assert verdict.recovery_rate == 1.0
        assert verdict.worst_steps <= 2


class TestMissionToBruneauToReport:
    def test_mission_traces_aggregate_into_reports(self):
        """Spacecraft missions -> quality traces -> Bruneau -> comparison."""
        reports = []
        for label, repairs in (("slow-repair", 1), ("fast-repair", 2)):
            craft = Spacecraft(6, repairs_per_step=repairs)
            report = ResilienceReport(label)
            for seed in range(5):
                stream = DebrisStream(6, max_hits=3, hit_probability=0.15,
                                      recovery_window=4)
                mission = craft.fly(150, stream, seed=seed)
                report.add_trace(mission.trace,
                                 survived=mission.always_recovered)
            reports.append(report)
        slow, fast = reports
        assert fast.mean_loss < slow.mean_loss
        table = compare_reports(reports)
        assert "slow-repair" in table and "fast-repair" in table

    def test_dcsp_run_assessable(self):
        """Dynamic CSP runs feed the Bruneau metric directly."""
        n = 6
        constraints = [
            LinearConstraint([f"x{i}"], [1.0], ">=", 1.0, name=f"c{i}")
            for i in range(n)
        ]
        dynamic = DynamicCSP(
            boolean_variables(n), constraints,
            [StateDamage.failing(3, [f"x{i}" for i in range(4)])],
        )
        run = DCSPSimulator(dynamic, flips_per_step=1).run(
            {f"x{i}": 1 for i in range(n)}, horizon=15, seed=0
        )
        a = assess(run.trace)
        assert a.recovered
        assert a.loss > 0


class TestAgentsToCore:
    def test_strategy_mix_flows_into_population_metrics(self):
        """StrategyMix -> seeded population -> simulation -> Bruneau."""
        env = ConstraintEnvironment.random(16, tolerance=2, seed=0)
        mix = StrategyMix.of(2, 1, 1)
        population = seed_population(mix, env, n_agents=30, budget=150.0,
                                     seed=1)
        result = EvolutionSimulator().run(
            population, env, steps=80,
            shocks=ShockSchedule(period=30, severity=5), seed=2,
        )
        assert result.survived
        a = assess(result.quality_trace())
        assert a.loss >= 0
        assert len(result.diversity) == len(result.alive)

    def test_recoverability_of_population_environment(self):
        """The agents' crisp environment is also a CSP-style constraint:
        its tolerance region maps onto bounded-damage recoverability."""
        env = ConstraintEnvironment(target=BitString.ones(6), tolerance=1)
        # an organism satisfying the constraint, hit by 2 failures, needs
        # 1 repair to get back within tolerance
        damaged = BitString.ones(6).flip(0, 1)
        assert not env.satisfies(damaged)
        assert env.satisfies(damaged.flip(0))


class TestShocksToModes:
    def test_heavy_tail_shocks_drive_society_and_alerts(self):
        """Pareto arrivals -> society welfare + staged alerts coherence."""
        process = PoissonArrivals(
            rate=0.05, magnitudes=ParetoMagnitudes(alpha=1.6, xmin=5.0)
        )
        shocks = process.generate(300.0, seed=3)
        alerts = who_pandemic_scale(base_threshold=5.0, ratio=2.0)
        max_level = 0
        for shock in shocks:
            max_level = max(max_level, alerts.observe(shock.magnitude).level)
        society = SocietySimulator(process, base_repair=0.8)
        outcome = society.run(ModeController(), horizon=300, seed=3)
        if shocks and max_level >= 4:
            # big shocks both escalate alerts and dent the society
            assert outcome.damage_peak > 0
        assert outcome.trace.t_end <= 300

    def test_early_warning_feeds_alert_system(self):
        """Tipping indicator -> Kendall trend -> alert escalation."""
        system = SaddleNodeSystem(noise=0.05, dt=0.05)
        series = system.ramp_to_tipping(12_000, seed=4)
        pre = series.pre_tip(margin=50)[-4000:]
        indicators = compute_indicators(pre, window=600)
        risk_score = max(indicators.variance_trend,
                         indicators.autocorrelation_trend)
        alerts = who_pandemic_scale(base_threshold=0.05, ratio=1.8)
        level = alerts.observe(max(risk_score, 0.0)).level
        assert level >= 3  # a strong trend escalates several phases


class TestRecoverabilityConsistency:
    def test_spacecraft_and_raw_csp_agree(self):
        """Spacecraft wraps boolean_csp + BoundedComponentDamage; the raw
        path must give identical answers."""
        craft = Spacecraft(5)
        raw = is_k_recoverable(craft.csp, BoundedComponentDamage(3), k=3)
        assert raw.is_k_recoverable == craft.is_k_recoverable(3, 3)
        assert raw.worst_steps == craft.minimal_k(3)
