"""Every repro module must import under the declared dependency floor.

Guards against APIs that outrun ``pyproject.toml`` (e.g. np.trapezoid
needs NumPy 2.0): a module that only fails at call time in one
experiment is caught here at import time for the whole package.
"""

import importlib
import pkgutil

import numpy as np

import repro


def _all_modules():
    yield "repro"
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield info.name


def test_every_module_imports():
    for name in _all_modules():
        importlib.import_module(name)


def test_numpy_satisfies_declared_floor():
    # pyproject declares numpy>=2.0; the 2.0-only APIs we rely on must
    # exist in the running interpreter
    major = int(np.__version__.split(".")[0])
    assert major >= 2
    assert hasattr(np, "trapezoid")
    assert hasattr(np, "bitwise_count")


def test_error_hierarchy():
    # one catchable root, and the runtime additions slot in where
    # existing handlers expect them: EngineError is a ConfigurationError
    # (seam callers catching config failures keep working), while the
    # supervisor/chaos errors are siblings under ReproError
    from repro import errors

    assert issubclass(errors.ConfigurationError, errors.ReproError)
    assert issubclass(errors.EngineError, errors.ConfigurationError)
    assert issubclass(errors.SupervisorError, errors.ReproError)
    assert not issubclass(errors.SupervisorError, errors.ConfigurationError)
    assert issubclass(errors.ChaosError, errors.ReproError)
    assert issubclass(errors.CheckpointError, errors.ReproError)
    for name in (
        "EngineError",
        "SupervisorError",
        "ChaosError",
    ):
        assert name in errors.__all__, name


def test_runtime_exports():
    from repro import runtime

    for name in (
        "Breaker",
        "NullSupervisor",
        "Supervisor",
        "SEAMS",
        "EngineSeam",
        "resolve_engine_kind",
        "SweepCheckpoint",
        "Tracer",
    ):
        assert name in runtime.__all__, name
        assert hasattr(runtime, name), name
