"""Every repro module must import under the declared dependency floor.

Guards against APIs that outrun ``pyproject.toml`` (e.g. np.trapezoid
needs NumPy 2.0): a module that only fails at call time in one
experiment is caught here at import time for the whole package.
"""

import importlib
import pkgutil

import numpy as np

import repro


def _all_modules():
    yield "repro"
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield info.name


def test_every_module_imports():
    for name in _all_modules():
        importlib.import_module(name)


def test_numpy_satisfies_declared_floor():
    # pyproject declares numpy>=2.0; the 2.0-only APIs we rely on must
    # exist in the running interpreter
    major = int(np.__version__.split(".")[0])
    assert major >= 2
    assert hasattr(np, "trapezoid")
    assert hasattr(np, "bitwise_count")
