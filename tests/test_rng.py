"""Tests for the RNG plumbing (repro.rng) and package surface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rng import make_rng, spawn


class TestMakeRng:
    def test_int_seed_deterministic(self):
        a = make_rng(42).random(5)
        b = make_rng(42).random(5)
        assert np.allclose(a, b)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert make_rng(rng) is rng

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(7)
        rng = make_rng(seq)
        assert isinstance(rng, np.random.Generator)


class TestSpawn:
    def test_children_are_independent_streams(self):
        parent = make_rng(1)
        children = spawn(parent, 3)
        draws = [c.random(4).tolist() for c in children]
        assert draws[0] != draws[1]
        assert draws[1] != draws[2]

    def test_same_parent_seed_same_family(self):
        a = [c.random(3).tolist() for c in spawn(make_rng(5), 4)]
        b = [c.random(3).tolist() for c in spawn(make_rng(5), 4)]
        assert a == b

    def test_zero_children(self):
        assert spawn(make_rng(0), 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn(make_rng(0), -1)


class TestPackageSurface:
    def test_all_subpackages_importable(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name)

    def test_version_string(self):
        import repro

        assert repro.__version__.count(".") == 2

    def test_errors_hierarchy(self):
        from repro import errors

        for cls in (
            errors.ConfigurationError,
            errors.SolverError,
            errors.UnsatisfiableError,
            errors.PolicyError,
            errors.UnmaintainableError,
            errors.SimulationError,
            errors.AnalysisError,
            errors.InjectionError,
        ):
            assert issubclass(cls, errors.ReproError)
        assert issubclass(errors.UnsatisfiableError, errors.SolverError)
        assert issubclass(errors.UnmaintainableError, errors.PolicyError)
