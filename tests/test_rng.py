"""Tests for the RNG plumbing (repro.rng) and package surface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rng import legacy_spawn, make_rng, spawn


class TestMakeRng:
    def test_int_seed_deterministic(self):
        a = make_rng(42).random(5)
        b = make_rng(42).random(5)
        assert np.allclose(a, b)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert make_rng(rng) is rng

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(7)
        rng = make_rng(seq)
        assert isinstance(rng, np.random.Generator)


class TestSpawn:
    def test_children_are_independent_streams(self):
        parent = make_rng(1)
        children = spawn(parent, 3)
        draws = [c.random(4).tolist() for c in children]
        assert draws[0] != draws[1]
        assert draws[1] != draws[2]

    def test_same_parent_seed_same_family(self):
        a = [c.random(3).tolist() for c in spawn(make_rng(5), 4)]
        b = [c.random(3).tolist() for c in spawn(make_rng(5), 4)]
        assert a == b

    def test_zero_children(self):
        assert spawn(make_rng(0), 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn(make_rng(0), -1)

    def test_children_come_from_seed_sequence_spawn(self):
        """Regression pin: children are SeedSequence.spawn streams, not
        integer-draw-seeded generators (birthday-collision risk)."""
        children = spawn(make_rng(7), 3)
        expected = [
            np.random.default_rng(child)
            for child in np.random.SeedSequence(7).spawn(3)
        ]
        for got, want in zip(children, expected):
            assert np.array_equal(got.random(8), want.random(8))

    def test_spawn_does_not_advance_parent_stream(self):
        parent = make_rng(11)
        before = make_rng(11).random(4)
        spawn(parent, 5)
        assert np.array_equal(parent.random(4), before)

    def test_successive_spawns_give_fresh_families(self):
        parent = make_rng(3)
        first = [c.random(3).tolist() for c in spawn(parent, 2)]
        second = [c.random(3).tolist() for c in spawn(parent, 2)]
        assert first != second

    def test_sweep_seed_children_match_spawn(self):
        """spawn() and the sweep harness derive identical child streams
        from the same parent seed (one seeding discipline everywhere)."""
        from repro.analysis.sweep import _spawn_seeds

        via_spawn = spawn(make_rng(42), 3)
        via_sweep = [
            np.random.default_rng(s) for s in _spawn_seeds(42, 3)
        ]
        for a, b in zip(via_spawn, via_sweep):
            assert np.array_equal(a.random(4), b.random(4))


class TestLegacySpawn:
    def test_reproduces_pre_fix_streams(self):
        """Compat shim: children seeded from 63-bit draws of the parent
        stream, exactly as before the SeedSequence fix."""
        parent = make_rng(1)
        seeds = make_rng(1).integers(0, 2**63 - 1, size=3, dtype=np.int64)
        expected = [np.random.default_rng(int(s)) for s in seeds]
        children = legacy_spawn(parent, 3)
        for got, want in zip(children, expected):
            assert np.array_equal(got.random(8), want.random(8))

    def test_advances_parent_stream(self):
        parent = make_rng(2)
        untouched = make_rng(2).random(4)
        legacy_spawn(parent, 3)
        assert not np.array_equal(parent.random(4), untouched)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            legacy_spawn(make_rng(0), -1)


class TestPackageSurface:
    def test_all_subpackages_importable(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name)

    def test_version_string(self):
        import repro

        assert repro.__version__.count(".") == 2

    def test_errors_hierarchy(self):
        from repro import errors

        for cls in (
            errors.ConfigurationError,
            errors.SolverError,
            errors.UnsatisfiableError,
            errors.PolicyError,
            errors.UnmaintainableError,
            errors.SimulationError,
            errors.AnalysisError,
            errors.InjectionError,
        ):
            assert issubclass(cls, errors.ReproError)
        assert issubclass(errors.UnsatisfiableError, errors.SolverError)
        assert issubclass(errors.UnmaintainableError, errors.PolicyError)
