"""Tests for the BTW sandpile (repro.soc.sandpile)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.soc.sandpile import TOPPLE_THRESHOLD, Avalanche, Sandpile


class TestSandpile:
    def test_single_grain_no_avalanche(self):
        pile = Sandpile(5)
        av = pile.drop(2, 2)
        assert av.size == 0
        assert pile.grid[2, 2] == 1

    def test_threshold_triggers_topple(self):
        pile = Sandpile(5)
        for _ in range(3):
            pile.drop(2, 2)
        av = pile.drop(2, 2)
        assert av.size == 1
        assert av.area == 1
        assert av.duration == 1
        assert pile.grid[2, 2] == 0
        # each 4-neighbour got one grain
        assert pile.grid[1, 2] == pile.grid[3, 2] == 1
        assert pile.grid[2, 1] == pile.grid[2, 3] == 1

    def test_boundary_dissipates(self):
        pile = Sandpile(3)
        for _ in range(TOPPLE_THRESHOLD):
            pile.drop(0, 0)
        # corner topple sends 2 grains off the edge
        assert pile.total_grains == 2

    def test_conservation_in_interior(self):
        """On a large grid, one interior topple conserves grains."""
        pile = Sandpile(9)
        for _ in range(TOPPLE_THRESHOLD):
            pile.drop(4, 4)
        assert pile.total_grains == TOPPLE_THRESHOLD

    def test_always_stable_after_relax(self):
        pile = Sandpile(6)
        pile.drive(300, seed=0)
        assert pile.is_stable()

    def test_out_of_range_drop(self):
        pile = Sandpile(3)
        with pytest.raises(ConfigurationError):
            pile.drop(3, 0)

    def test_invalid_side(self):
        with pytest.raises(ConfigurationError):
            Sandpile(0)

    def test_drive_counts(self):
        pile = Sandpile(8)
        avalanches = pile.drive(50, seed=1, warmup=100)
        assert len(avalanches) == 50
        assert all(isinstance(a, Avalanche) for a in avalanches)

    def test_deterministic_by_seed(self):
        a = Sandpile(8)
        b = Sandpile(8)
        av_a = a.drive(100, seed=3)
        av_b = b.drive(100, seed=3)
        assert [x.size for x in av_a] == [x.size for x in av_b]
        assert np.array_equal(a.grid, b.grid)

    def test_criticality_produces_large_avalanches(self):
        """After warmup, the pile self-organizes: some avalanches are much
        larger than one topple, with no parameter tuning."""
        pile = Sandpile(15)
        avalanches = pile.drive(2000, seed=4, warmup=2000)
        sizes = [a.size for a in avalanches]
        assert max(sizes) > 50
        assert min(sizes) == 0

    def test_area_bounded_by_grid(self):
        pile = Sandpile(6)
        avalanches = pile.drive(500, seed=5, warmup=500)
        assert all(a.area <= 36 for a in avalanches)
