"""Tests for the Bak–Sneppen model (repro.soc.baksneppen)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.soc.avalanche import fit_power_law
from repro.soc.baksneppen import BakSneppenModel


class TestBakSneppen:
    def test_self_organizes_above_threshold(self):
        """After relaxation, almost all fitness sits above ~0.6 with no
        parameter tuning — the §4.5 criticality claim for coevolution."""
        model = BakSneppenModel(200)
        run = model.run(steps=2000, warmup=60_000, seed=0)
        assert run.threshold_estimate > 0.5
        # the bulk of the final distribution is in the critical band
        assert float(np.mean(run.final_fitness > 0.6)) > 0.8

    def test_random_start_is_uniform_by_contrast(self):
        model = BakSneppenModel(200)
        run = model.run(steps=10, warmup=0, seed=1)
        # without relaxation the 5th percentile is near 0.05
        assert run.threshold_estimate < 0.3

    def test_avalanche_sizes_heavy_tailed(self):
        model = BakSneppenModel(150)
        run = model.run(steps=30_000, warmup=50_000,
                        avalanche_threshold=0.6, seed=2)
        sizes = run.avalanche_sizes[run.avalanche_sizes > 0]
        assert len(sizes) > 100
        assert sizes.max() > 10 * np.median(sizes)  # punctuated equilibrium

    def test_min_series_matches_steps(self):
        run = BakSneppenModel(50).run(steps=500, seed=3)
        assert len(run.min_fitness_series) == 500
        assert np.all((run.min_fitness_series >= 0)
                      & (run.min_fitness_series <= 1))

    def test_deterministic_by_seed(self):
        a = BakSneppenModel(60).run(steps=300, seed=4)
        b = BakSneppenModel(60).run(steps=300, seed=4)
        assert np.allclose(a.final_fitness, b.final_fitness)
        assert np.array_equal(a.avalanche_sizes, b.avalanche_sizes)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BakSneppenModel(2)
        model = BakSneppenModel(10)
        with pytest.raises(ConfigurationError):
            model.run(steps=0)
        with pytest.raises(ConfigurationError):
            model.run(steps=10, warmup=-1)
        with pytest.raises(ConfigurationError):
            model.run(steps=10, avalanche_threshold=1.0)
