"""Tests for avalanche statistics (repro.soc.avalanche)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.rng import make_rng
from repro.soc.avalanche import (
    fit_power_law,
    log_binned_histogram,
)


def pareto_sample(alpha, n, seed=0, xmin=1.0):
    rng = make_rng(seed)
    return xmin * (1 - rng.random(n)) ** (-1.0 / alpha)


class TestLogBinnedHistogram:
    def test_counts_sum_to_sample_size(self):
        x = pareto_sample(1.5, 5000, seed=1)
        hist = log_binned_histogram(x, n_bins=15)
        assert hist.counts.sum() == 5000

    def test_centers_increasing(self):
        x = pareto_sample(1.5, 2000, seed=2)
        hist = log_binned_histogram(x)
        assert np.all(np.diff(hist.centers) > 0)

    def test_rejects_small_samples(self):
        with pytest.raises(AnalysisError):
            log_binned_histogram([1.0] * 5)

    def test_rejects_degenerate_range(self):
        with pytest.raises(AnalysisError):
            log_binned_histogram([2.0] * 50)

    def test_nonpositive_dropped(self):
        x = np.concatenate([pareto_sample(1.5, 1000, seed=3), [-1, 0]])
        hist = log_binned_histogram(x)
        assert hist.counts.sum() == 1000


class TestFitPowerLaw:
    def test_recovers_pareto_exponent(self):
        """For Pareto(alpha) the density exponent is alpha + 1."""
        for alpha in (1.0, 1.5, 2.0):
            x = pareto_sample(alpha, 100_000, seed=int(alpha * 10))
            fit = fit_power_law(x, n_bins=25)
            assert fit.exponent == pytest.approx(alpha + 1, abs=0.35)
            assert fit.r_squared > 0.95

    def test_exponential_fits_poorly_or_steep(self):
        """Thin-tailed data should not look like a shallow power law."""
        rng = make_rng(9)
        x = rng.exponential(1.0, 50_000) + 1.0
        fit = fit_power_law(x, n_bins=20)
        assert not fit.looks_power_law(min_r2=0.97, exponent_range=(0.5, 3.0))

    def test_looks_power_law_verdict(self):
        x = pareto_sample(1.2, 50_000, seed=11)
        fit = fit_power_law(x)
        assert fit.looks_power_law()

    def test_sandpile_avalanches_look_power_law(self):
        """E20 at test scale: SOC avalanche sizes are power-law-ish."""
        from repro.soc.sandpile import Sandpile

        pile = Sandpile(20)
        avalanches = pile.drive(4000, seed=12, warmup=4000)
        sizes = [a.size for a in avalanches if a.size > 0]
        fit = fit_power_law(sizes, n_bins=12)
        assert fit.r_squared > 0.8
        assert 0.7 < fit.exponent < 2.5
