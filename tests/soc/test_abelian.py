"""The abelian property of the BTW sandpile — a deep model invariant.

Dhar's theorem: the stable configuration reached after dropping a set of
grains is independent of the order in which they are dropped (and of the
relaxation schedule).  This is the strongest correctness check available
for a sandpile implementation: any bookkeeping error in the toppling
rule breaks it.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.soc.sandpile import Sandpile


def drop_sequence(pile: Sandpile, drops):
    for r, c in drops:
        pile.drop(r, c)
    return pile.grid.copy()


class TestAbelianProperty:
    def test_two_grains_commute(self):
        side = 5
        a = Sandpile(side)
        b = Sandpile(side)
        # preload both piles identically near the threshold
        for pile in (a, b):
            pile.grid[:] = 3
        grid_ab = drop_sequence(a, [(2, 2), (1, 3)])
        grid_ba = drop_sequence(b, [(1, 3), (2, 2)])
        assert np.array_equal(grid_ab, grid_ba)

    def test_permuted_batches_agree(self):
        rng = np.random.default_rng(3)
        side = 6
        drops = [(int(rng.integers(side)), int(rng.integers(side)))
                 for _ in range(40)]
        reference = None
        for seed in range(3):
            order = list(drops)
            np.random.default_rng(seed).shuffle(order)
            pile = Sandpile(side)
            grid = drop_sequence(pile, order)
            if reference is None:
                reference = grid
            else:
                assert np.array_equal(grid, reference)

    def test_total_topplings_also_invariant(self):
        """Dhar: not only the final grid but the per-drop toppling total
        over a batch is order-independent."""
        side = 5
        drops = [(2, 2)] * 6 + [(0, 0)] * 4 + [(4, 3)] * 5
        totals = []
        for seed in range(3):
            order = list(drops)
            np.random.default_rng(seed).shuffle(order)
            pile = Sandpile(side)
            totals.append(sum(pile.drop(r, c).size for r, c in order))
        assert totals[0] == totals[1] == totals[2]


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 1000))
def test_property_abelian_random_batches(seed):
    rng = np.random.default_rng(seed)
    side = 4
    drops = [(int(rng.integers(side)), int(rng.integers(side)))
             for _ in range(25)]
    a = Sandpile(side)
    grid_forward = drop_sequence(a, drops)
    b = Sandpile(side)
    grid_reverse = drop_sequence(b, list(reversed(drops)))
    assert np.array_equal(grid_forward, grid_reverse)
