"""Tests for the forest-fire model (repro.soc.forestfire)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.soc.forestfire import ForestFireModel, SuppressionPolicy


class TestSuppressionPolicy:
    def test_let_it_burn_suppresses_nothing(self):
        policy = SuppressionPolicy(0)
        assert not policy.suppresses(1)

    def test_threshold(self):
        policy = SuppressionPolicy(10)
        assert policy.suppresses(10)
        assert not policy.suppresses(11)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            SuppressionPolicy(-1)


class TestForestFireModel:
    def test_growth_fills_grid(self):
        model = ForestFireModel(10, growth_p=1.0, lightning_f=0.0)
        model.step(seed=0)
        assert model.tree_density == pytest.approx(1.0)

    def test_lightning_burns_cluster(self):
        model = ForestFireModel(10, growth_p=1.0, lightning_f=0.0)
        model.step(seed=0)  # full grid
        model.lightning_f = 1.0
        events = model.step(seed=1)
        burned = [e for e in events if e.burned]
        assert burned
        # the full grid is one cluster: first strike burns everything
        assert burned[0].cluster_size == 100

    def test_suppression_keeps_trees(self):
        model = ForestFireModel(
            8, growth_p=1.0, lightning_f=1.0,
            policy=SuppressionPolicy(10_000),
        )
        model.step(seed=0)
        assert model.tree_density == pytest.approx(1.0)

    def test_suppressed_events_flagged(self):
        model = ForestFireModel(
            6, growth_p=1.0, lightning_f=1.0,
            policy=SuppressionPolicy(10_000),
        )
        events = model.step(seed=1)
        assert events
        assert all(not e.burned for e in events)

    def test_run_returns_events_with_time(self):
        model = ForestFireModel(12, growth_p=0.2, lightning_f=0.05)
        events = model.run(40, seed=2, warmup=20)
        assert all(e.time >= 20 for e in events)

    def test_suppression_raises_fuel_density(self):
        """The §3.2.3 mechanism: putting out small fires ages the forest."""
        burn = ForestFireModel(20, growth_p=0.1, lightning_f=0.01)
        suppress = ForestFireModel(
            20, growth_p=0.1, lightning_f=0.01, policy=SuppressionPolicy(400)
        )
        burn.run(300, seed=3)
        suppress.run(300, seed=3)
        assert suppress.tree_density > burn.tree_density

    def test_suppression_makes_surviving_fires_larger(self):
        """Suppressing sub-threshold fires lets fuel accumulate, so the
        fires that do escape are bigger (the Yellowstone effect)."""
        def biggest_fire(threshold, seed):
            model = ForestFireModel(
                20, growth_p=0.1, lightning_f=0.01,
                policy=SuppressionPolicy(threshold),
            )
            events = model.run(300, seed=seed)
            return max((e.cluster_size for e in events if e.burned), default=0)

        wins = sum(
            biggest_fire(100, seed) > biggest_fire(0, seed)
            for seed in range(4)
        )
        assert wins >= 3

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            ForestFireModel(1)
        with pytest.raises(ConfigurationError):
            ForestFireModel(5, growth_p=0.0)
        with pytest.raises(ConfigurationError):
            ForestFireModel(5, lightning_f=1.5)
        model = ForestFireModel(5)
        with pytest.raises(ConfigurationError):
            model.run(-1)
