"""Tests for the fault-injection harness (repro.faults)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, InjectionError
from repro.faults.campaign import CampaignReport, EpisodeResult, InjectionCampaign
from repro.faults.injector import SpacecraftUnderTest, SystemUnderTest
from repro.faults.spec import FaultSpace, FaultSpec
from repro.spacecraft.system import Spacecraft


class TestFaultSpec:
    def test_components_sorted_deduped(self):
        spec = FaultSpec((3, 1, 3))
        assert spec.components == (1, 3)
        assert spec.severity == 2

    def test_default_label(self):
        assert FaultSpec((2, 0)).label == "fail[0,2]"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(())
        with pytest.raises(ConfigurationError):
            FaultSpec((-1,))


class TestFaultSpace:
    def test_size_formula(self):
        space = FaultSpace(5, 2)
        assert space.size == 5 + 10

    def test_enumerate_matches_size(self):
        space = FaultSpace(5, 2)
        faults = list(space.enumerate_all())
        assert len(faults) == space.size
        assert len(set(f.components for f in faults)) == space.size

    def test_sample_within_envelope(self):
        space = FaultSpace(6, 3)
        for s in range(20):
            f = space.sample(seed=s)
            assert 1 <= f.severity <= 3
            assert all(0 <= c < 6 for c in f.components)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultSpace(0, 1)
        with pytest.raises(ConfigurationError):
            FaultSpace(4, 5)


class TestSpacecraftUnderTest:
    def test_lifecycle(self):
        sut = SpacecraftUnderTest(Spacecraft(4), seed=0)
        assert sut.is_healthy()
        sut.inject(FaultSpec((0, 2)))
        assert not sut.is_healthy()
        sut.step()
        sut.step()
        assert sut.is_healthy()
        sut.reset()
        assert sut.is_healthy()

    def test_out_of_range_fault_rejected(self):
        sut = SpacecraftUnderTest(Spacecraft(3), seed=0)
        with pytest.raises(InjectionError):
            sut.inject(FaultSpec((5,)))

    def test_step_is_noop_when_healthy(self):
        sut = SpacecraftUnderTest(Spacecraft(3), seed=0)
        sut.step()
        assert sut.is_healthy()


class TestInjectionCampaign:
    def test_exhaustive_recovers_analytic_k(self):
        """E24 at test scale: the tiger team's worst case equals the
        analytic minimal k."""
        craft = Spacecraft(5)
        campaign = InjectionCampaign(SpacecraftUnderTest(craft, seed=0),
                                     deadline=10)
        for hits in (1, 2, 3):
            report = campaign.run_exhaustive(FaultSpace(5, hits))
            assert report.recovery_rate == 1.0
            assert report.empirical_k == craft.minimal_k(hits)
            assert report.claims_k_resilient(hits)
            if hits > 1:
                assert not report.claims_k_resilient(hits - 1)

    def test_sampled_campaign_lower_bounds_k(self):
        craft = Spacecraft(8)
        campaign = InjectionCampaign(SpacecraftUnderTest(craft, seed=1),
                                     deadline=20)
        report = campaign.run_sampled(FaultSpace(8, 4), trials=60, seed=2)
        assert report.n_episodes == 60
        assert report.empirical_k is not None
        assert report.empirical_k <= craft.minimal_k(4)

    def test_deadline_too_small_fails_episodes(self):
        craft = Spacecraft(6)
        campaign = InjectionCampaign(SpacecraftUnderTest(craft, seed=3),
                                     deadline=1)
        report = campaign.run_exhaustive(FaultSpace(6, 3))
        assert report.recovery_rate < 1.0
        assert report.empirical_k is None
        worst = report.worst_faults(top=3)
        assert all(not e.recovered for e in worst)

    def test_worst_faults_ranking(self):
        episodes = (
            EpisodeResult(FaultSpec((0,)), True, 1),
            EpisodeResult(FaultSpec((1, 2)), True, 5),
            EpisodeResult(FaultSpec((0, 1, 2)), False, None),
        )
        report = CampaignReport(episodes=episodes, deadline=10)
        worst = report.worst_faults(top=2)
        assert worst[0].fault.severity == 3  # unrecovered first
        assert worst[1].steps == 5

    def test_empty_campaign_report_raises(self):
        report = CampaignReport(episodes=(), deadline=5)
        with pytest.raises(InjectionError):
            _ = report.recovery_rate

    def test_validation(self):
        craft = Spacecraft(3)
        with pytest.raises(ConfigurationError):
            InjectionCampaign(SpacecraftUnderTest(craft), deadline=0)
        campaign = InjectionCampaign(SpacecraftUnderTest(craft))
        with pytest.raises(ConfigurationError):
            campaign.run_sampled(FaultSpace(3, 1), trials=0)
        report = CampaignReport(
            episodes=(EpisodeResult(FaultSpec((0,)), True, 1),), deadline=5
        )
        with pytest.raises(ConfigurationError):
            report.claims_k_resilient(-1)
        with pytest.raises(ConfigurationError):
            report.worst_faults(top=0)


@settings(max_examples=15, deadline=None)
@given(n=st.integers(2, 6), hits=st.integers(1, 4))
def test_property_exhaustive_empirical_k_equals_hits(n, hits):
    """Exhaustive injection against C = 1^n finds empirical k = hits."""
    hits = min(hits, n)
    craft = Spacecraft(n)
    campaign = InjectionCampaign(
        SpacecraftUnderTest(craft, seed=0), deadline=n + 1
    )
    report = campaign.run_exhaustive(FaultSpace(n, hits))
    assert report.empirical_k == hits
