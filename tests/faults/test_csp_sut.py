"""Tests for the generic boolean-CSP system under test
(repro.faults.injector.BooleanCSPUnderTest)."""

from __future__ import annotations

import pytest

from repro.csp.bitstring import BitString
from repro.csp.constraints import LinearConstraint, at_least_k_good
from repro.csp.problem import CSP, boolean_csp
from repro.csp.variables import Variable
from repro.errors import InjectionError
from repro.faults.campaign import InjectionCampaign
from repro.faults.injector import BooleanCSPUnderTest
from repro.faults.spec import FaultSpace, FaultSpec


def factored_csp(n):
    return boolean_csp(n, [
        LinearConstraint([f"x{i}"], [1.0], ">=", 1.0, name=f"good{i}")
        for i in range(n)
    ])


class TestBooleanCSPUnderTest:
    def test_lifecycle(self):
        sut = BooleanCSPUnderTest(factored_csp(5), seed=0)
        assert sut.is_healthy()
        sut.inject(FaultSpec((1, 3)))
        assert not sut.is_healthy()
        sut.step()
        sut.step()
        assert sut.is_healthy()
        sut.reset()
        assert sut.state == BitString.ones(5)

    def test_repairs_per_step_speeds_recovery(self):
        slow = BooleanCSPUnderTest(factored_csp(6), repairs_per_step=1,
                                   seed=1)
        fast = BooleanCSPUnderTest(factored_csp(6), repairs_per_step=3,
                                   seed=1)
        fault = FaultSpec((0, 1, 2))
        slow.inject(fault)
        fast.inject(fault)
        fast.step()
        assert fast.is_healthy()
        slow.step()
        assert not slow.is_healthy()

    def test_tolerant_constraint_absorbs_small_faults(self):
        names = [f"x{i}" for i in range(5)]
        csp = boolean_csp(5, [at_least_k_good(names, 3)])
        sut = BooleanCSPUnderTest(csp, seed=2)
        sut.inject(FaultSpec((0, 1)))
        assert sut.is_healthy()  # 3 good components still satisfy C

    def test_campaign_on_generic_csp(self):
        """The tiger-team harness works against arbitrary environments."""
        names = [f"x{i}" for i in range(6)]
        csp = boolean_csp(6, [at_least_k_good(names, 4)])
        campaign = InjectionCampaign(
            BooleanCSPUnderTest(csp, seed=3), deadline=10
        )
        report = campaign.run_exhaustive(FaultSpace(6, 3))
        assert report.recovery_rate == 1.0
        # 3 failures leave 3 good; need 1 repair to reach 4
        assert report.empirical_k == 1

    def test_rejects_unfit_initial(self):
        with pytest.raises(InjectionError):
            BooleanCSPUnderTest(factored_csp(3), initial=BitString.zeros(3))

    def test_rejects_non_boolean(self):
        csp = CSP([Variable("a", (0, 1, 2))], [])
        with pytest.raises(InjectionError):
            BooleanCSPUnderTest(csp)

    def test_rejects_out_of_range_fault(self):
        sut = BooleanCSPUnderTest(factored_csp(3), seed=4)
        with pytest.raises(InjectionError):
            sut.inject(FaultSpec((7,)))

    def test_rejects_wrong_initial_length(self):
        with pytest.raises(InjectionError):
            BooleanCSPUnderTest(factored_csp(3), initial=BitString.ones(4))
