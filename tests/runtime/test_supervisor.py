"""Tests for the MAPE supervisor (repro.runtime.supervisor)."""

from __future__ import annotations

import math
import os

import pytest

from repro.analysis.sweep import sweep
from repro.errors import SupervisorError
from repro.runtime import supervisor, trace
from repro.runtime.engines import SEAMS, resolve_engine_kind
from repro.runtime.supervisor import (
    CLOSED,
    NULL,
    OPEN,
    Breaker,
    NullSupervisor,
    Supervisor,
)


class TestBreaker:
    def test_opens_at_threshold_and_stays_open(self):
        b = Breaker("csp", threshold=2)
        assert b.state == CLOSED
        assert b.record("first") is False
        assert b.state == CLOSED
        assert b.record("second") is True
        assert b.state == OPEN
        assert b.reason == "second"
        # no half-open probing: further faults are absorbed silently
        assert b.record("third") is False
        assert b.failures == 2

    def test_default_threshold_is_first_blood(self):
        b = Breaker("agents")
        assert b.record("boom") is True
        assert b.state == OPEN


class TestConstruction:
    def test_unknown_family_rejected(self):
        with pytest.raises(SupervisorError, match="unknown engine families"):
            Supervisor(families=("csp", "quantum"))

    def test_empty_families_rejected(self):
        with pytest.raises(SupervisorError, match="at least one"):
            Supervisor(families=())

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"failure_threshold": 0},
            {"deadline_s": 0},
            {"deadline_s": -1.0},
            {"memory_budget_mb": 0},
        ],
    )
    def test_bad_budgets_rejected(self, kwargs):
        with pytest.raises(SupervisorError):
            Supervisor(**kwargs)

    def test_null_supervisor_is_falsy_passthrough(self):
        assert not NULL
        assert isinstance(NULL, NullSupervisor)
        assert NULL.resolve("csp", "bit") == "bit"
        assert NULL.peek("agents", "array") == "array"
        assert NULL.csp_memory_budget() is None
        # default: no supervisor installed
        assert supervisor.current() is NULL


class TestDegradation:
    def test_resolve_passthrough_while_closed(self):
        sup = Supervisor()
        for family, seam in SEAMS.items():
            for kind in seam.choices:
                assert sup.resolve(family, kind) == kind

    def test_open_breaker_degrades_fast_kinds_only(self):
        sup = Supervisor()
        sup.trip("csp", "test fault")
        assert sup.resolve("csp", "bit") == "object"
        assert sup.resolve("csp", "object") == "object"
        # other families' breakers are untouched
        assert sup.resolve("agents", "array") == "array"

    def test_trip_counts_and_pins_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_CSP_ENGINE", raising=False)
        sup = Supervisor(families=("csp",))
        with trace.use(trace.Tracer()) as tr:
            assert sup.trip("csp", "boom") is True
            assert sup.trip("csp", "again") is False  # already open
        assert tr.counters["supervisor.trips"] == 1
        assert tr.counters["supervisor.degradations"] == 1
        # the env pin makes worker subprocesses inherit the degradation
        assert os.environ["REPRO_CSP_ENGINE"] == "object"
        sup._restore_env()
        assert "REPRO_CSP_ENGINE" not in os.environ

    def test_trip_unsupervised_family_rejected(self):
        sup = Supervisor(families=("csp",))
        with pytest.raises(SupervisorError, match="not supervised"):
            sup.trip("agents", "boom")

    def test_record_fault_trips_only_fast_families(self, monkeypatch):
        monkeypatch.setenv("REPRO_CSP_ENGINE", "bit")
        monkeypatch.setenv("REPRO_AGENT_ENGINE", "object")
        monkeypatch.delenv("REPRO_NETWORK_ENGINE", raising=False)
        sup = Supervisor()  # all three families
        tripped = sup.record_fault("MemoryError: boom")
        # csp runs bit (fast) -> tripped; agents pinned object -> spared;
        # networks defaults to object -> spared
        assert tripped == ["csp"]
        assert sup.breakers["csp"].state == OPEN
        assert sup.breakers["agents"].state == CLOSED
        assert sup.breakers["networks"].state == CLOSED
        sup._restore_env()

    def test_seam_resolution_degrades_under_installed_supervisor(
        self, monkeypatch
    ):
        monkeypatch.delenv("REPRO_CSP_ENGINE", raising=False)
        sup = Supervisor(families=("csp",))
        with supervisor.use(sup):
            sup.trip("csp", "boom")
            assert resolve_engine_kind("csp", "bit") == "object"
        # uninstalled: the seam is back to normal
        assert resolve_engine_kind("csp", "bit") == "bit"


class TestUse:
    def test_install_and_restore(self):
        sup = Supervisor()
        assert supervisor.current() is NULL
        with supervisor.use(sup) as installed:
            assert installed is sup
            assert supervisor.current() is sup
        assert supervisor.current() is NULL

    def test_use_rejects_non_supervisor(self):
        with pytest.raises(SupervisorError, match="needs a Supervisor"):
            with supervisor.use(object()):  # type: ignore[arg-type]
                pass

    def test_reentry_repins_open_breakers(self, monkeypatch):
        monkeypatch.delenv("REPRO_CSP_ENGINE", raising=False)
        sup = Supervisor(families=("csp",))
        with supervisor.use(sup):
            sup.trip("csp", "boom")
            assert os.environ["REPRO_CSP_ENGINE"] == "object"
        # exit restored the pin ...
        assert "REPRO_CSP_ENGINE" not in os.environ
        # ... but a re-installed supervisor stays degraded, including for
        # subprocesses (deterministic for the rest of the run)
        with supervisor.use(sup):
            assert os.environ["REPRO_CSP_ENGINE"] == "object"
        assert "REPRO_CSP_ENGINE" not in os.environ


class TestAnalyze:
    @pytest.mark.parametrize(
        "error,exception,expected",
        [
            ("MemoryError: out of memory", None, True),
            (None, MemoryError("boom"), True),
            ("worker timed out after 5.0s", None, True),
            ("worker process died without a result (exitcode -9)", None, True),
            ("ValueError: bad input", None, False),
            ("ValueError: bad", ValueError("bad"), False),
            (None, None, False),
            ("", None, False),
        ],
    )
    def test_is_engine_fault(self, error, exception, expected):
        assert Supervisor.is_engine_fault(error, exception) is expected


class TestBudgets:
    def test_remaining_before_install_is_full_budget(self):
        sup = Supervisor(deadline_s=5.0)
        assert sup.remaining_s() == 5.0
        assert Supervisor().remaining_s() is None

    def test_deadline_counts_down_once_installed(self):
        sup = Supervisor(deadline_s=60.0)
        with supervisor.use(sup):
            remaining = sup.remaining_s()
        assert remaining is not None and 0 < remaining <= 60.0

    def test_csp_memory_budget_in_bytes(self):
        assert Supervisor(memory_budget_mb=2).csp_memory_budget() \
            == 2 * 1024 * 1024
        assert Supervisor().csp_memory_budget() is None


def _memory_hungry_worker(value, seed):
    """Fails like an OOM'd engine while csp resolves fast, then recovers."""
    if (os.environ.get("REPRO_CSP_ENGINE") or "object") == "bit":
        raise MemoryError("engine blew the heap")
    return {"v": float(value)}


def _poisoning_worker(value, seed):
    """NaN-poisons its output while csp resolves fast, clean degraded."""
    bad = (os.environ.get("REPRO_CSP_ENGINE") or "object") == "bit"
    return {"v": float("nan") if bad else float(value)}


def _always_nan_worker(value, seed):
    return {"v": float("nan")}


class TestSupervisedSweep:
    def test_engine_fault_trips_and_rerun_heals(self, monkeypatch):
        monkeypatch.setenv("REPRO_CSP_ENGINE", "bit")
        sup = Supervisor(families=("csp",))
        with trace.use(trace.Tracer()) as tr, supervisor.use(sup):
            result = sweep(
                range(4), _memory_hungry_worker, seed=7, on_error="keep"
            )
        assert [r["v"] for r in result.rows] == [0.0, 1.0, 2.0, 3.0]
        assert result.failed == ()
        assert sup.breakers["csp"].state == OPEN
        assert tr.counters["supervisor.trips"] == 1
        assert tr.counters["supervisor.reruns"] == 4

    def test_nan_poisoned_rows_rerun_degraded(self, monkeypatch):
        monkeypatch.setenv("REPRO_CSP_ENGINE", "bit")
        sup = Supervisor(families=("csp",))
        with trace.use(trace.Tracer()) as tr, supervisor.use(sup):
            result = sweep(
                range(3), _poisoning_worker, seed=7, on_error="keep"
            )
        assert [r["v"] for r in result.rows] == [0.0, 1.0, 2.0]
        assert tr.counters["supervisor.poisoned"] == 3
        assert tr.counters["supervisor.reruns"] == 3

    def test_unrecoverable_nan_becomes_failure(self, monkeypatch):
        # every family already on its reference engine: nothing to
        # degrade, so a still-poisoned row must fail rather than leak
        for seam in SEAMS.values():
            monkeypatch.setenv(seam.env_var, seam.fallback)
        sup = Supervisor()
        with supervisor.use(sup):
            result = sweep(
                range(2), _always_nan_worker, seed=7, on_error="keep"
            )
        assert len(result.failed) == 2
        assert all("NaN-poisoned" in f.error for f in result.failed)

    def test_nan_rows_pass_through_unsupervised(self):
        # without a supervisor the legacy contract holds: the row is
        # kept as computed (checkpointing it would still be rejected)
        result = sweep(range(2), _always_nan_worker, seed=7)
        assert all(math.isnan(r["v"]) for r in result.rows)
        assert result.failed == ()

    def test_exhausted_deadline_preempts_every_point(self):
        sup = Supervisor(deadline_s=1e-9)
        with trace.use(trace.Tracer()) as tr, supervisor.use(sup):
            result = sweep(
                range(3), _poisoning_worker, seed=7, on_error="keep"
            )
        assert len(result.failed) == 3
        assert all("deadline exceeded" in f.error for f in result.failed)
        assert tr.counters["supervisor.preempted.points"] == 3


class TestMemoryBudget:
    def test_over_budget_bit_compile_preempted(self):
        from repro.csp.constraints import at_least_k_good
        from repro.csp.engine import BitCSPEngine
        from repro.csp.problem import CSP
        from repro.csp.variables import boolean_variables

        variables = boolean_variables(12)
        names = [v.name for v in variables]
        csp = CSP(variables, [at_least_k_good(names, 3)])
        engine = BitCSPEngine()
        sup = Supervisor(memory_budget_mb=0.01)  # far below 2^12 states
        with trace.use(trace.Tracer()) as tr, supervisor.use(sup):
            assert engine.try_compile(csp) is None
        assert tr.counters["supervisor.preemptions"] == 1
        assert tr.counters["csp.fallbacks"] == 1
        # without the supervisor the same compile goes through
        assert engine.try_compile(csp) is not None
