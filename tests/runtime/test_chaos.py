"""Tests for the deterministic chaos harness (repro.runtime.chaos)."""

from __future__ import annotations

import json
import math
import os

import pytest

from repro.errors import ChaosError
from repro.runtime import chaos, supervisor
from repro.runtime.chaos import (
    KINDS,
    PLAN_ENV,
    STATE_ENV,
    ChaosFault,
    ChaosPlan,
    active,
    corrupt_checkpoint,
    poison,
    run_drill,
    strike,
)
from repro.runtime.checkpoint import SweepCheckpoint, fingerprint


class TestChaosFault:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ChaosError, match="unknown chaos kind"):
            ChaosFault("meteor", 0)

    def test_negative_point_rejected(self):
        with pytest.raises(ChaosError, match="point"):
            ChaosFault("raise", -1)

    @pytest.mark.parametrize("kind", ["hang", "oom", "nan"])
    def test_family_required_for_guarded_kinds(self, kind):
        with pytest.raises(ChaosError, match="engine family"):
            ChaosFault(kind, 0)
        with pytest.raises(ChaosError, match="engine family"):
            ChaosFault(kind, 0, family="warp-core")
        assert ChaosFault(kind, 0, family="csp").family == "csp"

    def test_raise_takes_no_family(self):
        with pytest.raises(ChaosError, match="no family"):
            ChaosFault("raise", 0, family="csp")
        assert ChaosFault("raise", 0).family is None


class TestChaosPlan:
    def test_duplicate_points_rejected(self):
        with pytest.raises(ChaosError, match="duplicated points: \\[3\\]"):
            ChaosPlan(
                (ChaosFault("raise", 3), ChaosFault("oom", 3, family="csp"))
            )

    def test_fault_for(self):
        plan = ChaosPlan((ChaosFault("raise", 2),))
        assert plan.fault_for(2).kind == "raise"
        assert plan.fault_for(0) is None

    def test_json_round_trip(self):
        plan = ChaosPlan(
            (
                ChaosFault("raise", 1),
                ChaosFault("nan", 4, family="csp"),
            )
        )
        assert ChaosPlan.from_json(plan.to_json()) == plan

    @pytest.mark.parametrize(
        "text", ["not json", '{"kind": "raise"}', '[{"point": 1}]', "[42]"]
    )
    def test_from_json_rejects_malformed(self, text):
        with pytest.raises(ChaosError):
            ChaosPlan.from_json(text)

    def test_sample_is_deterministic_and_covers_all_kinds(self):
        a = ChaosPlan.sample(16, seed=42)
        b = ChaosPlan.sample(16, seed=42)
        assert a == b
        assert sorted(f.kind for f in a.faults) == sorted(KINDS)
        assert len({f.point for f in a.faults}) == len(KINDS)
        assert ChaosPlan.sample(16, seed=43) != a

    def test_sample_needs_enough_points(self):
        with pytest.raises(ChaosError, match="at least"):
            ChaosPlan.sample(2, seed=0)


class TestActive:
    def test_publishes_and_restores_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv(PLAN_ENV, raising=False)
        monkeypatch.delenv(STATE_ENV, raising=False)
        plan = ChaosPlan((ChaosFault("raise", 0),))
        state = str(tmp_path / "state")
        with active(plan, state):
            assert ChaosPlan.from_json(os.environ[PLAN_ENV]) == plan
            assert os.environ[STATE_ENV] == state
            assert os.path.isdir(state)
        assert PLAN_ENV not in os.environ
        assert STATE_ENV not in os.environ

    def test_rejects_non_plan(self, tmp_path):
        with pytest.raises(ChaosError, match="needs a ChaosPlan"):
            with active([("raise", 0)], str(tmp_path)):
                pass


class TestStrikeAndPoison:
    def test_noop_without_plan(self, monkeypatch):
        monkeypatch.delenv(PLAN_ENV, raising=False)
        strike(0)  # must not raise
        assert poison(0, {"v": 1.5}) == {"v": 1.5}

    def test_raise_strikes_exactly_once(self, tmp_path):
        plan = ChaosPlan((ChaosFault("raise", 2),))
        with active(plan, str(tmp_path / "state")):
            strike(0)  # untargeted point: no-op
            with pytest.raises(RuntimeError, match="injected worker crash"):
                strike(2)
            strike(2)  # marker exists: the fault is spent

    def test_oom_disarms_when_family_degrades(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CSP_ENGINE", "bit")
        plan = ChaosPlan((ChaosFault("oom", 1, family="csp"),))
        with active(plan, str(tmp_path / "state")):
            with pytest.raises(MemoryError, match="simulated out-of-memory"):
                strike(1)
            # the supervisor's degradation pins the env to object ...
            monkeypatch.setenv("REPRO_CSP_ENGINE", "object")
            strike(1)  # ... and the fault no longer fires

    def test_poison_replaces_floats_only_while_armed(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CSP_ENGINE", "bit")
        plan = ChaosPlan((ChaosFault("nan", 0, family="csp"),))
        row = {"ok": True, "n": 3, "v": 0.5}
        with active(plan, str(tmp_path / "state")):
            poisoned = poison(0, row)
            assert math.isnan(poisoned["v"])
            assert poisoned["ok"] is True and poisoned["n"] == 3
            assert poison(1, row) == row  # untargeted point
            monkeypatch.setenv("REPRO_CSP_ENGINE", "object")
            assert poison(0, row) == row  # degraded: disarmed


class TestCorruptCheckpoint:
    def _checkpoint(self, tmp_path, n=5, name="ckpt.jsonl"):
        path = str(tmp_path / name)
        fp = fingerprint(list(range(n)), "none")
        with SweepCheckpoint.open(path, n_points=n, fp=fp) as ckpt:
            for i in range(n):
                ckpt.record(i, {"param": i, "v": float(i)})
        return path, fp

    def test_garbles_interior_line_deterministically(self, tmp_path):
        path, fp = self._checkpoint(tmp_path)
        before = open(path).read().splitlines()
        struck = corrupt_checkpoint(path, seed=11)
        twin, _ = self._checkpoint(tmp_path, name="twin.jsonl")
        again = corrupt_checkpoint(twin, seed=11)
        assert struck == again  # same seed, same line
        after = open(path).read().splitlines()
        assert len(struck) == 1
        lineno = struck[0] - 1
        assert 0 < lineno < len(before) - 1  # never header, never tail
        assert after[lineno] != before[lineno]
        with pytest.raises(json.JSONDecodeError):
            json.loads(after[lineno])
        # the damage is exactly what the quarantine path heals
        with pytest.warns(RuntimeWarning, match="quarantined"):
            with SweepCheckpoint.open(path, n_points=5, fp=fp) as ckpt:
                assert ckpt.quarantined == 1
                assert len(ckpt.done) == 4

    def test_too_few_interior_lines_rejected(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        fp = fingerprint([0], "none")
        with SweepCheckpoint.open(path, n_points=1, fp=fp) as ckpt:
            ckpt.record(0, {"param": 0})
        with pytest.raises(ChaosError, match="interior"):
            corrupt_checkpoint(path, seed=0)


class TestDrill:
    """The PR's acceptance scenario, reproduced twice (see ISSUE)."""

    def test_drill_self_heals_and_matches_baseline(self, tmp_path):
        reports = []
        for attempt in ("a", "b"):
            workdir = tmp_path / attempt
            workdir.mkdir()
            with pytest.warns(RuntimeWarning, match="quarantined"):
                reports.append(run_drill(seed=42, workdir=str(workdir)))
        first, second = reports
        assert first["ok"] == first["n_points"] == 16
        assert first["failed"] == 0
        assert first["trips"] == 1
        assert first["degradations"] >= 1
        assert first["reruns"] >= 1
        assert first["poisoned"] >= 1
        assert first["quarantined"] >= 1
        assert first["breakers"]["csp"]["state"] == "open"
        assert first["baseline_identical"] is True
        assert sorted(f["kind"] for f in first["plan"]) == sorted(KINDS)
        # byte-identical across the two runs: fixed seed, no wall-clock
        assert [json.dumps(r, sort_keys=True) for r in first["rows"]] == [
            json.dumps(r, sort_keys=True) for r in second["rows"]
        ]
        assert {k: v for k, v in first.items() if k != "rows"} == {
            k: v for k, v in second.items() if k != "rows"
        }
        # the drill cleaned up after itself: no supervisor or chaos plan
        # left installed, no engine pins leaked
        assert supervisor.current() is supervisor.NULL
        assert PLAN_ENV not in os.environ
        assert os.environ.get("REPRO_CSP_ENGINE") in (None, "")


class TestDrillWorkerBaseline:
    def test_worker_row_shape(self):
        import numpy as np

        row = chaos._drill_worker(3, np.random.SeedSequence(1))
        assert set(row) == {"recoverable", "worst", "draw"}
        assert isinstance(row["recoverable"], bool)
        assert isinstance(row["worst"], int)
        assert isinstance(row["draw"], float)
