"""Tests for JSONL sweep checkpoints (repro.runtime.checkpoint)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import CheckpointError
from repro.runtime.checkpoint import SweepCheckpoint, fingerprint, jsonable


class TestJsonable:
    def test_plain_values_pass_through(self):
        assert jsonable({"a": 1, "b": [1.5, None, True, "x"]}) == {
            "a": 1,
            "b": [1.5, None, True, "x"],
        }

    def test_numpy_scalars_unwrapped(self):
        out = jsonable({"f": np.float64(0.5), "i": np.int64(3)})
        assert out == {"f": 0.5, "i": 3}
        assert type(out["f"]) is float and type(out["i"]) is int

    def test_arrays_become_lists(self):
        assert jsonable(np.arange(3)) == [0, 1, 2]

    def test_tuples_become_lists(self):
        assert jsonable((1, 2)) == [1, 2]

    def test_unserializable_rejected(self):
        with pytest.raises(CheckpointError):
            jsonable(object())

    @pytest.mark.parametrize(
        "bad",
        [
            float("nan"),
            float("inf"),
            float("-inf"),
            np.float64("nan"),
            {"nested": [1.0, float("nan")]},
            np.array([0.5, np.inf]),
        ],
        ids=["nan", "inf", "-inf", "np-nan", "nested-nan", "array-inf"],
    )
    def test_nonfinite_floats_rejected(self, bad):
        # json.dumps would emit the non-RFC NaN/Infinity literals, which
        # strict readers refuse — the resume round-trip must fail loudly
        # at record time, not at the next resume
        with pytest.raises(CheckpointError, match="finite"):
            jsonable(bad)

    def test_finite_floats_still_pass(self):
        assert jsonable({"x": 1e308, "y": -0.0}) == {"x": 1e308, "y": -0.0}


class TestOpenAndRecord:
    def test_fresh_file_has_header(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        fp = fingerprint([1, 2], "int:5")
        with SweepCheckpoint.open(path, n_points=2, fp=fp) as ckpt:
            assert ckpt.done == {}
            ckpt.record(0, {"param": 1, "y": np.float64(0.25)})
        lines = [json.loads(l) for l in open(path)]
        assert lines[0]["kind"] == "sweep-checkpoint"
        assert lines[0]["fingerprint"] == fp
        assert lines[1] == {"index": 0, "row": {"param": 1, "y": 0.25}}

    def test_resume_loads_completed_rows(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        fp = fingerprint([1, 2, 3], "none")
        with SweepCheckpoint.open(path, n_points=3, fp=fp) as ckpt:
            ckpt.record(0, {"param": 1})
            ckpt.record(2, {"param": 3})
        with SweepCheckpoint.open(path, n_points=3, fp=fp) as resumed:
            assert resumed.done == {0: {"param": 1}, 2: {"param": 3}}

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        with SweepCheckpoint.open(
            path, n_points=2, fp=fingerprint([1, 2], "int:5")
        ):
            pass
        with pytest.raises(CheckpointError, match="different sweep"):
            SweepCheckpoint.open(
                path, n_points=2, fp=fingerprint([1, 99], "int:5")
            )

    def test_point_count_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        fp = fingerprint([1], "none")
        with SweepCheckpoint.open(path, n_points=1, fp=fp):
            pass
        with pytest.raises(CheckpointError):
            SweepCheckpoint.open(path, n_points=2, fp=fp)

    def test_torn_tail_line_ignored(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        fp = fingerprint([1, 2], "none")
        with SweepCheckpoint.open(path, n_points=2, fp=fp) as ckpt:
            ckpt.record(0, {"param": 1})
        with open(path, "a") as fh:
            fh.write('{"index": 1, "row": {"par')  # killed mid-append
        with SweepCheckpoint.open(path, n_points=2, fp=fp) as resumed:
            assert resumed.done == {0: {"param": 1}}

    def test_not_a_checkpoint_rejected(self, tmp_path):
        path = tmp_path / "other.jsonl"
        path.write_text('{"whatever": 1}\n')
        with pytest.raises(CheckpointError):
            SweepCheckpoint.open(str(path), n_points=1, fp="x")


class TestCorruptionMatrix:
    """Pin quarantine vs. hard-raise for every corruption shape."""

    def _fresh(self, tmp_path, n_points=3):
        path = str(tmp_path / "ckpt.jsonl")
        fp = fingerprint(list(range(n_points)), "none")
        with SweepCheckpoint.open(path, n_points=n_points, fp=fp) as ckpt:
            for i in range(n_points):
                ckpt.record(i, {"param": i})
        return path, fp

    def test_truncated_header_raises(self, tmp_path):
        path, fp = self._fresh(tmp_path)
        lines = open(path).read().splitlines()
        lines[0] = lines[0][: len(lines[0]) // 2]  # torn header
        open(path, "w").write("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="header"):
            SweepCheckpoint.open(path, n_points=3, fp=fp)

    def test_garbage_midfile_line_quarantined(self, tmp_path):
        path, fp = self._fresh(tmp_path)
        lines = open(path).read().splitlines()
        lines[1] = "not json at all {"
        open(path, "w").write("\n".join(lines) + "\n")
        with pytest.warns(RuntimeWarning, match="quarantined"):
            with SweepCheckpoint.open(path, n_points=3, fp=fp) as ckpt:
                # the damaged point is forgotten (it will re-run); the
                # other rows survive
                assert set(ckpt.done) == {1, 2}
                assert ckpt.quarantined == 1
                assert ckpt.warnings == [
                    {"line": 2, "reason": "corrupt line quarantined"}
                ]
                # the raw line moved to the sidecar ...
                sidecar = open(ckpt.corrupt_path).read()
                assert "not json at all {" in sidecar
        # ... and the healed main file is clean: re-opening is warning-free
        with SweepCheckpoint.open(path, n_points=3, fp=fp) as healed:
            assert healed.warnings == []
            assert set(healed.done) == {1, 2}

    def test_fingerprint_mismatch_still_raises(self, tmp_path):
        path, _ = self._fresh(tmp_path)
        with pytest.raises(CheckpointError, match="different sweep"):
            SweepCheckpoint.open(
                path, n_points=3, fp=fingerprint([9, 9, 9], "none")
            )

    def test_duplicate_index_keeps_newer_row(self, tmp_path):
        path, fp = self._fresh(tmp_path)
        with open(path, "a") as fh:
            fh.write(
                json.dumps({"index": 1, "row": {"param": 1, "v": 2}}) + "\n"
            )
            fh.write('{"index": 2, "row": {"param": 2}}\n')  # honest tail
        with SweepCheckpoint.open(path, n_points=3, fp=fp) as ckpt:
            assert ckpt.done[1] == {"param": 1, "v": 2}
            assert ckpt.quarantined == 0  # superseded, not corrupt
            assert any(
                "duplicate index 1" in w["reason"] for w in ckpt.warnings
            )

    def test_out_of_range_index_quarantined(self, tmp_path):
        path, fp = self._fresh(tmp_path)
        lines = open(path).read().splitlines()
        lines[2] = '{"index": 99, "row": {"param": 0}}'
        open(path, "w").write("\n".join(lines) + "\n")
        with pytest.warns(RuntimeWarning, match="quarantined"):
            with SweepCheckpoint.open(path, n_points=3, fp=fp) as ckpt:
                assert set(ckpt.done) == {0, 2}
                assert ckpt.warnings == [
                    {"line": 3, "reason": "malformed record quarantined"}
                ]
