"""Tests for JSONL sweep checkpoints (repro.runtime.checkpoint)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import CheckpointError
from repro.runtime.checkpoint import SweepCheckpoint, fingerprint, jsonable


class TestJsonable:
    def test_plain_values_pass_through(self):
        assert jsonable({"a": 1, "b": [1.5, None, True, "x"]}) == {
            "a": 1,
            "b": [1.5, None, True, "x"],
        }

    def test_numpy_scalars_unwrapped(self):
        out = jsonable({"f": np.float64(0.5), "i": np.int64(3)})
        assert out == {"f": 0.5, "i": 3}
        assert type(out["f"]) is float and type(out["i"]) is int

    def test_arrays_become_lists(self):
        assert jsonable(np.arange(3)) == [0, 1, 2]

    def test_tuples_become_lists(self):
        assert jsonable((1, 2)) == [1, 2]

    def test_unserializable_rejected(self):
        with pytest.raises(CheckpointError):
            jsonable(object())


class TestOpenAndRecord:
    def test_fresh_file_has_header(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        fp = fingerprint([1, 2], "int:5")
        with SweepCheckpoint.open(path, n_points=2, fp=fp) as ckpt:
            assert ckpt.done == {}
            ckpt.record(0, {"param": 1, "y": np.float64(0.25)})
        lines = [json.loads(l) for l in open(path)]
        assert lines[0]["kind"] == "sweep-checkpoint"
        assert lines[0]["fingerprint"] == fp
        assert lines[1] == {"index": 0, "row": {"param": 1, "y": 0.25}}

    def test_resume_loads_completed_rows(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        fp = fingerprint([1, 2, 3], "none")
        with SweepCheckpoint.open(path, n_points=3, fp=fp) as ckpt:
            ckpt.record(0, {"param": 1})
            ckpt.record(2, {"param": 3})
        with SweepCheckpoint.open(path, n_points=3, fp=fp) as resumed:
            assert resumed.done == {0: {"param": 1}, 2: {"param": 3}}

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        with SweepCheckpoint.open(
            path, n_points=2, fp=fingerprint([1, 2], "int:5")
        ):
            pass
        with pytest.raises(CheckpointError, match="different sweep"):
            SweepCheckpoint.open(
                path, n_points=2, fp=fingerprint([1, 99], "int:5")
            )

    def test_point_count_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        fp = fingerprint([1], "none")
        with SweepCheckpoint.open(path, n_points=1, fp=fp):
            pass
        with pytest.raises(CheckpointError):
            SweepCheckpoint.open(path, n_points=2, fp=fp)

    def test_torn_tail_line_ignored(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        fp = fingerprint([1, 2], "none")
        with SweepCheckpoint.open(path, n_points=2, fp=fp) as ckpt:
            ckpt.record(0, {"param": 1})
        with open(path, "a") as fh:
            fh.write('{"index": 1, "row": {"par')  # killed mid-append
        with SweepCheckpoint.open(path, n_points=2, fp=fp) as resumed:
            assert resumed.done == {0: {"param": 1}}

    def test_corrupt_middle_line_rejected(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        fp = fingerprint([1, 2], "none")
        with SweepCheckpoint.open(path, n_points=2, fp=fp) as ckpt:
            ckpt.record(0, {"param": 1})
        content = open(path).read()
        garbled = content.replace(
            '{"index": 0', "not json at all {", 1
        )
        open(path, "w").write(garbled + '{"index": 1, "row": {}}\n')
        with pytest.raises(CheckpointError, match="corrupt"):
            SweepCheckpoint.open(path, n_points=2, fp=fp)

    def test_not_a_checkpoint_rejected(self, tmp_path):
        path = tmp_path / "other.jsonl"
        path.write_text('{"whatever": 1}\n')
        with pytest.raises(CheckpointError):
            SweepCheckpoint.open(str(path), n_points=1, fp="x")
