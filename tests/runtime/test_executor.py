"""Tests for the fault-tolerant point executor (repro.runtime.executor)."""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import time

import pytest

from repro.errors import ConfigurationError, ExecutionError
from repro.runtime import trace
from repro.runtime.executor import (
    PointOutcome,
    PointTask,
    _Attempt,
    _child_main,
    _harvest,
    _Running,
    run_points,
)
from repro.runtime.trace import Tracer


# workers are module-level so forked/spawned processes can run them

def call(fn, value, seed):
    return fn(value)


def double(value):
    return value * 2


def boom(value):
    raise ValueError(f"boom at {value}")


def boom_at_3(value):
    if value == 3:
        raise ValueError("boom at 3")
    return value * 2


def hang_at_1(value):
    if value == 1:
        time.sleep(60)
    return value * 2


def die_hard(value):
    os._exit(17)  # bypasses the child's exception capture entirely


def flaky(value):
    """Fails on the first attempt, succeeds on a retry (per-process)."""
    marker = os.environ["REPRO_TEST_FLAKY_MARKER"] + f".{value}"
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        raise RuntimeError("transient")
    return value * 2


def slow_flaky(value):
    """First attempt burns 0.6 s then fails; the retry returns at once."""
    marker = os.environ["REPRO_TEST_FLAKY_MARKER"] + f".{value}"
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        time.sleep(0.6)
        raise RuntimeError("transient after a slow first attempt")
    return value * 2


def ignore_sigterm_and_hang(value):
    """The pathological child: SIGTERM is ignored, then it hangs."""
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    time.sleep(120)
    return value


def sleepy(value):
    time.sleep(1.2)
    return value * 2


def slow_double(value):
    time.sleep(0.5)
    return value * 2


def slow_boom(value):
    time.sleep(0.5)
    raise ValueError("late boom")


def tasks_for(values):
    return [PointTask(index=i, value=v) for i, v in enumerate(values)]


class TestInlinePath:
    def test_success_in_order(self):
        outcomes = run_points(call, double, tasks_for([1, 2, 3]))
        assert [o.value for o in outcomes] == [2, 4, 6]
        assert all(o.ok and o.attempts == 1 for o in outcomes)

    def test_failure_captured_not_raised(self):
        outcomes = run_points(call, boom_at_3, tasks_for([1, 3]))
        assert outcomes[0].ok
        assert not outcomes[1].ok
        assert "ValueError: boom at 3" in outcomes[1].error
        assert "boom at 3" in outcomes[1].traceback
        assert isinstance(outcomes[1].exception, ValueError)

    def test_retry_exhaustion_counts_attempts(self):
        tr = Tracer()
        outcomes = run_points(
            call, boom, tasks_for([0]), retries=2, backoff=0.0, tracer=tr
        )
        assert not outcomes[0].ok
        assert outcomes[0].attempts == 3
        assert tr.counters["executor.retries"] == 2

    def test_reraise_recovers_original_exception(self):
        outcomes = run_points(call, boom, tasks_for([0]))
        with pytest.raises(ValueError, match="boom at 0"):
            outcomes[0].reraise()

    def test_reraise_without_exception_wraps(self):
        outcome = PointOutcome(
            index=0, ok=False, error="lost", traceback="tb", attempts=1
        )
        with pytest.raises(ExecutionError, match="lost"):
            outcome.reraise()

    def test_empty_tasks(self):
        assert run_points(call, double, []) == []

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ConfigurationError):
            run_points(call, double, tasks_for([1]), retries=-1)
        with pytest.raises(ConfigurationError):
            run_points(call, double, tasks_for([1]), backoff=-0.1)
        with pytest.raises(ConfigurationError):
            run_points(call, double, tasks_for([1]), timeout=0)
        with pytest.raises(ConfigurationError):
            run_points(call, double, tasks_for([1]), n_jobs=0)


class TestIsolatedPath:
    def test_parallel_success_in_order(self):
        outcomes = run_points(
            call, double, tasks_for(list(range(8))), n_jobs=4
        )
        assert [o.value for o in outcomes] == [v * 2 for v in range(8)]

    def test_worker_exception_isolated(self):
        outcomes = run_points(
            call, boom_at_3, tasks_for([1, 2, 3, 4]), n_jobs=2
        )
        assert [o.ok for o in outcomes] == [True, True, False, True]
        failed = outcomes[2]
        assert "ValueError: boom at 3" in failed.error
        assert "boom at 3" in failed.traceback
        assert isinstance(failed.exception, ValueError)

    def test_timeout_kills_hung_worker(self):
        tr = Tracer()
        start = time.monotonic()
        outcomes = run_points(
            call,
            hang_at_1,
            tasks_for([0, 1, 2]),
            n_jobs=2,
            timeout=1.0,
            tracer=tr,
        )
        assert time.monotonic() - start < 30
        assert [o.ok for o in outcomes] == [True, False, True]
        assert "timed out after 1.0s" in outcomes[1].error
        assert tr.counters["executor.timeouts"] == 1

    def test_hard_crash_reported(self):
        outcomes = run_points(call, die_hard, tasks_for([0]), n_jobs=2)
        assert not outcomes[0].ok
        assert "exitcode 17" in outcomes[0].error

    def test_retry_recovers_transient_failure(self, tmp_path, monkeypatch):
        monkeypatch.setenv(
            "REPRO_TEST_FLAKY_MARKER", str(tmp_path / "marker")
        )
        tr = Tracer()
        outcomes = run_points(
            call,
            flaky,
            tasks_for([5]),
            n_jobs=2,
            retries=1,
            backoff=0.01,
            tracer=tr,
        )
        assert outcomes[0].ok
        assert outcomes[0].value == 10
        assert outcomes[0].attempts == 2
        assert tr.counters["executor.retries"] == 1


class TestBoundedReap:
    """Regression: a SIGTERM-blocking child must not wedge the run.

    Before the bounded reap, the timeout path ran ``terminate()``
    followed by an unbounded ``join()`` — a worker that installed
    ``SIG_IGN`` for SIGTERM (or was stuck in uninterruptible I/O) hung
    the whole sweep forever.  The reap now gives SIGTERM ``term_grace``
    seconds and then escalates to SIGKILL.
    """

    def test_sigterm_ignoring_child_is_killed(self):
        tr = Tracer()
        start = time.monotonic()
        outcomes = run_points(
            call,
            ignore_sigterm_and_hang,
            tasks_for([0]),
            n_jobs=2,
            timeout=0.5,
            term_grace=0.5,
            tracer=tr,
        )
        elapsed = time.monotonic() - start
        assert elapsed < 30  # was: forever
        assert not outcomes[0].ok
        assert "timed out after 0.5s" in outcomes[0].error
        assert tr.counters["executor.timeouts"] == 1

    def test_mixed_batch_survives_sigterm_blocker(self):
        """Healthy points around the blocker still complete normally."""
        outcomes = run_points(
            call,
            hang_at_1,
            tasks_for([0, 1, 2]),
            n_jobs=3,
            timeout=1.0,
            term_grace=0.5,
        )
        assert [o.ok for o in outcomes] == [True, False, True]
        assert [o.value for o in outcomes if o.ok] == [0, 4]

    def test_term_grace_validated(self):
        with pytest.raises(ConfigurationError):
            run_points(
                call, double, tasks_for([1]), timeout=1.0, term_grace=0.0
            )
        with pytest.raises(ConfigurationError):
            run_points(
                call, double, tasks_for([1]), timeout=1.0, term_grace=-1.0
            )


class TestOrphanedChild:
    """Regression: a child whose parent already reaped it exits cleanly.

    When a per-point deadline expires *just* as the work finishes, the
    parent closes its read end before the child's final ``conn.send``.
    The send then sees a broken pipe; unguarded, the child died with an
    unhandled ``BrokenPipeError`` (nonzero exit + stderr traceback).
    """

    @staticmethod
    def _orphan(fn, value):
        ctx = mp.get_context()
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_child_main,
            args=(child_conn, call, fn, value, None),
        )
        proc.start()
        child_conn.close()
        # reap the attempt before the child can report (timeout race)
        parent_conn.close()
        proc.join(30)
        return proc

    def test_orphaned_ok_send_exits_cleanly(self):
        proc = self._orphan(slow_double, 3)
        assert proc.exitcode == 0

    def test_orphaned_error_send_exits_cleanly(self):
        proc = self._orphan(slow_boom, 3)
        assert proc.exitcode == 0


class TestEventDrivenWait:
    """Regression: the harvest loop blocks in connection.wait, not a
    5 ms busy-poll — ~0 CPU and only a handful of wakeups while idle."""

    def test_idle_wait_burns_no_cpu(self):
        tr = Tracer()
        cpu0 = time.process_time()
        outcomes = run_points(
            call, sleepy, tasks_for([0, 1]), n_jobs=2, timeout=30.0,
            tracer=tr,
        )
        cpu = time.process_time() - cpu0
        assert [o.value for o in outcomes] == [0, 2]
        # the old 5 ms poll loop woke ~240 times over a 1.2 s sleep;
        # the wait-based loop wakes on launch, the defensive 0.5 s
        # idle tick, and the two results
        assert tr.counters["executor.wakeups"] <= 25
        # parent CPU is fork/pickle overhead only, not spinning
        assert cpu < 0.5

    def test_backoff_only_wait_sleeps_to_eligibility(self):
        """With every attempt backed off (nothing running), the loop
        sleeps until retry eligibility instead of spinning."""
        tr = Tracer()
        start = time.monotonic()
        outcomes = run_points(
            call,
            boom,
            tasks_for([0]),
            n_jobs=2,
            retries=1,
            backoff=0.3,
            timeout=30.0,
            tracer=tr,
        )
        assert time.monotonic() - start >= 0.3  # backoff honored
        assert not outcomes[0].ok
        assert outcomes[0].attempts == 2

    def test_outcomes_match_inline_path(self):
        """Fault-matrix equivalence: the wait-based subprocess loop
        resolves the same outcomes as the serial in-process path."""
        values = [1, 2, 3, 4]
        inline = run_points(call, boom_at_3, tasks_for(values), n_jobs=1)
        isolated = run_points(
            call, boom_at_3, tasks_for(values), n_jobs=2
        )
        key = [(o.index, o.ok, o.value, o.error, o.attempts) for o in inline]
        assert key == [
            (o.index, o.ok, o.value, o.error, o.attempts) for o in isolated
        ]


class TestDeadlineResultRace:
    """Ordering is pinned poll-before-deadline: work that finished by
    the time the deadline check runs is harvested as ``ok``."""

    def test_result_in_pipe_beats_expired_deadline(self):
        ctx = mp.get_context()
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_child_main, args=(child_conn, call, double, 21, None)
        )
        proc.start()
        child_conn.close()
        assert parent_conn.poll(30)  # the result has arrived …
        now = time.monotonic()
        run = _Running(
            attempt=_Attempt(PointTask(index=0, value=21)),
            process=proc,
            conn=parent_conn,
            started=now - 10.0,
            deadline=now - 1.0,  # … and the deadline has passed
        )
        outcome = _harvest(
            run, now, timeout=9.0, term_grace=5.0, tr=trace.NULL
        )
        assert outcome is not None
        assert outcome.ok
        assert outcome.value == 42

    def test_elapsed_is_per_attempt_not_cumulative(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(
            "REPRO_TEST_FLAKY_MARKER", str(tmp_path / "marker")
        )
        outcomes = run_points(
            call,
            slow_flaky,
            tasks_for([7]),
            n_jobs=2,
            retries=1,
            backoff=0.01,
            timeout=30.0,
        )
        assert outcomes[0].ok
        assert outcomes[0].value == 14
        assert outcomes[0].attempts == 2
        # the slow first attempt took >= 0.6 s; the recorded elapsed is
        # the (fast) final attempt only
        assert outcomes[0].elapsed_s < 0.5
