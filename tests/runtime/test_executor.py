"""Tests for the fault-tolerant point executor (repro.runtime.executor)."""

from __future__ import annotations

import os
import time

import pytest

from repro.errors import ConfigurationError, ExecutionError
from repro.runtime.executor import PointOutcome, PointTask, run_points
from repro.runtime.trace import Tracer


# workers are module-level so forked/spawned processes can run them

def call(fn, value, seed):
    return fn(value)


def double(value):
    return value * 2


def boom(value):
    raise ValueError(f"boom at {value}")


def boom_at_3(value):
    if value == 3:
        raise ValueError("boom at 3")
    return value * 2


def hang_at_1(value):
    if value == 1:
        time.sleep(60)
    return value * 2


def die_hard(value):
    os._exit(17)  # bypasses the child's exception capture entirely


def flaky(value):
    """Fails on the first attempt, succeeds on a retry (per-process)."""
    marker = os.environ["REPRO_TEST_FLAKY_MARKER"] + f".{value}"
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        raise RuntimeError("transient")
    return value * 2


def tasks_for(values):
    return [PointTask(index=i, value=v) for i, v in enumerate(values)]


class TestInlinePath:
    def test_success_in_order(self):
        outcomes = run_points(call, double, tasks_for([1, 2, 3]))
        assert [o.value for o in outcomes] == [2, 4, 6]
        assert all(o.ok and o.attempts == 1 for o in outcomes)

    def test_failure_captured_not_raised(self):
        outcomes = run_points(call, boom_at_3, tasks_for([1, 3]))
        assert outcomes[0].ok
        assert not outcomes[1].ok
        assert "ValueError: boom at 3" in outcomes[1].error
        assert "boom at 3" in outcomes[1].traceback
        assert isinstance(outcomes[1].exception, ValueError)

    def test_retry_exhaustion_counts_attempts(self):
        tr = Tracer()
        outcomes = run_points(
            call, boom, tasks_for([0]), retries=2, backoff=0.0, tracer=tr
        )
        assert not outcomes[0].ok
        assert outcomes[0].attempts == 3
        assert tr.counters["executor.retries"] == 2

    def test_reraise_recovers_original_exception(self):
        outcomes = run_points(call, boom, tasks_for([0]))
        with pytest.raises(ValueError, match="boom at 0"):
            outcomes[0].reraise()

    def test_reraise_without_exception_wraps(self):
        outcome = PointOutcome(
            index=0, ok=False, error="lost", traceback="tb", attempts=1
        )
        with pytest.raises(ExecutionError, match="lost"):
            outcome.reraise()

    def test_empty_tasks(self):
        assert run_points(call, double, []) == []

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ConfigurationError):
            run_points(call, double, tasks_for([1]), retries=-1)
        with pytest.raises(ConfigurationError):
            run_points(call, double, tasks_for([1]), backoff=-0.1)
        with pytest.raises(ConfigurationError):
            run_points(call, double, tasks_for([1]), timeout=0)
        with pytest.raises(ConfigurationError):
            run_points(call, double, tasks_for([1]), n_jobs=0)


class TestIsolatedPath:
    def test_parallel_success_in_order(self):
        outcomes = run_points(
            call, double, tasks_for(list(range(8))), n_jobs=4
        )
        assert [o.value for o in outcomes] == [v * 2 for v in range(8)]

    def test_worker_exception_isolated(self):
        outcomes = run_points(
            call, boom_at_3, tasks_for([1, 2, 3, 4]), n_jobs=2
        )
        assert [o.ok for o in outcomes] == [True, True, False, True]
        failed = outcomes[2]
        assert "ValueError: boom at 3" in failed.error
        assert "boom at 3" in failed.traceback
        assert isinstance(failed.exception, ValueError)

    def test_timeout_kills_hung_worker(self):
        tr = Tracer()
        start = time.monotonic()
        outcomes = run_points(
            call,
            hang_at_1,
            tasks_for([0, 1, 2]),
            n_jobs=2,
            timeout=1.0,
            tracer=tr,
        )
        assert time.monotonic() - start < 30
        assert [o.ok for o in outcomes] == [True, False, True]
        assert "timed out after 1.0s" in outcomes[1].error
        assert tr.counters["executor.timeouts"] == 1

    def test_hard_crash_reported(self):
        outcomes = run_points(call, die_hard, tasks_for([0]), n_jobs=2)
        assert not outcomes[0].ok
        assert "exitcode 17" in outcomes[0].error

    def test_retry_recovers_transient_failure(self, tmp_path, monkeypatch):
        monkeypatch.setenv(
            "REPRO_TEST_FLAKY_MARKER", str(tmp_path / "marker")
        )
        tr = Tracer()
        outcomes = run_points(
            call,
            flaky,
            tasks_for([5]),
            n_jobs=2,
            retries=1,
            backoff=0.01,
            tracer=tr,
        )
        assert outcomes[0].ok
        assert outcomes[0].value == 10
        assert outcomes[0].attempts == 2
        assert tr.counters["executor.retries"] == 1
