"""Tests for the tracing/metrics facade (repro.runtime.trace)."""

from __future__ import annotations

import json

import pytest

from repro.runtime import trace
from repro.runtime.trace import NULL, NullTracer, Tracer


class TestCountersAndTimers:
    def test_counters_accumulate(self):
        tr = Tracer()
        tr.count("a")
        tr.count("a", 4)
        tr.count("b")
        assert tr.counters["a"] == 5
        assert tr.counters["b"] == 1

    def test_timer_context_records(self):
        tr = Tracer()
        with tr.timer("work"):
            pass
        with tr.timer("work"):
            pass
        stats = tr.timers["work"]
        assert stats.calls == 2
        assert stats.total_s >= 0.0
        assert stats.min_s <= stats.max_s

    def test_timer_records_on_exception(self):
        tr = Tracer()
        with pytest.raises(RuntimeError):
            with tr.timer("work"):
                raise RuntimeError("boom")
        assert tr.timers["work"].calls == 1

    def test_record_timing_folds_external_measurement(self):
        tr = Tracer()
        tr.record_timing("x", 1.5)
        tr.record_timing("x", 0.5)
        assert tr.timers["x"].total_s == pytest.approx(2.0)
        assert tr.timers["x"].mean_s == pytest.approx(1.0)


class TestEvents:
    def test_events_kept_in_memory(self):
        tr = Tracer()
        tr.event("sweep.start", points=4)
        assert tr.events[0]["event"] == "sweep.start"
        assert tr.events[0]["points"] == 4
        assert tr.events[0]["ts"] >= 0.0

    def test_events_written_as_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with Tracer(path=str(path)) as tr:
            tr.event("a", x=1)
            tr.event("b", y="z")
        lines = path.read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["event"] for r in records] == ["a", "b"]
        assert records[0]["x"] == 1

    def test_keep_events_off(self):
        tr = Tracer(keep_events=False)
        tr.event("a")
        assert tr.events == []


class TestStepHooks:
    def test_step_counts_per_engine(self):
        tr = Tracer()
        tr.step("array", 0, 10)
        tr.step("array", 1, 9)
        tr.step("object", 0, 10)
        assert tr.counters["sim.steps.array"] == 2
        assert tr.counters["sim.steps.object"] == 1

    def test_hooks_see_every_step(self):
        tr = Tracer()
        seen = []
        tr.add_step_hook(lambda engine, step, alive: seen.append((engine, step, alive)))
        tr.step("array", 0, 5)
        tr.step("array", 1, 4)
        assert seen == [("array", 0, 5), ("array", 1, 4)]


class TestHookContainment:
    def test_raising_event_hook_does_not_stop_emission(self):
        tr = Tracer()
        seen = []

        def bad(record):
            raise RuntimeError("observer bug")

        tr.add_event_hook(bad)
        tr.add_event_hook(lambda record: seen.append(record["event"]))
        with pytest.warns(RuntimeWarning, match="event hook .* contained"):
            tr.event("a")
            tr.event("b")
        # the emitter survived, later hooks still ran, events recorded
        assert [e["event"] for e in tr.events] == ["a", "b"]
        assert seen == ["a", "b"]
        assert tr.counters["trace.hook_errors"] == 2

    def test_raising_step_hook_does_not_stop_ticks(self):
        tr = Tracer()
        seen = []

        def bad(engine, step, alive):
            raise ValueError("observer bug")

        tr.add_step_hook(bad)
        tr.add_step_hook(lambda e, s, a: seen.append(s))
        with pytest.warns(RuntimeWarning, match="step hook"):
            tr.step("array", 0, 5)
            tr.step("array", 1, 4)
        assert tr.counters["sim.steps.array"] == 2
        assert seen == [0, 1]
        assert tr.counters["trace.hook_errors"] == 2

    def test_hook_error_warning_names_the_hook(self):
        tr = Tracer()

        def exploding_hook(record):
            raise KeyError("nope")

        tr.add_event_hook(exploding_hook)
        with pytest.warns(RuntimeWarning, match="exploding_hook"):
            tr.event("x")

    def test_well_behaved_hooks_stay_silent(self):
        import warnings as warnings_module

        tr = Tracer()
        tr.add_event_hook(lambda record: None)
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            tr.event("quiet")
        assert tr.counters.get("trace.hook_errors", 0) == 0


class TestCurrentTracer:
    def test_default_is_null(self):
        assert trace.current() is NULL
        assert not trace.current()

    def test_use_installs_and_restores(self):
        tr = Tracer()
        with trace.use(tr) as active:
            assert active is tr
            assert trace.current() is tr
        assert trace.current() is NULL

    def test_use_restores_on_exception(self):
        tr = Tracer()
        with pytest.raises(ValueError):
            with trace.use(tr):
                raise ValueError()
        assert trace.current() is NULL


class TestNullTracer:
    def test_noop_surface(self):
        null = NullTracer()
        null.count("x")
        null.event("y", z=1)
        null.step("array", 0, 1)
        null.record_timing("t", 1.0)
        with null.timer("t"):
            pass

    def test_step_hooks_rejected(self):
        with pytest.raises(TypeError):
            NullTracer().add_step_hook(lambda *a: None)


class TestSummary:
    def test_summary_structure(self):
        tr = Tracer()
        tr.count("points", 3)
        with tr.timer("run"):
            pass
        summary = tr.summary()
        assert summary["counters"] == {"points": 3}
        assert summary["timers"]["run"]["calls"] == 1
        assert json.dumps(summary)  # JSON-ready

    def test_summary_table_renders(self):
        tr = Tracer()
        tr.count("points", 3)
        with tr.timer("run"):
            pass
        table = tr.summary_table()
        assert "points" in table and "run" in table

    def test_empty_summary_table(self):
        assert Tracer().summary_table() == "(no trace data)"


class TestSimulatorWiring:
    def test_both_engines_report_runs_and_steps(self):
        from repro.agents.arrayengine import make_engine
        from repro.agents.environment import ConstraintEnvironment
        from repro.agents.organism import Organism
        from repro.agents.population import Population

        env = ConstraintEnvironment.random(8, tolerance=8, seed=1)
        pop = Population(
            [Organism(genome=env.target, resources=5.0) for _ in range(4)]
        )
        for engine in ("object", "array"):
            tr = Tracer()
            ticks = []
            tr.add_step_hook(lambda e, s, a: ticks.append((e, s, a)))
            with trace.use(tr):
                make_engine(engine, capacity=10).run(
                    pop, env, steps=5, seed=0
                )
            assert tr.counters[f"sim.runs.{engine}"] == 1
            assert tr.counters[f"sim.steps.{engine}"] == 5
            assert tr.timers[f"sim.run.{engine}"].calls == 1
            assert [t[1] for t in ticks] == list(range(5))
