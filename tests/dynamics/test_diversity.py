"""Tests for diversity indices (repro.dynamics.diversity)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.dynamics.diversity import (
    effective_species_count,
    evenness,
    hill_number,
    inverse_simpson,
    maruyama_diversity_index,
    shannon_entropy,
    simpson_index,
)
from repro.errors import AnalysisError

populations = st.lists(
    st.one_of(st.just(0.0), st.floats(min_value=1e-3, max_value=1e6)),
    min_size=1,
    max_size=30,
).filter(lambda xs: sum(xs) > 0)


class TestMaruyamaIndex:
    def test_equal_populations_give_paper_maximum(self):
        """G = 1/p² when all species have population p (paper §3.2.4)."""
        p = 7.0
        for n in (2, 5, 10):
            G = maruyama_diversity_index([p] * n)
            assert G == pytest.approx(1.0 / p**2)

    def test_monopoly_gives_paper_minimum(self):
        """G = 1/(N p²) when one species holds everything (p1 = Np)."""
        p, n = 3.0, 6
        pops = [n * p] + [0.0] * (n - 1)
        assert maruyama_diversity_index(pops) == pytest.approx(
            1.0 / (n * p**2)
        )

    def test_monopoly_is_n_times_less_diverse(self):
        p, n = 2.0, 8
        even = maruyama_diversity_index([p] * n)
        mono = maruyama_diversity_index([n * p] + [0.0] * (n - 1))
        assert even / mono == pytest.approx(n)

    def test_rejects_empty_and_negative(self):
        with pytest.raises(AnalysisError):
            maruyama_diversity_index([])
        with pytest.raises(AnalysisError):
            maruyama_diversity_index([-1.0, 2.0])
        with pytest.raises(AnalysisError):
            maruyama_diversity_index([0.0, 0.0])


class TestClassicIndices:
    def test_simpson_of_even_community(self):
        assert simpson_index([5, 5, 5, 5]) == pytest.approx(0.25)

    def test_inverse_simpson_counts_effective_species(self):
        assert inverse_simpson([5, 5, 5, 5]) == pytest.approx(4.0)
        assert effective_species_count([5, 5, 5, 5]) == pytest.approx(4.0)

    def test_shannon_of_even_community(self):
        assert shannon_entropy([1, 1, 1, 1], base=2) == pytest.approx(2.0)

    def test_shannon_drops_zero_species(self):
        assert shannon_entropy([1, 1, 0]) == pytest.approx(
            shannon_entropy([1, 1])
        )

    def test_evenness_bounds(self):
        assert evenness([5, 5, 5]) == pytest.approx(1.0)
        assert evenness([100]) == 0.0
        assert 0 < evenness([99, 1]) < 1

    def test_hill_numbers_special_cases(self):
        pops = [4, 3, 2, 1]
        assert hill_number(pops, 0) == pytest.approx(4.0)  # richness
        assert hill_number(pops, 1) == pytest.approx(
            np.exp(shannon_entropy(pops))
        )
        assert hill_number(pops, 2) == pytest.approx(inverse_simpson(pops))

    def test_hill_rejects_negative_order(self):
        with pytest.raises(AnalysisError):
            hill_number([1, 2], -1)


@given(pops=populations)
def test_property_simpson_in_unit_interval(pops):
    s = simpson_index(pops)
    assert 0 < s <= 1.0 + 1e-9


@given(pops=populations)
def test_property_inverse_simpson_bounded_by_richness(pops):
    present = sum(1 for p in pops if p > 0)
    assert inverse_simpson(pops) <= present + 1e-6


@given(n=st.integers(2, 20), p=st.floats(0.1, 100.0))
def test_property_even_community_maximizes_maruyama(n, p):
    """Any redistribution away from even population lowers G."""
    even = maruyama_diversity_index([p] * n)
    skewed = [p] * n
    skewed[0] += p / 2
    skewed[1] = max(skewed[1] - p / 2, 0.0)
    assert maruyama_diversity_index(skewed) <= even + 1e-9


@given(pops=populations)
def test_property_maruyama_scale_invariance_shape(pops):
    """Doubling every population quarters G (G ~ 1/p²)."""
    doubled = [2 * p for p in pops]
    assert maruyama_diversity_index(doubled) == pytest.approx(
        maruyama_diversity_index(pops) / 4.0, rel=1e-6
    )
