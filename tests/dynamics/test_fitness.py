"""Tests for fitness shapes (repro.dynamics.fitness)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.dynamics.fitness import (
    ConcaveFitness,
    LinearFitness,
    LogFitness,
    NoDensityDependence,
    PowerDensityDependence,
    is_effectively_neutral,
    selection_coefficient,
)
from repro.errors import ConfigurationError


class TestLinearFitness:
    def test_constant_marginal_gain(self):
        """No diminishing return: every extra allele pays the same."""
        f = LinearFitness(base=1.0, slope=0.1)
        assert f.marginal_gain(0) == pytest.approx(f.marginal_gain(50))

    def test_values(self):
        f = LinearFitness(base=1.0, slope=0.5)
        assert f(4) == pytest.approx(3.0)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            LinearFitness(base=0.0)
        with pytest.raises(ConfigurationError):
            LinearFitness(slope=-0.1)


class TestConcaveFitness:
    def test_marginal_gain_declines(self):
        """Fig. 2: contribution of each advantageous mutation declines."""
        f = ConcaveFitness(base=1.0, gain=1.0, scale=5.0)
        gains = [f.marginal_gain(x) for x in range(0, 30, 5)]
        assert all(g1 > g2 for g1, g2 in zip(gains, gains[1:]))

    def test_saturates_at_base_plus_gain(self):
        f = ConcaveFitness(base=1.0, gain=2.0, scale=1.0)
        assert float(f(100.0)) == pytest.approx(3.0, rel=1e-6)

    def test_monotone_nondecreasing(self):
        f = ConcaveFitness()
        xs = np.linspace(0, 50, 100)
        ys = np.asarray(f(xs))
        assert np.all(np.diff(ys) >= 0)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            ConcaveFitness(scale=0.0)
        with pytest.raises(ConfigurationError):
            ConcaveFitness(gain=-1.0)


class TestLogFitness:
    def test_weber_fechner_shape(self):
        f = LogFitness(base=1.0, gain=1.0)
        assert f.marginal_gain(1) > f.marginal_gain(10)

    def test_rejects_negative_stimulus(self):
        f = LogFitness()
        with pytest.raises(ConfigurationError):
            f(-1.0)


class TestDensityDependence:
    def test_none_is_flat(self):
        d = NoDensityDependence()
        shares = np.asarray([0.0, 0.5, 1.0])
        assert np.allclose(d.factor(shares), 1.0)

    def test_power_decreases_with_share(self):
        d = PowerDensityDependence(strength=2.0, floor=0.05)
        factors = d.factor(np.asarray([0.0, 0.5, 1.0]))
        assert factors[0] > factors[1] > factors[2]
        assert factors[2] == pytest.approx(0.05)

    def test_floor_keeps_positive(self):
        d = PowerDensityDependence(strength=1.0, floor=0.1)
        assert float(d.factor(np.asarray([1.0]))[0]) > 0

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            PowerDensityDependence(strength=0.0)
        with pytest.raises(ConfigurationError):
            PowerDensityDependence(floor=0.0)
        with pytest.raises(ConfigurationError):
            PowerDensityDependence(floor=1.5)


class TestSelectionHelpers:
    def test_selection_coefficient(self):
        assert selection_coefficient(1.1, 1.0) == pytest.approx(0.1)
        assert selection_coefficient(0.9, 1.0) == pytest.approx(-0.1)

    def test_selection_coefficient_rejects_zero_reference(self):
        with pytest.raises(ConfigurationError):
            selection_coefficient(1.0, 0.0)

    def test_near_neutrality_criterion(self):
        """Ohta: |s| < 1/(2N) behaves neutrally."""
        assert is_effectively_neutral(0.0001, population_size=100)
        assert not is_effectively_neutral(0.1, population_size=100)
        # same |s| can be neutral in a small population, selected in a large one
        s = 0.002
        assert is_effectively_neutral(s, population_size=100)
        assert not is_effectively_neutral(s, population_size=10_000)

    def test_neutrality_rejects_bad_population(self):
        with pytest.raises(ConfigurationError):
            is_effectively_neutral(0.1, population_size=0)


@given(x=st.floats(0.0, 100.0), dx=st.floats(0.1, 10.0))
def test_property_concave_marginal_gain_decreasing(x, dx):
    f = ConcaveFitness(base=1.0, gain=1.0, scale=3.0)
    assert f.marginal_gain(x, dx) >= f.marginal_gain(x + dx, dx) - 1e-12


@given(x=st.floats(0.0, 1000.0))
def test_property_fitness_positive(x):
    for f in (LinearFitness(), ConcaveFitness(), LogFitness()):
        assert float(f(x)) > 0


@given(share=st.floats(0.0, 1.0))
def test_property_density_factor_in_bounds(share):
    d = PowerDensityDependence(strength=1.5, floor=0.05)
    factor = float(d.factor(np.asarray([share]))[0])
    assert 0.0 < factor <= 1.05
