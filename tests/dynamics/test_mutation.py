"""Tests for mutation models (repro.dynamics.mutation)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.csp.bitstring import BitString
from repro.dynamics.mutation import BitFlipMutator, TraitArchitecture
from repro.errors import ConfigurationError
from repro.rng import make_rng


class TestBitFlipMutator:
    def test_zero_rate_is_identity(self):
        m = BitFlipMutator(0.0)
        g = BitString.random(32, seed=1)
        assert m.mutate(g, seed=2) == g

    def test_rate_one_flips_everything(self):
        m = BitFlipMutator(1.0)
        g = BitString.zeros(16)
        assert m.mutate(g, seed=3) == BitString.ones(16)

    def test_expected_flips(self):
        assert BitFlipMutator(0.25).expected_flips(100) == pytest.approx(25.0)

    def test_empirical_rate_close_to_nominal(self):
        m = BitFlipMutator(0.1)
        rng = make_rng(5)
        g = BitString.zeros(200)
        total = sum(m.mutate(g, rng).popcount for _ in range(50))
        assert total / (50 * 200) == pytest.approx(0.1, abs=0.02)

    def test_mutate_population_length(self):
        m = BitFlipMutator(0.5)
        genomes = [BitString.random(8, seed=i) for i in range(5)]
        out = m.mutate_population(genomes, seed=7)
        assert len(out) == 5

    def test_invalid_rate(self):
        with pytest.raises(ConfigurationError):
            BitFlipMutator(-0.1)
        with pytest.raises(ConfigurationError):
            BitFlipMutator(1.1)


class TestTraitArchitecture:
    def test_scores(self):
        arch = TraitArchitecture(n=6, active_loci=(0, 1), dormant_loci=(4, 5))
        g = BitString.from_string("110011")
        assert arch.trait_score(g) == 2
        assert arch.dormant_score(g) == 2

    def test_awaken_moves_dormant_to_active(self):
        """The stickleback mechanism: dormant armor genes reactivate."""
        arch = TraitArchitecture(n=4, active_loci=(0,), dormant_loci=(2, 3))
        awake = arch.awaken()
        assert set(awake.active_loci) == {0, 2, 3}
        assert awake.dormant_loci == ()
        g = BitString.from_string("1011")
        assert arch.trait_score(g) == 1
        assert awake.trait_score(g) == 3

    def test_overlapping_loci_rejected(self):
        with pytest.raises(ConfigurationError):
            TraitArchitecture(n=4, active_loci=(0, 1), dormant_loci=(1,))

    def test_out_of_range_locus_rejected(self):
        with pytest.raises(ConfigurationError):
            TraitArchitecture(n=3, active_loci=(5,))

    def test_wrong_genome_length_rejected(self):
        arch = TraitArchitecture(n=4, active_loci=(0,))
        with pytest.raises(ConfigurationError):
            arch.trait_score(BitString.zeros(5))


@settings(max_examples=30)
@given(seed=st.integers(0, 1000), rate=st.floats(0.0, 1.0))
def test_property_mutation_preserves_length(seed, rate):
    m = BitFlipMutator(rate)
    g = BitString.random(24, seed=seed)
    assert m.mutate(g, seed=seed + 1).n == 24


@settings(max_examples=30)
@given(seed=st.integers(0, 1000))
def test_property_awaken_total_score_preserved(seed):
    """Awakening never changes the total (active + dormant) score."""
    arch = TraitArchitecture(n=10, active_loci=(0, 1, 2), dormant_loci=(7, 8))
    g = BitString.random(10, seed=seed)
    before = arch.trait_score(g) + arch.dormant_score(g)
    after = arch.awaken().trait_score(g)
    assert before == after
