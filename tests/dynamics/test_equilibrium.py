"""Tests for mutation–selection balance (repro.dynamics.equilibrium)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dynamics.equilibrium import (
    LocusDynamics,
    deleterious_equilibrium_frequency,
    expected_trait_at_balance,
)
from repro.errors import ConfigurationError


class TestAnalyticBalance:
    def test_classic_u_over_s_limit(self):
        """q̂ ≈ u/s when u << s."""
        u, s = 1e-5, 0.1
        q = deleterious_equilibrium_frequency(u, s)
        assert q == pytest.approx(u / s, rel=0.01)

    def test_no_selection_fully_broken(self):
        assert deleterious_equilibrium_frequency(0.01, 0.0) == 1.0

    def test_no_mutation_fully_functional(self):
        assert deleterious_equilibrium_frequency(0.0, 0.1) == 0.0

    def test_expected_trait(self):
        # 6 loci, u=0.01, s=0.15 -> q̂ = 0.0625, trait ≈ 5.625
        trait = expected_trait_at_balance(6, 0.01, 0.15)
        assert trait == pytest.approx(6 * (1 - 0.01 / 0.16), rel=1e-9)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            deleterious_equilibrium_frequency(-0.1, 0.1)
        with pytest.raises(ConfigurationError):
            deleterious_equilibrium_frequency(0.1, -0.1)
        with pytest.raises(ConfigurationError):
            expected_trait_at_balance(-1, 0.1, 0.1)


class TestLocusDynamics:
    def test_recursion_converges_to_interior_equilibrium(self):
        dyn = LocusDynamics(mutation_rate=0.01, s=0.2)
        q_star = dyn.equilibrium()
        assert 0.0 < q_star < 0.5
        # the fixed point is stable: stepping from it stays put
        assert dyn.step(q_star) == pytest.approx(q_star, abs=1e-9)

    def test_trajectory_monotone_toward_equilibrium(self):
        dyn = LocusDynamics(mutation_rate=0.02, s=0.3)
        q_star = dyn.equilibrium()
        from_above = dyn.trajectory(0.9, 200)
        from_below = dyn.trajectory(0.0, 200)
        assert from_above[-1] == pytest.approx(q_star, abs=1e-6)
        assert from_below[-1] == pytest.approx(q_star, abs=1e-6)
        assert np.all(np.diff(from_above) <= 1e-12)
        assert np.all(np.diff(from_below) >= -1e-12)

    def test_explains_e25_armor_ceiling(self):
        """The stickleback bench saturates near 4.4–4.7 of 6 armor loci
        with u=0.01 and fitness-proportional selection of strength 0.15.

        The effective per-locus s in that model is the marginal relative
        fitness ≈ 0.15/(1 + 0.15·x̄); with x̄ ≈ 10 active loci that is
        s_eff ≈ 0.06, giving a two-way-mutation ceiling in the observed
        band — the plateau is mutation–selection balance, not a bug."""
        s_eff = 0.15 / (1 + 0.15 * 10)
        dyn = LocusDynamics(mutation_rate=0.01, s=s_eff)
        q_star = dyn.equilibrium()
        expected_armor = 6 * (1 - q_star)
        assert 4.0 < expected_armor < 5.5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LocusDynamics(mutation_rate=0.6, s=0.1)
        with pytest.raises(ConfigurationError):
            LocusDynamics(mutation_rate=0.1, s=1.0)
        dyn = LocusDynamics(0.01, 0.1)
        with pytest.raises(ConfigurationError):
            dyn.step(1.5)
        with pytest.raises(ConfigurationError):
            dyn.trajectory(0.5, -1)


@settings(max_examples=30)
@given(u=st.floats(1e-6, 0.2), s=st.floats(0.01, 0.9))
def test_property_recursion_equilibrium_interior_and_monotone(u, s):
    """The two-way fixed point lies in (0, 0.5]; it falls with stronger
    selection and rises with more mutation."""
    dyn = LocusDynamics(mutation_rate=u, s=s)
    q_star = dyn.equilibrium()
    assert 0.0 < q_star <= 0.5 + 1e-9
    stronger = LocusDynamics(mutation_rate=u, s=min(s * 1.5, 0.95))
    assert stronger.equilibrium() <= q_star + 1e-9
    noisier = LocusDynamics(mutation_rate=min(u * 1.5, 0.5), s=s)
    assert noisier.equilibrium() >= q_star - 1e-9
