"""Tests for drift models (repro.dynamics.drift)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.dynamics.drift import (
    MoranModel,
    WrightFisherModel,
    fixation_probability_theory,
)
from repro.errors import ConfigurationError
from repro.rng import make_rng


class TestTheory:
    def test_neutral_limit_is_initial_frequency(self):
        assert fixation_probability_theory(0.0, 100, 1) == pytest.approx(0.01)
        assert fixation_probability_theory(0.0, 100, 50) == pytest.approx(0.5)

    def test_advantageous_beats_neutral(self):
        assert fixation_probability_theory(0.05, 100) > 0.01

    def test_deleterious_below_neutral(self):
        assert fixation_probability_theory(-0.05, 100) < 0.01

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            fixation_probability_theory(0.0, 0)
        with pytest.raises(ConfigurationError):
            fixation_probability_theory(0.0, 10, 11)


class TestMoranExact:
    def test_neutral_exact(self):
        m = MoranModel(population_size=50, s=0.0)
        assert m.exact_fixation_probability(1) == pytest.approx(1 / 50)

    def test_strong_selection_approaches_one_minus_inverse_r(self):
        m = MoranModel(population_size=1000, s=0.5)
        rho = m.exact_fixation_probability(1)
        assert rho == pytest.approx(1 - 1 / 1.5, rel=1e-3)

    def test_simulation_matches_exact(self):
        m = MoranModel(population_size=20, s=0.2)
        rng = make_rng(42)
        trials = 800
        fixed = sum(
            m.run_to_absorption(1, seed=rng)[0] for _ in range(trials)
        )
        empirical = fixed / trials
        exact = m.exact_fixation_probability(1)
        assert empirical == pytest.approx(exact, abs=0.05)

    def test_absorbing_states(self):
        m = MoranModel(population_size=10)
        rng = make_rng(0)
        assert m.step(0, rng) == 0
        assert m.step(10, rng) == 10


class TestWrightFisher:
    def test_neutral_fixation_probability(self):
        wf = WrightFisherModel(population_size=30, s=0.0)
        p = wf.fixation_probability(initial_copies=3, trials=600, seed=1)
        assert p == pytest.approx(0.1, abs=0.05)

    def test_weak_selection_behaves_nearly_neutrally(self):
        """Ohta's near-neutrality: |s| << 1/N means drift dominates."""
        n = 50
        neutral = WrightFisherModel(n, s=0.0)
        weak = WrightFisherModel(n, s=0.001)  # s << 1/50
        p0 = neutral.fixation_probability(trials=800, seed=2)
        p1 = weak.fixation_probability(trials=800, seed=3)
        assert abs(p1 - p0) < 0.04

    def test_strong_selection_fixes_more_often(self):
        n = 50
        neutral = WrightFisherModel(n, s=0.0)
        strong = WrightFisherModel(n, s=0.3)
        p0 = neutral.fixation_probability(trials=500, seed=4)
        p1 = strong.fixation_probability(trials=500, seed=5)
        assert p1 > p0 + 0.1

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            WrightFisherModel(0)
        with pytest.raises(ConfigurationError):
            WrightFisherModel(10, s=-1.5)
        wf = WrightFisherModel(10)
        rng = make_rng(0)
        with pytest.raises(ConfigurationError):
            wf.step(11, rng)


@settings(max_examples=20, deadline=None)
@given(n=st.integers(5, 100), i=st.integers(0, 100))
def test_property_moran_exact_neutral_is_i_over_n(n, i):
    i = min(i, n)
    m = MoranModel(population_size=n, s=0.0)
    assert m.exact_fixation_probability(i) == pytest.approx(i / n)


@settings(max_examples=20, deadline=None)
@given(s=st.floats(-0.5, 0.5), n=st.integers(5, 200))
def test_property_theory_monotone_in_s(s, n):
    lo = fixation_probability_theory(s, n)
    hi = fixation_probability_theory(s + 0.05, n)
    assert hi >= lo - 1e-12
