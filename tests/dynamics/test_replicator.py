"""Tests for replicator dynamics (repro.dynamics.replicator)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dynamics.fitness import PowerDensityDependence
from repro.dynamics.replicator import (
    ReplicatorSystem,
    replicator_step,
)
from repro.errors import ConfigurationError, SimulationError


class TestReplicatorStep:
    def test_equal_fitness_is_identity(self):
        pops = np.asarray([10.0, 20.0, 30.0])
        out = replicator_step(pops, np.asarray([1.0, 1.0, 1.0]))
        assert np.allclose(out, pops)

    def test_fitter_species_grows(self):
        pops = np.asarray([10.0, 10.0])
        out = replicator_step(pops, np.asarray([1.2, 1.0]))
        assert out[0] > 10.0
        assert out[1] < 10.0

    def test_total_population_conserved(self):
        """π̄ normalization makes the step share-preserving in total."""
        pops = np.asarray([5.0, 15.0, 30.0])
        out = replicator_step(pops, np.asarray([2.0, 1.0, 0.5]))
        assert out.sum() == pytest.approx(pops.sum())

    def test_paper_equation_exact(self):
        """p_i' = p_i π_i / π̄ with π̄ the weighted mean fitness."""
        pops = np.asarray([30.0, 70.0])
        fitness = np.asarray([2.0, 1.0])
        mean = (30 * 2 + 70 * 1) / 100
        out = replicator_step(pops, fitness)
        assert out[0] == pytest.approx(30 * 2 / mean)
        assert out[1] == pytest.approx(70 * 1 / mean)

    def test_extinct_total_raises(self):
        with pytest.raises(SimulationError):
            replicator_step(np.zeros(3), np.ones(3))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            replicator_step(np.ones(3), np.ones(2))

    def test_nonpositive_fitness_rejected(self):
        with pytest.raises(ConfigurationError):
            replicator_step(np.ones(2), np.asarray([1.0, 0.0]))


class TestReplicatorSystem:
    def test_fittest_dominates_without_density_dependence(self):
        """The paper: 'the most fit species will ultimately dominate'."""
        system = ReplicatorSystem([1.0, 1.05, 1.2])
        traj = system.run([100.0, 100.0, 100.0], steps=300)
        assert traj.dominant_share()[-1] > 0.99
        assert np.argmax(traj.final) == 2

    def test_density_dependence_preserves_coexistence(self):
        """Diminishing returns give space for other species (§3.2.4)."""
        system = ReplicatorSystem(
            [1.0, 1.05, 1.2], density=PowerDensityDependence(strength=2.0)
        )
        traj = system.run([100.0, 100.0, 100.0], steps=300)
        assert traj.dominant_share()[-1] < 0.9
        assert traj.surviving_species() == 3

    def test_diversity_series_collapses_without_penalty(self):
        system = ReplicatorSystem([1.0, 1.3])
        traj = system.run([50.0, 50.0], steps=200)
        g = traj.diversity_series()
        assert g[-1] < g[0]

    def test_fitness_schedule_can_rerank(self):
        """Environment change flips who wins."""
        system = ReplicatorSystem([1.0, 1.0])

        def schedule(t):
            return np.asarray([1.2, 1.0]) if t < 100 else np.asarray([1.0, 1.2])

        traj = system.run([50.0, 50.0], steps=400, fitness_schedule=schedule)
        assert np.argmax(traj.final) == 1

    def test_extinction_threshold_removes_species(self):
        system = ReplicatorSystem([1.0, 1.5], extinction_threshold=1.0)
        traj = system.run([50.0, 50.0], steps=200)
        assert traj.final[0] == 0.0

    def test_zero_steps_returns_initial(self):
        system = ReplicatorSystem([1.0, 1.0])
        traj = system.run([10.0, 20.0], steps=0)
        assert traj.populations.shape == (1, 2)
        assert np.allclose(traj.final, [10.0, 20.0])

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            ReplicatorSystem([])
        with pytest.raises(ConfigurationError):
            ReplicatorSystem([1.0, -1.0])
        system = ReplicatorSystem([1.0, 1.0])
        with pytest.raises(ConfigurationError):
            system.run([1.0], steps=5)
        with pytest.raises(ConfigurationError):
            system.run([1.0, 1.0], steps=-1)

    def test_bad_schedule_shape_rejected(self):
        system = ReplicatorSystem([1.0, 1.0])
        with pytest.raises(ConfigurationError):
            system.run([1.0, 1.0], steps=3,
                       fitness_schedule=lambda t: np.ones(3))


class TestTrajectory:
    def test_shares_sum_to_one(self):
        system = ReplicatorSystem([1.0, 1.1, 1.2])
        traj = system.run([10.0, 10.0, 10.0], steps=50)
        assert np.allclose(traj.shares().sum(axis=1), 1.0)

    def test_surviving_species_threshold(self):
        system = ReplicatorSystem([1.0, 2.0])
        traj = system.run([50.0, 50.0], steps=300)
        assert traj.surviving_species(threshold=1e-3) == 1


@settings(max_examples=30, deadline=None)
@given(
    fitness=st.lists(st.floats(0.5, 2.0), min_size=2, max_size=6),
    steps=st.integers(1, 50),
)
def test_property_total_population_invariant(fitness, steps):
    system = ReplicatorSystem(fitness)
    initial = [10.0] * len(fitness)
    traj = system.run(initial, steps=steps)
    totals = traj.populations.sum(axis=1)
    assert np.allclose(totals, totals[0], rtol=1e-6)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 1000))
def test_property_dominant_share_nondecreasing_fixed_fitness(seed):
    """With constant fitness and no density dependence, the winner's
    share grows monotonically."""
    rng = np.random.default_rng(seed)
    fitness = np.sort(rng.uniform(0.5, 2.0, size=4))
    system = ReplicatorSystem(fitness)
    traj = system.run([25.0] * 4, steps=60)
    winner_share = traj.shares()[:, -1]
    assert np.all(np.diff(winner_share) >= -1e-9)
