"""Tests for continuous replicator dynamics (repro.dynamics.continuous)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dynamics.continuous import ContinuousReplicator
from repro.dynamics.replicator import ReplicatorSystem
from repro.errors import ConfigurationError


class TestContinuousReplicator:
    def test_shares_stay_on_simplex(self):
        flow = ContinuousReplicator([1.0, 1.2, 0.9], 3).integrate(
            [0.4, 0.3, 0.3], t_end=20.0
        )
        sums = flow.shares.sum(axis=1)
        assert np.allclose(sums, 1.0)
        assert np.all(flow.shares >= -1e-12)

    def test_fittest_dominates(self):
        flow = ContinuousReplicator([1.0, 1.0, 1.5], 3).integrate(
            [1 / 3, 1 / 3, 1 / 3], t_end=60.0
        )
        assert flow.final[2] > 0.99
        assert np.all(np.diff(flow.dominant_share()) >= -1e-9)

    def test_equal_fitness_is_stationary(self):
        flow = ContinuousReplicator([1.0, 1.0], 2).integrate(
            [0.7, 0.3], t_end=10.0
        )
        assert np.allclose(flow.final, [0.7, 0.3], atol=1e-6)

    def test_matches_discrete_map_for_small_selection(self):
        """The discrete replicator with weak selection approximates the
        continuous flow: compare dominant shares at matched times."""
        fitness = np.asarray([1.0, 1.02])
        discrete = ReplicatorSystem(fitness)
        traj = discrete.run([50.0, 50.0], steps=400)
        discrete_share = traj.shares()[-1, 1]
        # continuous time: growth rate difference is ln(1.02) per step
        s = float(np.log(1.02))
        flow = ContinuousReplicator(np.asarray([0.0, s]) + 1.0, 2).integrate(
            [0.5, 0.5], t_end=400.0
        )
        assert flow.final[1] == pytest.approx(discrete_share, abs=0.02)

    def test_matrix_game_hawk_dove_interior_equilibrium(self):
        """Frequency-dependent fitness: hawk-dove converges to the mixed
        equilibrium, something constant fitness can never do."""
        v, c = 2.0, 4.0  # value, cost: equilibrium hawk share = v/c = 0.5
        payoff = np.asarray([[(v - c) / 2, v], [0.0, v / 2]])
        # shift payoffs positive (replicator dynamics invariant to shifts)
        fitness = lambda x: payoff @ x + 3.0
        flow = ContinuousReplicator(fitness, 2).integrate(
            [0.9, 0.1], t_end=200.0
        )
        assert flow.final[0] == pytest.approx(v / c, abs=0.01)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ContinuousReplicator([1.0], 2)
        model = ContinuousReplicator([1.0, 1.0], 2)
        with pytest.raises(ConfigurationError):
            model.integrate([0.5, 0.6], t_end=1.0)
        with pytest.raises(ConfigurationError):
            model.integrate([0.5, 0.5], t_end=0.0)
        with pytest.raises(ConfigurationError):
            model.integrate([0.5, 0.5], t_end=1.0, n_samples=1)
