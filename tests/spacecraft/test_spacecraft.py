"""Tests for the spacecraft example (repro.spacecraft)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bruneau import assess
from repro.errors import ConfigurationError
from repro.planning.kmaintain import construct_policy
from repro.spacecraft.debris import DebrisHit, DebrisStream
from repro.spacecraft.repair import (
    CriticalFirstRepair,
    FirstFailedRepair,
    RandomRepair,
)
from repro.spacecraft.system import Spacecraft
from repro.csp.bitstring import BitString
from repro.rng import make_rng


class TestDebrisStream:
    def test_generates_within_horizon(self):
        stream = DebrisStream(8, max_hits=3, hit_probability=0.5)
        hits = stream.generate(50, seed=0)
        assert all(0 <= h.time < 50 for h in hits)
        assert all(1 <= len(h.failed_components) <= 3 for h in hits)
        assert all(
            all(0 <= c < 8 for c in h.failed_components) for h in hits
        )

    def test_recovery_window_spacing(self):
        """The paper's assumption: no second hit within the window."""
        stream = DebrisStream(8, max_hits=2, hit_probability=0.9,
                              recovery_window=5)
        hits = stream.generate(200, seed=1)
        times = [h.time for h in hits]
        assert all(b - a > 5 for a, b in zip(times, times[1:]))

    def test_zero_probability_no_hits(self):
        stream = DebrisStream(4, max_hits=1, hit_probability=0.0)
        assert stream.generate(100, seed=2) == []

    def test_deterministic_by_seed(self):
        stream = DebrisStream(6, max_hits=2, hit_probability=0.3)
        assert stream.generate(50, seed=3) == stream.generate(50, seed=3)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DebrisStream(0, max_hits=1)
        with pytest.raises(ConfigurationError):
            DebrisStream(4, max_hits=5)
        with pytest.raises(ConfigurationError):
            DebrisStream(4, max_hits=1, hit_probability=1.5)
        with pytest.raises(ConfigurationError):
            DebrisHit(-1, (0,))


class TestRepairStrategies:
    def test_first_failed_deterministic(self):
        state = BitString.from_string("01010")
        rng = make_rng(0)
        assert FirstFailedRepair().choose(state, 2, rng) == (0, 2)

    def test_random_repair_only_failed(self):
        state = BitString.from_string("01010")
        rng = make_rng(1)
        picks = RandomRepair().choose(state, 2, rng)
        assert set(picks) <= {0, 2, 4}
        assert len(picks) == 2

    def test_random_repair_takes_all_when_budget_large(self):
        state = BitString.from_string("0011")
        rng = make_rng(2)
        assert set(RandomRepair().choose(state, 10, rng)) == {0, 1}

    def test_critical_first_ordering(self):
        state = BitString.from_string("00000")
        rng = make_rng(3)
        strategy = CriticalFirstRepair(priority=(3, 1))
        assert strategy.choose(state, 3, rng) == (3, 1, 0)

    def test_critical_first_duplicates_rejected(self):
        with pytest.raises(ConfigurationError):
            CriticalFirstRepair(priority=(1, 1))

    def test_negative_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            FirstFailedRepair().choose(BitString.zeros(3), -1, make_rng(0))


class TestSpacecraftAnalytics:
    def test_paper_example_minimal_k(self):
        """§4.2: debris failing ≤ k parts + 1 repair/step ⇒ k-recoverable."""
        craft = Spacecraft(6)
        for hits in (1, 2, 3):
            assert craft.minimal_k(hits) == hits
            assert craft.is_k_recoverable(hits, hits)
            if hits > 0:
                assert not craft.is_k_recoverable(hits, hits - 1)

    def test_repair_capacity_divides_k(self):
        craft = Spacecraft(6, repairs_per_step=2)
        assert craft.minimal_k(4) == 2

    def test_degraded_constraint_fit_states(self):
        craft = Spacecraft(4, required_good=3)
        fits = craft.fit_states()
        assert len(fits) == 5  # C(4,3) + C(4,4)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Spacecraft(0)
        with pytest.raises(ConfigurationError):
            Spacecraft(4, required_good=5)
        with pytest.raises(ConfigurationError):
            Spacecraft(4, repairs_per_step=0)


class TestKMaintainabilityBridge:
    def test_transition_system_matches_recoverability(self):
        """The Baral–Eiter encoding agrees with the direct analysis."""
        craft = Spacecraft(4)
        ts = craft.to_transition_system(max_debris_hits=2)
        goals = craft.fit_states()
        result_2 = construct_policy(ts, goals, goals, k=2)
        result_1 = construct_policy(ts, goals, goals, k=1)
        assert result_2.maintainable
        assert not result_1.maintainable

    def test_policy_repairs_a_damaged_state(self):
        craft = Spacecraft(4)
        ts = craft.to_transition_system(max_debris_hits=2)
        goals = craft.fit_states()
        policy = construct_policy(ts, goals, goals, k=2).policy
        damaged = BitString.from_string("1010")
        trace = policy.execute(ts, damaged)
        assert trace[-1] == BitString.ones(4)

    def test_bad_hits_rejected(self):
        with pytest.raises(ConfigurationError):
            Spacecraft(4).to_transition_system(0)


class TestMission:
    def test_quiet_mission_full_quality(self):
        craft = Spacecraft(5)
        result = craft.fly(
            50, DebrisStream(5, max_hits=2, hit_probability=0.0), seed=0
        )
        assert result.always_recovered
        assert result.trace.min_quality == 100.0
        assert result.hits == ()

    def test_hits_cause_and_recover_degradation(self):
        craft = Spacecraft(5)
        stream = DebrisStream(5, max_hits=2, hit_probability=0.2,
                              recovery_window=4)
        result = craft.fly(200, stream, seed=1)
        assert result.hits
        assert result.trace.min_quality < 100.0
        assert result.always_recovered
        assert result.worst_recovery is not None
        assert result.worst_recovery <= 2  # ≤ max_hits with 1 repair/step

    def test_recovery_times_bounded_by_k(self):
        """Observed recoveries respect the analytic k bound when the
        recovery window is honoured."""
        craft = Spacecraft(8)
        k = 3
        stream = DebrisStream(8, max_hits=k, hit_probability=0.3,
                              recovery_window=k)
        result = craft.fly(300, stream, seed=2)
        assert result.recovery_times
        assert max(result.recovery_times) <= k

    def test_bruneau_assessment_of_mission(self):
        craft = Spacecraft(4)
        stream = DebrisStream(4, max_hits=2, hit_probability=0.1,
                              recovery_window=3)
        result = craft.fly(200, stream, seed=3)
        a = assess(result.trace)
        assert a.loss >= 0.0

    def test_mismatched_stream_rejected(self):
        craft = Spacecraft(4)
        with pytest.raises(ConfigurationError):
            craft.fly(10, DebrisStream(5, max_hits=1))


@settings(max_examples=15, deadline=None)
@given(n=st.integers(2, 6), hits=st.integers(1, 6), repairs=st.integers(1, 3))
def test_property_minimal_k_formula(n, hits, repairs):
    """minimal_k = ceil(min(hits, n) / repairs) for the C = 1^n craft."""
    import math

    hits = min(hits, n)
    craft = Spacecraft(n, repairs_per_step=repairs)
    assert craft.minimal_k(hits) == math.ceil(hits / repairs)
