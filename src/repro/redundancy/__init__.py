"""Redundancy mechanisms (paper §3.1): universal-resource reserves,
gene-knockout tolerance, RAID arrays, interoperability-as-backup, and
N-version design diversity.
"""

from .capacity import AdequacyResult, GenerationFleet, PlantClass
from .interop import InteropNetwork, availability_under_outages
from .knockout import GenomeModel, KnockoutScan, ecoli_like_genome, knockout_scan
from .nversion import (
    RedundantComputer,
    simulate_failures,
    system_failure_probability,
)
from .raid import RaidArray, RaidLevel, SurvivalEstimate
from .reserve import ReserveBuffer, survival_through_interruption

__all__ = [
    "AdequacyResult",
    "GenerationFleet",
    "PlantClass",
    "InteropNetwork",
    "availability_under_outages",
    "GenomeModel",
    "KnockoutScan",
    "ecoli_like_genome",
    "knockout_scan",
    "RedundantComputer",
    "simulate_failures",
    "system_failure_probability",
    "RaidArray",
    "RaidLevel",
    "SurvivalEstimate",
    "ReserveBuffer",
    "survival_through_interruption",
]
