"""Interoperability as redundancy (paper §3.1.3).

"When the United States was attacked ... the police departments, the
fire departments, and the secret service had difficulty in communication
and coordination due to the lack of interoperability between their
communication equipments.  Interoperability enables one component to
function as a back-up of another component.  Thus, interoperability is a
form of redundancy."

Model: agencies each run their own communication service; a *capability
matrix* says which agencies' equipment can serve which agencies'
missions.  Without interoperability the matrix is diagonal; with it, a
surviving agency can cover a failed one's mission.  Availability under
random service outages quantifies the redundancy gained.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike, make_rng

__all__ = ["InteropNetwork", "availability_under_outages"]


@dataclass(frozen=True)
class InteropNetwork:
    """Agencies and the substitution capability between their services.

    ``can_serve[i][j] = True`` means agency i's equipment can carry
    agency j's mission traffic.  The diagonal must be all True (every
    agency serves itself when its own service is up).
    """

    n_agencies: int
    can_serve: tuple[tuple[bool, ...], ...]

    def __post_init__(self) -> None:
        if self.n_agencies < 1:
            raise ConfigurationError(
                f"n_agencies must be >= 1, got {self.n_agencies}"
            )
        matrix = tuple(tuple(bool(x) for x in row) for row in self.can_serve)
        object.__setattr__(self, "can_serve", matrix)
        if len(matrix) != self.n_agencies or any(
            len(row) != self.n_agencies for row in matrix
        ):
            raise ConfigurationError(
                f"can_serve must be {self.n_agencies}x{self.n_agencies}"
            )
        for i in range(self.n_agencies):
            if not matrix[i][i]:
                raise ConfigurationError(
                    f"agency {i} must be able to serve itself"
                )

    @classmethod
    def siloed(cls, n_agencies: int) -> "InteropNetwork":
        """No interoperability: every agency depends only on itself."""
        matrix = tuple(
            tuple(i == j for j in range(n_agencies)) for i in range(n_agencies)
        )
        return cls(n_agencies=n_agencies, can_serve=matrix)

    @classmethod
    def fully_interoperable(cls, n_agencies: int) -> "InteropNetwork":
        """Any agency's equipment can serve any mission."""
        matrix = tuple(
            tuple(True for _ in range(n_agencies)) for _ in range(n_agencies)
        )
        return cls(n_agencies=n_agencies, can_serve=matrix)

    def missions_served(self, up: np.ndarray) -> int:
        """Missions covered given the vector of service up/down states."""
        up = np.asarray(up, dtype=bool)
        if up.shape != (self.n_agencies,):
            raise ConfigurationError(
                f"up vector must have shape ({self.n_agencies},)"
            )
        served = 0
        for mission in range(self.n_agencies):
            if any(
                up[agency] and self.can_serve[agency][mission]
                for agency in range(self.n_agencies)
            ):
                served += 1
        return served


def availability_under_outages(
    network: InteropNetwork,
    outage_p: float,
    trials: int = 2000,
    seed: SeedLike = None,
) -> float:
    """Mean fraction of missions served with i.i.d. service outages.

    Each trial knocks each agency's own service out with probability
    ``outage_p``; interoperable peers cover the gaps.
    """
    if not 0.0 <= outage_p <= 1.0:
        raise ConfigurationError(f"outage_p must be in [0, 1], got {outage_p}")
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    rng = make_rng(seed)
    fractions = np.empty(trials)
    for i in range(trials):
        up = rng.random(network.n_agencies) >= outage_p
        fractions[i] = network.missions_served(up) / network.n_agencies
    return float(fractions.mean())
