"""Excess generation capacity (paper §3.1.2).

"Although Japan has lost almost a third of its electric generation
capacity, Japan has never experienced major blackout during this period
... Japanese electricity systems have had a huge excessive capacity."

Model: a fleet of generation plants serves a fluctuating demand; plants
fail and recover independently, and a correlated *event* (the
post-earthquake shutdown) can remove a whole class of plants at once.
Blackout = available capacity below demand.  The capacity margin is the
redundancy dial: we quantify blackout probability against the margin
with and without the correlated outage.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike, make_rng

__all__ = ["PlantClass", "GenerationFleet", "AdequacyResult"]


@dataclass(frozen=True)
class PlantClass:
    """A class of identical plants (e.g. nuclear, thermal, hydro)."""

    name: str
    count: int
    unit_capacity: float
    outage_p: float  # independent per-plant, per-period outage prob.

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("plant class needs a non-empty name")
        if self.count < 0:
            raise ConfigurationError(f"count must be >= 0, got {self.count}")
        if self.unit_capacity <= 0:
            raise ConfigurationError(
                f"unit_capacity must be > 0, got {self.unit_capacity}"
            )
        if not 0.0 <= self.outage_p <= 1.0:
            raise ConfigurationError(
                f"outage_p must be in [0, 1], got {self.outage_p}"
            )

    @property
    def capacity(self) -> float:
        """Total installed capacity of the class."""
        return self.count * self.unit_capacity


@dataclass(frozen=True)
class AdequacyResult:
    """Blackout statistics over a simulated horizon."""

    blackout_probability: float  # fraction of periods short of demand
    worst_shortfall: float
    mean_available: float
    periods: int


class GenerationFleet:
    """A fleet of plant classes serving fluctuating demand."""

    def __init__(self, classes: list[PlantClass] | tuple[PlantClass, ...]):
        self.classes = tuple(classes)
        if not self.classes:
            raise ConfigurationError("fleet needs at least one plant class")
        names = [c.name for c in self.classes]
        if len(set(names)) != len(names):
            raise ConfigurationError("plant class names must be unique")

    @property
    def installed_capacity(self) -> float:
        """Sum of all class capacities."""
        return sum(c.capacity for c in self.classes)

    def margin_over(self, peak_demand: float) -> float:
        """Capacity margin (installed − peak)/peak."""
        if peak_demand <= 0:
            raise ConfigurationError(
                f"peak_demand must be > 0, got {peak_demand}"
            )
        return (self.installed_capacity - peak_demand) / peak_demand

    def without_class(self, name: str) -> "GenerationFleet":
        """The fleet after a correlated shutdown of one class.

        Models the post-3.11 nuclear shutdown: every plant of the class
        goes offline together.
        """
        if name not in {c.name for c in self.classes}:
            raise ConfigurationError(f"no plant class named {name!r}")
        remaining = tuple(c for c in self.classes if c.name != name)
        if not remaining:
            raise ConfigurationError(
                "cannot remove the only plant class in the fleet"
            )
        return GenerationFleet(remaining)

    def simulate_adequacy(
        self,
        mean_demand: float,
        demand_sigma: float,
        periods: int = 1000,
        seed: SeedLike = None,
    ) -> AdequacyResult:
        """Monte-Carlo loss-of-load statistics.

        Each period, every plant is independently out with its class
        probability; demand is normal(mean, sigma) floored at zero.
        """
        if mean_demand <= 0:
            raise ConfigurationError(
                f"mean_demand must be > 0, got {mean_demand}"
            )
        if demand_sigma < 0:
            raise ConfigurationError(
                f"demand_sigma must be >= 0, got {demand_sigma}"
            )
        if periods < 1:
            raise ConfigurationError(f"periods must be >= 1, got {periods}")
        rng = make_rng(seed)
        shortfalls = np.zeros(periods)
        available_total = 0.0
        blackouts = 0
        for t in range(periods):
            available = 0.0
            for cls in self.classes:
                up = cls.count - int(rng.binomial(cls.count, cls.outage_p))
                available += up * cls.unit_capacity
            demand = max(0.0, float(rng.normal(mean_demand, demand_sigma)))
            available_total += available
            if available < demand:
                blackouts += 1
                shortfalls[t] = demand - available
        return AdequacyResult(
            blackout_probability=blackouts / periods,
            worst_shortfall=float(shortfalls.max()),
            mean_available=available_total / periods,
            periods=periods,
        )
