"""RAID-style storage redundancy (paper §3.1.2).

"Mission-critical storage systems use RAID so that the system can
continue to function even though one or more disks fail."  We model an
array of disks with i.i.d. per-period failure probability, optional
rebuild, and the classic schemes' survivability rules:

* RAID 0 (striping): any disk loss kills the array;
* RAID 1 (mirroring): survives while at least one mirror lives;
* RAID 5 (single parity): tolerates one concurrent failure;
* RAID 6 (double parity): tolerates two concurrent failures.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike, make_rng

__all__ = ["RaidLevel", "RaidArray", "SurvivalEstimate"]


class RaidLevel(Enum):
    """Supported redundancy schemes with their failure tolerance."""

    RAID0 = "raid0"
    RAID1 = "raid1"
    RAID5 = "raid5"
    RAID6 = "raid6"

    def tolerated_failures(self, n_disks: int) -> int:
        """Concurrent failures the array survives."""
        if self is RaidLevel.RAID0:
            return 0
        if self is RaidLevel.RAID1:
            return n_disks - 1
        if self is RaidLevel.RAID5:
            return 1
        return 2  # RAID6

    def data_disks(self, n_disks: int) -> int:
        """Disks' worth of usable capacity (the redundancy cost)."""
        if self is RaidLevel.RAID0:
            return n_disks
        if self is RaidLevel.RAID1:
            return 1
        if self is RaidLevel.RAID5:
            return n_disks - 1
        return n_disks - 2  # RAID6


@dataclass(frozen=True)
class SurvivalEstimate:
    """Monte-Carlo array-survival statistics."""

    survival_probability: float
    mean_lifetime: float
    trials: int
    horizon: int


@dataclass(frozen=True)
class RaidArray:
    """A disk array under per-period disk failures with optional rebuild.

    Parameters
    ----------
    n_disks:
        Array width.
    level:
        Redundancy scheme.
    disk_failure_p:
        Per-disk, per-period failure probability.
    rebuild_periods:
        Periods to rebuild one failed disk onto a spare (0 disables
        rebuild, making failures cumulative).  Data is lost the moment
        concurrent failures exceed the scheme's tolerance.
    """

    n_disks: int
    level: RaidLevel
    disk_failure_p: float
    rebuild_periods: int = 0

    def __post_init__(self) -> None:
        minimum = {
            RaidLevel.RAID0: 1,
            RaidLevel.RAID1: 2,
            RaidLevel.RAID5: 3,
            RaidLevel.RAID6: 4,
        }[self.level]
        if self.n_disks < minimum:
            raise ConfigurationError(
                f"{self.level.value} needs >= {minimum} disks, got {self.n_disks}"
            )
        if not 0.0 <= self.disk_failure_p <= 1.0:
            raise ConfigurationError(
                f"disk_failure_p must be in [0, 1], got {self.disk_failure_p}"
            )
        if self.rebuild_periods < 0:
            raise ConfigurationError(
                f"rebuild_periods must be >= 0, got {self.rebuild_periods}"
            )

    def survives_concurrent(self, n_failed: int) -> bool:
        """Whether ``n_failed`` simultaneous failures keep data available."""
        if n_failed < 0:
            raise ConfigurationError(f"n_failed must be >= 0, got {n_failed}")
        return n_failed <= self.level.tolerated_failures(self.n_disks)

    def single_period_loss_probability(self) -> float:
        """Exact P(data loss in one period) from the binomial tail."""
        from scipy.stats import binom

        t = self.level.tolerated_failures(self.n_disks)
        return float(1.0 - binom.cdf(t, self.n_disks, self.disk_failure_p))

    def simulate_lifetime(self, horizon: int, seed: SeedLike = None) -> int:
        """Periods until data loss (== horizon means survived throughout)."""
        if horizon < 1:
            raise ConfigurationError(f"horizon must be >= 1, got {horizon}")
        rng = make_rng(seed)
        failed = 0
        rebuild_clock = 0
        tolerance = self.level.tolerated_failures(self.n_disks)
        for t in range(horizon):
            alive = self.n_disks - failed
            new_failures = int(rng.binomial(alive, self.disk_failure_p))
            failed += new_failures
            if failed > tolerance:
                return t
            if failed > 0 and self.rebuild_periods > 0:
                rebuild_clock += 1
                if rebuild_clock >= self.rebuild_periods:
                    failed -= 1
                    rebuild_clock = 0
            elif failed == 0:
                rebuild_clock = 0
        return horizon

    def estimate_survival(
        self, horizon: int, trials: int = 1000, seed: SeedLike = None
    ) -> SurvivalEstimate:
        """Monte-Carlo survival probability over ``horizon`` periods."""
        if trials < 1:
            raise ConfigurationError(f"trials must be >= 1, got {trials}")
        rng = make_rng(seed)
        lifetimes = np.asarray(
            [self.simulate_lifetime(horizon, rng) for _ in range(trials)]
        )
        return SurvivalEstimate(
            survival_probability=float(np.mean(lifetimes == horizon)),
            mean_lifetime=float(lifetimes.mean()),
            trials=trials,
            horizon=horizon,
        )
