"""Universal-resource reserves (paper §3.1.3).

"Electricity and money can be considered to be universal resource, and
having extra universal resource in reserve is a good strategy for
preparing unseen threats."  :class:`ReserveBuffer` is the minimal model:
a stock that absorbs shortfalls one-for-one and refills from surplus;
:func:`survival_through_interruption` scores how long an entity can ride
out a revenue interruption — the auto-industry mechanism the paper cites.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError

__all__ = ["ReserveBuffer", "survival_through_interruption"]


@dataclass
class ReserveBuffer:
    """A capped stock of universal resource.

    ``level`` starts at ``initial``; :meth:`absorb` draws down to cover a
    shortfall (returning what could not be covered); :meth:`refill` adds
    surplus up to ``capacity``.
    """

    initial: float
    capacity: float | None = None

    def __post_init__(self) -> None:
        if self.initial < 0:
            raise ConfigurationError(f"initial must be >= 0, got {self.initial}")
        if self.capacity is not None and self.capacity < self.initial:
            raise ConfigurationError(
                f"capacity {self.capacity} below initial level {self.initial}"
            )
        self.level = float(self.initial)

    def absorb(self, shortfall: float) -> float:
        """Cover ``shortfall`` from the reserve; return the uncovered rest."""
        if shortfall < 0:
            raise ConfigurationError(f"shortfall must be >= 0, got {shortfall}")
        covered = min(self.level, shortfall)
        self.level -= covered
        return shortfall - covered

    def refill(self, surplus: float) -> float:
        """Add ``surplus`` up to capacity; return the overflow."""
        if surplus < 0:
            raise ConfigurationError(f"surplus must be >= 0, got {surplus}")
        if self.capacity is None:
            self.level += surplus
            return 0.0
        room = self.capacity - self.level
        stored = min(room, surplus)
        self.level += stored
        return surplus - stored

    @property
    def is_empty(self) -> bool:
        """Whether the buffer is exhausted."""
        return self.level <= 0.0


def survival_through_interruption(
    reserve: float,
    burn_rate: float,
    interruption_length: int,
) -> bool:
    """Can an entity with ``reserve`` survive ``interruption_length``
    periods of zero revenue, burning ``burn_rate`` per period?

    The monetary-reserve mechanism in closed form: survival iff
    ``reserve >= burn_rate × interruption_length``.
    """
    if reserve < 0:
        raise ConfigurationError(f"reserve must be >= 0, got {reserve}")
    if burn_rate < 0:
        raise ConfigurationError(f"burn_rate must be >= 0, got {burn_rate}")
    if interruption_length < 0:
        raise ConfigurationError(
            f"interruption_length must be >= 0, got {interruption_length}"
        )
    return reserve >= burn_rate * interruption_length
