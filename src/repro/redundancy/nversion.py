"""Design diversity: N-version redundancy vs. common-mode flaws (paper §3.2.2).

"The Boeing 777 ... signals are controlled by a redundant system
consisting of three computers ... based on different hardware and
software developed by independent vendors.  If these three computers
share the same design, a design flaw would make all the computers fail
at the same time."

Model: a channel fails either *independently* (its own hardware fault)
or through a *design flaw* shared by every channel built from the same
design.  A design-diverse triplex only shares flaws within a design, so
the common-mode term shrinks from p_design to p_design^(number of
independent designs reaching consensus).

A subtlety worth knowing: diversity is guaranteed to help only when
design flaws dominate independent faults.  Under a 2-of-3 quorum with
*high* independent failure rates, the identical triplex's perfectly
correlated failures lose quorum less often than three independent
coin flips — decorrelating failures is not free.  The paper's Boeing
argument lives in the flaw-dominated regime, where diversity wins by
orders of magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike, make_rng

__all__ = ["RedundantComputer", "system_failure_probability",
           "simulate_failures"]


@dataclass(frozen=True)
class RedundantComputer:
    """An N-channel voting computer with a design assignment per channel.

    ``designs[i]`` labels the design channel i is built from; channels of
    the same design fail together when that design's flaw is triggered.
    ``quorum`` is how many channels must work (2-of-3 voting by default).
    """

    designs: tuple[int, ...]
    p_independent: float
    p_design_flaw: float
    quorum: int = 2

    def __post_init__(self) -> None:
        object.__setattr__(self, "designs", tuple(self.designs))
        if len(self.designs) < 1:
            raise ConfigurationError("need at least one channel")
        if not 0.0 <= self.p_independent <= 1.0:
            raise ConfigurationError(
                f"p_independent must be in [0, 1], got {self.p_independent}"
            )
        if not 0.0 <= self.p_design_flaw <= 1.0:
            raise ConfigurationError(
                f"p_design_flaw must be in [0, 1], got {self.p_design_flaw}"
            )
        if not 1 <= self.quorum <= len(self.designs):
            raise ConfigurationError(
                f"quorum must be in [1, {len(self.designs)}], got {self.quorum}"
            )

    @classmethod
    def identical_triplex(cls, p_independent: float,
                          p_design_flaw: float) -> "RedundantComputer":
        """Three channels sharing one design (the flawed architecture)."""
        return cls((0, 0, 0), p_independent, p_design_flaw)

    @classmethod
    def diverse_triplex(cls, p_independent: float,
                        p_design_flaw: float) -> "RedundantComputer":
        """The Boeing-777 shape: three independently designed channels."""
        return cls((0, 1, 2), p_independent, p_design_flaw)

    @property
    def n_channels(self) -> int:
        """Number of voting channels."""
        return len(self.designs)


def simulate_failures(
    computer: RedundantComputer, trials: int = 100_000, seed: SeedLike = None
) -> float:
    """Monte-Carlo probability that fewer than ``quorum`` channels work.

    Per trial each distinct design's flaw triggers with p_design_flaw
    (failing all its channels) and each channel additionally fails
    independently with p_independent.
    """
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    rng = make_rng(seed)
    designs = np.asarray(computer.designs)
    unique = np.unique(designs)
    failures = 0
    for _ in range(trials):
        flawed = {
            int(d) for d in unique if rng.random() < computer.p_design_flaw
        }
        working = 0
        for d in designs:
            if int(d) in flawed:
                continue
            if rng.random() < computer.p_independent:
                continue
            working += 1
        if working < computer.quorum:
            failures += 1
    return failures / trials


def system_failure_probability(computer: RedundantComputer) -> float:
    """Exact system-failure probability by enumerating design-flaw patterns.

    Sums over the 2^D flaw patterns of the distinct designs, then the
    binomial survival of the remaining channels.
    """
    from itertools import product as iproduct

    from scipy.stats import binom

    designs = list(computer.designs)
    unique = sorted(set(designs))
    pd = computer.p_design_flaw
    pi = computer.p_independent
    total = 0.0
    for pattern in iproduct([False, True], repeat=len(unique)):
        flawed = {d for d, bad in zip(unique, pattern) if bad}
        p_pattern = 1.0
        for bad in pattern:
            p_pattern *= pd if bad else (1.0 - pd)
        healthy_channels = sum(1 for d in designs if d not in flawed)
        # fail when working channels < quorum
        need = computer.quorum
        if healthy_channels < need:
            p_fail = 1.0
        else:
            # working ~ Binomial(healthy, 1 - pi); fail if working < need
            p_fail = float(binom.cdf(need - 1, healthy_channels, 1.0 - pi))
        total += p_pattern * p_fail
    return total
