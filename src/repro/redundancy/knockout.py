"""Gene-knockout redundancy (paper §3.1.1).

"E. Coli has approximately 4,300 genes ... almost 4,000 of them are
known to be redundant – that is, knocking out one of them will not
hamper its ability to reproduce."  The mechanism: functions are backed
by overlapping gene sets, so losing one gene rarely leaves a function
uncovered.  :class:`GenomeModel` builds a random function←genes covering
design and :func:`knockout_scan` measures exactly the single-knockout
viability statistic the paper quotes (≈ 93 % redundant for the E. coli
parameters).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike, make_rng

__all__ = ["GenomeModel", "KnockoutScan", "knockout_scan", "ecoli_like_genome"]


@dataclass(frozen=True)
class GenomeModel:
    """A genome as a function-coverage design.

    ``coverage[f]`` is the tuple of gene indices able to perform
    essential function f.  The organism is viable iff every function has
    at least one surviving gene.
    """

    n_genes: int
    coverage: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        if self.n_genes < 1:
            raise ConfigurationError(f"n_genes must be >= 1, got {self.n_genes}")
        object.__setattr__(
            self, "coverage", tuple(tuple(sorted(set(c))) for c in self.coverage)
        )
        for f, genes in enumerate(self.coverage):
            if not genes:
                raise ConfigurationError(f"function {f} has no covering gene")
            for g in genes:
                if not 0 <= g < self.n_genes:
                    raise ConfigurationError(
                        f"function {f} references unknown gene {g}"
                    )

    @property
    def n_functions(self) -> int:
        """Number of essential functions."""
        return len(self.coverage)

    def viable(self, knocked_out: frozenset[int] | set[int]) -> bool:
        """Whether the organism reproduces with ``knocked_out`` genes gone."""
        for genes in self.coverage:
            if all(g in knocked_out for g in genes):
                return False
        return True

    def essential_genes(self) -> frozenset[int]:
        """Genes whose single knockout is lethal (sole cover of a function)."""
        essential: set[int] = set()
        for genes in self.coverage:
            if len(genes) == 1:
                essential.add(genes[0])
        return frozenset(essential)


@dataclass(frozen=True)
class KnockoutScan:
    """Results of the single-gene knockout screen."""

    n_genes: int
    n_viable: int

    @property
    def redundant_fraction(self) -> float:
        """Share of genes whose loss does not hamper reproduction."""
        return self.n_viable / self.n_genes


def knockout_scan(genome: GenomeModel) -> KnockoutScan:
    """Knock out each gene singly; count viable mutants (the Keio screen)."""
    viable = sum(
        genome.viable(frozenset([g])) for g in range(genome.n_genes)
    )
    return KnockoutScan(n_genes=genome.n_genes, n_viable=viable)


def ecoli_like_genome(
    n_genes: int = 4300,
    n_functions: int = 900,
    mean_redundancy: float = 3.0,
    seed: SeedLike = None,
) -> GenomeModel:
    """A random genome with the E. coli-like coverage statistics.

    Each essential function is covered by ``1 + Poisson(mean_redundancy−1)``
    distinct genes; remaining genes are non-essential (cover nothing).
    With the defaults roughly 90–95 % of genes are singly-knockable, the
    paper's ~4,000 / 4,300 figure.
    """
    if n_functions < 1:
        raise ConfigurationError(f"n_functions must be >= 1, got {n_functions}")
    if n_genes < n_functions:
        raise ConfigurationError(
            f"need at least one gene per function: {n_genes} < {n_functions}"
        )
    if mean_redundancy < 1:
        raise ConfigurationError(
            f"mean_redundancy must be >= 1, got {mean_redundancy}"
        )
    rng = make_rng(seed)
    coverage = []
    for _ in range(n_functions):
        copies = 1 + int(rng.poisson(mean_redundancy - 1.0))
        copies = min(copies, n_genes)
        genes = rng.choice(n_genes, size=copies, replace=False)
        coverage.append(tuple(int(g) for g in genes))
    return GenomeModel(n_genes=n_genes, coverage=tuple(coverage))
