"""Space-debris event models for the spacecraft example (paper §4.2).

"The spacecraft is occasionally hit by space debris causing at most k
component failures" — with the recovery-window assumption that "once the
spacecraft has component failures at time t, it will not have another
component failure until time t + k."  :class:`DebrisStream` generates
hits honouring exactly that spacing discipline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike, make_rng

__all__ = ["DebrisHit", "DebrisStream"]


@dataclass(frozen=True)
class DebrisHit:
    """One debris strike: the step it lands and the components it fails."""

    time: int
    failed_components: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigurationError(f"hit time must be >= 0, got {self.time}")
        object.__setattr__(
            self, "failed_components", tuple(sorted(set(self.failed_components)))
        )


@dataclass(frozen=True)
class DebrisStream:
    """Generates debris hits against an n-component spacecraft.

    Parameters
    ----------
    n_components:
        Spacecraft size.
    max_hits:
        The event type D: at most this many components fail per strike
        (the actual count is uniform on 1..max_hits).
    hit_probability:
        Per-step probability that a strike occurs, *outside* the recovery
        window.
    recovery_window:
        Minimum number of steps after a strike before the next one —
        the paper's no-second-hit-before-t+k assumption.  Set to 0 to
        drop the assumption (the stress test the paper's definition does
        not cover).
    """

    n_components: int
    max_hits: int
    hit_probability: float = 0.1
    recovery_window: int = 0

    def __post_init__(self) -> None:
        if self.n_components < 1:
            raise ConfigurationError(
                f"n_components must be >= 1, got {self.n_components}"
            )
        if not 1 <= self.max_hits <= self.n_components:
            raise ConfigurationError(
                f"max_hits must be in [1, {self.n_components}], got {self.max_hits}"
            )
        if not 0.0 <= self.hit_probability <= 1.0:
            raise ConfigurationError(
                f"hit_probability must be in [0, 1], got {self.hit_probability}"
            )
        if self.recovery_window < 0:
            raise ConfigurationError(
                f"recovery_window must be >= 0, got {self.recovery_window}"
            )

    def generate(self, horizon: int, seed: SeedLike = None) -> list[DebrisHit]:
        """Strikes over ``horizon`` steps with the spacing discipline."""
        if horizon < 0:
            raise ConfigurationError(f"horizon must be >= 0, got {horizon}")
        rng = make_rng(seed)
        hits: list[DebrisHit] = []
        blocked_until = -1
        for t in range(horizon):
            if t <= blocked_until:
                continue
            if rng.random() < self.hit_probability:
                count = int(rng.integers(1, self.max_hits + 1))
                components = rng.choice(
                    self.n_components, size=count, replace=False
                )
                hits.append(DebrisHit(t, tuple(int(c) for c in components)))
                blocked_until = t + self.recovery_window
        return hits
