"""Repair strategies for the spacecraft (paper §4.2).

"If the spacecraft can fix one component at each time step, we consider
that the spacecraft is k-recoverable."  A repair strategy picks which
failed components to fix when more are broken than the per-step budget
allows; against the all-good constraint every choice is optimal, but
against degraded-mode constraints (at-least-k-good of a *subset*)
criticality-aware ordering recovers constraint satisfaction sooner.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..csp.bitstring import BitString
from ..errors import ConfigurationError
from ..rng import SeedLike, make_rng

__all__ = ["RepairStrategy", "FirstFailedRepair", "RandomRepair",
           "CriticalFirstRepair"]


class RepairStrategy(ABC):
    """Chooses up to ``budget`` failed components to fix this step."""

    @abstractmethod
    def choose(self, state: BitString, budget: int,
               rng: np.random.Generator) -> tuple[int, ...]:
        """Indices (currently 0) to set back to 1; at most ``budget``."""

    @property
    def label(self) -> str:
        """Display name for experiment tables."""
        return type(self).__name__


@dataclass(frozen=True)
class FirstFailedRepair(RepairStrategy):
    """Fix the lowest-indexed failed components first (deterministic)."""

    def choose(self, state: BitString, budget: int,
               rng: np.random.Generator) -> tuple[int, ...]:
        _check_budget(budget)
        return state.zeros_indices()[:budget]


@dataclass(frozen=True)
class RandomRepair(RepairStrategy):
    """Fix uniformly random failed components."""

    def choose(self, state: BitString, budget: int,
               rng: np.random.Generator) -> tuple[int, ...]:
        _check_budget(budget)
        failed = list(state.zeros_indices())
        if len(failed) <= budget:
            return tuple(failed)
        picks = rng.choice(len(failed), size=budget, replace=False)
        return tuple(failed[int(i)] for i in picks)


@dataclass(frozen=True)
class CriticalFirstRepair(RepairStrategy):
    """Fix components in a given criticality order.

    ``priority`` lists component indices from most to least critical;
    failed components not listed are repaired last, by index.
    """

    priority: tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "priority", tuple(self.priority))
        if len(set(self.priority)) != len(self.priority):
            raise ConfigurationError("priority list has duplicates")

    def choose(self, state: BitString, budget: int,
               rng: np.random.Generator) -> tuple[int, ...]:
        _check_budget(budget)
        failed = set(state.zeros_indices())
        ordered = [i for i in self.priority if i in failed]
        ordered += sorted(failed - set(self.priority))
        return tuple(ordered[:budget])


def _check_budget(budget: int) -> None:
    if budget < 0:
        raise ConfigurationError(f"repair budget must be >= 0, got {budget}")
