"""The paper's spacecraft example (§4.2): exact k-recoverability,
K-maintainability encoding, and mission simulation.
"""

from .debris import DebrisHit, DebrisStream
from .repair import (
    CriticalFirstRepair,
    FirstFailedRepair,
    RandomRepair,
    RepairStrategy,
)
from .system import MissionResult, Spacecraft

__all__ = [
    "DebrisHit",
    "DebrisStream",
    "CriticalFirstRepair",
    "FirstFailedRepair",
    "RandomRepair",
    "RepairStrategy",
    "MissionResult",
    "Spacecraft",
]
