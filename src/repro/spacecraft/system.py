"""The hypothetical spacecraft system (paper §4.2 example).

"The system consists of a fixed set of n components, each of which has a
single binary variable n_i representing the availability of the
component ... the constraint C = 1^n at every time t requires that every
component of the spacecraft is good, and the spacecraft is occasionally
hit by space debris causing at most k component failures.  If the
spacecraft can fix one component at each time step, we consider that the
spacecraft is k-recoverable."

:class:`Spacecraft` packages this example end-to-end: the boolean CSP,
exact k-recoverability analysis, a K-maintainability transition system,
and mission simulation producing Bruneau-ready quality traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..core.quality import QualityTrace
from ..core.recoverability import (
    BoundedComponentDamage,
    RecoverabilityReport,
    is_k_recoverable,
    minimal_recovery_bound,
)
from ..csp.bitstring import BitString
from ..csp.constraints import Constraint, all_components_good, at_least_k_good
from ..csp.problem import CSP, boolean_csp
from ..errors import ConfigurationError
from ..planning.transition import TransitionSystem
from ..rng import SeedLike, make_rng
from .debris import DebrisHit, DebrisStream
from .repair import FirstFailedRepair, RepairStrategy

__all__ = ["MissionResult", "Spacecraft"]


@dataclass(frozen=True)
class MissionResult:
    """One simulated mission: quality trace plus recovery bookkeeping."""

    trace: QualityTrace
    hits: tuple[DebrisHit, ...]
    recovery_times: tuple[int, ...]  # steps to full recovery after each hit
    always_recovered: bool

    @property
    def worst_recovery(self) -> Optional[int]:
        """Slowest observed recovery (None when no hit landed)."""
        return max(self.recovery_times) if self.recovery_times else None


class Spacecraft:
    """An n-component spacecraft under debris damage and stepwise repair.

    Parameters
    ----------
    n_components:
        Number of binary availability variables.
    required_good:
        If ``None`` (default) the environment is the paper's C = 1^n;
        otherwise a degraded-mode constraint requiring at least this many
        good components.
    repairs_per_step:
        Repair capacity per time step (the paper's example fixes one).
    """

    def __init__(
        self,
        n_components: int,
        required_good: Optional[int] = None,
        repairs_per_step: int = 1,
    ):
        if n_components < 1:
            raise ConfigurationError(
                f"n_components must be >= 1, got {n_components}"
            )
        if repairs_per_step < 1:
            raise ConfigurationError(
                f"repairs_per_step must be >= 1, got {repairs_per_step}"
            )
        self.n = n_components
        self.repairs_per_step = repairs_per_step
        names = [f"x{i}" for i in range(n_components)]
        if required_good is None:
            constraint: Constraint = all_components_good(names)
        else:
            if not 0 <= required_good <= n_components:
                raise ConfigurationError(
                    f"required_good must be in [0, {n_components}], "
                    f"got {required_good}"
                )
            constraint = at_least_k_good(names, required_good)
        self.required_good = (
            n_components if required_good is None else required_good
        )
        self.csp: CSP = boolean_csp(n_components, [constraint])

    # -- analytic resilience ---------------------------------------------------

    def recoverability_report(
        self, max_debris_hits: int, k: int, engine=None
    ) -> RecoverabilityReport:
        """Exact k-recoverability under debris failing ≤ max_debris_hits.

        ``engine`` selects the CSP kernels (see
        :func:`repro.csp.engine.make_csp_engine`; default honours
        ``REPRO_CSP_ENGINE``).
        """
        return is_k_recoverable(
            self.csp,
            BoundedComponentDamage(max_debris_hits),
            k=k,
            flips_per_step=self.repairs_per_step,
            engine=engine,
        )

    def is_k_recoverable(
        self, max_debris_hits: int, k: int, engine=None
    ) -> bool:
        """The paper's predicate, exactly."""
        return self.recoverability_report(
            max_debris_hits, k, engine=engine
        ).is_k_recoverable

    def minimal_k(
        self, max_debris_hits: int, engine=None
    ) -> Optional[int]:
        """Smallest k making the craft k-recoverable (None = unrecoverable).

        For the paper's C = 1^n and one repair per step this equals
        ``max_debris_hits`` — each failed component costs one step.
        """
        return minimal_recovery_bound(
            self.csp,
            BoundedComponentDamage(max_debris_hits),
            flips_per_step=self.repairs_per_step,
            engine=engine,
        )

    # -- K-maintainability bridge ---------------------------------------------

    def to_transition_system(self, max_debris_hits: int) -> TransitionSystem:
        """Encode the spacecraft as a Baral–Eiter transition system.

        States are all 2^n configurations; agent actions ``repair_i`` fix
        one component (deterministic); the exogenous action ``debris``
        moves any fit state to each outcome with ≤ max_debris_hits new
        failures.  Exponential in n — use the model scale (n ≤ ~12).
        """
        if not 1 <= max_debris_hits <= self.n:
            raise ConfigurationError(
                f"max_debris_hits must be in [1, {self.n}], got {max_debris_hits}"
            )
        states = frozenset(
            BitString(self.n, mask) for mask in range(1 << self.n)
        )
        system = TransitionSystem(states=states)
        for state in states:
            for i in state.zeros_indices():
                system.add_agent_action(f"repair_{i}", state, [state.flip(i)])
        damage = BoundedComponentDamage(max_debris_hits)
        for state in self.fit_states():
            outcomes = [s for s in damage.outcomes(state) if s != state]
            if outcomes:
                system.add_exo_action("debris", state, outcomes)
        return system

    def maintainability(
        self, max_debris_hits: int, k: int, engine=None
    ):
        """K-maintainability of the spacecraft (paper §4.3, Baral–Eiter).

        Builds the debris/repair transition structure and runs the
        polynomial policy construction with the fit states as both
        starts and goals.  ``engine`` selects the CSP kernels: the
        object path materializes :meth:`to_transition_system` and calls
        :func:`repro.planning.kmaintain.construct_policy`; the bit path
        runs :func:`repro.planning.kmaintain.construct_policy_bits` on
        the compiled fit mask; a tiled compile runs
        :func:`repro.planning.kmaintain.construct_policy_tiled` on
        implicit index arrays, lifting the 2^20 wall — identical
        :class:`~repro.planning.kmaintain.MaintainabilityResult`,
        field for field wherever multiple paths run.  Result size is
        Θ(envelope), so very large ``n`` still wants small ``k`` and
        damage radii.
        """
        from ..csp.engine import make_csp_engine
        from ..csp.tiledengine import TiledBitCSP
        from ..planning.kmaintain import (
            construct_policy,
            construct_policy_bits,
            construct_policy_tiled,
        )
        from ..runtime import trace

        if not 1 <= max_debris_hits <= self.n:
            raise ConfigurationError(
                f"max_debris_hits must be in [1, {self.n}], "
                f"got {max_debris_hits}"
            )
        engine = make_csp_engine(engine)
        tr = trace.current()
        compiled = engine.try_compile(self.csp)
        if compiled is not None:
            label = compiled.engine_label
            construct = (
                construct_policy_tiled
                if isinstance(compiled, TiledBitCSP)
                else construct_policy_bits
            )
            with tr.timer(f"csp.kmaintain.{label}"):
                result = construct(compiled, max_debris_hits, k)
            tr.count(f"csp.kmaintain.runs.{label}")
            return result
        with tr.timer("csp.kmaintain.object"):
            system = self.to_transition_system(max_debris_hits)
            goals = self.fit_states()
            result = construct_policy(system, goals, goals, k)
        tr.count("csp.kmaintain.runs.object")
        return result

    def fit_states(self) -> list[BitString]:
        """All configurations satisfying the constraint."""
        return sorted(self.csp.fit_bitstrings())

    # -- simulation --------------------------------------------------------------

    def fly(
        self,
        horizon: int,
        debris: DebrisStream,
        strategy: RepairStrategy | None = None,
        seed: SeedLike = None,
    ) -> MissionResult:
        """Simulate a mission: hits land, repair proceeds step by step.

        Quality at each step is the fraction of good components (×100),
        so Bruneau assessments of missions are directly comparable
        across spacecraft sizes.
        """
        if horizon < 2:
            raise ConfigurationError(f"horizon must be >= 2, got {horizon}")
        if debris.n_components != self.n:
            raise ConfigurationError(
                f"debris stream sized for {debris.n_components} components, "
                f"spacecraft has {self.n}"
            )
        rng = make_rng(seed)
        strategy = strategy or FirstFailedRepair()
        hits = debris.generate(horizon, rng)
        hits_by_time: dict[int, DebrisHit] = {h.time: h for h in hits}
        state = BitString.ones(self.n)
        times: list[float] = []
        quality: list[float] = []
        recovery_times: list[int] = []
        damaged_since: Optional[int] = None
        for t in range(horizon):
            hit = hits_by_time.get(t)
            if hit is not None:
                state = state.set_bits(hit.failed_components, 0)
                if damaged_since is None and state.popcount < self.n:
                    damaged_since = t
            if state.popcount < self.n:
                to_fix = strategy.choose(state, self.repairs_per_step, rng)
                if to_fix:
                    state = state.set_bits(to_fix, 1)
            if damaged_since is not None and state.popcount == self.n:
                recovery_times.append(t - damaged_since)
                damaged_since = None
            times.append(float(t))
            quality.append(100.0 * state.popcount / self.n)
        always_recovered = damaged_since is None
        return MissionResult(
            trace=QualityTrace.from_samples(times, quality),
            hits=tuple(hits),
            recovery_times=tuple(recovery_times),
            always_recovered=always_recovered,
        )
