"""K-maintainability planning (paper §4.3, Baral & Eiter [4]).

Finite transition systems with agent and exogenous actions, the
polynomial-time construction of k-maintainable control policies, and
brute-force verification oracles.
"""

from .kmaintain import (
    MaintainabilityResult,
    compute_levels,
    construct_policy,
    require_policy,
)
from .policy import MaintenancePolicy
from .stochastic import StochasticVerdict, evaluate_under_interference
from .transition import State, TransitionSystem
from .verify import brute_force_maintainable, verify_policy

__all__ = [
    "MaintainabilityResult",
    "compute_levels",
    "construct_policy",
    "require_policy",
    "MaintenancePolicy",
    "StochasticVerdict",
    "evaluate_under_interference",
    "State",
    "TransitionSystem",
    "brute_force_maintainable",
    "verify_policy",
]
