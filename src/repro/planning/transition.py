"""Finite transition systems with agent and exogenous actions.

The K-maintainability notion the paper adopts (§4.3, Baral & Eiter [4])
is defined over a discrete system: a set of states, *agent* actions the
system administrator controls (possibly nondeterministic), and
*exogenous* actions the environment fires (shocks, failures).  A control
policy must bring the system from any non-normal state it can be knocked
into back to a normal state within k agent steps.

:class:`TransitionSystem` is the shared substrate for the policy
constructor (:mod:`repro.planning.kmaintain`) and the brute-force
verifier (:mod:`repro.planning.verify`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, Mapping, Set

from ..errors import ConfigurationError

__all__ = ["State", "TransitionSystem"]

State = Hashable


@dataclass
class TransitionSystem:
    """A finite nondeterministic transition system.

    ``agent_actions`` maps an action name to a mapping
    ``state -> set of possible successor states``; an action is
    inapplicable in states it does not mention.  ``exo_actions`` has the
    same shape for environment events.
    """

    states: FrozenSet[State]
    agent_actions: Dict[str, Dict[State, FrozenSet[State]]] = field(
        default_factory=dict
    )
    exo_actions: Dict[str, Dict[State, FrozenSet[State]]] = field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        self.states = frozenset(self.states)
        if not self.states:
            raise ConfigurationError("transition system must have at least one state")
        self.agent_actions = {
            name: {s: frozenset(nxt) for s, nxt in table.items()}
            for name, table in self.agent_actions.items()
        }
        self.exo_actions = {
            name: {s: frozenset(nxt) for s, nxt in table.items()}
            for name, table in self.exo_actions.items()
        }
        for kind, actions in (("agent", self.agent_actions),
                              ("exogenous", self.exo_actions)):
            for name, table in actions.items():
                for s, successors in table.items():
                    if s not in self.states:
                        raise ConfigurationError(
                            f"{kind} action {name!r} defined on unknown state {s!r}"
                        )
                    if not successors:
                        raise ConfigurationError(
                            f"{kind} action {name!r} has no outcome in state {s!r}"
                        )
                    unknown = set(successors) - self.states
                    if unknown:
                        raise ConfigurationError(
                            f"{kind} action {name!r} leads to unknown states "
                            f"{sorted(map(repr, unknown))}"
                        )

    # -- construction ---------------------------------------------------------

    def add_agent_action(
        self, name: str, state: State, successors: Iterable[State]
    ) -> None:
        """Register (or extend) an agent action's transitions from ``state``."""
        self._add(self.agent_actions, "agent", name, state, successors)

    def add_exo_action(
        self, name: str, state: State, successors: Iterable[State]
    ) -> None:
        """Register (or extend) an exogenous action's transitions."""
        self._add(self.exo_actions, "exogenous", name, state, successors)

    def _add(
        self,
        table: Dict[str, Dict[State, FrozenSet[State]]],
        kind: str,
        name: str,
        state: State,
        successors: Iterable[State],
    ) -> None:
        successors = frozenset(successors)
        if state not in self.states:
            raise ConfigurationError(f"unknown state {state!r}")
        if not successors:
            raise ConfigurationError(f"{kind} action {name!r} needs >= 1 outcome")
        unknown = successors - self.states
        if unknown:
            raise ConfigurationError(
                f"{kind} action {name!r} leads to unknown states {sorted(map(repr, unknown))}"
            )
        existing = table.setdefault(name, {})
        previous = existing.get(state, frozenset())
        existing[state] = previous | successors

    # -- queries -----------------------------------------------------------------

    def applicable_agent_actions(self, state: State) -> list[str]:
        """Agent action names applicable in ``state``, sorted for determinism."""
        return sorted(
            name for name, table in self.agent_actions.items() if state in table
        )

    def agent_outcomes(self, state: State, action: str) -> FrozenSet[State]:
        """Possible successors of applying agent ``action`` in ``state``."""
        table = self.agent_actions.get(action)
        if table is None or state not in table:
            raise ConfigurationError(
                f"agent action {action!r} not applicable in state {state!r}"
            )
        return table[state]

    def exo_successors(self, state: State) -> Set[State]:
        """Every state any exogenous action could move ``state`` to."""
        result: Set[State] = set()
        for table in self.exo_actions.values():
            result |= table.get(state, frozenset())
        return result

    def exo_closure(self, seeds: Iterable[State]) -> FrozenSet[State]:
        """States reachable from ``seeds`` via any number of exogenous actions.

        This is the damage envelope: every state the environment alone can
        knock the system into, which a maintainable policy must cover.
        """
        seen: Set[State] = set()
        frontier = [s for s in seeds]
        for s in frontier:
            if s not in self.states:
                raise ConfigurationError(f"unknown seed state {s!r}")
        while frontier:
            s = frontier.pop()
            if s in seen:
                continue
            seen.add(s)
            for nxt in self.exo_successors(s):
                if nxt not in seen:
                    frontier.append(nxt)
        return frozenset(seen)
