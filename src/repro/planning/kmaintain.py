"""Polynomial-time construction of k-maintainable policies (Baral–Eiter).

Paper §4.3: "We say that a system is K-maintainable if, for any
non-normal state of the system, there exists a sequence of actions (i.e.,
events controllable by a system administrator) that move the system back
to one of the normal states within k steps," citing Baral & Eiter's
polynomial-time algorithm [4].

The construction is a backward fixpoint over the AND-OR structure of
nondeterministic agent actions:

* level 0: the normal (goal) states;
* level i: states with some applicable agent action whose *every*
  nondeterministic outcome lies at level < i.

A state at level i recovers in at most i agent steps against worst-case
nondeterminism, assuming — as the paper's spacecraft example does — that
no further exogenous event strikes during the recovery window.  The
system is k-maintainable iff the exogenous closure of the start states
is contained in level ≤ k.  Each (state, action) pair is relaxed at most
once, so the whole construction is O(|S| · |A| · branching), i.e.
polynomial, unlike naive policy enumeration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional

import numpy as np

from ..errors import ConfigurationError, UnmaintainableError
from .policy import MaintenancePolicy
from .transition import State, TransitionSystem

__all__ = [
    "MaintainabilityResult",
    "compute_levels",
    "construct_policy",
    "construct_policy_bits",
    "construct_policy_tiled",
]


@dataclass(frozen=True)
class MaintainabilityResult:
    """Outcome of a k-maintainability analysis.

    ``levels`` maps every maintainable state to its exact recovery level;
    ``uncovered`` holds states in the damage envelope that no policy can
    bring back within ``k`` steps (empty iff ``maintainable``).
    """

    k: int
    maintainable: bool
    policy: Optional[MaintenancePolicy]
    levels: Dict[State, int]
    envelope: FrozenSet[State]
    uncovered: FrozenSet[State]


def compute_levels(
    system: TransitionSystem,
    goal_states: Iterable[State],
    max_level: Optional[int] = None,
) -> tuple[Dict[State, int], Dict[State, str]]:
    """Backward-induction recovery levels and a witnessing action per state.

    Returns ``(levels, actions)`` where ``levels[s]`` is the minimum
    worst-case number of agent steps from ``s`` into the goal set and
    ``actions[s]`` is an action achieving it (absent for goal states).
    States that can never be recovered are absent from ``levels``.
    ``max_level`` truncates the fixpoint early (useful when only
    k-maintainability for a specific k matters).
    """
    goals = frozenset(goal_states)
    unknown = goals - system.states
    if unknown:
        raise ConfigurationError(f"unknown goal states: {sorted(map(repr, unknown))}")
    max_level = len(system.states) if max_level is None else max_level
    if max_level < 0:
        raise ConfigurationError(f"max_level must be >= 0, got {max_level}")

    levels: Dict[State, int] = {s: 0 for s in goals}
    actions: Dict[State, str] = {}
    level = 0
    while level < max_level:
        level += 1
        added = False
        for state in system.states:
            if state in levels:
                continue
            for action in system.applicable_agent_actions(state):
                outcomes = system.agent_outcomes(state, action)
                if all(o in levels and levels[o] <= level - 1 for o in outcomes):
                    levels[state] = level
                    actions[state] = action
                    added = True
                    break
        if not added:
            break
    return levels, actions


def construct_policy(
    system: TransitionSystem,
    start_states: Iterable[State],
    goal_states: Iterable[State],
    k: int,
) -> MaintainabilityResult:
    """Build a k-maintainable policy, or report why none exists.

    The damage envelope is the exogenous closure of ``start_states``
    together with the goal states (shocks can strike again once the
    system is back to normal).  The system is k-maintainable iff every
    envelope state sits at recovery level ≤ k; the returned policy then
    guarantees recovery within k agent steps against worst-case action
    nondeterminism.
    """
    if k < 0:
        raise ConfigurationError(f"k must be >= 0, got {k}")
    goals = frozenset(goal_states)
    starts = frozenset(start_states)
    envelope = system.exo_closure(starts | goals)
    levels, actions = compute_levels(system, goals, max_level=k)
    uncovered = frozenset(
        s for s in envelope if s not in levels or levels[s] > k
    )
    if uncovered:
        return MaintainabilityResult(
            k=k,
            maintainable=False,
            policy=None,
            levels=levels,
            envelope=envelope,
            uncovered=uncovered,
        )
    policy = MaintenancePolicy(
        actions={s: a for s, a in actions.items() if s in envelope or s in actions},
        levels=dict(levels),
        goal_states=goals,
        k=k,
    )
    return MaintainabilityResult(
        k=k,
        maintainable=True,
        policy=policy,
        levels=levels,
        envelope=envelope,
        uncovered=frozenset(),
    )


def construct_policy_bits(
    compiled, max_debris_hits: int, k: int
) -> MaintainabilityResult:
    """:func:`construct_policy` for the spacecraft encoding, on arrays.

    Operates directly on a
    :class:`~repro.csp.bitengine.CompiledBitCSP` instead of the
    materialized :class:`TransitionSystem` of
    :meth:`Spacecraft.to_transition_system`, whose exponential
    dict-of-frozensets construction dominates the object path.  The
    encoding is fixed: goal states are the fit configurations, agent
    actions are the deterministic ``repair_i`` (set bit ``i``,
    applicable iff it is 0), and the ``debris`` exogenous action moves
    any fit state to each outcome with ≤ ``max_debris_hits`` cleared
    bits.  Under that encoding:

    * recovery levels are the reverse add-bit BFS from the fit mask
      (:func:`~repro.csp.bitengine.add_bit_levels`, truncated at ``k``
      like ``compute_levels(max_level=k)``);
    * the damage envelope is the clear-bit ball of radius
      ``max_debris_hits`` around the fit mask — one pass suffices
      because every fit state is already a seed;
    * the witnessing action per state is the first ``repair_i`` in
      lexicographic action-name order whose outcome sits one level
      down, matching ``applicable_agent_actions``'s sorted order.

    The returned result is field-for-field identical to the object
    construction (levels, envelope, uncovered, policy actions).
    """
    from ..csp.bitengine import add_bit_levels, clear_bit_ball
    from ..csp.bitstring import BitString

    if k < 0:
        raise ConfigurationError(f"k must be >= 0, got {k}")
    n = compiled.n
    if not 1 <= max_debris_hits <= n:
        raise ConfigurationError(
            f"max_debris_hits must be in [1, {n}], got {max_debris_hits}"
        )
    fit_mask = compiled.fit_mask
    levels_arr = add_bit_levels(fit_mask, n, max_level=k)
    envelope_mask = clear_bit_ball(fit_mask, n, max_debris_hits)

    goals = frozenset(
        BitString(n, int(m)) for m in np.nonzero(fit_mask)[0]
    )
    envelope = frozenset(
        BitString(n, int(m)) for m in np.nonzero(envelope_mask)[0]
    )
    levels = {
        BitString(n, int(m)): int(levels_arr[m])
        for m in np.nonzero(levels_arr >= 0)[0]
    }
    uncovered = frozenset(
        BitString(n, int(m))
        for m in np.nonzero(envelope_mask & (levels_arr < 0))[0]
    )
    if uncovered:
        return MaintainabilityResult(
            k=k,
            maintainable=False,
            policy=None,
            levels=levels,
            envelope=envelope,
            uncovered=uncovered,
        )

    # witnessing actions: first repair_i (lex name order) one level down
    states = np.arange(1 << n, dtype=np.int64)
    action_idx = np.full(1 << n, -1, dtype=np.int32)
    unassigned = levels_arr >= 1
    for i in sorted(range(n), key=lambda j: f"repair_{j}"):
        bit = np.int64(1) << np.int64(i)
        succ_lvl = levels_arr[states | bit]
        ok = (
            unassigned
            & ((states & bit) == 0)
            & (succ_lvl >= 0)
            & (succ_lvl <= levels_arr - 1)
        )
        action_idx[ok] = i
        unassigned &= ~ok
    actions = {
        BitString(n, int(m)): f"repair_{int(action_idx[m])}"
        for m in np.nonzero(levels_arr >= 1)[0]
    }
    policy = MaintenancePolicy(
        actions=actions,
        levels=dict(levels),
        goal_states=goals,
        k=k,
    )
    return MaintainabilityResult(
        k=k,
        maintainable=True,
        policy=policy,
        levels=levels,
        envelope=envelope,
        uncovered=frozenset(),
    )


def construct_policy_tiled(
    tiled, max_debris_hits: int, k: int
) -> MaintainabilityResult:
    """:func:`construct_policy_bits` on implicit-frontier index arrays.

    The bit construction reads and writes ``(2^n,)`` level and envelope
    arrays, which is exactly what a
    :class:`~repro.csp.tiledengine.TiledBitCSP` exists to avoid.  This
    variant keeps every set as a sorted int64 mask array: levels come
    from :func:`~repro.csp.tiledengine.implicit_add_bit_levels`
    (truncated at ``k``), the damage envelope from
    :func:`~repro.csp.tiledengine.implicit_clear_bit_ball`, coverage
    and successor-level lookups from ``searchsorted`` membership —
    Θ(envelope + leveled set) memory instead of Θ(2^n).  Witnessing
    actions follow the same lexicographic ``repair_i`` order, so the
    result is field-for-field identical to both the bit and the object
    constructions wherever all three run.
    """
    from ..csp.bitstring import BitString
    from ..csp.tiledengine import (
        _isin_sorted,
        implicit_add_bit_levels,
        implicit_clear_bit_ball,
    )

    if k < 0:
        raise ConfigurationError(f"k must be >= 0, got {k}")
    n = tiled.n
    if not 1 <= max_debris_hits <= n:
        raise ConfigurationError(
            f"max_debris_hits must be in [1, {n}], got {max_debris_hits}"
        )
    fit = tiled.fit_indices
    chunk = tiled.block_size
    lv_states, lv_vals = implicit_add_bit_levels(
        fit, n, max_level=k, chunk=chunk
    )
    envelope_states = implicit_clear_bit_ball(
        fit, n, max_debris_hits, chunk=chunk
    )

    goals = frozenset(BitString(n, int(m)) for m in fit)
    envelope = frozenset(BitString(n, int(m)) for m in envelope_states)
    levels = {
        BitString(n, int(m)): int(lv)
        for m, lv in zip(lv_states, lv_vals)
    }
    covered = _isin_sorted(envelope_states, lv_states)
    uncovered = frozenset(
        BitString(n, int(m)) for m in envelope_states[~covered]
    )
    if uncovered:
        return MaintainabilityResult(
            k=k,
            maintainable=False,
            policy=None,
            levels=levels,
            envelope=envelope,
            uncovered=uncovered,
        )

    # witnessing actions: first repair_i (lex name order) one level down
    leveled = lv_vals >= 1
    states = lv_states[leveled]
    state_levels = lv_vals[leveled].astype(np.int64)
    action_idx = np.full(states.size, -1, dtype=np.int32)
    unassigned = np.ones(states.size, dtype=bool)
    for i in sorted(range(n), key=lambda j: f"repair_{j}"):
        bit = np.int64(1) << np.int64(i)
        succ = states | bit
        pos = np.searchsorted(lv_states, succ)
        pos = np.minimum(pos, lv_states.size - 1)
        found = lv_states[pos] == succ
        succ_lvl = np.where(found, lv_vals[pos].astype(np.int64), -1)
        ok = (
            unassigned
            & ((states & bit) == 0)
            & (succ_lvl >= 0)
            & (succ_lvl <= state_levels - 1)
        )
        action_idx[ok] = i
        unassigned &= ~ok
    actions = {
        BitString(n, int(m)): f"repair_{int(a)}"
        for m, a in zip(states, action_idx)
    }
    policy = MaintenancePolicy(
        actions=actions,
        levels=dict(levels),
        goal_states=goals,
        k=k,
    )
    return MaintainabilityResult(
        k=k,
        maintainable=True,
        policy=policy,
        levels=levels,
        envelope=envelope,
        uncovered=frozenset(),
    )


def require_policy(
    system: TransitionSystem,
    start_states: Iterable[State],
    goal_states: Iterable[State],
    k: int,
) -> MaintenancePolicy:
    """Like :func:`construct_policy` but raising when unmaintainable."""
    result = construct_policy(system, start_states, goal_states, k)
    if not result.maintainable or result.policy is None:
        raise UnmaintainableError(
            f"system is not {k}-maintainable; uncovered states: "
            f"{sorted(map(repr, result.uncovered))[:10]}"
        )
    return result.policy
