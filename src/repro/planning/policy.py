"""Control policies for maintainable systems.

A policy maps states to the agent action the system administrator should
execute there.  Policies are *memoryless* (state-based), matching the
Baral–Eiter construction: the k-step recovery guarantee never needs
history.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Optional

from ..errors import PolicyError
from .transition import State, TransitionSystem

__all__ = ["MaintenancePolicy"]


@dataclass(frozen=True)
class MaintenancePolicy:
    """A state → agent-action map with the recovery levels that justify it.

    ``levels`` records, for each covered state, the smallest number of
    policy steps within which every execution from that state reaches the
    goal set (level 0 = already a goal state, where the policy may be
    silent).
    """

    actions: Mapping[State, str]
    levels: Mapping[State, int]
    goal_states: FrozenSet[State]
    k: int

    def action_for(self, state: State) -> Optional[str]:
        """The prescribed action, or ``None`` in goal states with no action."""
        if state in self.actions:
            return self.actions[state]
        if state in self.goal_states:
            return None
        raise PolicyError(f"policy does not cover state {state!r}")

    def covers(self, state: State) -> bool:
        """Whether the policy knows what to do in ``state``."""
        return state in self.actions or state in self.goal_states

    @property
    def covered_states(self) -> FrozenSet[State]:
        """Every state the policy can handle."""
        return frozenset(self.actions) | self.goal_states

    def execute(
        self,
        system: TransitionSystem,
        state: State,
        max_steps: Optional[int] = None,
        worst_case: bool = True,
    ) -> list[State]:
        """Trace one execution from ``state`` to the goal set.

        With ``worst_case=True`` (default) nondeterminism resolves to the
        successor with the *largest* recovery level — the adversarial
        outcome the k-guarantee must survive; otherwise the smallest.
        Returns the visited state sequence ending in a goal state.
        """
        max_steps = self.k if max_steps is None else max_steps
        trace = [state]
        current = state
        for _ in range(max_steps):
            if current in self.goal_states:
                return trace
            action = self.action_for(current)
            if action is None:
                raise PolicyError(f"no action prescribed in non-goal state {current!r}")
            outcomes = system.agent_outcomes(current, action)
            key = lambda s: (self.levels.get(s, len(system.states) + 1), repr(s))
            current = max(outcomes, key=key) if worst_case else min(outcomes, key=key)
            trace.append(current)
        if current in self.goal_states:
            return trace
        raise PolicyError(
            f"execution from {state!r} did not reach the goal within "
            f"{max_steps} steps (trace: {trace})"
        )
