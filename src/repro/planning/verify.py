"""Independent verification of k-maintainability claims.

The constructive algorithm in :mod:`repro.planning.kmaintain` is checked
against two oracles:

* :func:`verify_policy` — exhaustive AND-OR unrolling of a *given*
  policy: every nondeterministic execution from every envelope state must
  reach a goal state within k agent steps;
* :func:`brute_force_maintainable` — exhaustive search over *all*
  memoryless policies (exponential; tiny systems only), used by property
  tests to confirm the polynomial construction is sound and complete.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, FrozenSet, Iterable, Optional

from ..errors import ConfigurationError
from .policy import MaintenancePolicy
from .transition import State, TransitionSystem

__all__ = ["verify_policy", "brute_force_maintainable"]


def _worst_case_depth(
    system: TransitionSystem,
    actions: Dict[State, str],
    goals: FrozenSet[State],
    state: State,
    budget: int,
) -> Optional[int]:
    """Worst-case steps to goal following ``actions``; None if > budget/stuck."""
    if state in goals:
        return 0
    if budget == 0:
        return None
    action = actions.get(state)
    if action is None:
        return None
    try:
        outcomes = system.agent_outcomes(state, action)
    except ConfigurationError:
        return None
    worst = 0
    for nxt in outcomes:
        depth = _worst_case_depth(system, actions, goals, nxt, budget - 1)
        if depth is None:
            return None
        worst = max(worst, depth + 1)
    return worst


def verify_policy(
    system: TransitionSystem,
    policy: MaintenancePolicy,
    start_states: Iterable[State],
    k: Optional[int] = None,
) -> bool:
    """Whether ``policy`` recovers every envelope state within ``k`` steps.

    The envelope is the exogenous closure of the start and goal states,
    matching :func:`repro.planning.kmaintain.construct_policy`.
    """
    k = policy.k if k is None else k
    goals = policy.goal_states
    envelope = system.exo_closure(frozenset(start_states) | goals)
    actions = dict(policy.actions)
    for state in envelope:
        depth = _worst_case_depth(system, actions, goals, state, k)
        if depth is None or depth > k:
            return False
    return True


def brute_force_maintainable(
    system: TransitionSystem,
    start_states: Iterable[State],
    goal_states: Iterable[State],
    k: int,
    max_policies: int = 2_000_000,
) -> bool:
    """Exhaustively decide k-maintainability by trying every policy.

    Exponential in the number of non-goal states; guarded by
    ``max_policies`` so misuse fails loudly instead of hanging.
    Intended as a test oracle for the polynomial construction.
    """
    if k < 0:
        raise ConfigurationError(f"k must be >= 0, got {k}")
    goals = frozenset(goal_states)
    envelope = system.exo_closure(frozenset(start_states) | goals)
    non_goal = sorted((s for s in system.states if s not in goals), key=repr)
    choice_lists = []
    for state in non_goal:
        applicable = system.applicable_agent_actions(state)
        # allow "no action" too: some states may be irrelevant to the envelope
        choice_lists.append([None, *applicable])
    total = 1
    for choices in choice_lists:
        total *= len(choices)
        if total > max_policies:
            raise ConfigurationError(
                f"brute force would enumerate > {max_policies} policies"
            )
    for combo in product(*choice_lists):
        actions = {
            s: a for s, a in zip(non_goal, combo) if a is not None
        }
        ok = True
        for state in envelope:
            depth = _worst_case_depth(system, actions, goals, state, k)
            if depth is None or depth > k:
                ok = False
                break
        if ok:
            return True
    return False
