"""Stochastic maintainability: dropping the recovery-window assumption.

The paper's k-recoverability assumes "once the spacecraft has component
failures at time t, it will not have another component failure until
time t + k" (§4.2) — the same windowed semantics K-maintainability uses.
Real environments do not wait.  This module Monte-Carlo-evaluates a
maintenance policy when exogenous events may strike *during* recovery
with some per-step probability, measuring how the k-guarantee degrades —
the uncertainty direction §4.3 says the project wants to explore.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike, make_rng
from .policy import MaintenancePolicy
from .transition import State, TransitionSystem

__all__ = ["StochasticVerdict", "evaluate_under_interference"]


@dataclass(frozen=True)
class StochasticVerdict:
    """Monte-Carlo recovery statistics under mid-recovery interference."""

    recovery_rate: float  # fraction of episodes back in goal within budget
    mean_steps: float  # over recovered episodes
    worst_steps: int | None  # None when nothing recovered
    episodes: int
    interference_p: float


def evaluate_under_interference(
    system: TransitionSystem,
    policy: MaintenancePolicy,
    start_states: list[State] | tuple[State, ...],
    interference_p: float,
    budget: int | None = None,
    episodes: int = 500,
    seed: SeedLike = None,
) -> StochasticVerdict:
    """Run policy-driven recoveries with random exogenous strikes.

    Each episode starts from a uniformly drawn damage-envelope state.
    Every step: the policy's action executes (nondeterminism resolved
    uniformly); then with probability ``interference_p`` a random
    applicable exogenous action fires.  The episode succeeds when a goal
    state is reached within ``budget`` steps (default 4 × policy.k, since
    interference legitimately extends recoveries).

    With ``interference_p = 0`` this reduces to the windowed guarantee
    and must succeed within ``policy.k`` steps from every covered state.
    """
    if not 0.0 <= interference_p <= 1.0:
        raise ConfigurationError(
            f"interference_p must be in [0, 1], got {interference_p}"
        )
    if episodes < 1:
        raise ConfigurationError(f"episodes must be >= 1, got {episodes}")
    budget = 4 * max(policy.k, 1) if budget is None else budget
    if budget < 1:
        raise ConfigurationError(f"budget must be >= 1, got {budget}")
    rng = make_rng(seed)
    envelope = sorted(
        system.exo_closure(frozenset(start_states) | policy.goal_states),
        key=repr,
    )
    if not envelope:
        raise ConfigurationError("empty damage envelope")
    recovered = 0
    steps_taken: list[int] = []
    for _ in range(episodes):
        state = envelope[int(rng.integers(len(envelope)))]
        success = False
        for step in range(budget + 1):
            if state in policy.goal_states:
                recovered += 1
                steps_taken.append(step)
                success = True
                break
            if not policy.covers(state):
                break  # knocked outside the policy's world
            action = policy.action_for(state)
            if action is None:
                break
            outcomes = sorted(system.agent_outcomes(state, action), key=repr)
            state = outcomes[int(rng.integers(len(outcomes)))]
            # mid-recovery exogenous strike
            if interference_p > 0 and rng.random() < interference_p:
                exo_next = sorted(system.exo_successors(state), key=repr)
                if exo_next:
                    state = exo_next[int(rng.integers(len(exo_next)))]
        # episode accounting handled above
    return StochasticVerdict(
        recovery_rate=recovered / episodes,
        mean_steps=float(np.mean(steps_taken)) if steps_taken else float("nan"),
        worst_steps=max(steps_taken) if steps_taken else None,
        episodes=episodes,
        interference_p=interference_p,
    )
