"""Drossel–Schwabl forest-fire model with a suppression policy.

This quantifies the paper's forest-management claim (§3.2.3): "it is a
common wisdom not to extinguish small forest fires and let the patch of
the forest rejuvenate.  Otherwise, every part of the forest gets older
and dryer, and the risk of a large-scale forest fire would much
increase.  The diversity of tree ages in a forest is a key."

Model: on a square grid, empty cells grow trees with probability ``p``;
lightning strikes random cells with probability ``f`` and burns the
entire connected tree cluster.  A suppression policy extinguishes fires
whose cluster is below a threshold — the trees survive, density climbs,
and the eventual fires are far larger (the Yellowstone effect).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike, make_rng

__all__ = ["FireEvent", "ForestFireModel", "SuppressionPolicy"]

EMPTY, TREE = 0, 1


@dataclass(frozen=True)
class SuppressionPolicy:
    """Extinguish any fire whose cluster size is below ``max_suppressed``.

    ``max_suppressed = 0`` is the let-it-burn baseline; larger values
    model increasingly aggressive suppression of small fires.
    """

    max_suppressed: int = 0

    def __post_init__(self) -> None:
        if self.max_suppressed < 0:
            raise ConfigurationError(
                f"max_suppressed must be >= 0, got {self.max_suppressed}"
            )

    def suppresses(self, cluster_size: int) -> bool:
        """Whether a fire touching ``cluster_size`` trees is put out."""
        return cluster_size <= self.max_suppressed


@dataclass(frozen=True)
class FireEvent:
    """One lightning strike: the cluster size and whether it burned."""

    time: int
    cluster_size: int
    burned: bool


class ForestFireModel:
    """The Drossel–Schwabl automaton with optional suppression."""

    def __init__(
        self,
        side: int,
        growth_p: float = 0.05,
        lightning_f: float = 0.001,
        policy: SuppressionPolicy | None = None,
    ):
        if side < 2:
            raise ConfigurationError(f"side must be >= 2, got {side}")
        if not 0 < growth_p <= 1:
            raise ConfigurationError(f"growth_p must be in (0, 1], got {growth_p}")
        if not 0 <= lightning_f <= 1:
            raise ConfigurationError(
                f"lightning_f must be in [0, 1], got {lightning_f}"
            )
        self.side = side
        self.growth_p = growth_p
        self.lightning_f = lightning_f
        self.policy = policy or SuppressionPolicy(0)
        self.grid = np.zeros((side, side), dtype=np.int8)
        self.time = 0

    @property
    def tree_density(self) -> float:
        """Fraction of cells currently holding a tree (the fuel load)."""
        return float(np.mean(self.grid == TREE))

    def _cluster(self, row: int, col: int) -> list[tuple[int, int]]:
        """Connected tree cluster containing (row, col), 4-neighbourhood."""
        cluster = []
        seen = {(row, col)}
        queue = deque([(row, col)])
        while queue:
            r, c = queue.popleft()
            cluster.append((r, c))
            for dr, dc in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                nr, nc = r + dr, c + dc
                if (
                    0 <= nr < self.side
                    and 0 <= nc < self.side
                    and (nr, nc) not in seen
                    and self.grid[nr, nc] == TREE
                ):
                    seen.add((nr, nc))
                    queue.append((nr, nc))
        return cluster

    def step(self, seed: SeedLike = None) -> list[FireEvent]:
        """One sweep: growth everywhere, then lightning strikes.

        Returns the fires (suppressed or burned) this step produced.
        """
        rng = make_rng(seed)
        grow = (self.grid == EMPTY) & (
            rng.random((self.side, self.side)) < self.growth_p
        )
        self.grid[grow] = TREE
        fires: list[FireEvent] = []
        strikes = np.argwhere(
            (self.grid == TREE)
            & (rng.random((self.side, self.side)) < self.lightning_f)
        )
        for r, c in strikes:
            r, c = int(r), int(c)
            if self.grid[r, c] != TREE:
                continue  # burned earlier this same step
            cluster = self._cluster(r, c)
            size = len(cluster)
            if self.policy.suppresses(size):
                fires.append(FireEvent(self.time, size, burned=False))
                continue
            for cr, cc in cluster:
                self.grid[cr, cc] = EMPTY
            fires.append(FireEvent(self.time, size, burned=True))
        self.time += 1
        return fires

    def run(self, steps: int, seed: SeedLike = None,
            warmup: int = 0) -> list[FireEvent]:
        """Run ``steps`` recorded sweeps (after unrecorded ``warmup``)."""
        if steps < 0:
            raise ConfigurationError(f"steps must be >= 0, got {steps}")
        if warmup < 0:
            raise ConfigurationError(f"warmup must be >= 0, got {warmup}")
        rng = make_rng(seed)
        for _ in range(warmup):
            self.step(rng)
        events: list[FireEvent] = []
        for _ in range(steps):
            events.extend(self.step(rng))
        return events
