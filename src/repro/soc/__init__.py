"""Self-organized criticality: the BTW sandpile, the Drossel–Schwabl
forest-fire model with suppression policies, and avalanche statistics
(paper §4.5, §3.2.3).
"""

from .avalanche import (
    LogBinnedHistogram,
    PowerLawFit,
    fit_power_law,
    log_binned_histogram,
)
from .baksneppen import BakSneppenModel, BakSneppenRun
from .forestfire import FireEvent, ForestFireModel, SuppressionPolicy
from .sandpile import Avalanche, Sandpile

__all__ = [
    "LogBinnedHistogram",
    "PowerLawFit",
    "fit_power_law",
    "log_binned_histogram",
    "BakSneppenModel",
    "BakSneppenRun",
    "FireEvent",
    "ForestFireModel",
    "SuppressionPolicy",
    "Avalanche",
    "Sandpile",
]
