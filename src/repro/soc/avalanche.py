"""Avalanche statistics: is an event-size distribution a power law?

Shared analysis surface for the sandpile and forest-fire models: log-binned
size histograms (raw histograms of power laws are noise past the first
decade) and a straight-line fit of log(count) vs log(size) whose R² and
slope decide "power-law-like" for the SOC experiments (E13, E20).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..errors import AnalysisError

__all__ = ["LogBinnedHistogram", "log_binned_histogram", "PowerLawFit",
           "fit_power_law"]


@dataclass(frozen=True)
class LogBinnedHistogram:
    """Geometric-bin histogram: densities normalized by bin width."""

    centers: np.ndarray
    densities: np.ndarray
    counts: np.ndarray


def log_binned_histogram(
    sizes: Iterable[float], n_bins: int = 20, base_min: float | None = None
) -> LogBinnedHistogram:
    """Histogram event sizes into geometrically spaced bins.

    Densities are counts divided by bin width so a true power law stays a
    straight line on log-log axes.
    Empty bins are dropped.
    """
    x = np.asarray(list(sizes), dtype=float)
    x = x[x > 0]
    if len(x) < 10:
        raise AnalysisError("need at least 10 positive sizes to histogram")
    if n_bins < 3:
        raise AnalysisError(f"n_bins must be >= 3, got {n_bins}")
    lo = float(x.min()) if base_min is None else base_min
    hi = float(x.max())
    if hi <= lo:
        raise AnalysisError("degenerate size range: all sizes equal")
    edges = np.geomspace(lo, hi * (1 + 1e-12), n_bins + 1)
    counts, _ = np.histogram(x, bins=edges)
    widths = np.diff(edges)
    centers = np.sqrt(edges[:-1] * edges[1:])
    keep = counts > 0
    return LogBinnedHistogram(
        centers=centers[keep],
        densities=counts[keep] / widths[keep],
        counts=counts[keep],
    )


@dataclass(frozen=True)
class PowerLawFit:
    """Least-squares line through (log size, log density)."""

    exponent: float  # density ~ size^{-exponent}
    intercept: float
    r_squared: float
    n_points: int

    def looks_power_law(self, min_r2: float = 0.85,
                        exponent_range: tuple[float, float] = (0.5, 4.0)) -> bool:
        """Loose SOC verdict: good linear fit with a plausible exponent."""
        lo, hi = exponent_range
        return self.r_squared >= min_r2 and lo <= self.exponent <= hi


def fit_power_law(sizes: Iterable[float], n_bins: int = 20) -> PowerLawFit:
    """Fit density ~ size^{-exponent} on log-binned data."""
    hist = log_binned_histogram(sizes, n_bins=n_bins)
    if len(hist.centers) < 3:
        raise AnalysisError("fewer than 3 non-empty bins; cannot fit")
    lx = np.log(hist.centers)
    ly = np.log(hist.densities)
    slope, intercept = np.polyfit(lx, ly, 1)
    pred = slope * lx + intercept
    ss_res = float(np.sum((ly - pred) ** 2))
    ss_tot = float(np.sum((ly - ly.mean()) ** 2))
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return PowerLawFit(
        exponent=float(-slope),
        intercept=float(intercept),
        r_squared=r2,
        n_points=len(hist.centers),
    )
