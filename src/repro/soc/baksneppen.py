"""The Bak–Sneppen coevolution model.

Bridges the paper's two threads: self-organized criticality (§4.5, Bak)
and species fitness/evolution (§3.2).  Species sit on a ring; each has a
fitness in [0, 1].  Repeatedly, the *least fit* species mutates (new
random fitness) and drags its two neighbours with it (coupled
ecosystems).  Without any tuning, the fitness distribution self-organizes
above a critical threshold (~0.66 on the ring) and activity comes in
punctuated-equilibrium avalanches whose sizes are power-law distributed
— extinction cascades in a coevolving ecosystem.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike, make_rng

__all__ = ["BakSneppenModel", "BakSneppenRun"]


@dataclass(frozen=True)
class BakSneppenRun:
    """Statistics from a Bak–Sneppen run."""

    final_fitness: np.ndarray
    threshold_estimate: float  # lower edge of the self-organized band
    avalanche_sizes: np.ndarray
    min_fitness_series: np.ndarray


class BakSneppenModel:
    """Coevolution on a ring of ``n_species``."""

    def __init__(self, n_species: int):
        if n_species < 3:
            raise ConfigurationError(
                f"need at least 3 species on the ring, got {n_species}"
            )
        self.n = n_species

    def run(
        self,
        steps: int,
        warmup: int = 0,
        avalanche_threshold: float = 0.5,
        seed: SeedLike = None,
    ) -> BakSneppenRun:
        """Iterate the minimal-fitness update rule.

        An avalanche (w.r.t. ``avalanche_threshold``) is a maximal run of
        consecutive steps whose minimal fitness stays below the
        threshold — the standard activity definition.
        """
        if steps < 1:
            raise ConfigurationError(f"steps must be >= 1, got {steps}")
        if warmup < 0:
            raise ConfigurationError(f"warmup must be >= 0, got {warmup}")
        if not 0.0 < avalanche_threshold < 1.0:
            raise ConfigurationError(
                f"avalanche_threshold must be in (0, 1), got "
                f"{avalanche_threshold}"
            )
        rng = make_rng(seed)
        fitness = rng.random(self.n)
        for _ in range(warmup):
            self._update(fitness, rng)
        min_series = np.empty(steps)
        for t in range(steps):
            min_series[t] = self._update(fitness, rng)
        # avalanche sizes: runs of below-threshold activity
        sizes = []
        current = 0
        for value in min_series:
            if value < avalanche_threshold:
                current += 1
            elif current:
                sizes.append(current)
                current = 0
        if current:
            sizes.append(current)
        # the self-organized band: the 5th percentile of final fitness is
        # a robust estimate of the critical threshold's location
        threshold = float(np.quantile(fitness, 0.05))
        return BakSneppenRun(
            final_fitness=fitness.copy(),
            threshold_estimate=threshold,
            avalanche_sizes=np.asarray(sizes, dtype=int),
            min_fitness_series=min_series,
        )

    def _update(self, fitness: np.ndarray, rng: np.random.Generator) -> float:
        """One step: replace the minimum and its neighbours; returns the
        pre-update minimal fitness."""
        worst = int(np.argmin(fitness))
        minimum = float(fitness[worst])
        for idx in ((worst - 1) % self.n, worst, (worst + 1) % self.n):
            fitness[idx] = rng.random()
        return minimum
