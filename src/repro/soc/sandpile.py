"""The Bak–Tang–Wiesenfeld sandpile (paper §4.5).

"Bak shows that many decentralized systems that are modeled based on
cellular automaton naturally reach a critical state with minimum
stability without carefully choosing initial system parameters and that
a small disturbance or noise at the critical state could cause cascading
failures."  The BTW sandpile is that model: grains drop on a grid; cells
holding 4+ grains topple one grain to each neighbour; boundary grains
fall off.  After a transient, avalanche sizes follow a power law with no
parameter tuning — self-organized criticality.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike, make_rng

__all__ = ["Avalanche", "Sandpile"]

TOPPLE_THRESHOLD = 4


@dataclass(frozen=True)
class Avalanche:
    """One avalanche: total topplings, distinct cells, and duration waves."""

    size: int
    area: int
    duration: int


class Sandpile:
    """A square BTW sandpile with open (dissipative) boundaries."""

    def __init__(self, side: int):
        if side < 1:
            raise ConfigurationError(f"side must be >= 1, got {side}")
        self.side = side
        self.grid = np.zeros((side, side), dtype=np.int64)

    @property
    def total_grains(self) -> int:
        """Grains currently on the table."""
        return int(self.grid.sum())

    def is_stable(self) -> bool:
        """No cell at or above the toppling threshold."""
        return bool(np.all(self.grid < TOPPLE_THRESHOLD))

    def drop(self, row: int, col: int) -> Avalanche:
        """Add one grain at (row, col) and relax to stability."""
        if not (0 <= row < self.side and 0 <= col < self.side):
            raise ConfigurationError(
                f"cell ({row}, {col}) outside a {self.side}x{self.side} grid"
            )
        self.grid[row, col] += 1
        return self._relax()

    def drop_random(self, seed: SeedLike = None) -> Avalanche:
        """Add one grain at a uniformly random cell and relax."""
        rng = make_rng(seed)
        r = int(rng.integers(self.side))
        c = int(rng.integers(self.side))
        return self.drop(r, c)

    def _relax(self) -> Avalanche:
        """Topple until stable; returns the avalanche statistics.

        Waves: all currently-over-threshold cells topple together, then
        the next wave is computed — duration counts waves, the standard
        BTW parallel update.
        """
        size = 0
        touched: set[tuple[int, int]] = set()
        duration = 0
        while True:
            unstable = np.argwhere(self.grid >= TOPPLE_THRESHOLD)
            if len(unstable) == 0:
                break
            duration += 1
            for r, c in unstable:
                r, c = int(r), int(c)
                topples = int(self.grid[r, c]) // TOPPLE_THRESHOLD
                self.grid[r, c] -= TOPPLE_THRESHOLD * topples
                size += topples
                touched.add((r, c))
                for dr, dc in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                    nr, nc = r + dr, c + dc
                    if 0 <= nr < self.side and 0 <= nc < self.side:
                        self.grid[nr, nc] += topples
                    # grains off the edge dissipate
        return Avalanche(size=size, area=len(touched), duration=duration)

    def drive(self, n_drops: int, seed: SeedLike = None,
              warmup: int = 0) -> list[Avalanche]:
        """Drop ``n_drops`` recorded grains (after ``warmup`` unrecorded ones).

        The warmup lets the pile self-organize to its critical state
        before statistics are collected.
        """
        if n_drops < 0:
            raise ConfigurationError(f"n_drops must be >= 0, got {n_drops}")
        if warmup < 0:
            raise ConfigurationError(f"warmup must be >= 0, got {warmup}")
        rng = make_rng(seed)
        for _ in range(warmup):
            self.drop_random(rng)
        return [self.drop_random(rng) for _ in range(n_drops)]
