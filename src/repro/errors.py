"""Exception hierarchy for the :mod:`repro` Systems Resilience library.

Every error raised by library code derives from :class:`ReproError` so
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations

__all__ = [
    "AnalysisError",
    "BackpressureError",
    "ChaosError",
    "CheckpointError",
    "ConfigurationError",
    "EngineError",
    "ExecutionError",
    "InjectionError",
    "PolicyError",
    "ReproError",
    "ServiceError",
    "SimulationError",
    "SolverError",
    "SupervisorError",
    "UnmaintainableError",
    "UnsatisfiableError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A model or component was constructed with invalid parameters."""


class EngineError(ConfigurationError):
    """An engine seam could not resolve or run the requested engine.

    Subclasses :class:`ConfigurationError` so pre-existing callers that
    catch configuration failures at the ``make_engine`` /
    ``make_network_engine`` / ``make_csp_engine`` seams keep working.
    """


class SolverError(ReproError):
    """A constraint solver failed in a way that is not 'no solution'."""


class UnsatisfiableError(SolverError):
    """A constraint problem admits no satisfying configuration."""


class PolicyError(ReproError):
    """A control policy is ill-formed or inapplicable to a state."""


class UnmaintainableError(PolicyError):
    """No k-maintainable policy exists for the given transition system."""


class SimulationError(ReproError):
    """A simulation entered an invalid state."""


class AnalysisError(ReproError):
    """A statistical analysis could not be computed from the given data."""


class InjectionError(ReproError):
    """A fault-injection campaign was mis-specified or failed to run."""


class ExecutionError(ReproError):
    """A sweep/runtime worker failed after exhausting its retry budget."""


class CheckpointError(ReproError):
    """A run checkpoint is unreadable or belongs to a different run."""


class SupervisorError(ReproError):
    """The MAPE runtime supervisor was misconfigured or misused."""


class ChaosError(ReproError):
    """A chaos-harness fault plan is ill-formed or cannot be applied."""


class ServiceError(ReproError):
    """The resilience service rejected, lost, or failed a job."""


class BackpressureError(ServiceError):
    """The service refused new work: queue saturated or runtime degraded.

    Backpressure is the service's graceful-degradation contract — work
    already accepted always finishes (on the reference engines if a
    breaker tripped), but new submissions are rejected loudly instead
    of queueing into an outage.
    """
