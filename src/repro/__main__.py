"""Self-demo entry point: ``python -m repro``.

Runs a one-minute tour of the library — the paper's spacecraft example,
a diversity experiment, and a scale-free attack comparison — printing
the same kinds of tables the benchmark suite produces.
"""

from __future__ import annotations

from .analysis.tables import render_table
from .core.bruneau import assess
from .networks.attacks import RandomFailure, TargetedDegreeAttack
from .networks.generators import barabasi_albert
from .networks.percolation import critical_fraction, percolation_curve
from .dynamics.diversity import maruyama_diversity_index
from .dynamics.fitness import PowerDensityDependence
from .dynamics.replicator import ReplicatorSystem
from .spacecraft.debris import DebrisStream
from .spacecraft.system import Spacecraft


def main() -> None:
    """Run the three-part self-demo and print its tables."""
    print("repro — Systems Resilience (Maruyama & Minami 2013)\n")

    print("1. The spacecraft example (paper §4.2)")
    craft = Spacecraft(6)
    rows = [
        {"max_debris_hits": hits, "minimal_k": craft.minimal_k(hits)}
        for hits in (1, 2, 3)
    ]
    print(render_table(rows))
    mission = craft.fly(
        150, DebrisStream(6, max_hits=2, hit_probability=0.1,
                          recovery_window=3), seed=0,
    )
    a = assess(mission.trace)
    print(f"simulated mission: {len(mission.hits)} hits, "
          f"Bruneau loss R = {a.loss:.1f}\n")

    print("2. Diversity under the replicator equation (paper §3.2.4)")
    rows = []
    for label, density in (("raw", None),
                           ("diminishing-return",
                            PowerDensityDependence(2.0))):
        system = ReplicatorSystem([1.0, 1.05, 1.1, 1.2], density=density)
        traj = system.run([100.0] * 4, steps=300)
        rows.append({
            "fitness_regime": label,
            "surviving_species": traj.surviving_species(),
            "final_G": traj.diversity_series()[-1],
        })
    print(render_table(rows))
    print()

    print("3. Robust-yet-fragile scale-free networks (paper §5.1)")
    g = barabasi_albert(400, 2, seed=1)
    rows = []
    for label, attack in (("random-failure", RandomFailure()),
                          ("targeted-hubs", TargetedDegreeAttack())):
        curve = percolation_curve(g, attack, seed=2, resolution=40)
        rows.append({
            "attack": label,
            "critical_removed_fraction": round(critical_fraction(curve), 3),
        })
    print(render_table(rows))
    print("\nSee examples/ for full scenarios and benchmarks/ for the "
          "25 reproduced experiments.")


if __name__ == "__main__":
    main()
