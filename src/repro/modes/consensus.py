"""Consensus building among stakeholders (paper §3.4.5).

"A large perturbation may present an opportunity to scrap and re-build
the system from scratch.  But first we have to identify the stakeholders
and ask for their consensus."  The paper's example: after 2011, Miyagi
chose industrial rebuilding while Iwate prioritized resident wellness —
different stakeholder weightings, different recovery targets.

The model: stakeholders score candidate recovery *options* on utility;
a deliberation loop runs rounds in which stakeholders concede toward
the group (bounded-confidence style) until an option clears the
required approval threshold, or deliberation stalls.  The time spent is
the consensus *cost* that active-resilience experiments can trade off
against recovery speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..errors import ConfigurationError

__all__ = ["Stakeholder", "RecoveryOption", "ConsensusResult", "deliberate"]


@dataclass(frozen=True)
class RecoveryOption:
    """A candidate post-shock rebuild target."""

    name: str
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("option needs a non-empty name")


@dataclass
class Stakeholder:
    """One party with utilities over the options and a stubbornness level.

    ``flexibility`` in [0, 1] is how far the stakeholder moves toward the
    group-mean utility per deliberation round (0 = never concedes).
    """

    name: str
    utilities: dict[str, float]
    flexibility: float = 0.3

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("stakeholder needs a non-empty name")
        if not self.utilities:
            raise ConfigurationError(
                f"stakeholder {self.name!r} must score at least one option"
            )
        if not 0.0 <= self.flexibility <= 1.0:
            raise ConfigurationError(
                f"flexibility must be in [0, 1], got {self.flexibility}"
            )

    def approves(self, option: RecoveryOption, threshold: float) -> bool:
        """Whether this stakeholder's utility for the option clears threshold."""
        return self.utilities.get(option.name, 0.0) >= threshold


@dataclass(frozen=True)
class ConsensusResult:
    """Outcome of a deliberation."""

    agreed: bool
    option: RecoveryOption | None
    rounds: int
    approval: float  # fraction of stakeholders approving the chosen option


def deliberate(
    stakeholders: Sequence[Stakeholder],
    options: Sequence[RecoveryOption],
    approval_threshold: float = 0.5,
    required_share: float = 0.75,
    max_rounds: int = 50,
) -> ConsensusResult:
    """Run deliberation rounds until an option wins ``required_share``.

    Each round: (1) find the option with the highest approval share; if
    it clears ``required_share``, consensus.  (2) Otherwise every
    stakeholder moves its utilities ``flexibility`` of the way toward
    the group mean — positions converge, modeling argument and
    compromise.  Stops unagreed after ``max_rounds``.

    The inputs are copied; callers' stakeholder objects are not mutated.
    """
    if not stakeholders:
        raise ConfigurationError("need at least one stakeholder")
    if not options:
        raise ConfigurationError("need at least one option")
    if not 0.0 < required_share <= 1.0:
        raise ConfigurationError(
            f"required_share must be in (0, 1], got {required_share}"
        )
    if max_rounds < 1:
        raise ConfigurationError(f"max_rounds must be >= 1, got {max_rounds}")
    names = [o.name for o in options]
    if len(set(names)) != len(names):
        raise ConfigurationError("option names must be unique")

    work = [
        Stakeholder(s.name, dict(s.utilities), s.flexibility)
        for s in stakeholders
    ]
    n = len(work)
    for round_i in range(1, max_rounds + 1):
        shares = {
            o.name: sum(s.approves(o, approval_threshold) for s in work) / n
            for o in options
        }
        best_name = max(shares, key=lambda k: (shares[k], k))
        best_option = next(o for o in options if o.name == best_name)
        if shares[best_name] >= required_share:
            return ConsensusResult(
                agreed=True,
                option=best_option,
                rounds=round_i,
                approval=shares[best_name],
            )
        # concede toward the group mean utility per option
        means = {
            name: float(np.mean([s.utilities.get(name, 0.0) for s in work]))
            for name in names
        }
        for s in work:
            for name in names:
                current = s.utilities.get(name, 0.0)
                s.utilities[name] = current + s.flexibility * (
                    means[name] - current
                )
    shares = {
        o.name: sum(s.approves(o, approval_threshold) for s in work) / n
        for o in options
    }
    best_name = max(shares, key=lambda k: (shares[k], k))
    return ConsensusResult(
        agreed=False,
        option=None,
        rounds=max_rounds,
        approval=shares[best_name],
    )
