"""Cognitive-error models for active resilience (paper §3.4.4).

"Active resilience may introduce a new source of errors unique to human
intelligence – cognitive errors.  People may overestimate the threat of
certain types, such as terrorism, and may overreact."  We model the
distortion as Kahneman/Tversky-style probability weighting plus a
per-threat dread multiplier, and provide a decision function so
experiments can measure the welfare cost of misallocated protection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..errors import ConfigurationError

__all__ = ["ThreatAssessment", "CognitiveBias", "allocate_protection"]


@dataclass(frozen=True)
class ThreatAssessment:
    """A threat with its true statistics and its dread factor."""

    name: str
    true_probability: float
    loss: float
    dread: float = 1.0  # >1 = overestimated (terrorism), <1 = underestimated

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("threat needs a non-empty name")
        if not 0.0 <= self.true_probability <= 1.0:
            raise ConfigurationError(
                f"probability must be in [0, 1], got {self.true_probability}"
            )
        if self.loss < 0:
            raise ConfigurationError(f"loss must be >= 0, got {self.loss}")
        if self.dread <= 0:
            raise ConfigurationError(f"dread must be > 0, got {self.dread}")

    @property
    def expected_loss(self) -> float:
        """The objective risk: probability × loss."""
        return self.true_probability * self.loss


@dataclass(frozen=True)
class CognitiveBias:
    """Prelec-style probability weighting with a dread multiplier.

    perceived(p) = exp(−(−ln p)^gamma) — ``gamma < 1`` overweights small
    probabilities (the signature bias behind overreaction to rare vivid
    threats); ``gamma = 1`` is unbiased.  Dread multiplies the perceived
    probability per threat.
    """

    gamma: float = 0.65

    def __post_init__(self) -> None:
        if not 0 < self.gamma <= 1.5:
            raise ConfigurationError(f"gamma must be in (0, 1.5], got {self.gamma}")

    def perceived_probability(self, p: float, dread: float = 1.0) -> float:
        """Distorted probability in [0, 1]."""
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError(f"probability must be in [0, 1], got {p}")
        if p in (0.0, 1.0):
            base = p
        else:
            base = float(np.exp(-((-np.log(p)) ** self.gamma)))
        return float(min(1.0, base * dread))

    def perceived_loss(self, threat: ThreatAssessment) -> float:
        """Perceived expected loss of a threat."""
        return self.perceived_probability(
            threat.true_probability, threat.dread
        ) * threat.loss

    @classmethod
    def unbiased(cls) -> "CognitiveBias":
        """The rational reference: gamma = 1 and no dread amplification."""
        return cls(gamma=1.0)


def allocate_protection(
    threats: Sequence[ThreatAssessment],
    budget: float,
    bias: CognitiveBias,
) -> dict[str, float]:
    """Split a protection budget proportionally to *perceived* risk.

    Returns ``{threat name: allocated budget}``.  With an unbiased
    assessor the split is proportional to objective expected loss; a
    biased assessor overprotects dread threats, and the residual risk
    difference is the measurable cost of cognitive error.
    """
    if budget < 0:
        raise ConfigurationError(f"budget must be >= 0, got {budget}")
    if not threats:
        raise ConfigurationError("need at least one threat")
    names = [t.name for t in threats]
    if len(set(names)) != len(names):
        raise ConfigurationError("threat names must be unique")
    perceived = np.asarray([bias.perceived_loss(t) for t in threats])
    total = perceived.sum()
    if total == 0:
        return {t.name: budget / len(threats) for t in threats}
    weights = perceived / total
    return {t.name: float(budget * w) for t, w in zip(threats, weights)}


def residual_risk(
    threats: Sequence[ThreatAssessment],
    allocation: Mapping[str, float],
    effectiveness: float = 0.5,
) -> float:
    """Objective expected loss remaining after protection spending.

    Each unit of budget on a threat divides its loss by
    ``(1 + effectiveness × budget)`` — diminishing returns, so spreading
    protection according to true risk minimizes the residual.
    """
    if effectiveness <= 0:
        raise ConfigurationError(
            f"effectiveness must be > 0, got {effectiveness}"
        )
    total = 0.0
    for threat in threats:
        spend = float(allocation.get(threat.name, 0.0))
        if spend < 0:
            raise ConfigurationError(
                f"allocation for {threat.name!r} must be >= 0"
            )
        total += threat.expected_loss / (1.0 + effectiveness * spend)
    return total
