"""Mode switching: normal ↔ emergency operation (paper §3.4.6).

:class:`ModeController` switches between two operating policies based on
observed damage, with a declaration threshold and a hysteretic
stand-down threshold.  :class:`SocietySimulator` is the welfare model
for the Takeuchi experiment (E18): a society produces output, suffers
rare heavy-tailed shocks, repairs damage with reserves and mutual aid,
and accumulates subjective welfare.  Comparing controllers answers the
paper's question of when switch-on-demand beats always-prepared and
never-switching.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..core.quality import FULL_QUALITY, QualityTrace
from ..errors import ConfigurationError
from ..rng import SeedLike, make_rng
from ..shocks.arrivals import ArrivalProcess
from .policies import EFFICIENCY_POLICY, EMERGENCY_POLICY, OperatingPolicy

__all__ = ["ModeController", "SocietyOutcome", "SocietySimulator"]


class ModeController:
    """Switch between a normal and an emergency policy on damage readings.

    Declares emergency when damage ≥ ``declare_at``; stands down when
    damage ≤ ``stand_down_at`` (must be strictly lower — the hysteresis
    band prevents mode flapping).  A controller with
    ``declare_at = inf`` never switches; one whose normal policy equals
    its emergency policy is effectively always-prepared.
    """

    def __init__(
        self,
        normal: OperatingPolicy = EFFICIENCY_POLICY,
        emergency: OperatingPolicy = EMERGENCY_POLICY,
        declare_at: float = 20.0,
        stand_down_at: float = 5.0,
    ):
        if declare_at <= stand_down_at:
            raise ConfigurationError(
                f"declare_at ({declare_at}) must exceed stand_down_at "
                f"({stand_down_at}) for hysteresis"
            )
        if stand_down_at < 0:
            raise ConfigurationError(
                f"stand_down_at must be >= 0, got {stand_down_at}"
            )
        self.normal = normal
        self.emergency = emergency
        self.declare_at = declare_at
        self.stand_down_at = stand_down_at
        self._in_emergency = False

    @property
    def in_emergency(self) -> bool:
        """Whether emergency mode is currently declared."""
        return self._in_emergency

    def reset(self) -> None:
        """Return to normal mode."""
        self._in_emergency = False

    def policy_for(self, damage: float) -> OperatingPolicy:
        """Update mode for the current damage level and return the policy."""
        if damage < 0:
            raise ConfigurationError(f"damage must be >= 0, got {damage}")
        if self._in_emergency:
            if damage <= self.stand_down_at:
                self._in_emergency = False
        else:
            if damage >= self.declare_at:
                self._in_emergency = True
        return self.emergency if self._in_emergency else self.normal

    @classmethod
    def never_switching(cls, normal: OperatingPolicy = EFFICIENCY_POLICY
                        ) -> "ModeController":
        """A controller that stays in its normal policy forever."""
        return cls(
            normal=normal,
            emergency=normal,
            declare_at=float("inf"),
            stand_down_at=0.0,
        )

    @classmethod
    def always_prepared(cls, policy: OperatingPolicy) -> "ModeController":
        """A controller that runs the given (preparedness) policy forever."""
        return cls(
            normal=policy,
            emergency=policy,
            declare_at=float("inf"),
            stand_down_at=0.0,
        )


@dataclass(frozen=True)
class SocietyOutcome:
    """Result of one society lifetime."""

    total_welfare: float
    collapsed: bool
    trace: QualityTrace
    emergency_periods: int
    damage_peak: float


class SocietySimulator:
    """A stylized society under rare shocks, scored by cumulative welfare.

    State per period: ``damage`` (0 = intact; quality = 100 − damage,
    capped) and ``reserve``.  Each period the society produces
    ``output × (1 − damage/collapse_at)`` (damaged societies produce
    less), the active policy reserves part of it and consumes the rest
    (welfare += consumed × welfare_factor), shocks add damage (reserves
    absorb damage one-for-one first), and repair removes
    ``base_repair + mutual_aid × damage``.  Damage at or beyond
    ``collapse_at`` is a collapse: welfare accrual stops.
    """

    def __init__(
        self,
        shock_process: ArrivalProcess,
        output: float = 1.0,
        base_repair: float = 1.0,
        collapse_at: float = 100.0,
    ):
        if output <= 0:
            raise ConfigurationError(f"output must be > 0, got {output}")
        if base_repair < 0:
            raise ConfigurationError(f"base_repair must be >= 0, got {base_repair}")
        if collapse_at <= 0:
            raise ConfigurationError(f"collapse_at must be > 0, got {collapse_at}")
        self.shock_process = shock_process
        self.output = output
        self.base_repair = base_repair
        self.collapse_at = collapse_at

    def run(
        self,
        controller: ModeController,
        horizon: int = 500,
        seed: SeedLike = None,
    ) -> SocietyOutcome:
        """Simulate ``horizon`` periods under ``controller``."""
        if horizon < 2:
            raise ConfigurationError(f"horizon must be >= 2, got {horizon}")
        rng = make_rng(seed)
        controller.reset()
        shocks = self.shock_process.generate(float(horizon), rng)
        shock_iter = iter(shocks)
        pending = next(shock_iter, None)

        damage = 0.0
        reserve = 0.0
        welfare = 0.0
        emergency_periods = 0
        damage_peak = 0.0
        times: list[float] = []
        quality: list[float] = []
        collapsed = False

        for t in range(horizon):
            # shocks scheduled in [t, t+1)
            while pending is not None and pending.time < t + 1:
                hit = pending.magnitude
                absorbed = min(reserve, hit)
                reserve -= absorbed
                damage += hit - absorbed
                pending = next(shock_iter, None)
            damage_peak = max(damage_peak, damage)
            if damage >= self.collapse_at:
                collapsed = True
                times.append(float(t))
                quality.append(0.0)
                # collapse is absorbing: record flat zero quality and stop
                break
            policy = controller.policy_for(damage)
            if controller.in_emergency:
                emergency_periods += 1
            produced = self.output * (1.0 - damage / self.collapse_at)
            reserve += policy.reserve_rate * produced
            consumed = (1.0 - policy.reserve_rate) * produced
            welfare += policy.welfare_factor * consumed
            repair = self.base_repair + policy.mutual_aid * damage
            damage = max(0.0, damage - repair)
            times.append(float(t))
            quality.append(max(0.0, FULL_QUALITY - damage))

        if len(times) < 2:
            times.append(times[-1] + 1.0 if times else 0.0)
            quality.append(quality[-1] if quality else FULL_QUALITY)
            if len(times) < 2:
                times = [0.0, 1.0]
                quality = [FULL_QUALITY, FULL_QUALITY]
        trace = QualityTrace.from_samples(times, quality)
        return SocietyOutcome(
            total_welfare=welfare,
            collapsed=collapsed,
            trace=trace,
            emergency_periods=emergency_periods,
            damage_peak=damage_peak,
        )
