"""Situation-based security policy switching ("Ichigan security", §3.4.6).

The paper cites Maruyama et al. [11]: "a security architecture that
enables situation-based policy switching."  A security policy trades
*usability* (value delivered per period) against *protection* (fraction
of attack damage blocked).  A static tight policy taxes every peaceful
day; a static loose one bleeds during attack campaigns.  The switching
architecture runs loose in peace and tightens when the threat indicator
crosses a declaration threshold, with hysteresis — the security
instantiation of the paper's mode-switching strategy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike, make_rng

__all__ = ["SecurityPolicy", "AttackCampaign", "SecurityOutcome",
           "SituationalController", "simulate_security",
           "OPEN_POLICY", "LOCKDOWN_POLICY"]


@dataclass(frozen=True)
class SecurityPolicy:
    """A protection stance."""

    name: str
    usability: float  # value per peaceful period, in [0, 1]
    protection: float  # fraction of attack damage blocked, in [0, 1]

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("policy needs a non-empty name")
        if not 0.0 <= self.usability <= 1.0:
            raise ConfigurationError(
                f"usability must be in [0, 1], got {self.usability}"
            )
        if not 0.0 <= self.protection <= 1.0:
            raise ConfigurationError(
                f"protection must be in [0, 1], got {self.protection}"
            )


OPEN_POLICY = SecurityPolicy("open", usability=1.0, protection=0.2)
"""Everything allowed: full productivity, thin defences."""

LOCKDOWN_POLICY = SecurityPolicy("lockdown", usability=0.55, protection=0.95)
"""Everything vetted: strong defences, heavy usability tax."""


@dataclass(frozen=True)
class AttackCampaign:
    """A window of elevated attack intensity.

    Outside campaigns a low base attack rate applies; during a campaign
    attacks land every period with ``damage`` points each.
    """

    start: int
    length: int
    damage: float

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ConfigurationError(f"start must be >= 0, got {self.start}")
        if self.length < 1:
            raise ConfigurationError(f"length must be >= 1, got {self.length}")
        if self.damage < 0:
            raise ConfigurationError(f"damage must be >= 0, got {self.damage}")

    def active_at(self, t: int) -> bool:
        """Whether the campaign covers period ``t``."""
        return self.start <= t < self.start + self.length


class SituationalController:
    """Switch between two security policies on a threat indicator.

    The indicator is an exponential moving average of observed attack
    activity; lockdown is declared above ``raise_at`` and lifted below
    ``lower_at`` (hysteresis).
    """

    def __init__(
        self,
        peace: SecurityPolicy = OPEN_POLICY,
        war: SecurityPolicy = LOCKDOWN_POLICY,
        raise_at: float = 0.5,
        lower_at: float = 0.2,
        smoothing: float = 0.3,
    ):
        if raise_at <= lower_at:
            raise ConfigurationError(
                f"raise_at ({raise_at}) must exceed lower_at ({lower_at})"
            )
        if not 0.0 < smoothing <= 1.0:
            raise ConfigurationError(
                f"smoothing must be in (0, 1], got {smoothing}"
            )
        self.peace = peace
        self.war = war
        self.raise_at = raise_at
        self.lower_at = lower_at
        self.smoothing = smoothing
        self._indicator = 0.0
        self._locked = False

    def reset(self) -> None:
        """Back to peacetime."""
        self._indicator = 0.0
        self._locked = False

    def observe(self, attacked: bool) -> SecurityPolicy:
        """Update the indicator with this period's activity; return the
        policy to run next period."""
        self._indicator = (
            (1 - self.smoothing) * self._indicator
            + self.smoothing * (1.0 if attacked else 0.0)
        )
        if self._locked:
            if self._indicator < self.lower_at:
                self._locked = False
        elif self._indicator > self.raise_at:
            self._locked = True
        return self.war if self._locked else self.peace

    @classmethod
    def static(cls, policy: SecurityPolicy) -> "SituationalController":
        """A degenerate controller that never switches."""
        controller = cls(peace=policy, war=policy)
        return controller


@dataclass(frozen=True)
class SecurityOutcome:
    """Result of one simulated horizon."""

    total_value: float  # usability accrued minus damage suffered
    usability_accrued: float
    damage_taken: float
    lockdown_periods: int


def simulate_security(
    controller: SituationalController,
    campaigns: list[AttackCampaign] | tuple[AttackCampaign, ...],
    horizon: int = 300,
    base_attack_p: float = 0.02,
    base_damage: float = 1.0,
    seed: SeedLike = None,
) -> SecurityOutcome:
    """Run the controller through background noise plus attack campaigns."""
    if horizon < 1:
        raise ConfigurationError(f"horizon must be >= 1, got {horizon}")
    if not 0.0 <= base_attack_p <= 1.0:
        raise ConfigurationError(
            f"base_attack_p must be in [0, 1], got {base_attack_p}"
        )
    rng = make_rng(seed)
    controller.reset()
    policy = controller.peace
    usability = 0.0
    damage_taken = 0.0
    lockdown_periods = 0
    for t in range(horizon):
        campaign = next((c for c in campaigns if c.active_at(t)), None)
        if campaign is not None:
            attacked = True
            raw_damage = campaign.damage
        else:
            attacked = bool(rng.random() < base_attack_p)
            raw_damage = base_damage if attacked else 0.0
        usability += policy.usability
        damage_taken += raw_damage * (1.0 - policy.protection)
        if controller.war is not controller.peace and policy is controller.war:
            lockdown_periods += 1
        policy = controller.observe(attacked)
    return SecurityOutcome(
        total_value=usability - damage_taken,
        usability_accrued=usability,
        damage_taken=damage_taken,
        lockdown_periods=lockdown_periods,
    )
