"""Operating policies for mode-based systems (paper §3.4.6).

"In the normal mode, the system works within the designed realm and the
system follows the designed set of policy, for example, pursuing maximum
economic efficiency.  If an extreme event happens ... the system
switches its operational mode to the emergency mode, in which the system
and the people behave based on a different set of policies (e.g.,
helping others)."

A policy here is an economic stance: how much of each period's output is
consumed (welfare now) versus reserved (protection later), and how much
mutual aid flows during a shock.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = ["OperatingPolicy", "EFFICIENCY_POLICY", "EMERGENCY_POLICY",
           "ALWAYS_PREPARED_POLICY"]


@dataclass(frozen=True)
class OperatingPolicy:
    """One mode's behavioural parameters.

    Attributes
    ----------
    name:
        Display label.
    reserve_rate:
        Fraction of per-period output diverted into the reserve buffer.
    mutual_aid:
        Fraction of remaining damage absorbed per period while in this
        mode (people "helping others" speeds recovery).
    welfare_factor:
        Subjective welfare per unit consumed in this mode; emergency
        living is leaner than normal life.
    """

    name: str
    reserve_rate: float
    mutual_aid: float
    welfare_factor: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("policy needs a non-empty name")
        if not 0.0 <= self.reserve_rate < 1.0:
            raise ConfigurationError(
                f"reserve_rate must be in [0, 1), got {self.reserve_rate}"
            )
        if not 0.0 <= self.mutual_aid <= 1.0:
            raise ConfigurationError(
                f"mutual_aid must be in [0, 1], got {self.mutual_aid}"
            )
        if self.welfare_factor < 0:
            raise ConfigurationError(
                f"welfare_factor must be >= 0, got {self.welfare_factor}"
            )


EFFICIENCY_POLICY = OperatingPolicy(
    name="normal-efficiency",
    reserve_rate=0.0,
    mutual_aid=0.05,
    welfare_factor=1.0,
)
"""Takeuchi's normal life: ignore the rare risk, consume everything."""

EMERGENCY_POLICY = OperatingPolicy(
    name="emergency-mutual-aid",
    reserve_rate=0.0,
    mutual_aid=0.5,
    welfare_factor=0.6,
)
"""Post-shock norm: lean living, strong mutual aid, fast repair."""

ALWAYS_PREPARED_POLICY = OperatingPolicy(
    name="always-prepared",
    reserve_rate=0.25,
    mutual_aid=0.15,
    welfare_factor=0.9,
)
"""Permanent worry: a standing reserve and constant drills, paid for in
everyday welfare — the strategy Takeuchi argues against for extreme rare
events."""
