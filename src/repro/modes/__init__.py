"""Active resilience — decision machinery: mode switching, operating
policies, cognitive-error models, and consensus building (paper
§3.4.4–§3.4.6).
"""

from .cognitive import (
    CognitiveBias,
    ThreatAssessment,
    allocate_protection,
    residual_risk,
)
from .consensus import ConsensusResult, RecoveryOption, Stakeholder, deliberate
from .security import (
    LOCKDOWN_POLICY,
    OPEN_POLICY,
    AttackCampaign,
    SecurityOutcome,
    SecurityPolicy,
    SituationalController,
    simulate_security,
)
from .policies import (
    ALWAYS_PREPARED_POLICY,
    EFFICIENCY_POLICY,
    EMERGENCY_POLICY,
    OperatingPolicy,
)
from .switching import ModeController, SocietyOutcome, SocietySimulator

__all__ = [
    "CognitiveBias",
    "ThreatAssessment",
    "allocate_protection",
    "residual_risk",
    "ConsensusResult",
    "RecoveryOption",
    "Stakeholder",
    "deliberate",
    "LOCKDOWN_POLICY",
    "OPEN_POLICY",
    "AttackCampaign",
    "SecurityOutcome",
    "SecurityPolicy",
    "SituationalController",
    "simulate_security",
    "ALWAYS_PREPARED_POLICY",
    "EFFICIENCY_POLICY",
    "EMERGENCY_POLICY",
    "OperatingPolicy",
    "ModeController",
    "SocietyOutcome",
    "SocietySimulator",
]
