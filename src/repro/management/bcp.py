"""Business continuity and frontline empowerment (paper §3.4.3).

"ISO 22320 ... stresses the importance of empowering the employees in
the bottom of the hierarchy who are dealing with the situation at first
hand.  They need to make tough decisions.  They need to improvise."

Model: an incident demands a sequence of response decisions.  In a
*centralized* process every decision travels up an approval chain
(latency per level, some chance of distortion per hop); in an
*empowered* process frontline staff decide immediately with slightly
noisier judgment.  Damage grows while decisions are pending, so the
latency-vs-judgment tradeoff is measurable: for fast-moving incidents
empowerment wins despite the noisier decisions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike, make_rng

__all__ = ["ResponseProcess", "IncidentOutcome", "simulate_incident"]


@dataclass(frozen=True)
class ResponseProcess:
    """An emergency decision process.

    Parameters
    ----------
    approval_levels:
        Hierarchy hops before action (0 = fully empowered frontline).
    latency_per_level:
        Periods each hop costs.
    decision_quality:
        Probability a decision is correct (wrong decisions do nothing).
        Headquarters may decide slightly better than improvising staff —
        the tension the experiment sweeps.
    """

    name: str
    approval_levels: int
    latency_per_level: int = 1
    decision_quality: float = 0.9

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("process needs a non-empty name")
        if self.approval_levels < 0:
            raise ConfigurationError(
                f"approval_levels must be >= 0, got {self.approval_levels}"
            )
        if self.latency_per_level < 0:
            raise ConfigurationError(
                f"latency_per_level must be >= 0, got {self.latency_per_level}"
            )
        if not 0.0 < self.decision_quality <= 1.0:
            raise ConfigurationError(
                f"decision_quality must be in (0, 1], got {self.decision_quality}"
            )

    @property
    def decision_latency(self) -> int:
        """Periods from need to action."""
        return self.approval_levels * self.latency_per_level

    @classmethod
    def empowered_frontline(cls, decision_quality: float = 0.85
                            ) -> "ResponseProcess":
        """ISO-22320-style: improvise now."""
        return cls("empowered-frontline", 0, 0, decision_quality)

    @classmethod
    def centralized(cls, levels: int = 3, latency: int = 2,
                    decision_quality: float = 0.95) -> "ResponseProcess":
        """Approval-chain process: better decisions, later."""
        return cls("centralized", levels, latency, decision_quality)


@dataclass(frozen=True)
class IncidentOutcome:
    """One incident response run."""

    total_damage: float
    contained_at: int | None
    decisions_made: int


def simulate_incident(
    process: ResponseProcess,
    growth_rate: float = 0.3,
    initial_damage: float = 1.0,
    containment_per_decision: float = 2.0,
    horizon: int = 60,
    seed: SeedLike = None,
) -> IncidentOutcome:
    """Run an exponential-growth incident against a response process.

    Damage grows by ``growth_rate`` per period; every
    ``1 + decision_latency`` periods a decision lands and, when correct,
    removes ``containment_per_decision`` damage.  The incident is
    contained when damage reaches zero.  Total damage integrates over
    time (the Bruneau-style loss of the episode).
    """
    if growth_rate < 0:
        raise ConfigurationError(f"growth_rate must be >= 0, got {growth_rate}")
    if initial_damage <= 0:
        raise ConfigurationError(
            f"initial_damage must be > 0, got {initial_damage}"
        )
    if containment_per_decision <= 0:
        raise ConfigurationError(
            f"containment_per_decision must be > 0, got {containment_per_decision}"
        )
    if horizon < 1:
        raise ConfigurationError(f"horizon must be >= 1, got {horizon}")
    rng = make_rng(seed)
    damage = initial_damage
    total = 0.0
    decisions = 0
    cycle = 1 + process.decision_latency
    for t in range(horizon):
        total += damage
        if damage <= 0:
            return IncidentOutcome(total_damage=total, contained_at=t,
                                   decisions_made=decisions)
        damage *= 1.0 + growth_rate
        if t % cycle == cycle - 1:
            decisions += 1
            if rng.random() < process.decision_quality:
                damage = max(0.0, damage - containment_per_decision)
    contained = None if damage > 0 else horizon
    return IncidentOutcome(total_damage=total, contained_at=contained,
                           decisions_made=decisions)
