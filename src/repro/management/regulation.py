"""Co-regulation and regulatory adaptability (paper §3.3.3).

"A legal system is usually very rigid.  Laws take a long time to be
discussed at the parliament ... One approach is self-regulation by the
stakeholders, or co-regulation combining top-down guidances ... Ikegai
argues that co-regulation is more flexible and faster to adapt to the
environment change."

Model: the environment (e.g. the Internet-services landscape) drifts as
a random walk; a regulatory regime tracks it with an *update latency*
(periods between rule revisions) and a *fidelity* (how completely each
revision closes the gap).  The running regulation gap — |rules −
environment| integrated over time — is the cost of rigidity.  Top-down
law: long latency, high fidelity.  Self-regulation: short latency, lower
fidelity (partial, interest-driven).  Co-regulation: short latency with
top-down correction, i.e. high effective fidelity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike, make_rng

__all__ = ["RegulatoryRegime", "RegulationOutcome", "simulate_regulation",
           "TOP_DOWN_LAW", "SELF_REGULATION", "CO_REGULATION"]


@dataclass(frozen=True)
class RegulatoryRegime:
    """One way of keeping rules aligned with a drifting environment."""

    name: str
    update_latency: int  # periods between rule revisions
    fidelity: float  # fraction of the gap closed per revision

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("regime needs a non-empty name")
        if self.update_latency < 1:
            raise ConfigurationError(
                f"update_latency must be >= 1, got {self.update_latency}"
            )
        if not 0.0 < self.fidelity <= 1.0:
            raise ConfigurationError(
                f"fidelity must be in (0, 1], got {self.fidelity}"
            )


TOP_DOWN_LAW = RegulatoryRegime("top-down-law", update_latency=20,
                                fidelity=1.0)
"""Parliament: complete revisions, years apart."""

SELF_REGULATION = RegulatoryRegime("self-regulation", update_latency=2,
                                   fidelity=0.5)
"""Stakeholders: quick but partial, interest-driven revisions."""

CO_REGULATION = RegulatoryRegime("co-regulation", update_latency=2,
                                 fidelity=0.9)
"""Nudged self-regulation: quick and nearly complete."""


@dataclass(frozen=True)
class RegulationOutcome:
    """Tracking performance of one regime over one environment path."""

    mean_gap: float
    worst_gap: float
    revisions: int


def simulate_regulation(
    regime: RegulatoryRegime,
    periods: int = 400,
    drift_sigma: float = 1.0,
    shock_at: int | None = None,
    shock_size: float = 15.0,
    seed: SeedLike = None,
) -> RegulationOutcome:
    """Track a drifting environment under a regulatory regime.

    The environment performs a Gaussian random walk, with an optional
    jump (a disruptive innovation / crisis) at ``shock_at``.  Rules are
    revised every ``update_latency`` periods, closing ``fidelity`` of the
    current gap.  Returns the time-averaged and worst regulation gap.
    """
    if periods < 2:
        raise ConfigurationError(f"periods must be >= 2, got {periods}")
    if drift_sigma < 0:
        raise ConfigurationError(
            f"drift_sigma must be >= 0, got {drift_sigma}"
        )
    rng = make_rng(seed)
    environment = 0.0
    rules = 0.0
    gaps = np.empty(periods)
    revisions = 0
    for t in range(periods):
        environment += float(rng.normal(0.0, drift_sigma))
        if shock_at is not None and t == shock_at:
            environment += shock_size
        if t % regime.update_latency == regime.update_latency - 1:
            rules += regime.fidelity * (environment - rules)
            revisions += 1
        gaps[t] = abs(environment - rules)
    return RegulationOutcome(
        mean_gap=float(gaps.mean()),
        worst_gap=float(gaps.max()),
        revisions=revisions,
    )
