"""Investment diversification vs. catastrophic loss (paper §3.2.3).

"To invest all the money on the stock with the highest expected return
is the optimal solution if [maximizing expected return] is the goal.  It
is also a risky strategy because the investor loses all the money if the
invested company bankrupts.  By diversifying the investments, the
investor can significantly reduce the risk of catastrophic loss in
exchange for a slightly lower expected return."

Model: assets have i.i.d. per-period multiplicative returns plus a small
per-period bankruptcy probability (asset value → 0 forever).  A
portfolio is a weight vector; we measure terminal wealth, ruin
probability (wealth below a floor), and the return-vs-ruin tradeoff the
paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike, make_rng

__all__ = ["Asset", "Portfolio", "PortfolioOutcome", "simulate_portfolio"]


@dataclass(frozen=True)
class Asset:
    """One investable asset: lognormal returns plus a bankruptcy hazard."""

    name: str
    mean_return: float  # per-period arithmetic drift, e.g. 0.08
    volatility: float
    bankruptcy_p: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("asset needs a non-empty name")
        if self.mean_return <= -1.0:
            raise ConfigurationError(
                f"mean_return must be > -1, got {self.mean_return}"
            )
        if self.volatility < 0:
            raise ConfigurationError(
                f"volatility must be >= 0, got {self.volatility}"
            )
        if not 0.0 <= self.bankruptcy_p <= 1.0:
            raise ConfigurationError(
                f"bankruptcy_p must be in [0, 1], got {self.bankruptcy_p}"
            )


@dataclass(frozen=True)
class Portfolio:
    """Fixed weights over a set of assets (rebalanced every period)."""

    assets: tuple[Asset, ...]
    weights: tuple[float, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "assets", tuple(self.assets))
        object.__setattr__(
            self, "weights", tuple(float(w) for w in self.weights)
        )
        if len(self.assets) != len(self.weights) or not self.assets:
            raise ConfigurationError(
                "assets and weights must be equal-length and non-empty"
            )
        if any(w < 0 for w in self.weights):
            raise ConfigurationError("weights must be non-negative")
        if abs(sum(self.weights) - 1.0) > 1e-9:
            raise ConfigurationError(
                f"weights must sum to 1, got {sum(self.weights):.6f}"
            )

    @classmethod
    def concentrated(cls, assets: tuple[Asset, ...], index: int) -> "Portfolio":
        """Everything on one asset (the maximize-expected-return choice)."""
        if not 0 <= index < len(assets):
            raise ConfigurationError(f"index {index} out of range")
        weights = tuple(1.0 if i == index else 0.0 for i in range(len(assets)))
        return cls(assets, weights)

    @classmethod
    def equal_weight(cls, assets: tuple[Asset, ...]) -> "Portfolio":
        """1/N diversification."""
        n = len(assets)
        if n == 0:
            raise ConfigurationError("need at least one asset")
        return cls(tuple(assets), tuple(1.0 / n for _ in range(n)))

    def expected_return(self) -> float:
        """One-period expected arithmetic return (ignoring bankruptcy it is
        Σ w·μ; bankruptcy multiplies each asset's term by (1 − p))."""
        return float(
            sum(
                w * ((1.0 + a.mean_return) * (1.0 - a.bankruptcy_p) - 1.0)
                for a, w in zip(self.assets, self.weights)
            )
        )


@dataclass(frozen=True)
class PortfolioOutcome:
    """Monte-Carlo wealth statistics for one portfolio."""

    mean_final_wealth: float
    median_final_wealth: float
    ruin_probability: float
    mean_log_growth: float
    trials: int
    periods: int


def simulate_portfolio(
    portfolio: Portfolio,
    periods: int = 120,
    trials: int = 2000,
    initial_wealth: float = 1.0,
    ruin_floor: float = 0.1,
    seed: SeedLike = None,
) -> PortfolioOutcome:
    """Simulate rebalanced wealth paths; ruin = wealth ever below floor.

    Returns are lognormal with the asset's drift/volatility; a bankrupt
    asset contributes zero for the rest of the path (rebalancing then
    spreads over survivors; all-bankrupt means wealth 0).
    """
    if periods < 1:
        raise ConfigurationError(f"periods must be >= 1, got {periods}")
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    if initial_wealth <= 0:
        raise ConfigurationError(
            f"initial_wealth must be > 0, got {initial_wealth}"
        )
    if not 0 <= ruin_floor < initial_wealth:
        raise ConfigurationError(
            f"ruin_floor must be in [0, initial_wealth), got {ruin_floor}"
        )
    rng = make_rng(seed)
    n_assets = len(portfolio.assets)
    mus = np.asarray([a.mean_return for a in portfolio.assets])
    sigmas = np.asarray([a.volatility for a in portfolio.assets])
    bankr = np.asarray([a.bankruptcy_p for a in portfolio.assets])
    base_weights = np.asarray(portfolio.weights)

    finals = np.empty(trials)
    ruined = np.zeros(trials, dtype=bool)
    for trial in range(trials):
        wealth = initial_wealth
        alive = np.ones(n_assets, dtype=bool)
        for _ in range(periods):
            weights = base_weights * alive
            total_w = weights.sum()
            if total_w == 0 or wealth <= 0:
                wealth = 0.0
                break
            weights = weights / total_w
            # lognormal with arithmetic mean 1 + mu
            log_mean = np.log1p(mus) - sigmas**2 / 2.0
            gross = np.exp(rng.normal(log_mean, np.where(sigmas > 0, sigmas, 1e-12)))
            bankrupt_now = alive & (rng.random(n_assets) < bankr)
            gross = np.where(bankrupt_now, 0.0, gross)
            alive = alive & ~bankrupt_now
            wealth *= float(weights @ gross)
            if wealth < ruin_floor:
                ruined[trial] = True
        finals[trial] = wealth
        if wealth < ruin_floor:
            ruined[trial] = True
    positive = finals[finals > 0]
    mean_log_growth = (
        float(np.mean(np.log(positive / initial_wealth))) / periods
        if len(positive)
        else float("-inf")
    )
    return PortfolioOutcome(
        mean_final_wealth=float(finals.mean()),
        median_final_wealth=float(np.median(finals)),
        ruin_probability=float(ruined.mean()),
        mean_log_growth=mean_log_growth,
        trials=trials,
        periods=periods,
    )
