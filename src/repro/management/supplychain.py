"""Supply chains under regional disasters (paper §3.1.3).

"The auto industry was also affected by the earthquake because their
extremely complex supply chains depend on a large number of suppliers
located in the Tohoku area.  Despite the unprecedented scale of damage
... every major auto company in Japan survived the crisis.  One of the
reasons of their survival was their monetary reserve that could
compensate the temporary loss of the revenue."

Model: a manufacturer needs a set of *parts*; each part is provided by
one or more suppliers, each located in a region.  A regional disaster
knocks out every supplier in the region for an outage period.  While any
required part is unsourced, production (and revenue) is zero and fixed
costs burn the monetary reserve; the firm dies when the reserve goes
negative.  Both redundancy levers appear: multi-sourcing across regions
(supplier redundancy) and the reserve (universal-resource redundancy).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..redundancy.reserve import ReserveBuffer
from ..rng import SeedLike, make_rng

__all__ = ["Supplier", "Manufacturer", "RegionalDisaster", "SupplyChainOutcome",
           "simulate_supply_chain"]


@dataclass(frozen=True)
class Supplier:
    """One supplier: which part it makes and where it sits."""

    name: str
    part: str
    region: str

    def __post_init__(self) -> None:
        if not self.name or not self.part or not self.region:
            raise ConfigurationError("supplier fields must be non-empty")


@dataclass(frozen=True)
class RegionalDisaster:
    """A disaster striking one region at a time, for an outage duration."""

    time: int
    region: str
    outage: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigurationError(f"time must be >= 0, got {self.time}")
        if self.outage < 1:
            raise ConfigurationError(f"outage must be >= 1, got {self.outage}")
        if not self.region:
            raise ConfigurationError("region must be non-empty")


@dataclass(frozen=True)
class Manufacturer:
    """A firm with required parts, a supplier base, and financials."""

    required_parts: tuple[str, ...]
    suppliers: tuple[Supplier, ...]
    revenue_per_period: float = 10.0
    fixed_cost_per_period: float = 6.0
    initial_reserve: float = 20.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "required_parts", tuple(self.required_parts))
        object.__setattr__(self, "suppliers", tuple(self.suppliers))
        if not self.required_parts:
            raise ConfigurationError("need at least one required part")
        supplied = {s.part for s in self.suppliers}
        missing = set(self.required_parts) - supplied
        if missing:
            raise ConfigurationError(
                f"no supplier for parts: {sorted(missing)}"
            )
        if self.revenue_per_period <= 0:
            raise ConfigurationError("revenue_per_period must be > 0")
        if self.fixed_cost_per_period < 0:
            raise ConfigurationError("fixed_cost_per_period must be >= 0")
        if self.initial_reserve < 0:
            raise ConfigurationError("initial_reserve must be >= 0")

    def suppliers_for(self, part: str) -> tuple[Supplier, ...]:
        """All suppliers able to provide ``part``."""
        return tuple(s for s in self.suppliers if s.part == part)

    def regions(self) -> tuple[str, ...]:
        """Distinct supplier regions, sorted."""
        return tuple(sorted({s.region for s in self.suppliers}))

    def can_produce(self, down_regions: frozenset[str]) -> bool:
        """Whether every part has a supplier outside the down regions."""
        for part in self.required_parts:
            if all(
                s.region in down_regions for s in self.suppliers_for(part)
            ):
                return False
        return True


@dataclass(frozen=True)
class SupplyChainOutcome:
    """One simulated firm lifetime."""

    survived: bool
    periods_survived: int
    periods_halted: int
    final_reserve: float


def simulate_supply_chain(
    firm: Manufacturer,
    disasters: Sequence[RegionalDisaster],
    horizon: int = 100,
    seed: SeedLike = None,
) -> SupplyChainOutcome:
    """Run the firm through a scripted disaster sequence.

    Each period: determine down regions, halt production if any part is
    unsourced, collect revenue if producing, pay fixed costs from the
    reserve, die if the reserve cannot cover them.
    """
    if horizon < 1:
        raise ConfigurationError(f"horizon must be >= 1, got {horizon}")
    reserve = ReserveBuffer(initial=firm.initial_reserve)
    halted = 0
    for t in range(horizon):
        down = frozenset(
            d.region for d in disasters if d.time <= t < d.time + d.outage
        )
        producing = firm.can_produce(down)
        if producing:
            reserve.refill(firm.revenue_per_period)
        else:
            halted += 1
        uncovered = reserve.absorb(firm.fixed_cost_per_period)
        if uncovered > 0:
            return SupplyChainOutcome(
                survived=False,
                periods_survived=t,
                periods_halted=halted,
                final_reserve=0.0,
            )
    return SupplyChainOutcome(
        survived=True,
        periods_survived=horizon,
        periods_halted=halted,
        final_reserve=reserve.level,
    )
