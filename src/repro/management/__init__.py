"""Management-domain resilience models: portfolio diversification,
supply chains with reserves, and business-continuity empowerment
(paper §3.1.3, §3.2.3, §3.4.3).
"""

from .bcp import IncidentOutcome, ResponseProcess, simulate_incident
from .portfolio import Asset, Portfolio, PortfolioOutcome, simulate_portfolio
from .regulation import (
    CO_REGULATION,
    SELF_REGULATION,
    TOP_DOWN_LAW,
    RegulationOutcome,
    RegulatoryRegime,
    simulate_regulation,
)
from .supplychain import (
    Manufacturer,
    RegionalDisaster,
    Supplier,
    SupplyChainOutcome,
    simulate_supply_chain,
)

__all__ = [
    "IncidentOutcome",
    "ResponseProcess",
    "simulate_incident",
    "Asset",
    "CO_REGULATION",
    "SELF_REGULATION",
    "TOP_DOWN_LAW",
    "RegulationOutcome",
    "RegulatoryRegime",
    "simulate_regulation",
    "Portfolio",
    "PortfolioOutcome",
    "simulate_portfolio",
    "Manufacturer",
    "RegionalDisaster",
    "Supplier",
    "SupplyChainOutcome",
    "simulate_supply_chain",
]
