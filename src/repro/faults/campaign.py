"""Fault-injection campaigns and their verdicts (paper §5.3).

A campaign repeatedly resets the system under test, injects a sampled
(or exhaustively enumerated) fault, and counts recovery steps against a
deadline.  The empirical worst case is a *lower bound* on the true
minimal k; exhaustive campaigns make it exact, which experiment E24
verifies against the analytic recoverability machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..errors import ConfigurationError, InjectionError
from ..rng import SeedLike, make_rng
from .injector import SystemUnderTest
from .spec import FaultSpace, FaultSpec

__all__ = ["EpisodeResult", "CampaignReport", "InjectionCampaign"]


@dataclass(frozen=True)
class EpisodeResult:
    """One injected fault and its recovery outcome."""

    fault: FaultSpec
    recovered: bool
    steps: Optional[int]  # None when the deadline expired unrecovered


@dataclass(frozen=True)
class CampaignReport:
    """Aggregated verdicts of a campaign."""

    episodes: tuple[EpisodeResult, ...]
    deadline: int

    @property
    def n_episodes(self) -> int:
        """Number of injection episodes run."""
        return len(self.episodes)

    @property
    def recovery_rate(self) -> float:
        """Fraction of faults recovered within the deadline."""
        if not self.episodes:
            raise InjectionError("campaign produced no episodes")
        return sum(e.recovered for e in self.episodes) / self.n_episodes

    @property
    def empirical_k(self) -> Optional[int]:
        """Worst observed recovery steps (None if anything failed).

        For an exhaustive campaign this equals the true minimal k of the
        fault envelope.
        """
        if any(not e.recovered for e in self.episodes):
            return None
        steps = [e.steps for e in self.episodes if e.steps is not None]
        return max(steps) if steps else 0

    def worst_faults(self, top: int = 5) -> list[EpisodeResult]:
        """The hardest episodes: unrecovered first, then slowest."""
        if top < 1:
            raise ConfigurationError(f"top must be >= 1, got {top}")
        ranked = sorted(
            self.episodes,
            key=lambda e: (e.recovered, -(e.steps if e.steps is not None
                                          else self.deadline + 1)),
        )
        return ranked[:top]

    def claims_k_resilient(self, k: int) -> bool:
        """The tiger-team verdict: every tested fault recovered within k."""
        if k < 0:
            raise ConfigurationError(f"k must be >= 0, got {k}")
        return all(
            e.recovered and e.steps is not None and e.steps <= k
            for e in self.episodes
        )


class InjectionCampaign:
    """Drives a :class:`SystemUnderTest` through an injection plan."""

    def __init__(self, sut: SystemUnderTest, deadline: int = 50):
        if deadline < 1:
            raise ConfigurationError(f"deadline must be >= 1, got {deadline}")
        self.sut = sut
        self.deadline = deadline

    def run_episode(self, fault: FaultSpec) -> EpisodeResult:
        """Reset, inject one fault, step until healthy or deadline."""
        self.sut.reset()
        if not self.sut.is_healthy():
            raise InjectionError("system under test is unhealthy after reset")
        self.sut.inject(fault)
        if self.sut.is_healthy():
            return EpisodeResult(fault=fault, recovered=True, steps=0)
        for step in range(1, self.deadline + 1):
            self.sut.step()
            if self.sut.is_healthy():
                return EpisodeResult(fault=fault, recovered=True, steps=step)
        return EpisodeResult(fault=fault, recovered=False, steps=None)

    def run_sampled(self, space: FaultSpace, trials: int,
                    seed: SeedLike = None) -> CampaignReport:
        """Monte-Carlo campaign over the fault envelope."""
        if trials < 1:
            raise ConfigurationError(f"trials must be >= 1, got {trials}")
        rng = make_rng(seed)
        episodes = tuple(
            self.run_episode(space.sample(rng)) for _ in range(trials)
        )
        return CampaignReport(episodes=episodes, deadline=self.deadline)

    def run_exhaustive(self, space: FaultSpace) -> CampaignReport:
        """Inject every fault in the envelope (model scale only)."""
        episodes = tuple(
            self.run_episode(fault) for fault in space.enumerate_all()
        )
        return CampaignReport(episodes=episodes, deadline=self.deadline)
