"""Tiger-team fault injection (paper §5.3): fault specs and envelopes,
black-box systems under test, and injection campaigns with verdicts.
"""

from .campaign import CampaignReport, EpisodeResult, InjectionCampaign
from .injector import (
    BooleanCSPUnderTest,
    SpacecraftUnderTest,
    SystemUnderTest,
)
from .spec import FaultSpace, FaultSpec

__all__ = [
    "CampaignReport",
    "EpisodeResult",
    "InjectionCampaign",
    "BooleanCSPUnderTest",
    "SpacecraftUnderTest",
    "SystemUnderTest",
    "FaultSpace",
    "FaultSpec",
]
