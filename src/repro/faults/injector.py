"""Systems under test for fault injection.

:class:`SystemUnderTest` is the black-box interface the tiger team works
against — the campaign never sees internals, matching the paper's
black-box framing.  :class:`SpacecraftUnderTest` adapts the §4.2
spacecraft so injection results can be compared against its analytic
k-recoverability (experiment E24).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..csp.bitstring import BitString
from ..errors import InjectionError
from ..rng import SeedLike, make_rng
from ..spacecraft.repair import FirstFailedRepair, RepairStrategy
from ..spacecraft.system import Spacecraft
from .spec import FaultSpec

__all__ = ["SystemUnderTest", "SpacecraftUnderTest", "BooleanCSPUnderTest"]


class SystemUnderTest(ABC):
    """Black-box lifecycle a fault-injection campaign drives."""

    @abstractmethod
    def reset(self) -> None:
        """Restore the pristine state."""

    @abstractmethod
    def inject(self, fault: FaultSpec) -> None:
        """Apply a fault to the running system."""

    @abstractmethod
    def step(self) -> None:
        """Advance one recovery step."""

    @abstractmethod
    def is_healthy(self) -> bool:
        """Whether the system currently satisfies its constraint."""


class SpacecraftUnderTest(SystemUnderTest):
    """The spacecraft wrapped behind the black-box interface."""

    def __init__(self, craft: Spacecraft,
                 strategy: RepairStrategy | None = None,
                 seed: SeedLike = None):
        self.craft = craft
        self.strategy = strategy or FirstFailedRepair()
        self._rng = make_rng(seed)
        self._state = BitString.ones(craft.n)

    def reset(self) -> None:
        self._state = BitString.ones(self.craft.n)

    def inject(self, fault: FaultSpec) -> None:
        bad = [c for c in fault.components if c >= self.craft.n]
        if bad:
            raise InjectionError(
                f"fault targets components {bad} outside a "
                f"{self.craft.n}-component spacecraft"
            )
        self._state = self._state.set_bits(fault.components, 0)

    def step(self) -> None:
        if self._state.popcount == self.craft.n:
            return
        to_fix = self.strategy.choose(
            self._state, self.craft.repairs_per_step, self._rng
        )
        if to_fix:
            self._state = self._state.set_bits(to_fix, 1)

    def is_healthy(self) -> bool:
        assignment = self.craft.csp.assignment_from_bits(self._state)
        return self.craft.csp.is_fit(assignment)

    @property
    def state(self) -> BitString:
        """Current configuration (visible for white-box assertions in tests)."""
        return self._state


class BooleanCSPUnderTest(SystemUnderTest):
    """Any boolean CSP behind the black-box interface.

    Generalizes the spacecraft adapter: faults clear component bits,
    each recovery step flips up to ``repairs_per_step`` bits greedily
    toward constraint satisfaction (via
    :func:`repro.csp.solvers.greedy_bitflip_repair` mechanics), so the
    tiger team can attack arbitrary constraint environments.
    """

    def __init__(self, csp, initial: BitString | None = None,
                 repairs_per_step: int = 1, seed: SeedLike = None):
        from ..csp.problem import CSP

        if not isinstance(csp, CSP):
            raise InjectionError("BooleanCSPUnderTest needs a CSP instance")
        for var in csp.variables:
            if not var.is_boolean:
                raise InjectionError(
                    f"variable {var.name!r} is not boolean"
                )
        if repairs_per_step < 1:
            raise InjectionError(
                f"repairs_per_step must be >= 1, got {repairs_per_step}"
            )
        self.csp = csp
        self.repairs_per_step = repairs_per_step
        self._rng = make_rng(seed)
        n = len(csp.variables)
        if initial is None:
            initial = BitString.ones(n)
        if initial.n != n:
            raise InjectionError(
                f"initial state has {initial.n} bits for {n} variables"
            )
        if not csp.is_fit(csp.assignment_from_bits(initial)):
            raise InjectionError("initial state must satisfy the CSP")
        self._initial = initial
        self._state = initial

    def reset(self) -> None:
        self._state = self._initial

    def inject(self, fault: FaultSpec) -> None:
        n = len(self.csp.variables)
        bad = [c for c in fault.components if c >= n]
        if bad:
            raise InjectionError(
                f"fault targets components {bad} outside a {n}-variable CSP"
            )
        self._state = self._state.set_bits(fault.components, 0)

    def step(self) -> None:
        from ..csp.solvers import greedy_bitflip_repair

        assignment = self.csp.assignment_from_bits(self._state)
        if self.csp.is_fit(assignment):
            return
        result = greedy_bitflip_repair(
            self.csp, assignment,
            max_flips=self.repairs_per_step,
            flips_per_step=self.repairs_per_step,
            seed=self._rng,
        )
        self._state = self.csp.bits_from_assignment(result.final)

    def is_healthy(self) -> bool:
        return self.csp.is_fit(self.csp.assignment_from_bits(self._state))

    @property
    def state(self) -> BitString:
        """Current configuration (for white-box assertions in tests)."""
        return self._state
