"""Fault specifications for tiger-team testing (paper §5.3).

"The other [strategy] is black-box testing, or testing by a so-called
'tiger team'.  In this approach, a group of highly skilled people try to
attack the system."  A :class:`FaultSpec` is one attack (a set of
component failures); a :class:`FaultSpace` is the attack envelope the
tiger team samples from — random sampling plays the skilled-human role
at model scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterator

from ..errors import ConfigurationError, InjectionError
from ..rng import SeedLike, make_rng

__all__ = ["FaultSpec", "FaultSpace"]


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: the components to fail simultaneously."""

    components: tuple[int, ...]
    label: str = ""

    def __post_init__(self) -> None:
        comps = tuple(sorted(set(self.components)))
        object.__setattr__(self, "components", comps)
        if not comps:
            raise ConfigurationError("a fault must fail at least one component")
        if any(c < 0 for c in comps):
            raise ConfigurationError(f"component indices must be >= 0: {comps}")
        if not self.label:
            object.__setattr__(
                self, "label", "fail[" + ",".join(map(str, comps)) + "]"
            )

    @property
    def severity(self) -> int:
        """Number of simultaneously failed components."""
        return len(self.components)


@dataclass(frozen=True)
class FaultSpace:
    """The envelope of injectable faults: ≤ ``max_failures`` of ``n`` parts."""

    n_components: int
    max_failures: int

    def __post_init__(self) -> None:
        if self.n_components < 1:
            raise ConfigurationError(
                f"n_components must be >= 1, got {self.n_components}"
            )
        if not 1 <= self.max_failures <= self.n_components:
            raise ConfigurationError(
                f"max_failures must be in [1, {self.n_components}], "
                f"got {self.max_failures}"
            )

    def sample(self, seed: SeedLike = None) -> FaultSpec:
        """Draw one fault uniformly over severities 1..max_failures."""
        rng = make_rng(seed)
        severity = int(rng.integers(1, self.max_failures + 1))
        comps = rng.choice(self.n_components, size=severity, replace=False)
        return FaultSpec(tuple(int(c) for c in comps))

    def enumerate_all(self) -> Iterator[FaultSpec]:
        """Every fault in the envelope (exponential; model scale only)."""
        for severity in range(1, self.max_failures + 1):
            for comps in combinations(range(self.n_components), severity):
                yield FaultSpec(comps)

    @property
    def size(self) -> int:
        """Number of distinct faults in the envelope."""
        from math import comb

        return sum(
            comb(self.n_components, s) for s in range(1, self.max_failures + 1)
        )
