"""Parameter-sweep harness used by every benchmark.

A sweep maps a callable over a parameter grid, keeping (parameters,
result) pairs in declaration order and rendering directly to the aligned
tables the benchmark suite prints.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Callable, Mapping, Sequence

from ..errors import ConfigurationError
from .tables import render_table

__all__ = ["SweepResult", "sweep", "grid_sweep"]


@dataclass(frozen=True)
class SweepResult:
    """Results of a sweep: one row dict per parameter point."""

    rows: tuple[dict, ...]

    def column(self, key: str) -> list:
        """Extract one column across all rows."""
        missing = [i for i, r in enumerate(self.rows) if key not in r]
        if missing:
            raise ConfigurationError(
                f"column {key!r} missing from rows {missing[:5]}"
            )
        return [r[key] for r in self.rows]

    def to_table(self) -> str:
        """Aligned text table of all rows."""
        return render_table(list(self.rows))

    def __len__(self) -> int:
        return len(self.rows)


def sweep(
    values: Sequence,
    fn: Callable[[object], Mapping],
    param_name: str = "param",
) -> SweepResult:
    """Run ``fn(value)`` for each value; each call returns a row mapping."""
    if not values:
        raise ConfigurationError("sweep needs at least one value")
    rows = []
    for value in values:
        row = {param_name: value}
        result = fn(value)
        overlap = set(result) & set(row)
        if overlap:
            raise ConfigurationError(
                f"result keys collide with parameter name: {sorted(overlap)}"
            )
        row.update(result)
        rows.append(row)
    return SweepResult(rows=tuple(rows))


def grid_sweep(
    grid: Mapping[str, Sequence],
    fn: Callable[..., Mapping],
) -> SweepResult:
    """Cartesian-product sweep: ``fn(**params)`` per grid point."""
    if not grid:
        raise ConfigurationError("grid must have at least one parameter")
    names = list(grid)
    for name, values in grid.items():
        if not values:
            raise ConfigurationError(f"grid parameter {name!r} has no values")
    rows = []
    for combo in product(*(grid[n] for n in names)):
        params = dict(zip(names, combo))
        result = fn(**params)
        overlap = set(result) & set(params)
        if overlap:
            raise ConfigurationError(
                f"result keys collide with parameters: {sorted(overlap)}"
            )
        row = dict(params)
        row.update(result)
        rows.append(row)
    return SweepResult(rows=tuple(rows))
