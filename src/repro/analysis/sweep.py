"""Parameter-sweep harness used by every benchmark.

A sweep maps a callable over a parameter grid, keeping (parameters,
result) pairs in declaration order and rendering directly to the aligned
tables the benchmark suite prints.

Sweeps parallelize across processes (``n_jobs``) and thread determinism
through explicitly-spawned seeds: pass ``seed=`` and every grid point
receives its own :class:`numpy.random.SeedSequence` child, so the same
parent seed reproduces the same results at any worker count.

On top of that sits the fault-tolerant runtime (:mod:`repro.runtime`):

* ``on_error="keep"`` turns a crashing or hanging point into an *error
  row* (exception text, worker traceback, and the point's seed) instead
  of aborting the sweep — :attr:`SweepResult.ok_rows` and
  :attr:`SweepResult.failed` split the outcome;
* ``retries``/``retry_backoff`` re-attempt transient failures with
  exponential backoff, and ``timeout`` bounds each point's wall time
  (a hung worker process is terminated, not waited on);
* ``checkpoint="path.jsonl"`` appends each completed point to a JSONL
  file; re-running the same sweep against the same path skips completed
  points and replays their rows verbatim, so an interrupted or
  partially-failed sweep resumes instead of recomputing;
* every point is counted/timed through the active
  :class:`repro.runtime.trace.Tracer` (pass ``tracer=`` or install one
  with :func:`repro.runtime.trace.use`);
* under an installed :class:`repro.runtime.supervisor.Supervisor` the
  sweep becomes *self-healing*: engine-attributable faults
  (``MemoryError``, per-point timeout, a worker process dying, or
  NaN-poisoned output) trip the supervisor's circuit breakers, the
  engine seams degrade deterministically to the reference object
  engines, and the affected points are re-run once under the degraded
  engines — the supervisor's deadline also clamps per-point timeouts
  and pre-empts points once the run budget is exhausted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import product
from typing import Callable, Iterable, Mapping

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike
from ..runtime import supervisor as supervisor_module
from ..runtime import trace as trace_module
from ..runtime.checkpoint import SweepCheckpoint, fingerprint
from ..runtime.executor import PointOutcome, PointTask, run_points
from .tables import render_table

__all__ = ["PointFailure", "SweepResult", "expand_grid", "sweep", "grid_sweep"]


@dataclass(frozen=True)
class PointFailure:
    """One sweep point that failed after all retry attempts."""

    index: int  # position in the sweep's point order
    params: dict  # the point's parameter assignment
    seed: tuple[int | None, tuple[int, ...]] | None
    """``(entropy, spawn_key)`` of the point's SeedSequence (``None``
    for unseeded sweeps) — enough to re-run the point standalone."""
    error: str  # "ExceptionType: message" or "timed out after Ns"
    traceback: str | None  # worker-side formatted traceback, if any
    attempts: int

    def row(self) -> dict:
        """The failure as an error row (parameters + diagnosis)."""
        row = dict(self.params)
        row["error"] = self.error
        row["seed"] = self.seed
        row["traceback"] = self.traceback
        return row


@dataclass(frozen=True)
class SweepResult:
    """Results of a sweep: one row dict per parameter point.

    ``rows`` holds every point in sweep order; points that failed under
    ``on_error="keep"`` appear as error rows (parameters plus ``error``
    / ``seed`` / ``traceback`` keys).  ``failures`` carries the same
    failures with full structure.
    """

    rows: tuple[dict, ...]
    failures: tuple[PointFailure, ...] = ()

    @property
    def ok_rows(self) -> tuple[dict, ...]:
        """Rows of the points that completed successfully, in order."""
        failed = {f.index for f in self.failures}
        return tuple(r for i, r in enumerate(self.rows) if i not in failed)

    @property
    def failed(self) -> tuple[PointFailure, ...]:
        """The failed points (empty unless ``on_error="keep"`` kept any)."""
        return self.failures

    def column(self, key: str) -> list:
        """Extract one column across all rows."""
        missing = [i for i, r in enumerate(self.rows) if key not in r]
        if missing:
            raise ConfigurationError(
                f"column {key!r} missing from rows {missing[:5]}"
            )
        return [r[key] for r in self.rows]

    def to_table(self) -> str:
        """Aligned text table of all rows."""
        return render_table(list(self.rows))

    def __len__(self) -> int:
        return len(self.rows)


def expand_grid(grid: Mapping[str, Iterable]) -> list[dict]:
    """Materialize a parameter grid into its Cartesian-product points.

    The shared submit path: :func:`grid_sweep` and the service layer's
    job submission (:meth:`repro.service.ResilienceService.submit`) both
    expand grids through here, so a job submitted to the service names
    exactly the points the equivalent batch sweep would run — same
    declaration order, same dict shapes, same fingerprints.
    """
    if not grid:
        raise ConfigurationError("grid must have at least one parameter")
    grid = {name: list(values) for name, values in grid.items()}
    names = list(grid)
    for name, values in grid.items():
        if not values:
            raise ConfigurationError(f"grid parameter {name!r} has no values")
    return [
        dict(zip(names, combo))
        for combo in product(*(grid[n] for n in names))
    ]


def _spawn_seeds(
    seed: SeedLike, count: int
) -> list[np.random.SeedSequence | None]:
    """One independent child seed per sweep point (all ``None`` unseeded)."""
    if seed is None:
        return [None] * count
    if isinstance(seed, np.random.SeedSequence):
        return seed.spawn(count)
    if isinstance(seed, np.random.Generator):
        raise ConfigurationError(
            "sweep seeds must be an int or SeedSequence (a Generator "
            "cannot be split deterministically across processes)"
        )
    return np.random.SeedSequence(seed).spawn(count)


def _seed_label(seed: SeedLike) -> str:
    """Stable description of the parent seed for checkpoint fingerprints."""
    if seed is None:
        return "none"
    if isinstance(seed, np.random.SeedSequence):
        return f"seedseq:{seed.entropy}:{seed.spawn_key}"
    return f"int:{int(seed)}"


def _seed_id(
    seed: np.random.SeedSequence | None,
) -> tuple[int | None, tuple[int, ...]] | None:
    """Compact (entropy, spawn_key) identity of one point's child seed."""
    if seed is None:
        return None
    entropy = seed.entropy
    if isinstance(entropy, (list, tuple, np.ndarray)):  # pragma: no cover
        entropy = None
    return (entropy, tuple(int(k) for k in seed.spawn_key))


def _nonfinite(value) -> bool:
    """Whether a worker result contains any non-finite float (NaN/Inf)."""
    if isinstance(value, np.generic):
        value = value.item()
    if isinstance(value, float):
        return not math.isfinite(value)
    if isinstance(value, np.ndarray):
        return value.dtype.kind == "f" and not bool(np.isfinite(value).all())
    if isinstance(value, Mapping):
        return any(_nonfinite(v) for v in value.values())
    if isinstance(value, (list, tuple)):
        return any(_nonfinite(v) for v in value)
    return False


def _clamp_deadline(sup, timeout: float | None) -> float | None:
    """Per-point timeout clamped to the supervisor's remaining budget."""
    remaining = sup.remaining_s() if sup else None
    if remaining is None:
        return timeout
    remaining = max(remaining, 0.001)  # run_points rejects timeout <= 0
    return remaining if timeout is None else min(timeout, remaining)


def _deadline_failure(sup, task: PointTask) -> PointOutcome:
    return PointOutcome(
        index=task.index,
        ok=False,
        error=(
            "supervisor deadline exceeded "
            f"({sup.deadline_s}s run budget)"
        ),
    )


def _supervise(
    sup,
    worker,
    fn,
    tasks: list[PointTask],
    outcomes: list[PointOutcome],
    *,
    tr,
    n_jobs: int,
    retries: int,
    backoff: float,
    timeout: float | None,
) -> list[PointOutcome]:
    """MAPE analyze/plan/execute over one batch of point outcomes.

    Analyze: split failures into engine faults vs. ordinary worker
    errors, and catch ok-looking rows poisoned with non-finite floats.
    Plan: an engine fault trips the breakers of every supervised family
    still on a fast engine.  Execute: if any breaker transitioned, the
    suspect points re-run once under the now-degraded engines (fresh
    worker processes inherit the pinned environment).  Rows that are
    still NaN-poisoned afterwards become failures — a poisoned row must
    never reach the results or the checkpoint.
    """
    by_index = {o.index: o for o in outcomes}
    suspects: list[PointTask] = []
    reason = None
    for task in tasks:
        outcome = by_index[task.index]
        if outcome.ok:
            if _nonfinite(outcome.value):
                tr.count("supervisor.poisoned")
                tr.warning(
                    "NaN-poisoned point output", index=outcome.index
                )
                suspects.append(task)
                reason = reason or "NaN-poisoned output"
        elif sup.is_engine_fault(outcome.error, outcome.exception):
            suspects.append(task)
            reason = reason or outcome.error
    if suspects:
        tripped = sup.record_fault(reason)
        deadline_left = sup.remaining_s()
        if tripped and (deadline_left is None or deadline_left > 0):
            tr.count("supervisor.reruns", len(suspects))
            tr.event(
                "supervisor.rerun",
                points=[t.index for t in suspects],
                families=tripped,
                reason=reason,
            )
            rerun = run_points(
                worker,
                fn,
                suspects,
                n_jobs=n_jobs,
                retries=retries,
                backoff=backoff,
                timeout=_clamp_deadline(sup, timeout),
                tracer=tr,
            )
            for outcome in rerun:
                by_index[outcome.index] = outcome
    for index, outcome in by_index.items():
        if outcome.ok and _nonfinite(outcome.value):
            by_index[index] = PointOutcome(
                index=index,
                ok=False,
                error=(
                    "engine output NaN-poisoned "
                    "(non-finite floats in result)"
                ),
                attempts=outcome.attempts,
                elapsed_s=outcome.elapsed_s,
            )
    return [by_index[task.index] for task in tasks]


def _run_point(fn, value, seed):
    return fn(value) if seed is None else fn(value, seed)


def _run_grid_point(fn, params, seed):
    return fn(**params) if seed is None else fn(**params, seed=seed)


def _merge_row(params: dict, result: Mapping, what: str) -> dict:
    """One output row = parameter assignment + worker result mapping."""
    overlap = set(result) & set(params)
    if overlap:
        raise ConfigurationError(
            f"result keys collide with {what}: {sorted(overlap)}"
        )
    row = dict(params)
    row.update(result)
    return row


def _execute(
    worker: Callable,
    fn: Callable,
    param_rows: list[dict],
    inputs: list,
    seeds: list,
    *,
    what: str,
    n_jobs: int,
    on_error: str,
    retries: int,
    retry_backoff: float,
    timeout: float | None,
    checkpoint: str | None,
    tracer,
    seed_label: str,
) -> SweepResult:
    """Shared engine behind :func:`sweep` and :func:`grid_sweep`."""
    if on_error not in ("raise", "keep"):
        raise ConfigurationError(
            f"on_error must be 'raise' or 'keep', got {on_error!r}"
        )
    tr = tracer if tracer is not None else trace_module.current()
    sup = supervisor_module.current()
    n_points = len(inputs)

    ckpt: SweepCheckpoint | None = None
    done: dict[int, dict] = {}
    if checkpoint is not None:
        fp = fingerprint(inputs, seed_label, extra=what)
        ckpt = SweepCheckpoint.open(checkpoint, n_points=n_points, fp=fp)
        done = ckpt.done
        for w in ckpt.warnings:
            tr.warning(f"checkpoint: {w['reason']}", line=w["line"])
        if ckpt.quarantined:
            tr.count("checkpoint.quarantined", ckpt.quarantined)

    tasks = [
        PointTask(index=i, value=inputs[i], seed=seeds[i])
        for i in range(n_points)
        if i not in done
    ]
    tr.event(
        "sweep.start",
        points=n_points,
        resumed=len(done),
        n_jobs=n_jobs,
        timeout=timeout,
        retries=retries,
    )
    try:
        with tr.timer("sweep.run"):
            remaining = sup.remaining_s() if sup else None
            if remaining is not None and remaining <= 0:
                # the supervisor's run budget is spent: pre-empt every
                # pending point instead of starting work that cannot
                # finish in time (time-bounded resilience)
                tr.count("supervisor.preempted.points", len(tasks))
                outcomes = [_deadline_failure(sup, t) for t in tasks]
            else:
                outcomes = run_points(
                    worker,
                    fn,
                    tasks,
                    n_jobs=n_jobs,
                    retries=retries,
                    backoff=retry_backoff,
                    timeout=_clamp_deadline(sup, timeout),
                    tracer=tr,
                )
                if sup:
                    outcomes = _supervise(
                        sup,
                        worker,
                        fn,
                        tasks,
                        outcomes,
                        tr=tr,
                        n_jobs=n_jobs,
                        retries=retries,
                        backoff=retry_backoff,
                        timeout=timeout,
                    )

        rows: dict[int, dict] = {}
        failures: list[PointFailure] = []
        for index, row in done.items():
            rows[index] = row
            tr.count("sweep.points.resumed")
        for outcome in outcomes:
            index = outcome.index
            if outcome.ok:
                row = _merge_row(param_rows[index], outcome.value, what)
                if ckpt is not None:
                    row = ckpt.record(index, row)
                rows[index] = row
                tr.count("sweep.points.ok")
                tr.record_timing("sweep.point", outcome.elapsed_s)
                tr.event(
                    "point.ok",
                    index=index,
                    attempts=outcome.attempts,
                    elapsed_s=round(outcome.elapsed_s, 6),
                )
                continue
            tr.count("sweep.points.failed")
            tr.event(
                "point.fail",
                index=index,
                attempts=outcome.attempts,
                error=outcome.error,
                elapsed_s=round(outcome.elapsed_s, 6),
            )
            if on_error == "raise":
                tr.event("sweep.abort", index=index)
                outcome.reraise()
            failure = PointFailure(
                index=index,
                params=dict(param_rows[index]),
                seed=_seed_id(seeds[index]),
                error=outcome.error,
                traceback=outcome.traceback,
                attempts=outcome.attempts,
            )
            failures.append(failure)
            rows[index] = failure.row()
    finally:
        if ckpt is not None:
            ckpt.close()

    tr.event(
        "sweep.end",
        ok=n_points - len(failures),
        failed=len(failures),
    )
    return SweepResult(
        rows=tuple(rows[i] for i in range(n_points)),
        failures=tuple(sorted(failures, key=lambda f: f.index)),
    )


def sweep(
    values: Iterable,
    fn: Callable[..., Mapping],
    param_name: str = "param",
    n_jobs: int = 1,
    seed: SeedLike = None,
    *,
    on_error: str = "raise",
    retries: int = 0,
    retry_backoff: float = 0.1,
    timeout: float | None = None,
    checkpoint: str | None = None,
    tracer=None,
) -> SweepResult:
    """Run ``fn(value)`` for each value; each call returns a row mapping.

    ``values`` may be any iterable — a list, ``range``, numpy array, or
    generator; it is materialized once up front.  ``n_jobs`` > 1 fans
    the points out over worker processes (``-1`` uses every core;
    ``fn`` must then be picklable, i.e. module-level).  When ``seed``
    is given, ``fn`` is called as ``fn(value, child_seed)`` where
    ``child_seed`` is a per-point ``SeedSequence`` spawned from the
    parent — deterministic for a given seed at any worker count.

    Fault tolerance: with ``on_error="keep"`` a raising, crashing, or
    timed-out point becomes an error row and the sweep completes;
    ``retries`` re-attempts each failing point with ``retry_backoff *
    2**k`` sleeps; ``timeout`` bounds one attempt's wall-clock seconds
    (forces process isolation, so ``fn`` must be picklable).
    ``checkpoint`` names a JSONL file for interrupt/resume.
    """
    values = list(values)
    if not values:
        raise ConfigurationError("sweep needs at least one value")
    seeds = _spawn_seeds(seed, len(values))
    return _execute(
        _run_point,
        fn,
        param_rows=[{param_name: v} for v in values],
        inputs=values,
        seeds=seeds,
        what=f"parameter name {param_name!r}",
        n_jobs=n_jobs,
        on_error=on_error,
        retries=retries,
        retry_backoff=retry_backoff,
        timeout=timeout,
        checkpoint=checkpoint,
        tracer=tracer,
        seed_label=_seed_label(seed),
    )


def grid_sweep(
    grid: Mapping[str, Iterable],
    fn: Callable[..., Mapping],
    n_jobs: int = 1,
    seed: SeedLike = None,
    *,
    on_error: str = "raise",
    retries: int = 0,
    retry_backoff: float = 0.1,
    timeout: float | None = None,
    checkpoint: str | None = None,
    tracer=None,
) -> SweepResult:
    """Cartesian-product sweep: ``fn(**params)`` per grid point.

    Grid values may be any iterables (numpy arrays, ranges, generators
    included); they are materialized once up front.  Parallelism,
    seeding, fault tolerance, checkpointing, and tracing all follow
    :func:`sweep`; with ``seed`` given, ``fn`` receives an extra
    ``seed=<SeedSequence>`` keyword (so the grid itself must not
    contain a ``seed`` parameter).
    """
    if seed is not None and "seed" in grid:
        raise ConfigurationError(
            "grid parameter 'seed' collides with the sweep's seed keyword"
        )
    points = expand_grid(grid)
    seeds = _spawn_seeds(seed, len(points))
    return _execute(
        _run_grid_point,
        fn,
        param_rows=[dict(p) for p in points],
        inputs=points,
        seeds=seeds,
        what="parameters",
        n_jobs=n_jobs,
        on_error=on_error,
        retries=retries,
        retry_backoff=retry_backoff,
        timeout=timeout,
        checkpoint=checkpoint,
        tracer=tracer,
        seed_label=_seed_label(seed),
    )
