"""Parameter-sweep harness used by every benchmark.

A sweep maps a callable over a parameter grid, keeping (parameters,
result) pairs in declaration order and rendering directly to the aligned
tables the benchmark suite prints.

Sweeps parallelize across processes (``n_jobs``) and thread determinism
through explicitly-spawned seeds: pass ``seed=`` and every grid point
receives its own :class:`numpy.random.SeedSequence` child, so the same
parent seed reproduces the same results at any worker count.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from itertools import product, repeat
from typing import Callable, Mapping, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike
from .tables import render_table

__all__ = ["SweepResult", "sweep", "grid_sweep"]


@dataclass(frozen=True)
class SweepResult:
    """Results of a sweep: one row dict per parameter point."""

    rows: tuple[dict, ...]

    def column(self, key: str) -> list:
        """Extract one column across all rows."""
        missing = [i for i, r in enumerate(self.rows) if key not in r]
        if missing:
            raise ConfigurationError(
                f"column {key!r} missing from rows {missing[:5]}"
            )
        return [r[key] for r in self.rows]

    def to_table(self) -> str:
        """Aligned text table of all rows."""
        return render_table(list(self.rows))

    def __len__(self) -> int:
        return len(self.rows)


def _spawn_seeds(
    seed: SeedLike, count: int
) -> list[np.random.SeedSequence | None]:
    """One independent child seed per sweep point (all ``None`` unseeded)."""
    if seed is None:
        return [None] * count
    if isinstance(seed, np.random.SeedSequence):
        return seed.spawn(count)
    if isinstance(seed, np.random.Generator):
        raise ConfigurationError(
            "sweep seeds must be an int or SeedSequence (a Generator "
            "cannot be split deterministically across processes)"
        )
    return np.random.SeedSequence(seed).spawn(count)


def _workers(n_jobs: int) -> int:
    if n_jobs == -1:
        return os.cpu_count() or 1
    if n_jobs < 1:
        raise ConfigurationError(
            f"n_jobs must be >= 1 or -1 (all cores), got {n_jobs}"
        )
    return n_jobs


def _run_point(fn, value, seed):
    return fn(value) if seed is None else fn(value, seed)


def _run_grid_point(fn, params, seed):
    return fn(**params) if seed is None else fn(**params, seed=seed)


def _map(worker, fn, inputs, seeds, n_jobs):
    """Order-preserving map, forked across processes when n_jobs > 1."""
    workers = _workers(n_jobs)
    if workers == 1 or len(inputs) <= 1:
        return [worker(fn, x, s) for x, s in zip(inputs, seeds)]
    with ProcessPoolExecutor(max_workers=min(workers, len(inputs))) as ex:
        return list(ex.map(worker, repeat(fn), inputs, seeds))


def sweep(
    values: Sequence,
    fn: Callable[..., Mapping],
    param_name: str = "param",
    n_jobs: int = 1,
    seed: SeedLike = None,
) -> SweepResult:
    """Run ``fn(value)`` for each value; each call returns a row mapping.

    ``n_jobs`` > 1 fans the points out over a process pool (``-1`` uses
    every core; ``fn`` must then be picklable, i.e. module-level).  When
    ``seed`` is given, ``fn`` is called as ``fn(value, child_seed)``
    where ``child_seed`` is a per-point ``SeedSequence`` spawned from
    the parent — deterministic for a given seed at any worker count.
    """
    if not values:
        raise ConfigurationError("sweep needs at least one value")
    seeds = _spawn_seeds(seed, len(values))
    results = _map(_run_point, fn, list(values), seeds, n_jobs)
    rows = []
    for value, result in zip(values, results):
        row = {param_name: value}
        overlap = set(result) & set(row)
        if overlap:
            raise ConfigurationError(
                f"result keys collide with parameter name: {sorted(overlap)}"
            )
        row.update(result)
        rows.append(row)
    return SweepResult(rows=tuple(rows))


def grid_sweep(
    grid: Mapping[str, Sequence],
    fn: Callable[..., Mapping],
    n_jobs: int = 1,
    seed: SeedLike = None,
) -> SweepResult:
    """Cartesian-product sweep: ``fn(**params)`` per grid point.

    Parallelism and seeding follow :func:`sweep`; with ``seed`` given,
    ``fn`` receives an extra ``seed=<SeedSequence>`` keyword (so the
    grid itself must not contain a ``seed`` parameter).
    """
    if not grid:
        raise ConfigurationError("grid must have at least one parameter")
    names = list(grid)
    for name, values in grid.items():
        if not values:
            raise ConfigurationError(f"grid parameter {name!r} has no values")
    if seed is not None and "seed" in names:
        raise ConfigurationError(
            "grid parameter 'seed' collides with the sweep's seed keyword"
        )
    points = [
        dict(zip(names, combo))
        for combo in product(*(grid[n] for n in names))
    ]
    seeds = _spawn_seeds(seed, len(points))
    results = _map(_run_grid_point, fn, points, seeds, n_jobs)
    rows = []
    for params, result in zip(points, results):
        overlap = set(result) & set(params)
        if overlap:
            raise ConfigurationError(
                f"result keys collide with parameters: {sorted(overlap)}"
            )
        row = dict(params)
        row.update(result)
        rows.append(row)
    return SweepResult(rows=tuple(rows))
