"""Aligned text tables for benchmark output.

The benchmark suite reproduces the paper's claims as printed series;
this module is the single rendering path so every experiment's output
looks the same.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..errors import AnalysisError

__all__ = ["format_cell", "render_table", "render_series"]


def format_cell(value: object, float_digits: int = 4) -> str:
    """Render one value: floats rounded, None as '-', rest via str()."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        return f"{value:.{float_digits}g}"
    return str(value)


def render_table(rows: Sequence[Mapping], float_digits: int = 4) -> str:
    """Aligned table over the union of row keys (first-seen order)."""
    if not rows:
        raise AnalysisError("no rows to render")
    headers: list[str] = []
    for row in rows:
        for key in row:
            if key not in headers:
                headers.append(key)
    rendered = [
        [format_cell(row.get(h), float_digits) for h in headers] for row in rows
    ]
    widths = [
        max(len(h), *(len(r[i]) for r in rendered))
        for i, h in enumerate(headers)
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for r in rendered:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(r, widths)))
    return "\n".join(lines)


def render_series(name: str, xs: Sequence, ys: Sequence,
                  float_digits: int = 4) -> str:
    """Render a named (x, y) series as two aligned columns."""
    if len(xs) != len(ys):
        raise AnalysisError(
            f"series {name!r}: {len(xs)} x values but {len(ys)} y values"
        )
    if not xs:
        raise AnalysisError(f"series {name!r} is empty")
    rows = [{"x": x, name: y} for x, y in zip(xs, ys)]
    return render_table(rows, float_digits)
