"""Granularity-relative resilience (paper §5.2).

"The most granular level would be the individual ... Then there is the
species level.  Species can survive even if it loses some of its
members ... The most coarse level is the entire ecosystem ... if at
least one species survives, the system is considered to be resilient.
So the definition of resilience should be relative to the granularity of
the system.  In general, the more coarse the system is, it is easier to
make the system resilient."

Given an individuals-by-episode survival record grouped into species,
the granularity scores are survival rates at each level.  The paper's
coarser-is-easier claim is a theorem for the *size-weighted* chain —
from a random individual's viewpoint, "I survive" implies "my species
survives" implies "the ecosystem survives":

    individual ≤ species_weighted ≤ ecosystem

The *unweighted* species score (fraction of species with a survivor) is
also reported because it is the ecologist's usual statistic, but it can
dip below the individual score when a few large species carry all the
survivors — a measurable instance of the paper's point that the
granularity definition genuinely changes the verdict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..errors import AnalysisError

__all__ = ["GranularityScores", "granularity_scores"]


@dataclass(frozen=True)
class GranularityScores:
    """Survival rates at the three granularity levels for one episode."""

    individual: float  # fraction of individuals alive at the end
    species: float  # fraction of species with >= 1 survivor (unweighted)
    species_weighted: float  # P(random individual's species survives)
    ecosystem: float  # 1.0 iff any species survived

    def is_monotone(self) -> bool:
        """The §5.2 claim on the size-weighted chain (always true)."""
        eps = 1e-12
        return (
            self.individual <= self.species_weighted + eps
            and self.species_weighted <= self.ecosystem + eps
        )


def granularity_scores(
    survivors_by_species: Mapping[str, Sequence[bool]] | Mapping[str, np.ndarray],
) -> GranularityScores:
    """Score one episode from per-individual survival flags per species.

    ``survivors_by_species[name]`` is the end-of-episode alive flag for
    each individual of that species (species with zero starting
    individuals are rejected — they make the levels incomparable).
    """
    if not survivors_by_species:
        raise AnalysisError("need at least one species")
    total_individuals = 0
    alive_individuals = 0
    species_alive = 0
    weighted_alive = 0
    for name, flags in survivors_by_species.items():
        flags = np.asarray(list(flags), dtype=bool)
        if flags.size == 0:
            raise AnalysisError(f"species {name!r} has no individuals")
        total_individuals += flags.size
        alive_individuals += int(flags.sum())
        alive = bool(flags.any())
        species_alive += alive
        if alive:
            weighted_alive += flags.size
    n_species = len(survivors_by_species)
    return GranularityScores(
        individual=alive_individuals / total_individuals,
        species=species_alive / n_species,
        species_weighted=weighted_alive / total_individuals,
        ecosystem=1.0 if species_alive > 0 else 0.0,
    )
