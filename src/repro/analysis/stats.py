"""Statistical helpers shared by tests and benchmarks."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError
from ..rng import SeedLike, make_rng

__all__ = ["Summary", "summarize", "bootstrap_ci", "proportion_ci"]


@dataclass(frozen=True)
class Summary:
    """Five-number-plus summary of a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    median: float
    maximum: float


def summarize(samples) -> Summary:
    """Standard summary statistics with shape checking."""
    x = np.asarray(list(samples) if not isinstance(samples, np.ndarray)
                   else samples, dtype=float)
    if x.ndim != 1 or len(x) == 0:
        raise AnalysisError("samples must be a non-empty 1-D sequence")
    return Summary(
        n=len(x),
        mean=float(x.mean()),
        std=float(x.std(ddof=1)) if len(x) > 1 else 0.0,
        minimum=float(x.min()),
        median=float(np.median(x)),
        maximum=float(x.max()),
    )


def bootstrap_ci(
    samples,
    statistic=np.mean,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: SeedLike = None,
) -> tuple[float, float]:
    """Percentile bootstrap confidence interval for ``statistic``."""
    x = np.asarray(list(samples) if not isinstance(samples, np.ndarray)
                   else samples, dtype=float)
    if x.ndim != 1 or len(x) < 2:
        raise AnalysisError("need at least 2 samples for a bootstrap CI")
    if not 0 < confidence < 1:
        raise AnalysisError(f"confidence must be in (0, 1), got {confidence}")
    if n_resamples < 100:
        raise AnalysisError(f"n_resamples must be >= 100, got {n_resamples}")
    rng = make_rng(seed)
    stats = np.empty(n_resamples)
    n = len(x)
    for i in range(n_resamples):
        stats[i] = statistic(x[rng.integers(0, n, size=n)])
    alpha = (1.0 - confidence) / 2.0
    lo, hi = np.quantile(stats, [alpha, 1.0 - alpha])
    return float(lo), float(hi)


def proportion_ci(successes: int, trials: int,
                  confidence: float = 0.95) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion."""
    if trials < 1:
        raise AnalysisError(f"trials must be >= 1, got {trials}")
    if not 0 <= successes <= trials:
        raise AnalysisError(
            f"successes must be in [0, {trials}], got {successes}"
        )
    if not 0 < confidence < 1:
        raise AnalysisError(f"confidence must be in (0, 1), got {confidence}")
    from scipy.stats import norm

    z = float(norm.ppf(1.0 - (1.0 - confidence) / 2.0))
    p = successes / trials
    denom = 1.0 + z**2 / trials
    center = (p + z**2 / (2 * trials)) / denom
    half = z * np.sqrt(p * (1 - p) / trials + z**2 / (4 * trials**2)) / denom
    return max(0.0, center - half), min(1.0, center + half)
