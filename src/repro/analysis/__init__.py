"""Analysis utilities: parameter sweeps, statistics, table rendering, and
granularity-relative resilience scoring (paper §5.2 plus harness code).
"""

from .granularity import GranularityScores, granularity_scores
from .stats import Summary, bootstrap_ci, proportion_ci, summarize
from .sweep import SweepResult, grid_sweep, sweep
from .tables import format_cell, render_series, render_table

__all__ = [
    "GranularityScores",
    "granularity_scores",
    "Summary",
    "bootstrap_ci",
    "proportion_ci",
    "summarize",
    "SweepResult",
    "grid_sweep",
    "sweep",
    "format_cell",
    "render_series",
    "render_table",
]
