"""Self-healing, observable execution layer (runtime lane).

The run layer under :mod:`repro.analysis.sweep` and the benchmark
harness, organized as the paper's §3.3 MAPE loop:

* **monitor** — tracing/metrics facade (:mod:`.trace`);
* **analyze/plan/execute** — the :mod:`.supervisor`: per-engine-family
  circuit breakers over the three engine seams (via the shared
  :mod:`.engines` registry), deterministic degradation to the reference
  object engines, deadline propagation, and a memory-budget guard;
* fault-tolerant execution — per-point process isolation with bounded
  retry and wall-time budgets (:mod:`.executor`);
* crash-safe persistence — atomic fsync'd JSONL checkpoint/resume with
  corrupt-line quarantine (:mod:`.checkpoint`);
* validation — a deterministic chaos harness (:mod:`.chaos`) that turns
  the paper's own shock methodology on the runtime itself.
"""

from . import trace
from .checkpoint import SweepCheckpoint, fingerprint, jsonable, point_fingerprint
from .engines import SEAMS, EngineSeam, resolve_engine_kind
from .executor import PointOutcome, PointTask, run_points
from .supervisor import Breaker, NullSupervisor, Supervisor
from .trace import NullTracer, Tracer

__all__ = [
    "Breaker",
    "EngineSeam",
    "NullSupervisor",
    "NullTracer",
    "PointOutcome",
    "PointTask",
    "SEAMS",
    "Supervisor",
    "SweepCheckpoint",
    "Tracer",
    "fingerprint",
    "jsonable",
    "point_fingerprint",
    "resolve_engine_kind",
    "run_points",
    "trace",
]
