"""Fault-tolerant, observable execution layer (runtime lane).

The run layer under :mod:`repro.analysis.sweep` and the benchmark
harness: per-point process isolation with bounded retry and wall-time
budgets (:mod:`.executor`), JSONL checkpoint/resume (:mod:`.checkpoint`),
and a tracing/metrics facade (:mod:`.trace`) in the spirit of the
paper's MAPE monitor-analyze loop — a sweep should degrade gracefully
under worker faults and report exactly what it did.
"""

from . import trace
from .checkpoint import SweepCheckpoint, fingerprint, jsonable
from .executor import PointOutcome, PointTask, run_points
from .trace import NullTracer, Tracer

__all__ = [
    "NullTracer",
    "PointOutcome",
    "PointTask",
    "SweepCheckpoint",
    "Tracer",
    "fingerprint",
    "jsonable",
    "run_points",
    "trace",
]
