"""MAPE supervisor: self-healing execution on top of the trace monitor.

PR 2 shipped the *monitor* leg of the paper's §3.3 MAPE loop
(:mod:`repro.runtime.trace`); this module is the analyze/plan/execute
legs.  A :class:`Supervisor` holds one :class:`Breaker` (circuit
breaker) per engine family and watches the three engine seams through
:func:`repro.runtime.engines.resolve_engine_kind`:

* **analyze** — :meth:`Supervisor.is_engine_fault` classifies a failed
  sweep point: ``MemoryError``, a per-point wall-time timeout, a worker
  process that died without a result, or NaN-poisoned output are
  engine-attributable; ordinary worker exceptions are not (those are
  the retry budget's job).
* **plan** — an engine fault trips the breaker of every supervised
  family still resolving to a fast engine (attribution from outside a
  worker is conservative: correctness over speed).  A tripped family
  **degrades deterministically** to its reference fallback
  (``bit → object``, ``array → object``) for the remainder of the run —
  sound because PRs 1–4 pin the fast engines equivalent to the object
  engines, so rows computed before and after the trip agree with an
  all-object run.
* **execute** — the degradation is applied at two levels: in-process
  engine resolutions go through :meth:`resolve`, and the family's
  engine environment variable is pinned to the fallback so worker
  *subprocesses* forked after the trip inherit it.  The supervised
  sweep (:mod:`repro.analysis.sweep`) then re-runs the affected points
  once under the degraded engines.

Two pre-emptive guards ride along: a **deadline** (``deadline_s``)
bounds the whole supervised run — sweeps clamp their per-point timeout
to the remaining budget and refuse to launch once it is exhausted
(Kirigin et al.'s time-bounded recovery made operational) — and a
**memory budget** (``memory_budget_mb``) pre-empts the Θ(2^n) bit-CSP
compile before it allocates (:meth:`repro.csp.engine.BitCSPEngine.
try_compile` consults :meth:`csp_memory_budget`).  The tiled CSP engine
consumes the same budget differently: instead of refusing, it derives
its block size from the budget (:func:`repro.csp.tiledengine.
derive_block_bits`), so an over-budget problem is *scheduled* in more,
smaller blocks rather than degraded to the object kernels.

A module-level *current supervisor* (:func:`current` / :func:`use`)
mirrors the tracer facade: the default :data:`NULL` supervisor passes
every resolution through unchanged, so unsupervised runs pay nothing.

Trace counters: ``supervisor.trips`` (breaker transitions),
``supervisor.degradations`` (fast→fallback substitutions, counted once
per family at trip time and once per in-process degraded resolution),
``supervisor.reruns`` (points re-executed degraded),
``supervisor.poisoned`` (NaN-poisoned rows caught), and
``supervisor.preemptions`` (bit-CSP compiles pre-empted by the memory
budget).  Counters live in the supervising process; worker subprocesses
have their own (discarded) tracers.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from ..errors import SupervisorError
from . import trace
from .engines import SEAMS

__all__ = [
    "CLOSED",
    "NULL",
    "OPEN",
    "Breaker",
    "NullSupervisor",
    "Supervisor",
    "current",
    "use",
]

CLOSED = "closed"
OPEN = "open"


@dataclass
class Breaker:
    """Circuit breaker for one engine family.

    Starts :data:`CLOSED` (fast engines allowed).  Each recorded engine
    fault increments ``failures``; at ``threshold`` the breaker opens
    and stays open for the supervisor's lifetime — there is no half-open
    probing state, because re-enabling a fast engine mid-run could make
    the run's rows depend on fault timing.  Degradation must be
    deterministic: once open, always open.
    """

    family: str
    threshold: int = 1
    failures: int = 0
    state: str = CLOSED
    reason: Optional[str] = None

    def record(self, reason: str) -> bool:
        """Record one engine fault; True iff this record opened it."""
        if self.state == OPEN:
            return False
        self.failures += 1
        if self.failures >= self.threshold:
            self.state = OPEN
            self.reason = reason
            return True
        return False


class NullSupervisor:
    """No-op supervisor: resolutions pass through, nothing trips.

    Falsy (``bool(NULL) is False``) so call sites can guard supervised
    work with ``if supervisor.current(): ...``.
    """

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    def resolve(self, family: str, kind: str) -> str:
        return kind

    def peek(self, family: str, kind: str) -> str:
        return kind

    def memory_budget_bytes(self) -> Optional[int]:
        return None

    def csp_memory_budget(self) -> Optional[int]:
        return None

    def tripped_families(self) -> list:
        return []

    def deadline_exceeded(self) -> bool:
        return False

    def degraded(self) -> bool:
        return False


NULL = NullSupervisor()


class Supervisor:
    """Per-engine-family circuit breakers plus run-wide budgets.

    Parameters
    ----------
    families:
        The engine families this supervisor watches (default all three:
        ``agents``, ``networks``, ``csp``).  Faults only trip breakers
        of supervised families.
    failure_threshold:
        Engine faults needed to open a family's breaker (default 1:
        degrade on first blood — the degraded mode is equivalence-pinned
        correct, so there is no accuracy cost to tripping early).
    deadline_s:
        Optional wall-clock budget for the whole supervised run,
        measured from when the supervisor is installed with
        :func:`use`.  Supervised sweeps clamp per-point timeouts to the
        remaining budget and pre-empt points once it is exhausted.
    memory_budget_mb:
        Optional memory budget (MiB) consulted by the bit-CSP engine
        before its Θ(2^n · n_constraints) compile; an over-budget
        compile is pre-empted into the object fallback.  The tiled
        engine instead folds the budget into its block schedule
        (smaller blocks, never refusal), and the array network engine
        degrades over-budget graphs to the chunked memory-mapped
        kernels, which likewise derive their block size from the
        budget.
    """

    def __init__(
        self,
        families: Sequence[str] = ("agents", "networks", "csp"),
        *,
        failure_threshold: int = 1,
        deadline_s: Optional[float] = None,
        memory_budget_mb: Optional[float] = None,
    ):
        unknown = [f for f in families if f not in SEAMS]
        if unknown:
            raise SupervisorError(
                f"unknown engine families {unknown}; "
                f"valid families: {sorted(SEAMS)}"
            )
        if not families:
            raise SupervisorError("supervisor needs at least one family")
        if failure_threshold < 1:
            raise SupervisorError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if deadline_s is not None and deadline_s <= 0:
            raise SupervisorError(
                f"deadline_s must be > 0, got {deadline_s}"
            )
        if memory_budget_mb is not None and memory_budget_mb <= 0:
            raise SupervisorError(
                f"memory_budget_mb must be > 0, got {memory_budget_mb}"
            )
        self.families = tuple(dict.fromkeys(families))
        self.breakers = {
            f: Breaker(f, threshold=failure_threshold) for f in self.families
        }
        self.deadline_s = deadline_s
        self.memory_budget_mb = memory_budget_mb
        self._t0: Optional[float] = None  # set when installed via use()
        self._env_saved: dict[str, Optional[str]] = {}

    def __bool__(self) -> bool:
        return True

    # -- analyze -----------------------------------------------------------

    @staticmethod
    def is_engine_fault(
        error: Optional[str], exception: Optional[BaseException] = None
    ) -> bool:
        """Whether a point failure is engine-attributable (see module docs).

        Engine faults: out-of-memory, per-point timeout, and a worker
        process dying without a result (segfault/OOM-kill).  Ordinary
        exceptions raised by worker code are *not* engine faults — they
        are either bugs or transient, and the executor's retry budget
        already covers the latter.
        """
        if isinstance(exception, MemoryError):
            return True
        if not error:
            return False
        return (
            error.startswith("MemoryError")
            or "timed out after" in error
            or "worker process died" in error
        )

    # -- plan / execute ----------------------------------------------------

    def resolve(self, family: str, kind: str) -> str:
        """The engine kind to actually use (execute leg of the seam).

        While ``family``'s breaker is open, fast kinds resolve to the
        family's reference fallback and ``supervisor.degradations`` is
        counted; everything else passes through unchanged.
        """
        degraded = self.peek(family, kind)
        if degraded != kind:
            trace.current().count("supervisor.degradations")
        return degraded

    def peek(self, family: str, kind: str) -> str:
        """:meth:`resolve` without counters — for introspection only."""
        breaker = self.breakers.get(family)
        if breaker is not None and breaker.state == OPEN:
            s = SEAMS[family]
            if kind in s.fast:
                return s.fallback
        return kind

    def trip(self, family: str, reason: str) -> bool:
        """Open one family's breaker; True iff it transitioned just now.

        On transition the family's engine environment variable is
        pinned to the fallback kind, so worker subprocesses forked
        afterwards inherit the degradation (in-process resolutions are
        covered by :meth:`resolve`).  The pin is restored when the
        supervisor is uninstalled.
        """
        if family not in self.breakers:
            raise SupervisorError(
                f"family {family!r} is not supervised "
                f"(supervising {list(self.families)})"
            )
        opened = self.breakers[family].record(reason)
        if opened:
            tr = trace.current()
            tr.count("supervisor.trips")
            tr.count("supervisor.degradations")
            tr.event("supervisor.trip", family=family, reason=reason)
            self._pin_env(family)
        return opened

    def record_fault(
        self, reason: str, exception: Optional[BaseException] = None
    ) -> list[str]:
        """Analyze+plan for one engine fault: trip every exposed family.

        A fault observed from outside a worker cannot be attributed to
        one engine, so every supervised family whose seam currently
        resolves to a *fast* kind is tripped (families already running
        their reference fallback cannot have caused it).  Returns the
        families whose breakers transitioned.
        """
        del exception  # classification already happened; kept for symmetry
        tripped = []
        for family in self.families:
            if self.breakers[family].state == OPEN:
                continue
            s = SEAMS[family]
            kind = os.environ.get(s.env_var) or s.default
            if kind in s.fast and self.trip(family, reason):
                tripped.append(family)
        return tripped

    def _pin_env(self, family: str) -> None:
        s = SEAMS[family]
        if s.env_var not in self._env_saved:
            self._env_saved[s.env_var] = os.environ.get(s.env_var)
        os.environ[s.env_var] = s.fallback

    def _restore_env(self) -> None:
        for var, value in self._env_saved.items():
            if value is None:
                os.environ.pop(var, None)
            else:
                os.environ[var] = value
        self._env_saved.clear()

    # -- budgets -----------------------------------------------------------

    def remaining_s(self) -> Optional[float]:
        """Seconds left of the deadline (None without one).

        Before the supervisor is installed the full budget remains.
        """
        if self.deadline_s is None:
            return None
        if self._t0 is None:
            return self.deadline_s
        return self.deadline_s - (time.monotonic() - self._t0)

    def memory_budget_bytes(self) -> Optional[int]:
        """The memory budget in bytes (None when unbounded).

        One budget, consumed per family: the bit-CSP engine pre-empts
        over-budget compiles, the tiled CSP engine folds it into its
        block schedule, and the array network engine degrades
        over-budget graphs to the chunked mmap kernels
        (:func:`repro.networks.mmapgraph.estimate_graph_bytes`).
        """
        if self.memory_budget_mb is None:
            return None
        return int(self.memory_budget_mb * 1024 * 1024)

    def csp_memory_budget(self) -> Optional[int]:
        """Alias of :meth:`memory_budget_bytes` (pre-mmap name)."""
        return self.memory_budget_bytes()

    # -- health ------------------------------------------------------------

    def tripped_families(self) -> list[str]:
        """Families whose breakers are open, in supervision order."""
        return [f for f in self.families if self.breakers[f].state == OPEN]

    def deadline_exceeded(self) -> bool:
        """Whether the run-wide ``deadline_s`` budget is spent."""
        remaining = self.remaining_s()
        return remaining is not None and remaining <= 0

    def degraded(self) -> bool:
        """Whether the runtime is running in a degraded mode.

        True once any supervised breaker is open or the deadline budget
        is exhausted — the signal the service layer uses to start
        shedding *new* work while in-flight work finishes on the
        reference engines (graceful degradation, not an outage).
        """
        return bool(self.tripped_families()) or self.deadline_exceeded()

    # -- reporting ---------------------------------------------------------

    def summary(self) -> dict:
        """Breaker states as one JSON-ready mapping."""
        return {
            family: {
                "state": b.state,
                "failures": b.failures,
                "reason": b.reason,
            }
            for family, b in self.breakers.items()
        }


_current: "NullSupervisor | Supervisor" = NULL


def current() -> "NullSupervisor | Supervisor":
    """The active supervisor (the no-op :data:`NULL` unless :func:`use`-d)."""
    return _current


@contextmanager
def use(sup: Supervisor) -> Iterator[Supervisor]:
    """Install ``sup`` for a ``with`` block (starts its deadline clock).

    On exit the previous supervisor is reinstated and any engine
    environment variables pinned by breaker trips are restored; breaker
    state itself is kept, so a supervisor re-installed for a follow-up
    sweep stays degraded — deterministic for the run, as promised.
    """
    global _current
    if not isinstance(sup, Supervisor):
        raise SupervisorError(
            f"use() needs a Supervisor, got {type(sup).__name__}"
        )
    previous = _current
    _current = sup
    if sup._t0 is None:
        sup._t0 = time.monotonic()
    for family, breaker in sup.breakers.items():
        if breaker.state == OPEN:  # re-entry: re-pin surviving trips
            sup._pin_env(family)
    try:
        yield sup
    finally:
        _current = previous
        sup._restore_env()
