"""JSONL sweep checkpoints: interrupt a run, resume without recompute.

A checkpoint file is append-only JSONL.  The first line is a header
binding the file to one specific sweep (point count + a fingerprint of
the parameter grid and parent seed); each later line records one
*successfully completed* point::

    {"kind": "sweep-checkpoint", "version": 1, "n_points": 16, "fingerprint": "…"}
    {"index": 0, "row": {"param": 0, "survival": 0.81}}
    {"index": 3, "row": {"param": 3, "survival": 0.64}}

Failed points are never recorded, so resuming a sweep re-runs exactly
the failed/missing points and replays the completed rows verbatim.  A
half-written trailing line (the process died mid-append) is ignored on
load.  Opening a checkpoint whose fingerprint does not match the sweep
being run raises :class:`~repro.errors.CheckpointError` — a stale file
must not silently stitch rows from a different grid into the results.

Rows must be JSON-serializable; numpy scalars and arrays are converted
on write (so a resumed row compares equal to a fresh one).
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Mapping

import numpy as np

from ..errors import CheckpointError

__all__ = ["SweepCheckpoint", "fingerprint", "jsonable"]

_KIND = "sweep-checkpoint"
_VERSION = 1


def jsonable(value: Any) -> Any:
    """``value`` converted to plain JSON types (numpy unwrapped).

    Raises :class:`CheckpointError` for values that cannot round-trip —
    checkpointed rows must compare equal after a resume, so anything
    that would need ``repr`` lossy encoding is rejected up front.
    """
    if isinstance(value, np.generic):  # before float: np.float64 is one
        return value.item()
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, Mapping):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    raise CheckpointError(
        f"checkpointed rows must be JSON-serializable; got "
        f"{type(value).__name__}: {value!r}"
    )


def fingerprint(points: list, seed_label: str, extra: str = "") -> str:
    """Stable digest of a sweep's identity: points + parent seed."""
    payload = json.dumps(
        {
            "points": [repr(p) for p in points],
            "seed": seed_label,
            "extra": extra,
        },
        sort_keys=True,
    )
    return hashlib.sha1(payload.encode()).hexdigest()


class SweepCheckpoint:
    """Append-only record of completed sweep points.

    Use :meth:`open` — it creates the file (with header) when missing,
    or validates and loads completed rows when present.
    """

    def __init__(self, path: str, done: dict[int, dict]):
        self.path = path
        self.done = done  # index -> row, loaded at open time
        self._fh = open(path, "a")

    @classmethod
    def open(
        cls, path: str, *, n_points: int, fp: str
    ) -> "SweepCheckpoint":
        """Create or resume the checkpoint at ``path``."""
        header = {
            "kind": _KIND,
            "version": _VERSION,
            "n_points": n_points,
            "fingerprint": fp,
        }
        if not os.path.exists(path) or os.path.getsize(path) == 0:
            with open(path, "w") as fh:
                fh.write(json.dumps(header) + "\n")
            return cls(path, {})
        done: dict[int, dict] = {}
        with open(path) as fh:
            lines = fh.read().splitlines()
        try:
            found = json.loads(lines[0])
        except (json.JSONDecodeError, IndexError) as exc:
            raise CheckpointError(
                f"checkpoint {path!r} has no readable header"
            ) from exc
        if found.get("kind") != _KIND or found.get("version") != _VERSION:
            raise CheckpointError(
                f"{path!r} is not a v{_VERSION} sweep checkpoint"
            )
        if found.get("fingerprint") != fp or found.get("n_points") != n_points:
            raise CheckpointError(
                f"checkpoint {path!r} was written by a different sweep "
                "(parameter grid or parent seed changed); delete it or "
                "point the sweep at a fresh path"
            )
        for i, line in enumerate(lines[1:], start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if i == len(lines) - 1:
                    continue  # torn tail write from an interrupted run
                raise CheckpointError(
                    f"checkpoint {path!r} line {i + 1} is corrupt"
                ) from None
            done[int(record["index"])] = record["row"]
        return cls(path, done)

    def record(self, index: int, row: Mapping) -> dict:
        """Append one completed point; returns the JSON-clean row."""
        clean = {str(k): jsonable(v) for k, v in row.items()}
        self._fh.write(json.dumps({"index": index, "row": clean}) + "\n")
        self._fh.flush()
        return clean

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SweepCheckpoint":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
