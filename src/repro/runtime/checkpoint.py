"""JSONL sweep checkpoints: interrupt a run, resume without recompute.

A checkpoint file is append-only JSONL.  The first line is a header
binding the file to one specific sweep (point count + a fingerprint of
the parameter grid and parent seed); each later line records one
*successfully completed* point::

    {"kind": "sweep-checkpoint", "version": 1, "n_points": 16, "fingerprint": "…"}
    {"index": 0, "row": {"param": 0, "survival": 0.81}}
    {"index": 3, "row": {"param": 3, "survival": 0.64}}

Failed points are never recorded, so resuming a sweep re-runs exactly
the failed/missing points and replays the completed rows verbatim.

Crash safety
------------
The header is created atomically (temp file, fsync, ``os.replace``) and
every appended row is flushed *and fsync'd*, so a power loss can cost at
most the row being written.  On load, damage degrades instead of
aborting the resume:

* a half-written **trailing** line (the process died mid-append) is
  dropped with a warning entry;
* a corrupted **mid-file** line — bit rot, a concurrent writer, an
  injected chaos fault — is *quarantined*: the raw line moves to a
  ``<path>.corrupt`` sidecar, a warning entry records it, the main file
  is atomically rewritten without it, and the affected point simply
  re-runs (engine determinism makes the recomputed row identical);
* a **duplicate index** keeps the newest row (append order) with a
  warning entry.

What still raises :class:`~repro.errors.CheckpointError`: a missing or
unreadable header, a wrong kind/version, and a fingerprint or point-
count mismatch — a stale file must not silently stitch rows from a
different grid into the results.  Warnings are exposed structurally on
:attr:`SweepCheckpoint.warnings` (the supervised sweep re-emits them as
trace events) and through :mod:`warnings`.

Rows must be JSON-serializable; numpy scalars and arrays are converted
on write (so a resumed row compares equal to a fresh one).  Non-finite
floats are rejected — ``json.dumps`` would emit the non-RFC literals
``NaN``/``Infinity``, which strict readers refuse, silently breaking the
resume round-trip.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import warnings as warnings_module
from typing import Any, Mapping

import numpy as np

from ..errors import CheckpointError

__all__ = [
    "JournalFile",
    "SweepCheckpoint",
    "fingerprint",
    "jsonable",
    "point_fingerprint",
]

_KIND = "sweep-checkpoint"
_VERSION = 1


def jsonable(value: Any) -> Any:
    """``value`` converted to plain JSON types (numpy unwrapped).

    Raises :class:`CheckpointError` for values that cannot round-trip —
    checkpointed rows must compare equal after a resume, so anything
    that would need ``repr`` lossy encoding is rejected up front.  That
    includes non-finite floats: ``json.dumps`` would emit ``NaN`` /
    ``Infinity``, which are not RFC 8259 JSON and poison the file for
    strict parsers.
    """
    if isinstance(value, np.generic):  # before float: np.float64 is one
        return jsonable(value.item())
    if isinstance(value, float) and not math.isfinite(value):
        raise CheckpointError(
            f"checkpointed rows must be finite; got {value!r} "
            "(json would emit a non-RFC NaN/Infinity literal, breaking "
            "the resume round-trip)"
        )
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, np.ndarray):
        return [jsonable(v) for v in value.tolist()]
    if isinstance(value, Mapping):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    raise CheckpointError(
        f"checkpointed rows must be JSON-serializable; got "
        f"{type(value).__name__}: {value!r}"
    )


def fingerprint(points: list, seed_label: str, extra: str = "") -> str:
    """Stable digest of a sweep's identity: points + parent seed."""
    payload = json.dumps(
        {
            "points": [repr(p) for p in points],
            "seed": seed_label,
            "extra": extra,
        },
        sort_keys=True,
    )
    return hashlib.sha1(payload.encode()).hexdigest()


def point_fingerprint(experiment: str, params: Any, seed_label: str) -> str:
    """Content address of one executed point.

    The key the service layer's result cache is built on: two requests
    naming the same experiment, the same parameter assignment, and the
    same per-point seed identity denote the same computation (engines
    are deterministic and equivalence-pinned), so their results are
    interchangeable.  Same digest family and ``repr``-encoding as the
    sweep-level :func:`fingerprint`, applied to a single point.
    """
    payload = json.dumps(
        {
            "experiment": experiment,
            "params": repr(params),
            "seed": seed_label,
        },
        sort_keys=True,
    )
    return hashlib.sha1(payload.encode()).hexdigest()


def _write_atomic(path: str, text: str) -> None:
    """Write ``text`` to ``path`` via temp file + fsync + atomic replace."""
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


class JournalFile:
    """Generic append-only fsync'd JSONL file with crash-tolerant load.

    The shared durability spine under :class:`SweepCheckpoint` and the
    service layer's write-ahead journal / result store
    (:mod:`repro.service.persistence`).  One header line binds the file
    to a kind + version (plus any ``match`` fields the owner pins);
    every later line is one JSON record appended with write+flush+fsync.

    Loading degrades instead of aborting wherever the damage is
    recoverable: a torn trailing line is dropped, unparseable or
    ``validate``-rejected interior lines are quarantined to a
    ``.corrupt`` sidecar and the main file atomically healed, and every
    degradation is recorded structurally on :attr:`warnings`.  What
    still raises :class:`~repro.errors.CheckpointError`: a missing or
    unreadable header, a wrong kind/version, and a mismatch on any
    ``match`` header field — a stale file must never silently feed
    records into a different owner.
    """

    def __init__(
        self,
        path: str,
        entries: "list[tuple[int, dict]]",
        warnings: "list[dict] | None" = None,
        quarantined: int = 0,
    ):
        self.path = path
        self.entries = entries  # (1-based line number, record), file order
        self.warnings: list[dict] = warnings or []
        self.quarantined = quarantined
        self._fh = open(path, "a")

    @property
    def corrupt_path(self) -> str:
        """The sidecar file quarantined lines are appended to."""
        return self.path + ".corrupt"

    @property
    def records(self) -> list[dict]:
        """The loaded records without their line numbers, in file order."""
        return [record for _, record in self.entries]

    @classmethod
    def open(
        cls,
        path: str,
        *,
        header: Mapping[str, Any],
        match: "tuple[str, ...]" = (),
        label: str = "journal",
        mismatch_hint: str = "run",
        heal_hint: "str | None" = None,
        validate: "Any | None" = None,
    ) -> "JournalFile":
        """Create the file (atomic header write) or load it tolerantly.

        ``header`` must carry ``kind`` and ``version``; ``match`` names
        the extra header fields that must equal the expected header for
        the load to proceed.  ``validate(record)`` may raise ``KeyError``
        / ``TypeError`` / ``ValueError`` to quarantine a parseable but
        malformed record.  ``label`` / ``mismatch_hint`` / ``heal_hint``
        only shape the error and warning messages.
        """
        kind, version = header["kind"], header["version"]
        if not os.path.exists(path) or os.path.getsize(path) == 0:
            _write_atomic(path, json.dumps(dict(header)) + "\n")
            return cls(path, [])
        with open(path) as fh:
            lines = fh.read().splitlines()
        try:
            found = json.loads(lines[0])
        except (json.JSONDecodeError, IndexError) as exc:
            raise CheckpointError(
                f"{label} {path!r} has no readable header"
            ) from exc
        if not isinstance(found, dict) or found.get("kind") != kind \
                or found.get("version") != version:
            raise CheckpointError(f"{path!r} is not a v{version} {label}")
        if any(found.get(key) != header[key] for key in match):
            raise CheckpointError(
                f"{label} {path!r} was written by a different "
                f"{mismatch_hint}; delete it or use a fresh path"
            )
        entries: list[tuple[int, dict]] = []
        warnings: list[dict] = []
        kept: list[str] = [lines[0]]
        quarantine: list[str] = []
        for i, line in enumerate(lines[1:], start=1):
            if not line.strip():
                continue
            last = i == len(lines) - 1
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if last:
                    # torn tail write from an interrupted run: the
                    # record was never durably appended, so just drop it
                    warnings.append(
                        {"line": i + 1, "reason": "torn tail line dropped"}
                    )
                    continue
                quarantine.append(line)
                warnings.append(
                    {"line": i + 1, "reason": "corrupt line quarantined"}
                )
                continue
            try:
                if not isinstance(record, dict):
                    raise TypeError("record is not a mapping")
                if validate is not None:
                    validate(record)
            except (KeyError, TypeError, ValueError):
                quarantine.append(line)
                warnings.append(
                    {"line": i + 1, "reason": "malformed record quarantined"}
                )
                continue
            entries.append((i + 1, record))
            kept.append(line)
        if quarantine:
            sidecar = path + ".corrupt"
            with open(sidecar, "a") as fh:
                for line in quarantine:
                    fh.write(line + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            # heal the main file: same lines minus the quarantined ones,
            # replaced atomically so a crash mid-heal loses nothing
            _write_atomic(path, "\n".join(kept) + "\n")
            warnings_module.warn(
                f"{label} {path!r}: quarantined {len(quarantine)} "
                f"corrupt line(s) to {sidecar!r}"
                + (f"; {heal_hint}" if heal_hint else ""),
                RuntimeWarning,
                stacklevel=2,
            )
        return cls(path, entries, warnings, quarantined=len(quarantine))

    def append(self, record: Mapping) -> None:
        """Append one record durably (single write, flush, fsync).

        A crash can never leave more than one torn line — which the
        next :meth:`open` drops (tail) or quarantines (interior).
        """
        self._fh.write(json.dumps(dict(record)) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JournalFile":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class SweepCheckpoint:
    """Append-only record of completed sweep points.

    Use :meth:`open` — it creates the file (with header) when missing,
    or validates and loads completed rows when present.  ``warnings``
    lists the degradations tolerated while loading (torn tail dropped,
    corrupt lines quarantined, duplicate indices superseded);
    ``quarantined`` counts the lines moved to the ``.corrupt`` sidecar.
    The durability mechanics live in :class:`JournalFile`; this class
    owns the sweep-specific header binding and the ``index -> row``
    completed-point view.
    """

    def __init__(self, journal: JournalFile, done: dict[int, dict]):
        self._journal = journal
        self.done = done  # index -> row, loaded at open time

    @property
    def path(self) -> str:
        return self._journal.path

    @property
    def warnings(self) -> list[dict]:
        return self._journal.warnings

    @property
    def quarantined(self) -> int:
        return self._journal.quarantined

    @property
    def corrupt_path(self) -> str:
        """The sidecar file quarantined lines are appended to."""
        return self._journal.corrupt_path

    @classmethod
    def open(
        cls, path: str, *, n_points: int, fp: str
    ) -> "SweepCheckpoint":
        """Create or resume the checkpoint at ``path``."""

        def validate(record: dict) -> None:
            index = int(record["index"])
            if not isinstance(record["row"], dict):
                raise TypeError("row is not a mapping")
            if not 0 <= index < n_points:
                raise ValueError(f"index {index} out of range")

        journal = JournalFile.open(
            path,
            header={
                "kind": _KIND,
                "version": _VERSION,
                "n_points": n_points,
                "fingerprint": fp,
            },
            match=("fingerprint", "n_points"),
            label="sweep checkpoint",
            mismatch_hint="sweep (parameter grid or parent seed changed)",
            heal_hint="the affected points will re-run",
            validate=validate,
        )
        done: dict[int, dict] = {}
        for lineno, record in journal.entries:
            index = int(record["index"])
            if index in done:
                journal.warnings.append(
                    {
                        "line": lineno,
                        "reason": f"duplicate index {index}; "
                        "keeping the newer row",
                    }
                )
            done[index] = record["row"]
        return cls(journal, done)

    def record(self, index: int, row: Mapping) -> dict:
        """Append one completed point durably; returns the JSON-clean row.

        The line is written in a single ``write`` call, flushed, and
        fsync'd, so a crash can never leave more than one torn line —
        which the next :meth:`open` drops or quarantines.
        """
        clean = {str(k): jsonable(v) for k, v in row.items()}
        self._journal.append({"index": index, "row": clean})
        return clean

    def close(self) -> None:
        self._journal.close()

    def __enter__(self) -> "SweepCheckpoint":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
