"""Fault-tolerant point executor: isolation, retries, wall-time budgets.

This is the execution layer under :mod:`repro.analysis.sweep`.  Each
*point* (one parameter-grid evaluation) runs in isolation: an exception,
a hung worker, or a hard process death yields a :class:`PointOutcome`
carrying the exception, its formatted traceback, and how many attempts
were made — instead of aborting the whole sweep.  Failed points retry up
to ``retries`` times with exponential backoff (``backoff * 2**k``), and
each attempt is bounded by ``timeout`` seconds of wall time.

Two execution paths share the same outcome contract:

* **in-process** — ``n_jobs == 1`` and no timeout: points run serially
  in the caller's process (closures allowed, zero fork overhead);
* **subprocess** — parallel or time-budgeted points each run in their
  own ``multiprocessing.Process``; a timeout terminates just that
  process, so one hung point cannot wedge the run (pool executors
  cannot reclaim a hung worker, which is why this layer forks one
  process per point instead).
"""

from __future__ import annotations

import multiprocessing as mp
import time
import traceback as tb_module
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..errors import ConfigurationError, ExecutionError
from . import trace

__all__ = ["PointOutcome", "PointTask", "run_points"]

_POLL_S = 0.005  # scheduler tick while subprocess points are in flight


@dataclass(frozen=True)
class PointTask:
    """One unit of work: ``worker(fn, value, seed)`` at a sweep index."""

    index: int
    value: Any
    seed: Any = None


@dataclass
class PointOutcome:
    """What happened to one point after all attempts."""

    index: int
    ok: bool
    value: Any = None
    error: str | None = None  # "ValueError: boom" / "timed out after 2.0s"
    exception: BaseException | None = None  # original, when transferable
    traceback: str | None = None
    attempts: int = 1
    elapsed_s: float = 0.0

    def reraise(self) -> None:
        """Re-raise the original exception (or an :class:`ExecutionError`
        wrapping the remote traceback when the original was lost)."""
        if self.ok:
            return
        if self.exception is not None:
            raise self.exception
        detail = f"\n--- worker traceback ---\n{self.traceback}" \
            if self.traceback else ""
        raise ExecutionError(
            f"point {self.index} failed after {self.attempts} attempt(s): "
            f"{self.error}{detail}"
        )


@dataclass
class _Attempt:
    task: PointTask
    attempt: int = 1
    eligible_at: float = 0.0  # monotonic time before which it must wait


def run_points(
    worker: Callable,
    fn: Callable,
    tasks: Sequence[PointTask],
    *,
    n_jobs: int = 1,
    retries: int = 0,
    backoff: float = 0.1,
    timeout: float | None = None,
    tracer: trace.Tracer | trace.NullTracer | None = None,
) -> list[PointOutcome]:
    """Run every task through ``worker(fn, value, seed)``; never raises
    for worker failures — inspect the returned outcomes.

    Outcomes come back in task order.  ``retries`` is the number of
    *re*-attempts after the first failure; ``timeout`` bounds each
    attempt's wall time (requires subprocess isolation, which is chosen
    automatically).  ``n_jobs == -1`` uses every core.
    """
    if retries < 0:
        raise ConfigurationError(f"retries must be >= 0, got {retries}")
    if backoff < 0:
        raise ConfigurationError(f"backoff must be >= 0, got {backoff}")
    if timeout is not None and timeout <= 0:
        raise ConfigurationError(f"timeout must be > 0, got {timeout}")
    workers = _workers(n_jobs)
    tr = tracer if tracer is not None else trace.current()
    if not tasks:
        return []
    if workers == 1 and timeout is None:
        return [
            _run_inline(worker, fn, task, retries, backoff, tr)
            for task in tasks
        ]
    return _run_isolated(
        worker, fn, tasks, workers, retries, backoff, timeout, tr
    )


def _workers(n_jobs: int) -> int:
    import os

    if n_jobs == -1:
        return os.cpu_count() or 1
    if n_jobs < 1:
        raise ConfigurationError(
            f"n_jobs must be >= 1 or -1 (all cores), got {n_jobs}"
        )
    return n_jobs


def _describe(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


def _run_inline(worker, fn, task, retries, backoff, tr) -> PointOutcome:
    """Serial in-process attempts (no fork, closures allowed)."""
    start = time.perf_counter()
    for attempt in range(1, retries + 2):
        try:
            value = worker(fn, task.value, task.seed)
        except Exception as exc:
            failure = PointOutcome(
                index=task.index,
                ok=False,
                error=_describe(exc),
                exception=exc,
                traceback=tb_module.format_exc(),
                attempts=attempt,
                elapsed_s=time.perf_counter() - start,
            )
            if attempt <= retries:
                tr.count("executor.retries")
                time.sleep(backoff * 2 ** (attempt - 1))
                continue
            return failure
        return PointOutcome(
            index=task.index,
            ok=True,
            value=value,
            attempts=attempt,
            elapsed_s=time.perf_counter() - start,
        )
    raise AssertionError("unreachable")  # pragma: no cover


def _child_main(conn, worker, fn, value, seed) -> None:
    """Subprocess entry: ship (status, payload) back through the pipe."""
    try:
        result = worker(fn, value, seed)
    except BaseException as exc:
        formatted = tb_module.format_exc()
        try:
            conn.send(("err", _describe(exc), exc, formatted))
        except Exception:  # exception object not picklable
            conn.send(("err", _describe(exc), None, formatted))
    else:
        try:
            conn.send(("ok", result))
        except Exception as exc:
            conn.send(
                (
                    "err",
                    f"result not picklable: {_describe(exc)}",
                    None,
                    tb_module.format_exc(),
                )
            )
    finally:
        conn.close()


@dataclass
class _Running:
    attempt: _Attempt
    process: mp.process.BaseProcess
    conn: Any
    started: float
    deadline: float | None


def _run_isolated(
    worker, fn, tasks, workers, retries, backoff, timeout, tr
) -> list[PointOutcome]:
    """One process per attempt, at most ``workers`` in flight."""
    ctx = mp.get_context()
    queue: list[_Attempt] = [_Attempt(task) for task in tasks]
    running: list[_Running] = []
    outcomes: dict[int, PointOutcome] = {}

    def launch(att: _Attempt) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_child_main,
            args=(child_conn, worker, fn, att.task.value, att.task.seed),
            daemon=True,
        )
        proc.start()
        child_conn.close()  # parent keeps only the read end
        now = time.monotonic()
        running.append(
            _Running(
                attempt=att,
                process=proc,
                conn=parent_conn,
                started=now,
                deadline=None if timeout is None else now + timeout,
            )
        )

    def settle(run: _Running, outcome: PointOutcome) -> None:
        """Final or retried resolution of one attempt."""
        att = run.attempt
        if not outcome.ok and att.attempt <= retries:
            tr.count("executor.retries")
            queue.append(
                _Attempt(
                    task=att.task,
                    attempt=att.attempt + 1,
                    eligible_at=time.monotonic()
                    + backoff * 2 ** (att.attempt - 1),
                )
            )
            return
        outcomes[att.task.index] = outcome

    while queue or running:
        now = time.monotonic()
        # fill free slots with eligible attempts (in queue order)
        ready = [a for a in queue if a.eligible_at <= now]
        while ready and len(running) < workers:
            att = ready.pop(0)
            queue.remove(att)
            launch(att)
        # harvest finished / expired attempts
        for run in list(running):
            att = run.attempt
            elapsed = time.monotonic() - run.started
            if run.conn.poll():
                try:
                    payload = run.conn.recv()
                except EOFError:
                    # write end closed with nothing sent: the child died
                    # before it could report (segfault, os._exit, kill)
                    run.process.join()
                    payload = (
                        "err",
                        "worker process died without a result "
                        f"(exitcode {run.process.exitcode})",
                        None,
                        None,
                    )
                run.conn.close()
                run.process.join()
                running.remove(run)
                if payload[0] == "ok":
                    settle(
                        run,
                        PointOutcome(
                            index=att.task.index,
                            ok=True,
                            value=payload[1],
                            attempts=att.attempt,
                            elapsed_s=elapsed,
                        ),
                    )
                else:
                    _, error, exc, formatted = payload
                    settle(
                        run,
                        PointOutcome(
                            index=att.task.index,
                            ok=False,
                            error=error,
                            exception=exc,
                            traceback=formatted,
                            attempts=att.attempt,
                            elapsed_s=elapsed,
                        ),
                    )
            elif run.deadline is not None and now > run.deadline:
                run.process.terminate()
                run.process.join()
                run.conn.close()
                running.remove(run)
                tr.count("executor.timeouts")
                settle(
                    run,
                    PointOutcome(
                        index=att.task.index,
                        ok=False,
                        error=f"timed out after {timeout}s",
                        traceback=None,
                        attempts=att.attempt,
                        elapsed_s=elapsed,
                    ),
                )
            elif not run.process.is_alive():
                # died without sending anything: hard crash
                run.process.join()
                exitcode = run.process.exitcode
                run.conn.close()
                running.remove(run)
                settle(
                    run,
                    PointOutcome(
                        index=att.task.index,
                        ok=False,
                        error=(
                            "worker process died without a result "
                            f"(exitcode {exitcode})"
                        ),
                        traceback=None,
                        attempts=att.attempt,
                        elapsed_s=elapsed,
                    ),
                )
        if queue or running:
            time.sleep(_POLL_S)

    return [outcomes[task.index] for task in tasks]
