"""Fault-tolerant point executor: isolation, retries, wall-time budgets.

This is the execution layer under :mod:`repro.analysis.sweep` and the
:mod:`repro.service` scheduler.  Each *point* (one parameter-grid
evaluation) runs in isolation: an exception, a hung worker, or a hard
process death yields a :class:`PointOutcome` carrying the exception, its
formatted traceback, and how many attempts were made — instead of
aborting the whole sweep.  Failed points retry up to ``retries`` times
with exponential backoff (``backoff * 2**k``), and each attempt is
bounded by ``timeout`` seconds of wall time.

Two execution paths share the same outcome contract:

* **in-process** — ``n_jobs == 1`` and no timeout: points run serially
  in the caller's process (closures allowed, zero fork overhead);
* **subprocess** — parallel or time-budgeted points each run in their
  own ``multiprocessing.Process``; a timeout terminates just that
  process, so one hung point cannot wedge the run (pool executors
  cannot reclaim a hung worker, which is why this layer forks one
  process per point instead).

The subprocess loop is *event-driven*: instead of polling every few
milliseconds it blocks in :func:`multiprocessing.connection.wait` on
every live result pipe and process sentinel, waking only when a result
arrives, a child dies, a per-attempt deadline expires, or a backed-off
retry becomes eligible.  Idle waiting therefore costs ~0 CPU, and a
finished point is harvested as soon as the kernel signals it rather
than at the next poll tick.  Reaping a timed-out child is bounded too:
``terminate()`` (SIGTERM) is given ``term_grace`` seconds to work, then
escalates to ``kill()`` (SIGKILL) — a child that blocks or ignores
SIGTERM can no longer wedge the run.
"""

from __future__ import annotations

import multiprocessing as mp
import time
import traceback as tb_module
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Any, Callable, Sequence

from ..errors import ConfigurationError, ExecutionError
from . import trace

__all__ = ["PointOutcome", "PointTask", "run_points"]

_IDLE_TICK_S = 0.5  # defensive cap on one wait(); sentinel wakeups make
#                     a full tick rare (it only bounds damage if a pipe
#                     or sentinel is ever missed, never the hot path)
_TERM_GRACE_S = 5.0  # default SIGTERM -> SIGKILL escalation grace


@dataclass(frozen=True)
class PointTask:
    """One unit of work: ``worker(fn, value, seed)`` at a sweep index."""

    index: int
    value: Any
    seed: Any = None


@dataclass
class PointOutcome:
    """What happened to one point after all attempts."""

    index: int
    ok: bool
    value: Any = None
    error: str | None = None  # "ValueError: boom" / "timed out after 2.0s"
    exception: BaseException | None = None  # original, when transferable
    traceback: str | None = None
    attempts: int = 1
    elapsed_s: float = 0.0  # wall time of the *final* attempt only

    def reraise(self) -> None:
        """Re-raise the original exception (or an :class:`ExecutionError`
        wrapping the remote traceback when the original was lost)."""
        if self.ok:
            return
        if self.exception is not None:
            raise self.exception
        detail = f"\n--- worker traceback ---\n{self.traceback}" \
            if self.traceback else ""
        raise ExecutionError(
            f"point {self.index} failed after {self.attempts} attempt(s): "
            f"{self.error}{detail}"
        )


@dataclass
class _Attempt:
    task: PointTask
    attempt: int = 1
    eligible_at: float = 0.0  # monotonic time before which it must wait


def run_points(
    worker: Callable,
    fn: Callable,
    tasks: Sequence[PointTask],
    *,
    n_jobs: int = 1,
    retries: int = 0,
    backoff: float = 0.1,
    timeout: float | None = None,
    term_grace: float = _TERM_GRACE_S,
    tracer: trace.Tracer | trace.NullTracer | None = None,
) -> list[PointOutcome]:
    """Run every task through ``worker(fn, value, seed)``; never raises
    for worker failures — inspect the returned outcomes.

    Outcomes come back in task order.  ``retries`` is the number of
    *re*-attempts after the first failure; ``timeout`` bounds each
    attempt's wall time (requires subprocess isolation, which is chosen
    automatically); ``term_grace`` bounds how long a timed-out child may
    ignore SIGTERM before it is SIGKILLed.  ``n_jobs == -1`` uses every
    core.
    """
    if retries < 0:
        raise ConfigurationError(f"retries must be >= 0, got {retries}")
    if backoff < 0:
        raise ConfigurationError(f"backoff must be >= 0, got {backoff}")
    if timeout is not None and timeout <= 0:
        raise ConfigurationError(f"timeout must be > 0, got {timeout}")
    if term_grace <= 0:
        raise ConfigurationError(
            f"term_grace must be > 0, got {term_grace}"
        )
    workers = _workers(n_jobs)
    tr = tracer if tracer is not None else trace.current()
    if not tasks:
        return []
    if workers == 1 and timeout is None:
        return [
            _run_inline(worker, fn, task, retries, backoff, tr)
            for task in tasks
        ]
    return _run_isolated(
        worker, fn, tasks, workers, retries, backoff, timeout, term_grace, tr
    )


def _workers(n_jobs: int) -> int:
    import os

    if n_jobs == -1:
        return os.cpu_count() or 1
    if n_jobs < 1:
        raise ConfigurationError(
            f"n_jobs must be >= 1 or -1 (all cores), got {n_jobs}"
        )
    return n_jobs


def _describe(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


def _run_inline(worker, fn, task, retries, backoff, tr) -> PointOutcome:
    """Serial in-process attempts (no fork, closures allowed)."""
    for attempt in range(1, retries + 2):
        start = time.perf_counter()
        try:
            value = worker(fn, task.value, task.seed)
        except Exception as exc:
            failure = PointOutcome(
                index=task.index,
                ok=False,
                error=_describe(exc),
                exception=exc,
                traceback=tb_module.format_exc(),
                attempts=attempt,
                elapsed_s=time.perf_counter() - start,
            )
            if attempt <= retries:
                tr.count("executor.retries")
                time.sleep(backoff * 2 ** (attempt - 1))
                continue
            return failure
        return PointOutcome(
            index=task.index,
            ok=True,
            value=value,
            attempts=attempt,
            elapsed_s=time.perf_counter() - start,
        )
    raise AssertionError("unreachable")  # pragma: no cover


def _send_guarded(conn, payload) -> "BaseException | None":
    """Ship one payload to the parent; returns the send failure, if any.

    An :class:`OSError`/:class:`EOFError` means the parent already
    reaped this attempt and closed its read end (a timeout race, not an
    error) — the caller must exit cleanly.  Any other exception means
    the payload itself cannot cross the pipe (unpicklable).
    """
    try:
        conn.send(payload)
        return None
    except BaseException as exc:  # noqa: BLE001 - classified by caller
        return exc


def _orphaned(exc: "BaseException | None") -> bool:
    """Whether a send failure means the parent is gone (pipe closed)."""
    return isinstance(exc, (OSError, EOFError))


def _child_main(conn, worker, fn, value, seed) -> None:
    """Subprocess entry: ship (status, payload) back through the pipe.

    Every send is guarded: if the parent has already reaped this attempt
    (e.g. the per-point deadline expired just as the work finished), the
    write end sees a broken pipe — the child must then exit *cleanly*
    rather than die with an unhandled ``BrokenPipeError``, because its
    nonzero exit would be observed by nothing and its traceback would
    pollute stderr of an otherwise healthy run.
    """
    try:
        result = worker(fn, value, seed)
    except BaseException as exc:
        formatted = tb_module.format_exc()
        sent = _send_guarded(conn, ("err", _describe(exc), exc, formatted))
        if sent is not None and not _orphaned(sent):
            # exception object not picklable: resend without it
            _send_guarded(conn, ("err", _describe(exc), None, formatted))
    else:
        sent = _send_guarded(conn, ("ok", result))
        if sent is not None and not _orphaned(sent):
            formatted = "".join(
                tb_module.format_exception(
                    type(sent), sent, sent.__traceback__
                )
            )
            _send_guarded(
                conn,
                (
                    "err",
                    f"result not picklable: {_describe(sent)}",
                    None,
                    formatted,
                ),
            )
    finally:
        try:
            conn.close()
        except OSError:  # pragma: no cover - close on a broken pipe
            pass


@dataclass
class _Running:
    attempt: _Attempt
    process: mp.process.BaseProcess
    conn: Any
    started: float
    deadline: float | None


def _reap(proc: mp.process.BaseProcess, term_grace: float) -> None:
    """Stop one child with bounded patience: SIGTERM, wait, SIGKILL.

    ``terminate()`` alone is a request the child may ignore (a worker
    that installed a SIG_IGN handler, or is stuck in uninterruptible
    I/O); an unbounded ``join()`` after it would wedge the whole run on
    such a child.  So the join is bounded by ``term_grace`` seconds and
    escalates to ``kill()`` — SIGKILL cannot be caught or ignored.
    """
    proc.terminate()
    proc.join(term_grace)
    if proc.is_alive():
        proc.kill()
        proc.join(term_grace)


def _receive(run: _Running, elapsed: float) -> PointOutcome:
    """Harvest one attempt whose pipe is readable (result or EOF)."""
    att = run.attempt
    try:
        payload = run.conn.recv()
    except EOFError:
        # write end closed with nothing sent: the child died before it
        # could report (segfault, os._exit, kill)
        run.process.join()
        payload = (
            "err",
            "worker process died without a result "
            f"(exitcode {run.process.exitcode})",
            None,
            None,
        )
    run.conn.close()
    run.process.join()
    if payload[0] == "ok":
        return PointOutcome(
            index=att.task.index,
            ok=True,
            value=payload[1],
            attempts=att.attempt,
            elapsed_s=elapsed,
        )
    _, error, exc, formatted = payload
    return PointOutcome(
        index=att.task.index,
        ok=False,
        error=error,
        exception=exc,
        traceback=formatted,
        attempts=att.attempt,
        elapsed_s=elapsed,
    )


def _harvest(
    run: _Running,
    now: float,
    timeout: float | None,
    term_grace: float,
    tr,
) -> PointOutcome | None:
    """Resolve one in-flight attempt, or return None if still running.

    Ordering is pinned *poll-before-deadline*: a result that is already
    in the pipe when the deadline check runs is harvested as ``ok`` even
    if the deadline has technically passed — the work is done and paid
    for, and discarding it would make outcomes depend on scheduler
    latency rather than on the worker.
    """
    att = run.attempt
    elapsed = now - run.started
    if run.conn.poll():
        return _receive(run, elapsed)
    if not run.process.is_alive():
        # the result may have raced the liveness check: look again
        if run.conn.poll():
            return _receive(run, elapsed)
        run.process.join()
        exitcode = run.process.exitcode
        run.conn.close()
        return PointOutcome(
            index=att.task.index,
            ok=False,
            error=(
                "worker process died without a result "
                f"(exitcode {exitcode})"
            ),
            traceback=None,
            attempts=att.attempt,
            elapsed_s=elapsed,
        )
    if run.deadline is not None and now > run.deadline:
        _reap(run.process, term_grace)
        run.conn.close()
        tr.count("executor.timeouts")
        return PointOutcome(
            index=att.task.index,
            ok=False,
            error=f"timed out after {timeout}s",
            traceback=None,
            attempts=att.attempt,
            elapsed_s=elapsed,
        )
    return None


def _next_wakeup(
    queue: list[_Attempt], running: list[_Running], now: float
) -> float | None:
    """Seconds until the next scheduled event (deadline or retry
    eligibility), capped at the defensive idle tick; None when nothing
    is scheduled (pipe/sentinel readiness is then the only wake source).
    """
    ticks = [r.deadline - now for r in running if r.deadline is not None]
    ticks.extend(a.eligible_at - now for a in queue)
    if not ticks:
        return _IDLE_TICK_S
    return min(max(min(ticks), 0.0), _IDLE_TICK_S)


def _run_isolated(
    worker, fn, tasks, workers, retries, backoff, timeout, term_grace, tr
) -> list[PointOutcome]:
    """One process per attempt, at most ``workers`` in flight."""
    ctx = mp.get_context()
    queue: list[_Attempt] = [_Attempt(task) for task in tasks]
    running: list[_Running] = []
    outcomes: dict[int, PointOutcome] = {}

    def launch(att: _Attempt) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_child_main,
            args=(child_conn, worker, fn, att.task.value, att.task.seed),
            daemon=True,
        )
        proc.start()
        child_conn.close()  # parent keeps only the read end
        now = time.monotonic()
        running.append(
            _Running(
                attempt=att,
                process=proc,
                conn=parent_conn,
                started=now,
                deadline=None if timeout is None else now + timeout,
            )
        )

    def settle(run: _Running, outcome: PointOutcome) -> None:
        """Final or retried resolution of one attempt."""
        att = run.attempt
        if not outcome.ok and att.attempt <= retries:
            tr.count("executor.retries")
            queue.append(
                _Attempt(
                    task=att.task,
                    attempt=att.attempt + 1,
                    eligible_at=time.monotonic()
                    + backoff * 2 ** (att.attempt - 1),
                )
            )
            return
        outcomes[att.task.index] = outcome

    while queue or running:
        now = time.monotonic()
        # fill free slots with eligible attempts (in queue order)
        ready = [a for a in queue if a.eligible_at <= now]
        while ready and len(running) < workers:
            att = ready.pop(0)
            queue.remove(att)
            launch(att)
        # harvest finished / expired attempts
        now = time.monotonic()
        for run in list(running):
            outcome = _harvest(run, now, timeout, term_grace, tr)
            if outcome is not None:
                running.remove(run)
                settle(run, outcome)
        if not (queue or running):
            break
        # block until a result pipe is readable, a child's sentinel
        # fires (it exited), a deadline expires, or a retry becomes
        # eligible — no polling, ~0 CPU while idle
        wait_for = _next_wakeup(queue, running, time.monotonic())
        waitables: list[Any] = [r.conn for r in running]
        waitables.extend(r.process.sentinel for r in running)
        tr.count("executor.wakeups")
        if waitables:
            mp_connection.wait(waitables, wait_for)
        elif wait_for:  # everything is backed off; sleep to eligibility
            time.sleep(wait_for)

    return [outcomes[task.index] for task in tasks]
