"""Tracing/metrics facade for the execution layer (MAPE's monitor leg).

The paper's MAPE loop (§3.3) starts with *monitor*: a system cannot
degrade gracefully if it cannot see what it did.  :class:`Tracer` is the
single observability surface for the library — counters, aggregated
timers, step hooks, and structured JSONL events — cheap enough to leave
wired into the hot simulation loops (:class:`~repro.agents.simulation.
EvolutionSimulator` and :class:`~repro.agents.arrayengine.ArraySimulator`
report per-run timers and per-step ticks through it) and into every
sweep point executed by :mod:`repro.analysis.sweep`.

A module-level *current tracer* (:func:`current` / :func:`use`) lets
deep call sites emit without threading a tracer argument through every
signature; the default is :data:`NULL`, a no-op sink whose methods cost
one attribute lookup, so untraced runs pay nothing measurable.

Event stream format (one JSON object per line)::

    {"ts": 12.3456, "event": "sweep.start", "points": 16, "n_jobs": 4}
    {"ts": 12.5678, "event": "point.ok", "index": 0, "elapsed_s": 0.2}

``ts`` is seconds since the tracer was created (monotonic clock).
"""

from __future__ import annotations

import json
import time
import warnings as _warnings
from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator

__all__ = [
    "NULL",
    "NullTracer",
    "TimerStats",
    "Tracer",
    "current",
    "use",
]


class NullTracer:
    """No-op tracer: every hook is a cheap pass-through.

    Falsy (``bool(NULL) is False``) so hot loops can guard optional
    work with ``if tracer: ...``.
    """

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    def count(self, name: str, n: int = 1) -> None:
        pass

    def event(self, name: str, **fields: Any) -> None:
        pass

    def warning(self, message: str, **fields: Any) -> None:
        pass

    def step(self, engine: str, step: int, alive: int) -> None:
        pass

    def record_timing(self, name: str, elapsed_s: float) -> None:
        pass

    def add_step_hook(self, hook: Callable[[str, int, int], None]) -> None:
        raise TypeError(
            "cannot register a step hook on the null tracer; "
            "install a Tracer first (repro.runtime.trace.use)"
        )

    def add_event_hook(self, hook: Callable[[dict], None]) -> None:
        raise TypeError(
            "cannot register an event hook on the null tracer; "
            "install a Tracer first (repro.runtime.trace.use)"
        )

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        yield


NULL = NullTracer()


@dataclass
class TimerStats:
    """Aggregate of one named timer: total/calls/min/max in seconds."""

    total_s: float = 0.0
    calls: int = 0
    min_s: float = float("inf")
    max_s: float = 0.0

    def add(self, elapsed: float) -> None:
        self.total_s += elapsed
        self.calls += 1
        self.min_s = min(self.min_s, elapsed)
        self.max_s = max(self.max_s, elapsed)

    @property
    def mean_s(self) -> float:
        return self.total_s / self.calls if self.calls else 0.0


class Tracer:
    """Collects counters, timers, and structured events for one run.

    Parameters
    ----------
    path:
        Optional JSONL file; every :meth:`event` is appended and flushed
        immediately so a killed process still leaves a usable trace.
    keep_events:
        Also retain events in memory (``.events``).  On by default;
        turn off for very long runs feeding a file instead.
    """

    def __init__(self, path: str | None = None, keep_events: bool = True):
        self.counters: Counter[str] = Counter()
        self.timers: dict[str, TimerStats] = {}
        self.events: list[dict] = []
        self._keep_events = keep_events
        self._hooks: list[Callable[[str, int, int], None]] = []
        self._event_hooks: list[Callable[[dict], None]] = []
        self._t0 = time.monotonic()
        self._fh = open(path, "a") if path else None

    # -- counters / timers -------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        """Increment counter ``name`` by ``n``."""
        self.counters[name] += n

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Time a ``with`` block into the aggregate for ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record_timing(name, time.perf_counter() - start)

    def record_timing(self, name: str, elapsed_s: float) -> None:
        """Fold one externally-measured duration into timer ``name``."""
        self.timers.setdefault(name, TimerStats()).add(elapsed_s)

    # -- events ------------------------------------------------------------

    def event(self, name: str, **fields: Any) -> None:
        """Record a structured event (and append it to the JSONL file)."""
        record = {"ts": round(time.monotonic() - self._t0, 6), "event": name}
        record.update(fields)
        if self._keep_events:
            self.events.append(record)
        if self._fh is not None:
            self._fh.write(json.dumps(record, default=repr) + "\n")
            self._fh.flush()
        for hook in self._event_hooks:
            try:
                hook(record)
            except Exception as exc:  # noqa: BLE001 - observer, not owner
                self._hook_error("event", hook, exc)

    def warning(self, message: str, **fields: Any) -> None:
        """Record a degradation the run tolerated (counted + evented).

        Warnings are events the MAPE analyze leg should see even when
        nothing failed outright: quarantined checkpoint lines, breaker
        degradations, pre-empted compiles.
        """
        self.count("warnings")
        self.event("warning", message=message, **fields)

    # -- step / event hooks ------------------------------------------------

    def add_step_hook(self, hook: Callable[[str, int, int], None]) -> None:
        """Register ``hook(engine, step, alive)``, called every sim step."""
        self._hooks.append(hook)

    def add_event_hook(self, hook: Callable[[dict], None]) -> None:
        """Register ``hook(record)``, called with every emitted event.

        This is the streaming seam the service layer subscribes to:
        per-job progress events flow to each job's live event feed as
        they are emitted, without the service having to scan ``events``
        after the fact.  Hooks run synchronously on the emitting thread
        and should be cheap; a hook that raises is contained (counted
        as ``trace.hook_errors`` + a :class:`RuntimeWarning`), never
        propagated to the emitter.
        """
        self._event_hooks.append(hook)

    def step(self, engine: str, step: int, alive: int) -> None:
        """One simulator step tick: counts it and fans out to hooks."""
        self.counters[f"sim.steps.{engine}"] += 1
        for hook in self._hooks:
            try:
                hook(engine, step, alive)
            except Exception as exc:  # noqa: BLE001 - observer, not owner
                self._hook_error("step", hook, exc)

    def _hook_error(self, kind: str, hook: Any, exc: Exception) -> None:
        """Contain a raising observer: count it, warn, keep tracing.

        Hooks are observers of the run, not owners of it — a buggy
        progress callback must not take down the emitting thread (the
        service scheduler drains jobs through :meth:`event`).  The
        failure is still loud: counted as ``trace.hook_errors`` and
        surfaced as a :class:`RuntimeWarning`.  Deliberately does *not*
        route through :meth:`event`, which would re-enter the hooks.
        """
        self.counters["trace.hook_errors"] += 1
        name = getattr(hook, "__qualname__", repr(hook))
        _warnings.warn(
            f"tracer {kind} hook {name} raised "
            f"{type(exc).__name__}: {exc}; hook errors are contained "
            "(counted as trace.hook_errors)",
            RuntimeWarning,
            stacklevel=3,
        )

    # -- reporting ---------------------------------------------------------

    def summary(self) -> dict:
        """Counters and timer aggregates as one JSON-ready mapping."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "timers": {
                name: {
                    "total_s": round(stats.total_s, 6),
                    "calls": stats.calls,
                    "mean_s": round(stats.mean_s, 6),
                    "min_s": round(stats.min_s, 6),
                    "max_s": round(stats.max_s, 6),
                }
                for name, stats in sorted(self.timers.items())
            },
        }

    def summary_table(self) -> str:
        """End-of-run summary as one aligned text table."""
        from ..analysis.tables import render_table

        rows: list[dict] = [
            {"name": name, "kind": "counter", "value": value}
            for name, value in sorted(self.counters.items())
        ]
        rows.extend(
            {
                "name": name,
                "kind": "timer",
                "value": stats.calls,
                "total_s": round(stats.total_s, 4),
                "mean_s": round(stats.mean_s, 4),
                "max_s": round(stats.max_s, 4),
            }
            for name, stats in sorted(self.timers.items())
        )
        if not rows:
            return "(no trace data)"
        return render_table(rows)

    def close(self) -> None:
        """Close the JSONL file, if any (idempotent)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


_current: NullTracer | Tracer = NULL


def current() -> NullTracer | Tracer:
    """The active tracer (the no-op :data:`NULL` unless :func:`use`-d)."""
    return _current


@contextmanager
def use(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` as the current tracer for a ``with`` block."""
    global _current
    previous = _current
    _current = tracer
    try:
        yield tracer
    finally:
        _current = previous
