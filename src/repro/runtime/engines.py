"""Engine-seam registry: one resolution path for all three engine seams.

The library has exactly three places where a fast, vectorized engine can
be swapped for the byte-identical reference implementation:

======== ======================== ========= ======================= =========
family   seam                     env var   kinds (default*)        fallback
======== ======================== ========= ======================= =========
agents   ``make_engine``          ``REPRO_AGENT_ENGINE``   object, array*         object
networks ``make_network_engine``  ``REPRO_NETWORK_ENGINE`` object*, array, mmap   object
csp      ``make_csp_engine``      ``REPRO_CSP_ENGINE``     object*, bit, tiled    object
======== ======================== ========= ======================= =========

:func:`resolve_engine_kind` is the shared helper behind all three: it
applies the same ``None``-means-environment rule, produces the same
error message for empty/unknown values (an :class:`~repro.errors.
EngineError` naming the valid choices and where the bad value came
from), and — the reason this lives in ``runtime`` — gives the MAPE
supervisor (:mod:`repro.runtime.supervisor`) a single choke point to
degrade a tripped family's fast engine back to its reference fallback
(``tiled → object``, ``bit → object``, ``array → object``) for the
remainder of a run.  (The finer-grained ``tiled → bit → object``
*compile* chain is not a breaker concern: it lives inside
:meth:`repro.csp.engine.TiledCSPEngine.try_compile`, which picks the
cheapest compiled form per CSP.)
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..errors import EngineError

__all__ = ["EngineSeam", "SEAMS", "effective_kind", "resolve_engine_kind", "seam"]


@dataclass(frozen=True)
class EngineSeam:
    """Static description of one engine family's selection seam."""

    family: str  # "agents" / "networks" / "csp"
    env_var: str  # environment variable read when kind is None
    default: str  # kind used when neither argument nor env is set
    choices: tuple[str, ...]  # every valid kind
    fast: tuple[str, ...]  # kinds the supervisor may degrade
    fallback: str  # the reference kind a tripped family degrades to


SEAMS: dict[str, EngineSeam] = {
    "agents": EngineSeam(
        family="agents",
        env_var="REPRO_AGENT_ENGINE",
        default="array",
        choices=("array", "object"),
        fast=("array",),
        fallback="object",
    ),
    "networks": EngineSeam(
        family="networks",
        env_var="REPRO_NETWORK_ENGINE",
        default="object",
        choices=("array", "mmap", "object"),
        fast=("array", "mmap"),
        fallback="object",
    ),
    "csp": EngineSeam(
        family="csp",
        env_var="REPRO_CSP_ENGINE",
        default="object",
        choices=("bit", "object", "tiled"),
        fast=("bit", "tiled"),
        fallback="object",
    ),
}


def seam(family: str) -> EngineSeam:
    """The seam description for ``family`` (raises for unknown families)."""
    try:
        return SEAMS[family]
    except KeyError:
        raise EngineError(
            f"unknown engine family {family!r}; "
            f"valid families: {sorted(SEAMS)}"
        ) from None


def resolve_engine_kind(family: str, kind: "str | None" = None) -> str:
    """Resolve and validate an engine ``kind`` for one seam.

    ``kind=None`` reads the family's environment variable (an empty
    value means "unset", not "an engine named ''") and falls back to the
    family default.  Unrecognized values — passed directly or set in the
    environment — raise :class:`~repro.errors.EngineError` naming the
    valid choices and the source of the bad value, never silently
    falling back.  The resolved kind is finally passed through the
    active MAPE supervisor, which may degrade a fast engine to the
    family's reference fallback while its circuit breaker is open.
    """
    s = seam(family)
    source = "kind argument"
    if kind is None:
        kind = os.environ.get(s.env_var) or s.default
        source = f"{s.env_var} environment variable"
    if kind not in s.choices:
        raise EngineError(
            f"unknown {family} engine kind {kind!r} (from {source}); "
            f"valid choices: {sorted(s.choices)}"
        )
    from . import supervisor

    return supervisor.current().resolve(family, kind)


def effective_kind(family: str) -> str:
    """The kind the seam would resolve right now, without side effects.

    Like :func:`resolve_engine_kind` with ``kind=None``, but consults
    the supervisor through its side-effect-free ``peek`` (no degradation
    counters are incremented) — used by the chaos harness to decide
    whether an engine-tied fault is armed.
    """
    s = seam(family)
    kind = os.environ.get(s.env_var) or s.default
    if kind not in s.choices:
        raise EngineError(
            f"unknown {family} engine kind {kind!r} (from {s.env_var} "
            f"environment variable); valid choices: {sorted(s.choices)}"
        )
    from . import supervisor

    return supervisor.current().peek(family, kind)
