"""Deterministic chaos harness: the paper's shock methodology, self-applied.

The paper validates *systems* by perturbing them and checking recovery
(§5.3's tiger-team fault injection); this module turns the same
methodology on the runtime itself.  A :class:`ChaosPlan` assigns at most
one :class:`ChaosFault` per sweep point — reusing
:class:`repro.faults.FaultSpec` as the sampling substrate — and
:func:`active` publishes it to worker subprocesses through environment
variables.  Workers call :func:`strike` / :func:`poison` at the top and
bottom of their point function; faults fire deterministically:

* ``raise`` — an ordinary worker crash, struck exactly once per run via
  an ``O_EXCL`` marker file, so the executor's retry budget absorbs it
  (it is *not* an engine fault and must not trip breakers);
* ``hang`` — the worker sleeps past the per-point timeout;
* ``oom`` — the worker raises :class:`MemoryError`;
* ``nan`` — the point's result row has its floats replaced with NaN.

``hang`` / ``oom`` / ``nan`` are **family-guarded**: they strike only
while their engine family still resolves to a fast engine, so once the
supervisor trips the family's breaker and degrades it, the fault stops
firing and the re-run succeeds — which is exactly the self-healing
contract under test.  Every decision derives from the plan JSON, the
marker directory, and the engine environment; no wall-clock or
process-local randomness, so a drill reproduces bit-for-bit.

:func:`run_drill` is the acceptance scenario in executable form: a
supervised, checkpointed sweep under a four-fault plan plus a mid-file
checkpoint corruption (:func:`corrupt_checkpoint`), resumed, and
compared row-for-row against a fault-free all-object-engine baseline.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Mapping, Optional, Sequence

from ..errors import ChaosError
from ..faults.spec import FaultSpec
from ..rng import SeedLike, make_rng
from . import supervisor as supervisor_module
from . import trace as trace_module
from .engines import SEAMS, effective_kind

__all__ = [
    "KINDS",
    "PLAN_ENV",
    "STATE_ENV",
    "ChaosFault",
    "ChaosPlan",
    "active",
    "corrupt_checkpoint",
    "poison",
    "run_drill",
    "strike",
]

#: Injectable fault kinds, in the order :meth:`ChaosPlan.sample` assigns
#: them to sampled points.
KINDS = ("raise", "hang", "oom", "nan")

#: Environment variable carrying the active plan as JSON.
PLAN_ENV = "REPRO_CHAOS_PLAN"

#: Environment variable naming the marker directory for one-shot faults.
STATE_ENV = "REPRO_CHAOS_STATE"

#: Kinds that must be tied to an engine family (see module docs).
_FAMILY_KINDS = frozenset({"hang", "oom", "nan"})


@dataclass(frozen=True)
class ChaosFault:
    """One injected runtime fault: ``kind`` striking sweep point ``point``.

    ``family`` names the engine family whose degradation disarms the
    fault; required for the family-guarded kinds (``hang``/``oom``/
    ``nan``), forbidden for ``raise`` (which disarms itself via its
    once-marker instead).
    """

    kind: str
    point: int
    family: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ChaosError(
                f"unknown chaos kind {self.kind!r}; "
                f"valid kinds: {sorted(KINDS)}"
            )
        if self.point < 0:
            raise ChaosError(f"point must be >= 0, got {self.point}")
        if self.kind in _FAMILY_KINDS:
            if self.family not in SEAMS:
                raise ChaosError(
                    f"{self.kind!r} faults need an engine family from "
                    f"{sorted(SEAMS)}, got {self.family!r}"
                )
        elif self.family is not None:
            raise ChaosError(
                f"{self.kind!r} faults take no family "
                f"(got {self.family!r}); they disarm via a once-marker"
            )


@dataclass(frozen=True)
class ChaosPlan:
    """A set of chaos faults, at most one per sweep point."""

    faults: tuple[ChaosFault, ...]

    def __post_init__(self) -> None:
        faults = tuple(self.faults)
        object.__setattr__(self, "faults", faults)
        points = [f.point for f in faults]
        if len(points) != len(set(points)):
            dupes = sorted({p for p in points if points.count(p) > 1})
            raise ChaosError(
                f"at most one fault per point; duplicated points: {dupes}"
            )

    def fault_for(self, point: int) -> Optional[ChaosFault]:
        """The fault targeting ``point``, if any."""
        for fault in self.faults:
            if fault.point == point:
                return fault
        return None

    def to_json(self) -> str:
        """The plan as canonical JSON (round-trips via :meth:`from_json`)."""
        return json.dumps(
            [
                {"kind": f.kind, "point": f.point, "family": f.family}
                for f in self.faults
            ],
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "ChaosPlan":
        """Parse a plan produced by :meth:`to_json`."""
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ChaosError(f"chaos plan is not valid JSON: {exc}") from exc
        if not isinstance(raw, list):
            raise ChaosError(
                f"chaos plan must be a JSON list, got {type(raw).__name__}"
            )
        faults = []
        for entry in raw:
            if not isinstance(entry, Mapping):
                raise ChaosError(f"chaos plan entry is not an object: {entry!r}")
            try:
                faults.append(
                    ChaosFault(
                        kind=entry["kind"],
                        point=int(entry["point"]),
                        family=entry.get("family"),
                    )
                )
            except KeyError as exc:
                raise ChaosError(
                    f"chaos plan entry missing key {exc}: {entry!r}"
                ) from exc
        return cls(tuple(faults))

    @classmethod
    def sample(
        cls,
        n_points: int,
        seed: SeedLike = None,
        kinds: Sequence[str] = KINDS,
        family: str = "csp",
    ) -> "ChaosPlan":
        """Draw a plan striking ``len(kinds)`` distinct points (one each).

        The struck points come from one :class:`repro.faults.FaultSpec`
        (the tiger team's attack, aimed at sweep points instead of
        system components); kinds are assigned to them in the order
        given.  Deterministic for a given seed.
        """
        if n_points < len(kinds):
            raise ChaosError(
                f"need at least {len(kinds)} points for kinds {list(kinds)}, "
                f"got {n_points}"
            )
        rng = make_rng(seed)
        picks = rng.choice(n_points, size=len(kinds), replace=False)
        spec = FaultSpec(tuple(int(p) for p in picks), label="chaos")
        return cls(
            tuple(
                ChaosFault(
                    kind=kind,
                    point=point,
                    family=family if kind in _FAMILY_KINDS else None,
                )
                for kind, point in zip(kinds, spec.components)
            )
        )


@contextmanager
def active(plan: ChaosPlan, state_dir: str) -> Iterator[ChaosPlan]:
    """Publish ``plan`` to this process and its workers for a ``with`` block.

    ``state_dir`` (created if missing) holds the once-markers of
    ``raise`` faults; reusing a directory from an earlier drill keeps
    those faults disarmed, so resumed runs see the same world.
    """
    if not isinstance(plan, ChaosPlan):
        raise ChaosError(f"active() needs a ChaosPlan, got {type(plan).__name__}")
    os.makedirs(state_dir, exist_ok=True)
    saved = {
        var: os.environ.get(var) for var in (PLAN_ENV, STATE_ENV)
    }
    os.environ[PLAN_ENV] = plan.to_json()
    os.environ[STATE_ENV] = state_dir
    try:
        yield plan
    finally:
        for var, value in saved.items():
            if value is None:
                os.environ.pop(var, None)
            else:
                os.environ[var] = value


def _active_fault(point: int) -> Optional[ChaosFault]:
    """The armed fault for ``point`` under the published plan, if any."""
    text = os.environ.get(PLAN_ENV)
    if not text:
        return None
    fault = ChaosPlan.from_json(text).fault_for(point)
    if fault is None or not _should_strike(fault):
        return None
    return fault


def _should_strike(fault: ChaosFault) -> bool:
    """Whether ``fault`` is still armed (see module docs)."""
    if fault.family is not None:
        # family-guarded: disarmed once the supervisor degrades the
        # family to its reference engine
        return effective_kind(fault.family) in SEAMS[fault.family].fast
    state_dir = os.environ.get(STATE_ENV)
    if not state_dir:
        raise ChaosError(
            f"{STATE_ENV} is unset; once-only faults need the marker "
            "directory published by chaos.active()"
        )
    marker = os.path.join(state_dir, f"{fault.kind}-{fault.point}.struck")
    try:
        os.close(os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
    except FileExistsError:
        return False
    return True


def strike(point: int) -> None:
    """Worker-side injection hook: fire any armed fault for ``point``.

    A no-op unless a plan is active (workers call this unconditionally).
    ``nan`` faults do nothing here — they poison the result on the way
    out via :func:`poison` instead.
    """
    fault = _active_fault(point)
    if fault is None or fault.kind == "nan":
        return
    if fault.kind == "raise":
        raise RuntimeError(f"chaos: injected worker crash at point {point}")
    if fault.kind == "oom":
        raise MemoryError(f"chaos: simulated out-of-memory at point {point}")
    # hang: sleep far past any sane per-point timeout; the executor
    # terminates the worker process, this never returns normally
    deadline = time.monotonic() + 600.0
    while time.monotonic() < deadline:  # pragma: no cover - killed early
        time.sleep(0.05)


def poison(point: int, row: Mapping) -> dict:
    """Worker-side result hook: NaN-poison ``row`` if a ``nan`` fault is armed.

    Replaces every float value with NaN, key set unchanged — the shape a
    numerically-broken engine would produce.  Returns ``row`` as a plain
    dict either way.
    """
    fault = _active_fault(point)
    if fault is None or fault.kind != "nan":
        return dict(row)
    return {
        key: float("nan") if isinstance(value, float) else value
        for key, value in row.items()
    }


def corrupt_checkpoint(
    path: str, seed: SeedLike = None, n_lines: int = 1
) -> list[int]:
    """Garble ``n_lines`` mid-file lines of a JSONL checkpoint, in place.

    Only interior lines are eligible — never the header (whose loss is a
    hard :class:`~repro.errors.CheckpointError` by design) and never the
    final line (a torn tail is a different, already-handled failure).
    Returns the corrupted line numbers (1-based).  Deterministic for a
    given seed.
    """
    if n_lines < 1:
        raise ChaosError(f"n_lines must be >= 1, got {n_lines}")
    with open(path, "r", encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    eligible = list(range(1, len(lines) - 1))
    if len(eligible) < n_lines:
        raise ChaosError(
            f"checkpoint {path!r} has only {len(eligible)} interior "
            f"line(s); cannot corrupt {n_lines}"
        )
    rng = make_rng(seed)
    picks = sorted(
        int(i) for i in rng.choice(len(eligible), size=n_lines, replace=False)
    )
    struck = [eligible[i] for i in picks]
    for lineno in struck:
        # cut the line mid-token and splice in garbage: reliably not
        # JSON, regardless of the record's contents
        text = lines[lineno]
        lines[lineno] = text[: max(1, len(text) // 2)] + '~chaos~"'
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("\n".join(lines) + "\n")
    return [lineno + 1 for lineno in struck]


# -- the acceptance drill ---------------------------------------------------


def _drill_worker(value: int, seed) -> dict:
    """One drill point: a small recoverability query under chaos hooks.

    Module-level so worker processes can pickle it.  The CSP is boolean
    (so ``REPRO_CSP_ENGINE=bit`` exercises the fast engine) and the row
    mixes bools, ints, and a seeded float draw — one of each JSON shape
    the baseline comparison must reproduce byte-for-byte.
    """
    from ..core.recoverability import BoundedComponentDamage, is_k_recoverable
    from ..csp.constraints import at_least_k_good
    from ..csp.problem import CSP
    from ..csp.variables import boolean_variables

    strike(value)
    variables = boolean_variables(6)
    names = [v.name for v in variables]
    csp = CSP(variables, [at_least_k_good(names, 2 + value % 3)])
    report = is_k_recoverable(csp, BoundedComponentDamage(2), k=2)
    rng = make_rng(seed)
    row = {
        "recoverable": bool(report.is_k_recoverable),
        "worst": -1 if report.worst_steps is None else int(report.worst_steps),
        "draw": float(rng.random()),
    }
    return poison(value, row)


def run_drill(
    seed: int = 0,
    *,
    n_points: int = 16,
    workdir: str,
    n_jobs: int = 2,
    timeout_s: float = 5.0,
) -> dict:
    """The chaos acceptance scenario, end to end.  Returns a report dict.

    A supervised, checkpointed ``n_points``-point sweep runs under a
    sampled four-fault plan (worker crash, hang, simulated OOM,
    NaN-poisoned output) with ``REPRO_CSP_ENGINE=bit``; the hang/OOM/NaN
    faults trip the csp breaker, the sweep re-runs the suspects on the
    degraded object engine, and every point completes.  The checkpoint
    then gets one mid-file line corrupted and the sweep is resumed —
    the bad line is quarantined and its point recomputed.  Finally a
    fault-free, unsupervised, all-object-engine sweep recomputes the
    whole grid from scratch and the report says whether the two row
    sets are byte-identical (``baseline_identical`` — the self-healing
    contract).
    """
    from ..analysis.sweep import sweep  # local: runtime must not need analysis

    state_dir = os.path.join(workdir, "chaos-state")
    ckpt_path = os.path.join(workdir, "drill.jsonl")
    plan = ChaosPlan.sample(n_points, seed=seed)
    sup = supervisor_module.Supervisor(families=("csp",))
    tr = trace_module.Tracer()

    def run():
        return sweep(
            range(n_points),
            _drill_worker,
            n_jobs=n_jobs,
            seed=seed,
            on_error="keep",
            retries=1,
            retry_backoff=0.01,
            timeout=timeout_s,
            checkpoint=ckpt_path,
            tracer=tr,
        )

    with _env_pinned({"REPRO_CSP_ENGINE": "bit"}):
        # the tracer is installed as well as passed to sweep(): breaker
        # trips count through the trace *facade*, not the sweep argument
        with active(plan, state_dir), supervisor_module.use(sup), \
                trace_module.use(tr):
            chaos_result = run()
            corrupted = corrupt_checkpoint(ckpt_path, seed=seed)
            resumed_result = run()

    with _env_pinned(
        {
            "REPRO_AGENT_ENGINE": "object",
            "REPRO_NETWORK_ENGINE": "object",
            "REPRO_CSP_ENGINE": "object",
        }
    ):
        baseline = sweep(
            range(n_points), _drill_worker, n_jobs=1, seed=seed
        )

    def canon(rows) -> list[str]:
        return [json.dumps(row, sort_keys=True) for row in rows]

    counters = tr.counters
    return {
        "n_points": n_points,
        "plan": [
            {"kind": f.kind, "point": f.point, "family": f.family}
            for f in plan.faults
        ],
        "ok": len(resumed_result.ok_rows),
        "failed": len(resumed_result.failed),
        "rows": list(resumed_result.rows),
        "trips": counters.get("supervisor.trips", 0),
        "degradations": counters.get("supervisor.degradations", 0),
        "reruns": counters.get("supervisor.reruns", 0),
        "poisoned": counters.get("supervisor.poisoned", 0),
        "quarantined": counters.get("checkpoint.quarantined", 0),
        "corrupted_lines": corrupted,
        "breakers": sup.summary(),
        "chaos_ok": len(chaos_result.ok_rows),
        "baseline_identical": (
            canon(resumed_result.ok_rows) == canon(baseline.ok_rows)
        ),
    }


@contextmanager
def _env_pinned(pins: Mapping[str, str]) -> Iterator[None]:
    """Set environment variables for a ``with`` block, then restore."""
    saved = {var: os.environ.get(var) for var in pins}
    os.environ.update(pins)
    try:
        yield
    finally:
        for var, value in saved.items():
            if value is None:
                os.environ.pop(var, None)
            else:
                os.environ[var] = value
