"""The evolutionary multi-agent simulation loop (paper §4.4).

"Our focus is to identify key parameters that makes an agent population,
which represents a decentralized complex system, resilient to a changing
environment, by conducting various multi-agent simulations while
changing the above system parameters."

Per step: the environment may shock (target constraint moves); every
organism adapts (≤ adaptability bit flips toward satisfaction), earns
income proportional to its fitness, pays a living cost from its resource
store; exhausted organisms die; well-resourced organisms self-replicate
with mutation, up to a carrying capacity.  The recorded population
health series doubles as a Q(t) quality trace so Bruneau assessments and
survival statistics come from the same run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.quality import QualityTrace
from ..dynamics.mutation import BitFlipMutator
from ..errors import ConfigurationError
from ..rng import SeedLike, make_rng
from ..runtime import trace
from .environment import ConstraintEnvironment, ShockSchedule
from .organism import Organism
from .population import Population

__all__ = ["SimulationResult", "EvolutionSimulator"]


@dataclass(frozen=True)
class SimulationResult:
    """Time series and endpoint of one multi-agent run."""

    alive: np.ndarray  # population size per step
    mean_fitness: np.ndarray
    satisfied_fraction: np.ndarray
    diversity: np.ndarray  # paper's G over genotype classes
    shock_times: tuple[int, ...]
    final_population: Population
    survived: bool
    parents: dict[int, int | None] | None = None  # organism_id -> parent_id
    """Lineage map over every organism ever created (founders -> None);
    feed to :func:`repro.agents.lineage.founder_of`.  ``None`` unless the
    run was started with ``record_lineage=True`` — long sweeps should
    leave it off so results stop accumulating an unbounded id map."""

    @property
    def steps(self) -> int:
        """Number of simulated steps."""
        return len(self.alive)

    def quality_trace(self) -> QualityTrace:
        """Population health as a 0..100 quality signal.

        Quality = satisfied fraction × 100 (an extinct population scores
        zero), directly consumable by :mod:`repro.core.bruneau`.
        """
        q = np.clip(self.satisfied_fraction * 100.0, 0.0, 100.0)
        times = np.arange(len(q), dtype=float)
        if len(q) < 2:
            times = np.asarray([0.0, 1.0])
            q = np.asarray([q[0] if len(q) else 100.0] * 2)
        return QualityTrace(times, q)


class EvolutionSimulator:
    """Runs digital-organism populations through shock regimes.

    Parameters
    ----------
    income_rate:
        Resources earned per step by a perfectly fit organism (scaled
        linearly by fitness).
    living_cost:
        Resources burned per step just to stay alive.
    replication_threshold:
        Resource level at which an organism splits.
    mutation_rate:
        Per-locus flip probability at replication.
    capacity:
        Carrying capacity; replication pauses at or above it.
    """

    engine_name = "object"
    """Tag used by the tracing facade and :func:`make_engine`."""

    def __init__(
        self,
        income_rate: float = 1.5,
        living_cost: float = 1.0,
        replication_threshold: float = 6.0,
        mutation_rate: float = 0.02,
        capacity: int = 200,
    ):
        if income_rate < 0:
            raise ConfigurationError(f"income_rate must be >= 0, got {income_rate}")
        if living_cost < 0:
            raise ConfigurationError(f"living_cost must be >= 0, got {living_cost}")
        if replication_threshold <= 0:
            raise ConfigurationError(
                f"replication_threshold must be > 0, got {replication_threshold}"
            )
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.income_rate = income_rate
        self.living_cost = living_cost
        self.replication_threshold = replication_threshold
        self.mutator = BitFlipMutator(mutation_rate)
        self.capacity = capacity

    def run(
        self,
        population: Population,
        env: ConstraintEnvironment,
        steps: int,
        shocks: ShockSchedule | None = None,
        seed: SeedLike = None,
        record_lineage: bool = False,
    ) -> SimulationResult:
        """Simulate ``steps`` steps; the input population is not mutated.

        ``record_lineage=True`` additionally returns the id → parent-id
        map over every organism ever created (founders map to ``None``);
        it is off by default because the map grows without bound over
        long sweeps.

        The active :class:`repro.runtime.trace.Tracer` (if any) records
        a ``sim.run.<engine>`` timer, ``sim.runs.<engine>`` /
        ``sim.steps.<engine>`` counters, and a per-step hook tick.
        """
        tr = trace.current()
        tr.count(f"sim.runs.{self.engine_name}")
        with tr.timer(f"sim.run.{self.engine_name}"):
            return self._run_impl(
                population,
                env,
                steps,
                shocks=shocks,
                seed=seed,
                record_lineage=record_lineage,
            )

    def _run_impl(
        self,
        population: Population,
        env: ConstraintEnvironment,
        steps: int,
        shocks: ShockSchedule | None = None,
        seed: SeedLike = None,
        record_lineage: bool = False,
    ) -> SimulationResult:
        if steps < 1:
            raise ConfigurationError(f"steps must be >= 1, got {steps}")
        tr = trace.current()
        rng = make_rng(seed)
        organisms = list(population.organisms)
        shocks = shocks or ShockSchedule(period=0, severity=0)
        parents: dict[int, int | None] | None = (
            {o.organism_id: None for o in organisms}
            if record_lineage
            else None
        )
        alive_series: list[int] = []
        fitness_series: list[float] = []
        satisfied_series: list[float] = []
        diversity_series: list[float] = []
        shock_times: list[int] = []

        for t in range(steps):
            if shocks.fires_at(t):
                env = env.shocked(shocks.severity, rng)
                shock_times.append(t)
            next_generation: list[Organism] = []
            for org in organisms:
                org = org.adapt_toward(env.target, rng)
                income = self.income_rate * env.fitness(org.genome)
                org = org.with_resources(
                    org.resources + income - self.living_cost
                ).aged()
                if org.alive:
                    next_generation.append(org)
            organisms = next_generation
            # replication pass (bounded by capacity)
            offspring: list[Organism] = []
            for i, org in enumerate(organisms):
                if (
                    org.resources >= self.replication_threshold
                    and len(organisms) + len(offspring) < self.capacity
                ):
                    child_genome = self.mutator.mutate(org.genome, rng)
                    parent, child = org.split(child_genome)
                    organisms[i] = parent
                    offspring.append(child)
                    if parents is not None:
                        parents[child.organism_id] = org.organism_id
            organisms.extend(offspring)

            snapshot = Population(organisms)
            alive_series.append(len(snapshot))
            fitness_series.append(snapshot.mean_fitness(env))
            satisfied_series.append(snapshot.satisfied_fraction(env))
            diversity_series.append(snapshot.diversity_index())
            tr.step(self.engine_name, t, len(snapshot))
            if not organisms:
                break

        return SimulationResult(
            alive=np.asarray(alive_series),
            mean_fitness=np.asarray(fitness_series),
            satisfied_fraction=np.asarray(satisfied_series),
            diversity=np.asarray(diversity_series),
            shock_times=tuple(shock_times),
            final_population=Population(organisms),
            survived=bool(organisms),
            parents=parents,
        )
