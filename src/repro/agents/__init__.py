"""The evolutionary multi-agent testbed (paper §4.4): digital organisms,
constraint environments with shock schedules, populations with strategy
metrics, and the simulation loop.
"""

from .arrayengine import ArraySimulator, make_engine
from .environment import ConstraintEnvironment, ShockSchedule
from .lineage import (
    SpeciesClustering,
    cluster_species,
    founder_of,
    survival_flags_by_species,
)
from .organism import Organism
from .population import Population, seed_population
from .simulation import EvolutionSimulator, SimulationResult

__all__ = [
    "ArraySimulator",
    "make_engine",
    "ConstraintEnvironment",
    "SpeciesClustering",
    "cluster_species",
    "founder_of",
    "survival_flags_by_species",
    "ShockSchedule",
    "Organism",
    "Population",
    "seed_population",
    "EvolutionSimulator",
    "SimulationResult",
]
