"""Populations of digital organisms and their strategy-level metrics.

The paper quantifies the three passive strategies on a population
(§4.4): redundancy = resource held per agent, diversity = the §3.2.4
diversity index over genotype classes, adaptability = bits flipped per
step.  :class:`Population` carries the organisms plus exactly those
measurements, and :func:`seed_population` maps a
:class:`~repro.core.strategies.StrategyMix` budget onto initial
resources, genotype spread and adaptation rate.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..core.strategies import StrategyMix
from ..csp.bitstring import BitString, pack_matrix, packed_hamming, to_matrix
from ..dynamics.diversity import maruyama_diversity_index
from ..errors import ConfigurationError
from ..rng import SeedLike, make_rng
from .environment import ConstraintEnvironment
from .organism import Organism

__all__ = ["Population", "seed_population"]


@dataclass
class Population:
    """A mutable collection of organisms with strategy metrics."""

    organisms: list[Organism] = field(default_factory=list)

    def __post_init__(self) -> None:
        lengths = {o.genome.n for o in self.organisms}
        if len(lengths) > 1:
            raise ConfigurationError(
                f"organisms have mixed genome lengths: {sorted(lengths)}"
            )

    def __len__(self) -> int:
        return len(self.organisms)

    @property
    def extinct(self) -> bool:
        """No organisms remain."""
        return not self.organisms

    def genotype_counts(self) -> Counter:
        """Counts per distinct genome — the 'species' of the testbed."""
        return Counter(o.genome for o in self.organisms)

    def diversity_index(self) -> float:
        """The paper's G over genotype-class populations (0 when extinct)."""
        counts = self.genotype_counts()
        if not counts:
            return 0.0
        return maruyama_diversity_index(list(counts.values()))

    def mean_resources(self) -> float:
        """Average redundancy buffer held per organism."""
        if not self.organisms:
            return 0.0
        return float(np.mean([o.resources for o in self.organisms]))

    def mean_adaptability(self) -> float:
        """Average bits-per-step adaptation capacity."""
        if not self.organisms:
            return 0.0
        return float(np.mean([o.adaptability for o in self.organisms]))

    def mean_fitness(self, env: ConstraintEnvironment) -> float:
        """Average graded environment fitness (0 when extinct)."""
        if not self.organisms:
            return 0.0
        return float(np.mean([env.fitness(o.genome) for o in self.organisms]))

    def satisfied_fraction(self, env: ConstraintEnvironment) -> float:
        """Share of organisms satisfying the crisp constraint."""
        if not self.organisms:
            return 0.0
        return float(
            np.mean([env.satisfies(o.genome) for o in self.organisms])
        )

    def mean_pairwise_hamming(self, sample: int = 200,
                              seed: SeedLike = None) -> float:
        """Genetic spread: mean Hamming distance over sampled pairs.

        Pairs are sampled *with replacement across pairs* (each pair is
        two distinct organisms, but the same pair may be drawn twice),
        in one vectorized batch: genomes are packed into uint64 words
        and distances come from XOR + popcount rather than a Python loop
        per pair.
        """
        n = len(self.organisms)
        if n < 2:
            return 0.0
        rng = make_rng(seed)
        draws = min(sample, n * (n - 1) // 2)
        i = rng.integers(0, n, size=draws)
        j = rng.integers(0, n - 1, size=draws)
        j = np.where(j >= i, j + 1, j)  # j != i, uniform over the rest
        packed = pack_matrix(to_matrix([o.genome for o in self.organisms]))
        return float(packed_hamming(packed[i], packed[j]).mean())


def seed_population(
    mix: StrategyMix,
    env: ConstraintEnvironment,
    n_agents: int = 50,
    budget: float = 100.0,
    max_adaptability: int = 4,
    seed: SeedLike = None,
) -> Population:
    """Materialize a strategy mix as an initial population.

    The paper's budget question (§4.4) becomes concrete arithmetic:

    * **redundancy share** buys starting resources: each agent receives
      ``2 + redundancy × budget / n_agents`` units (2 is subsistence);
    * **diversity share** buys genotype spread: each agent's genome
      starts at the (fit) target with ``round(diversity × n/4)`` random
      loci scrambled — standing variation paid for in initial fitness;
    * **adaptability share** buys repair speed: bits-per-step is
      ``1 + round(adaptability × (max_adaptability − 1))``.
    """
    if n_agents < 1:
        raise ConfigurationError(f"n_agents must be >= 1, got {n_agents}")
    if budget < 0:
        raise ConfigurationError(f"budget must be >= 0, got {budget}")
    if max_adaptability < 1:
        raise ConfigurationError(
            f"max_adaptability must be >= 1, got {max_adaptability}"
        )
    rng = make_rng(seed)
    resources = 2.0 + mix.redundancy * budget / n_agents
    adaptability = 1 + round(mix.adaptability * (max_adaptability - 1))
    scramble = round(mix.diversity * env.n / 4)
    organisms = []
    for _ in range(n_agents):
        genome = env.target
        if scramble > 0:
            flips = rng.choice(env.n, size=scramble, replace=False)
            genome = genome.flip(*(int(i) for i in flips))
        organisms.append(
            Organism(genome=genome, resources=resources,
                     adaptability=adaptability)
        )
    return Population(organisms)
