"""Digital organisms (paper §4.4).

"Each agent in the system is a digital organism that can self-replicate,
mutate, or evolve."  An organism carries a bit-string genome (its
configuration against the environment's constraint), a resource store
(the redundancy factor: "an agent can remain alive until it uses up its
resources even if it does not satisfy a constraint"), and an adaptation
rate ("the number of bits an agent can flip at a time").
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from itertools import count

import numpy as np

from ..csp.bitstring import BitString
from ..errors import ConfigurationError

__all__ = ["Organism"]

_ids = count()


@dataclass(frozen=True)
class Organism:
    """One digital organism.

    Organisms are immutable records; simulation steps produce updated
    copies, which keeps populations safe to snapshot and replay.
    """

    genome: BitString
    resources: float
    adaptability: int = 1
    age: int = 0
    organism_id: int = field(default_factory=lambda: next(_ids))
    parent_id: int | None = None

    def __post_init__(self) -> None:
        if self.resources < 0:
            raise ConfigurationError(
                f"resources must be >= 0, got {self.resources}"
            )
        if self.adaptability < 0:
            raise ConfigurationError(
                f"adaptability must be >= 0, got {self.adaptability}"
            )
        if self.age < 0:
            raise ConfigurationError(f"age must be >= 0, got {self.age}")

    @property
    def alive(self) -> bool:
        """Alive while any resource remains."""
        return self.resources > 0.0

    def with_resources(self, resources: float) -> "Organism":
        """Copy with an updated resource store (floored at zero)."""
        return replace(self, resources=max(0.0, resources))

    def aged(self) -> "Organism":
        """Copy one step older."""
        return replace(self, age=self.age + 1)

    def adapted(self, genome: BitString) -> "Organism":
        """Copy with a new genome (an adaptation move)."""
        if genome.n != self.genome.n:
            raise ConfigurationError(
                f"genome length changed: {self.genome.n} -> {genome.n}"
            )
        return replace(self, genome=genome)

    def adapt_toward(self, target: BitString,
                     rng: np.random.Generator) -> "Organism":
        """Flip up to ``adaptability`` mismatched bits toward ``target``.

        The organism senses which of its loci are maladapted (a local
        constraint-violation signal, not global knowledge) and fixes a
        random subset of them, at most ``adaptability`` per step — the
        paper's adaptation-speed dial.
        """
        if target.n != self.genome.n:
            raise ConfigurationError(
                f"target length {target.n} != genome length {self.genome.n}"
            )
        mismatched = [
            i for i in range(self.genome.n) if self.genome[i] != target[i]
        ]
        if not mismatched or self.adaptability == 0:
            return self
        n_fix = min(self.adaptability, len(mismatched))
        picks = rng.choice(len(mismatched), size=n_fix, replace=False)
        flips = [mismatched[int(i)] for i in picks]
        return self.adapted(self.genome.flip(*flips))

    def split(self, mutated_genome: BitString) -> tuple["Organism", "Organism"]:
        """Self-replicate: halve resources between parent and offspring."""
        half = self.resources / 2.0
        parent = replace(self, resources=half)
        child = Organism(
            genome=mutated_genome,
            resources=half,
            adaptability=self.adaptability,
            age=0,
            parent_id=self.organism_id,
        )
        return parent, child
