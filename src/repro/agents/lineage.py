"""Species clustering and lineage bookkeeping for agent populations.

The §5.2 granularity discussion needs a *species* notion for digital
organisms.  Exact-genotype classes (used by the diversity index) are too
fine once mutation is on; this module clusters genomes by Hamming
radius — organisms within ``radius`` flips of a cluster seed belong to
one species — and tracks parent→child lineage so experiments can follow
founder clades through shocks.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Sequence

import numpy as np

from ..csp.bitstring import BitString
from ..errors import ConfigurationError
from .organism import Organism
from .population import Population

__all__ = ["SpeciesClustering", "cluster_species", "founder_of",
           "survival_flags_by_species"]


@dataclass(frozen=True)
class SpeciesClustering:
    """A partition of organisms into Hamming-ball species."""

    seeds: tuple[BitString, ...]
    assignment: Mapping[int, int]  # organism_id -> species index
    radius: int

    @property
    def n_species(self) -> int:
        """Number of clusters found."""
        return len(self.seeds)

    def members(self, species: int) -> tuple[int, ...]:
        """Organism ids assigned to one species."""
        if not 0 <= species < self.n_species:
            raise ConfigurationError(
                f"species index {species} out of range"
            )
        return tuple(
            oid for oid, s in self.assignment.items() if s == species
        )

    def sizes(self) -> list[int]:
        """Cluster sizes, indexed by species."""
        counts = [0] * self.n_species
        for s in self.assignment.values():
            counts[s] += 1
        return counts


def cluster_species(population: Population, radius: int) -> SpeciesClustering:
    """Greedy leader clustering by Hamming distance.

    Organisms are scanned in order; each joins the first existing seed
    within ``radius``, else founds a new species.  Deterministic given
    the population order; radius 0 reduces to exact-genotype classes.
    """
    if radius < 0:
        raise ConfigurationError(f"radius must be >= 0, got {radius}")
    seeds: list[BitString] = []
    assignment: Dict[int, int] = {}
    for organism in population.organisms:
        placed = False
        for idx, seed in enumerate(seeds):
            if organism.genome.hamming(seed) <= radius:
                assignment[organism.organism_id] = idx
                placed = True
                break
        if not placed:
            seeds.append(organism.genome)
            assignment[organism.organism_id] = len(seeds) - 1
    return SpeciesClustering(
        seeds=tuple(seeds), assignment=assignment, radius=radius
    )


def founder_of(organism: Organism,
               parents: Mapping[int, int | None]) -> int:
    """Walk the parent chain to the founding ancestor's id.

    ``parents`` maps organism_id -> parent_id (None for founders); build
    it by recording every organism ever created during a run.
    """
    current = organism.organism_id
    seen = set()
    while True:
        if current in seen:
            raise ConfigurationError(
                f"lineage cycle detected at organism {current}"
            )
        seen.add(current)
        parent = parents.get(current)
        if parent is None:
            return current
        current = parent


def survival_flags_by_species(
    before: Population,
    after: Population,
    radius: int,
) -> dict[str, list[bool]]:
    """Granularity-ready survival record from two population snapshots.

    Species are clustered on the *before* snapshot; each founding
    member's flag is whether it is still present in ``after`` (by
    organism id).  Feed the result to
    :func:`repro.analysis.granularity.granularity_scores`.
    """
    clustering = cluster_species(before, radius)
    alive = {o.organism_id for o in after.organisms}
    flags: dict[str, list[bool]] = defaultdict(list)
    for organism in before.organisms:
        species = clustering.assignment[organism.organism_id]
        flags[f"species-{species}"].append(organism.organism_id in alive)
    return dict(flags)
