"""Environments for the multi-agent testbed (paper §4.4, Fig. 4).

The environment is a constraint over organism genomes — here the direct
bit-string form: a target configuration and a tolerance.  An organism
*satisfies* the environment when its genome is within ``tolerance``
Hamming distance of the target.  Shocks move the target
(``severity`` bits flip), which is exactly the Fig. 4 picture: the
environment changes and the population must adapt to the new constraint.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..csp.bitstring import BitString
from ..errors import ConfigurationError
from ..rng import SeedLike, make_rng

__all__ = ["ConstraintEnvironment", "ShockSchedule"]


@dataclass(frozen=True)
class ConstraintEnvironment:
    """A target-configuration environment with graded fitness.

    ``fitness(genome)`` is 1 at the target falling linearly to 0 at the
    full genome length — the smooth signal selection acts on;
    ``satisfies(genome)`` is the crisp constraint (within tolerance).
    """

    target: BitString
    tolerance: int = 0

    def __post_init__(self) -> None:
        if self.tolerance < 0:
            raise ConfigurationError(
                f"tolerance must be >= 0, got {self.tolerance}"
            )
        if self.tolerance > self.target.n:
            raise ConfigurationError(
                f"tolerance {self.tolerance} exceeds genome length {self.target.n}"
            )

    @property
    def n(self) -> int:
        """Genome length this environment constrains."""
        return self.target.n

    def distance(self, genome: BitString) -> int:
        """Hamming distance from the target."""
        return genome.hamming(self.target)

    def satisfies(self, genome: BitString) -> bool:
        """The crisp constraint s ∈ C."""
        return self.distance(genome) <= self.tolerance

    def fitness(self, genome: BitString) -> float:
        """Graded match in [0, 1]: 1 − distance/n."""
        if self.n == 0:
            return 1.0
        return 1.0 - self.distance(genome) / self.n

    def shocked(self, severity: int, seed: SeedLike = None
                ) -> "ConstraintEnvironment":
        """A new environment whose target differs in ``severity`` loci."""
        if not 0 <= severity <= self.n:
            raise ConfigurationError(
                f"severity must be in [0, {self.n}], got {severity}"
            )
        if severity == 0:
            return self
        rng = make_rng(seed)
        flips = rng.choice(self.n, size=severity, replace=False)
        return replace(
            self, target=self.target.flip(*(int(i) for i in flips))
        )

    @classmethod
    def random(cls, n: int, tolerance: int = 0,
               seed: SeedLike = None) -> "ConstraintEnvironment":
        """A uniformly random target of length ``n``."""
        return cls(target=BitString.random(n, seed), tolerance=tolerance)


@dataclass(frozen=True)
class ShockSchedule:
    """When environment shocks land and how hard they hit.

    ``period`` steps between shocks (first at ``first``); each shock
    flips ``severity`` target bits.  A degenerate schedule with
    ``period = 0`` never fires.
    """

    period: int
    severity: int
    first: int | None = None

    def __post_init__(self) -> None:
        if self.period < 0:
            raise ConfigurationError(f"period must be >= 0, got {self.period}")
        if self.severity < 0:
            raise ConfigurationError(
                f"severity must be >= 0, got {self.severity}"
            )
        if self.first is not None and self.first < 0:
            raise ConfigurationError(f"first must be >= 0, got {self.first}")

    def fires_at(self, t: int) -> bool:
        """Whether a shock lands at step ``t``."""
        if self.period == 0 or self.severity == 0:
            return False
        first = self.period if self.first is None else self.first
        if t < first:
            return False
        return (t - first) % self.period == 0
