"""Array-backed population engine (paper §4.4, performance lane).

:class:`ArraySimulator` is observationally equivalent to
:class:`~repro.agents.simulation.EvolutionSimulator` — same parameters,
same :class:`~repro.agents.simulation.SimulationResult`, statistically
identical dynamics — but stores the whole population as numpy arrays:
genomes as an ``(N, n)`` uint8 matrix, resources / adaptability / age /
ids as 1-D arrays.  Every step (adaptation toward the target, income and
living cost, death, capacity-capped replication with binomial mutation,
the diversity index via a row-hash ``np.unique``) is a whole-population
vectorized operation drawing from a single
:class:`numpy.random.Generator`, which is what makes the paper's
"various multi-agent simulations while changing the above system
parameters" sweeps tractable at scale.

Equivalence contract (exercised by ``tests/agents/test_arrayengine.py``):

* on the deterministic path — no shocks, zero mutation, adaptability
  either 0 or ≥ genome length — both engines agree *exactly* on every
  recorded series;
* on stochastic paths the random streams differ (the object engine draws
  per organism, this engine draws per step), so runs agree statistically
  over seeds rather than bit-for-bit.

:func:`make_engine` is the shared construction point: benchmarks and
sweeps build their engine through it so both implementations stay
benchmarkable against each other (``REPRO_AGENT_ENGINE=object`` flips a
whole run back to the reference engine).
"""

from __future__ import annotations

import numpy as np

from ..csp.bitstring import BitString, from_matrix, pack_matrix, to_matrix
from ..errors import ConfigurationError
from ..rng import SeedLike, make_rng
from ..runtime import trace
from ..runtime.engines import resolve_engine_kind
from .environment import ConstraintEnvironment, ShockSchedule
from .organism import Organism, _ids
from .population import Population
from .simulation import EvolutionSimulator, SimulationResult

__all__ = ["ArraySimulator", "make_engine"]


class ArraySimulator(EvolutionSimulator):
    """Vectorized drop-in replacement for :class:`EvolutionSimulator`."""

    engine_name = "array"

    def _run_impl(
        self,
        population: Population,
        env: ConstraintEnvironment,
        steps: int,
        shocks: ShockSchedule | None = None,
        seed: SeedLike = None,
        record_lineage: bool = False,
    ) -> SimulationResult:
        """Simulate ``steps`` steps; the input population is not mutated."""
        if steps < 1:
            raise ConfigurationError(f"steps must be >= 1, got {steps}")
        tr = trace.current()
        rng = make_rng(seed)
        shocks = shocks or ShockSchedule(period=0, severity=0)
        orgs = population.organisms
        n = env.n

        if orgs:
            genomes = to_matrix([o.genome for o in orgs])
            if genomes.shape[1] != n:
                raise ConfigurationError(
                    f"target length {n} != genome length {genomes.shape[1]}"
                )
        else:
            genomes = np.zeros((0, n), dtype=np.uint8)
        resources = np.asarray([o.resources for o in orgs], dtype=float)
        adaptability = np.asarray(
            [o.adaptability for o in orgs], dtype=np.int64
        )
        age = np.asarray([o.age for o in orgs], dtype=np.int64)
        ids = np.asarray([o.organism_id for o in orgs], dtype=np.int64)
        parent_ids = np.asarray(
            [-1 if o.parent_id is None else o.parent_id for o in orgs],
            dtype=np.int64,
        )
        target = env.target.to_array()
        tolerance = env.tolerance
        parents: dict[int, int | None] | None = (
            {int(i): None for i in ids} if record_lineage else None
        )
        rate = self.mutator.rate

        alive_series: list[int] = []
        fitness_series: list[float] = []
        satisfied_series: list[float] = []
        diversity_series: list[float] = []
        shock_times: list[int] = []

        for t in range(steps):
            if shocks.fires_at(t):
                if shocks.severity > n:
                    raise ConfigurationError(
                        f"severity must be in [0, {n}], "
                        f"got {shocks.severity}"
                    )
                flips = rng.choice(n, size=shocks.severity, replace=False)
                target[flips] ^= 1
                shock_times.append(t)

            count = len(resources)
            if count:
                # adapt: flip up to adaptability mismatched loci, chosen
                # uniformly without replacement, toward the target
                mismatch = genomes != target
                n_mismatched = mismatch.sum(axis=1)
                n_fix = np.minimum(adaptability, n_mismatched)
                fixing = n_fix > 0
                if n > 0 and fixing.any():
                    # organisms that fix every mismatch need no draw;
                    # only partially-adapting rows rank random keys
                    flip = mismatch & fixing[:, None]
                    partial = np.nonzero(n_fix < n_mismatched)[0]
                    partial = partial[fixing[partial]]
                    if partial.size:
                        sub = mismatch[partial]
                        keys = rng.random(sub.shape)
                        keys[~sub] = 2.0  # matched loci sort last
                        kth = np.take_along_axis(
                            np.sort(keys, axis=1),
                            (n_fix[partial] - 1)[:, None],
                            axis=1,
                        )
                        flip[partial] = sub & (keys <= kth)
                    genomes = genomes ^ flip.astype(np.uint8)
                distance = n_mismatched - n_fix
                fitness = (
                    1.0 - distance / n if n else np.ones(count)
                )
                resources = (
                    resources + self.income_rate * fitness
                    - self.living_cost
                )
                alive = resources > 0.0
                genomes = genomes[alive]
                resources = resources[alive]
                adaptability = adaptability[alive]
                age = age[alive] + 1
                ids = ids[alive]
                parent_ids = parent_ids[alive]
                distance = distance[alive]

                # replication pass (bounded by capacity, in array order)
                slots = self.capacity - len(resources)
                eligible = resources >= self.replication_threshold
                if slots > 0 and eligible.any():
                    take = eligible & (np.cumsum(eligible) <= slots)
                    rep = np.nonzero(take)[0]
                    if rep.size:
                        resources[rep] *= 0.5
                        child_genomes = genomes[rep]
                        if rate > 0.0 and n > 0:
                            mutated = (
                                rng.random((rep.size, n)) < rate
                            )
                            child_genomes = child_genomes ^ mutated.astype(
                                np.uint8
                            )
                        child_distance = (child_genomes != target).sum(
                            axis=1
                        )
                        child_ids = np.fromiter(
                            (next(_ids) for _ in range(rep.size)),
                            dtype=np.int64,
                            count=rep.size,
                        )
                        if parents is not None:
                            for cid, pid in zip(child_ids, ids[rep]):
                                parents[int(cid)] = int(pid)
                        genomes = np.concatenate([genomes, child_genomes])
                        resources = np.concatenate(
                            [resources, resources[rep]]
                        )
                        adaptability = np.concatenate(
                            [adaptability, adaptability[rep]]
                        )
                        age = np.concatenate(
                            [age, np.zeros(rep.size, dtype=np.int64)]
                        )
                        parent_ids = np.concatenate([parent_ids, ids[rep]])
                        ids = np.concatenate([ids, child_ids])
                        distance = np.concatenate(
                            [distance, child_distance]
                        )

            count = len(resources)
            alive_series.append(count)
            if count:
                fitness_series.append(
                    1.0 - distance.sum() / (n * count) if n else 1.0
                )
                satisfied_series.append(
                    np.count_nonzero(distance <= tolerance) / count
                )
                diversity_series.append(_diversity(genomes))
                tr.step(self.engine_name, t, count)
            else:
                fitness_series.append(0.0)
                satisfied_series.append(0.0)
                diversity_series.append(0.0)
                tr.step(self.engine_name, t, 0)
                break

        final = Population(
            [
                Organism(
                    genome=genome,
                    resources=float(res),
                    adaptability=int(adapt),
                    age=int(a),
                    organism_id=int(oid),
                    parent_id=None if pid < 0 else int(pid),
                )
                for genome, res, adapt, a, oid, pid in zip(
                    from_matrix(genomes),
                    resources,
                    adaptability,
                    age,
                    ids,
                    parent_ids,
                )
            ]
        )
        return SimulationResult(
            alive=np.asarray(alive_series),
            mean_fitness=np.asarray(fitness_series),
            satisfied_fraction=np.asarray(satisfied_series),
            diversity=np.asarray(diversity_series),
            shock_times=tuple(shock_times),
            final_population=final,
            survived=len(final) > 0,
            parents=parents,
        )


_POW2 = 2.0 ** np.arange(52)


def _diversity(genomes: np.ndarray) -> float:
    """The paper's G over genotype classes via a row-hash ``np.unique``.

    Each genome row collapses to one scalar hash — an exact power-of-two
    dot product up to 52 loci (the float64 integer range), packed uint64
    words beyond — so genotype-class counts come from one sort instead
    of a Python ``Counter`` over hashed objects.
    """
    count, n = genomes.shape
    if n == 0:
        return 1.0 / (count * count)
    if n <= 52:
        words = np.sort(genomes @ _POW2[:n])
    else:
        packed = np.ascontiguousarray(pack_matrix(genomes))
        rows = packed.view(
            np.dtype((np.void, packed.shape[1] * packed.itemsize))
        )
        words = np.sort(rows.ravel())
    starts = np.concatenate(
        ([0], np.flatnonzero(words[1:] != words[:-1]) + 1, [count])
    )
    counts = np.diff(starts).astype(float)
    return float(counts.size / np.sum(counts**2))


_ENGINES = {"object": EvolutionSimulator, "array": ArraySimulator}


def make_engine(kind: str | None = None, **params) -> EvolutionSimulator:
    """Build an agent engine: ``'array'`` (vectorized) or ``'object'``.

    ``kind=None`` reads the ``REPRO_AGENT_ENGINE`` environment variable
    and defaults to ``'array'``, so a whole benchmark run can be flipped
    back to the reference object engine without touching code.  An
    unrecognized value — passed directly or set in the environment —
    raises :class:`~repro.errors.EngineError` naming the valid choices
    rather than silently falling back to a default engine (resolution is
    shared across all three engine seams by
    :func:`repro.runtime.engines.resolve_engine_kind`, which also lets
    an installed MAPE supervisor degrade ``array`` back to ``object``
    while its circuit breaker is open).  Keyword parameters are passed
    straight to the engine constructor.
    """
    return _ENGINES[resolve_engine_kind("agents", kind)](**params)
