"""Deterministic random-number plumbing.

All stochastic entry points in the library accept either a seed or a
:class:`numpy.random.Generator`. :func:`make_rng` normalizes both forms so
that simulations are reproducible by construction, and :func:`spawn`
derives independent child generators for sub-simulations (e.g. one per
agent, one per trial) without correlated streams.
"""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[int, None, np.random.Generator, np.random.SeedSequence]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be ``None`` (fresh entropy), an ``int``, a
    ``SeedSequence``, or an existing ``Generator`` (returned unchanged, so
    callers can thread one stream through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators from ``rng``.

    Children are seeded from draws of the parent stream, so the same
    parent seed always yields the same family of children.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
