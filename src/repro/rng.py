"""Deterministic random-number plumbing.

All stochastic entry points in the library accept either a seed or a
:class:`numpy.random.Generator`. :func:`make_rng` normalizes both forms so
that simulations are reproducible by construction, and :func:`spawn`
derives independent child generators for sub-simulations (e.g. one per
agent, one per trial) without correlated streams.

Child derivation goes through :meth:`numpy.random.SeedSequence.spawn`,
which extends the parent's spawn key — a construction with no
birthday-collision risk and provably non-overlapping streams.  (The
pre-PR-2 implementation seeded children from 63-bit integer draws of the
parent stream; with many children that risks colliding or correlated
streams, exactly what diversity/weak-selection experiments are sensitive
to.  :func:`legacy_spawn` preserves those old streams for reproducing
results recorded before the fix.)
"""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[int, None, np.random.Generator, np.random.SeedSequence]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be ``None`` (fresh entropy), an ``int``, a
    ``SeedSequence``, or an existing ``Generator`` (returned unchanged, so
    callers can thread one stream through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators from ``rng``.

    Children come from the parent's :class:`~numpy.random.SeedSequence`
    via ``seed_seq.spawn`` (the same parent seed always yields the same
    family, and successive calls yield fresh, disjoint families); a
    generator carrying no seed sequence — e.g. one wrapped around a
    hand-built bit generator — falls back to spawning from a fresh
    entropy draw of the parent stream.  Unlike :func:`legacy_spawn`,
    the spawn-key path does not advance the parent's stream.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    if n == 0:
        return []
    seed_seq = getattr(rng.bit_generator, "seed_seq", None)
    if isinstance(seed_seq, np.random.SeedSequence):
        children = seed_seq.spawn(n)
    else:  # pragma: no cover - only custom bit generators land here
        entropy = int(rng.integers(0, 2**63 - 1))
        children = np.random.SeedSequence(entropy).spawn(n)
    return [np.random.default_rng(child) for child in children]


def legacy_spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Pre-PR-2 child derivation (compat shim; prefer :func:`spawn`).

    Seeds each child from a 63-bit integer draw of the parent stream —
    kept only so results recorded under the old scheme can be
    reproduced.  Do not use for new work: integer-draw seeding has a
    birthday-collision risk across many children and no stream-overlap
    guarantee.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
