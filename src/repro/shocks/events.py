"""Shock and X-event types (paper §1, §5.1).

The paper's opening distinguishes shocks by two axes the discussion
section (§5.1) returns to:

* **anticipation** — some shock types are historically known with an
  estimable probability distribution (earthquakes); others are complete
  surprises ("something completely unheard of");
* **targeting** — some shocks strike components at random; others are
  deliberately aimed (a virus "designed to attack the hubs").

:class:`Shock` is the common event record used across simulators;
:class:`ShockType` captures the axes so experiments can sweep them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from ..errors import ConfigurationError

__all__ = ["Targeting", "Knowability", "ShockType", "Shock"]


class Targeting(Enum):
    """Whether a shock strikes at random or aims at critical elements."""

    RANDOM = "random"
    TARGETED = "targeted"


class Knowability(Enum):
    """Whether a shock type is statistically anticipatable."""

    KNOWN_DISTRIBUTION = "known-distribution"  # e.g. earthquakes
    UNPRECEDENTED = "unprecedented"  # the true X-event


@dataclass(frozen=True)
class ShockType:
    """A class of shocks (the paper's event type D)."""

    name: str
    targeting: Targeting = Targeting.RANDOM
    knowability: Knowability = Knowability.KNOWN_DISTRIBUTION
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("shock type needs a non-empty name")


@dataclass(frozen=True, order=True)
class Shock:
    """One realized shock: a time, a magnitude, and its type.

    ``magnitude`` is in model units (losses, Richter-like scale, failed
    component counts — the consuming simulator decides); ``target`` can
    carry the aimed-at element for targeted shocks.
    """

    time: float
    magnitude: float
    shock_type: ShockType = field(
        default=ShockType("generic"), compare=False
    )
    target: Optional[object] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.magnitude < 0:
            raise ConfigurationError(
                f"shock magnitude must be >= 0, got {self.magnitude}"
            )

    def is_x_event(self, threshold: float) -> bool:
        """Whether this shock exceeds the design envelope ``threshold``.

        The paper's motivating example: a 14 m tsunami against an
        anticipated maximum of 5.7 m.
        """
        if threshold < 0:
            raise ConfigurationError(f"threshold must be >= 0, got {threshold}")
        return self.magnitude > threshold
