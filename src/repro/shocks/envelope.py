"""Design envelopes and the sea-wall problem (paper §3.4.6, §1).

The paper's motivating X-event: a 14 m tsunami against an anticipated
maximum of 5.7 m, and the observation that "it is recorded that the
Meiji Sanriku Tsunami was as high as 40 m ... It is not practical to
build such a high sea wall."  The design-envelope problem: pick a
protection height h; events above h cause (large) losses; building
costs grow with h.  With heavy-tailed magnitudes the optimum is finite
and *far below* the historical maximum — quantifying why designers
accept residual X-event risk (and why Takeuchi's mode-switching answer
matters for what remains).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError, ConfigurationError
from .distributions import MagnitudeDistribution, ParetoMagnitudes

__all__ = ["DesignProblem", "DesignEvaluation", "design_height_for_return_period"]


def design_height_for_return_period(
    magnitudes: ParetoMagnitudes, events_per_year: float, years: float
) -> float:
    """Height exceeded on average once per ``years`` (the return level).

    Solves P(X > h) × events_per_year × years = 1 for a Pareto law.
    """
    if events_per_year <= 0:
        raise ConfigurationError(
            f"events_per_year must be > 0, got {events_per_year}"
        )
    if years <= 0:
        raise ConfigurationError(f"years must be > 0, got {years}")
    target_exceedance = 1.0 / (events_per_year * years)
    if target_exceedance >= 1.0:
        return magnitudes.xmin
    # (xmin / h)^alpha = target  =>  h = xmin * target^(-1/alpha)
    return float(magnitudes.xmin * target_exceedance ** (-1.0 / magnitudes.alpha))


@dataclass(frozen=True)
class DesignEvaluation:
    """Costs of one candidate protection height."""

    height: float
    build_cost: float
    expected_breach_loss: float
    breach_probability: float

    @property
    def total_cost(self) -> float:
        """Build cost plus expected residual loss over the horizon."""
        return self.build_cost + self.expected_breach_loss


@dataclass(frozen=True)
class DesignProblem:
    """The sea-wall tradeoff.

    Parameters
    ----------
    magnitudes:
        The event-magnitude law (heights).
    events_per_year:
        Arrival rate of candidate events.
    horizon_years:
        Planning horizon.
    build_cost_per_unit:
        Cost of one unit of wall height; superlinear via
        ``build_cost_exponent`` (tall walls are disproportionately
        expensive, the practicality constraint the paper cites).
    breach_loss:
        Loss incurred by each event exceeding the wall.
    """

    magnitudes: MagnitudeDistribution
    events_per_year: float = 0.2
    horizon_years: float = 100.0
    build_cost_per_unit: float = 1.0
    build_cost_exponent: float = 1.5
    breach_loss: float = 500.0

    def __post_init__(self) -> None:
        if self.events_per_year <= 0:
            raise ConfigurationError("events_per_year must be > 0")
        if self.horizon_years <= 0:
            raise ConfigurationError("horizon_years must be > 0")
        if self.build_cost_per_unit < 0:
            raise ConfigurationError("build_cost_per_unit must be >= 0")
        if self.build_cost_exponent < 1.0:
            raise ConfigurationError("build_cost_exponent must be >= 1")
        if self.breach_loss < 0:
            raise ConfigurationError("breach_loss must be >= 0")

    def exceedance_probability(self, height: float,
                               n_samples: int = 200_000,
                               seed: int = 0) -> float:
        """P(event magnitude > height); analytic for Pareto, MC otherwise."""
        if height < 0:
            raise ConfigurationError(f"height must be >= 0, got {height}")
        if isinstance(self.magnitudes, ParetoMagnitudes):
            return float(self.magnitudes.survival(height))
        samples = self.magnitudes.sample(n_samples, seed)
        return float(np.mean(samples > height))

    def evaluate(self, height: float) -> DesignEvaluation:
        """Total-cost decomposition for one wall height."""
        p_breach = self.exceedance_probability(height)
        expected_events = self.events_per_year * self.horizon_years
        expected_loss = expected_events * p_breach * self.breach_loss
        build = self.build_cost_per_unit * height ** self.build_cost_exponent
        return DesignEvaluation(
            height=height,
            build_cost=build,
            expected_breach_loss=expected_loss,
            breach_probability=p_breach,
        )

    def optimize(self, heights: np.ndarray | list[float]) -> DesignEvaluation:
        """The cheapest candidate over a height grid."""
        heights = np.asarray(list(heights), dtype=float)
        if heights.ndim != 1 or len(heights) == 0:
            raise AnalysisError("heights must be a non-empty 1-D grid")
        evaluations = [self.evaluate(float(h)) for h in heights]
        return min(evaluations, key=lambda e: e.total_cost)
