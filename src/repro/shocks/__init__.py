"""Shock models: X-event types, magnitude laws, arrival processes,
heavy-tail diagnostics, and insurance viability (paper §1, §3.4.6, §5.1).
"""

from .arrivals import (
    ArrivalProcess,
    ClusteredArrivals,
    PoissonArrivals,
    ScheduledArrivals,
)
from .distributions import (
    ExponentialMagnitudes,
    GaussianMagnitudes,
    LognormalMagnitudes,
    MagnitudeDistribution,
    ParetoMagnitudes,
)
from .envelope import (
    DesignEvaluation,
    DesignProblem,
    design_height_for_return_period,
)
from .events import Knowability, Shock, ShockType, Targeting
from .heavytail import (
    TailFit,
    hill_estimator,
    mean_stability_ratio,
    pareto_mle,
    running_mean,
)
from .insurance import InsuranceOutcome, Insurer
from .returnlevels import (
    ReturnLevelCurve,
    empirical_return_level,
    extrapolated_return_level,
    return_level_curve,
)

__all__ = [
    "ArrivalProcess",
    "ClusteredArrivals",
    "PoissonArrivals",
    "ScheduledArrivals",
    "ExponentialMagnitudes",
    "GaussianMagnitudes",
    "LognormalMagnitudes",
    "MagnitudeDistribution",
    "ParetoMagnitudes",
    "DesignEvaluation",
    "DesignProblem",
    "design_height_for_return_period",
    "Knowability",
    "Shock",
    "ShockType",
    "Targeting",
    "TailFit",
    "hill_estimator",
    "mean_stability_ratio",
    "pareto_mle",
    "running_mean",
    "InsuranceOutcome",
    "ReturnLevelCurve",
    "empirical_return_level",
    "extrapolated_return_level",
    "return_level_curve",
    "Insurer",
]
