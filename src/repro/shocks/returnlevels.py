"""Empirical return levels: estimating the hazard from history.

"Some types of shock, such as earthquakes, are known in the history and
even their probabilistic distribution could be estimated" (§5.1).  Given
an observed magnitude record, these estimators answer the designer's
question — how big is the once-in-T-years event? — two ways: directly
from order statistics (reliable inside the record) and by Pareto tail
extrapolation (the only option beyond it, with all of Taleb's caveats).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError
from .heavytail import pareto_mle

__all__ = ["empirical_return_level", "extrapolated_return_level",
           "ReturnLevelCurve", "return_level_curve"]


def empirical_return_level(
    magnitudes: np.ndarray,
    events_per_year: float,
    years: float,
) -> float:
    """Order-statistics return level: exceeded once per ``years`` on
    average, interpolated within the observed record.

    Requires the record to actually cover the return period
    (``events_per_year × years`` ≤ sample size); beyond that use
    :func:`extrapolated_return_level`.
    """
    x = np.sort(np.asarray(magnitudes, dtype=float))
    if x.ndim != 1 or len(x) < 3:
        raise AnalysisError("need at least 3 observed magnitudes")
    if events_per_year <= 0 or years <= 0:
        raise AnalysisError("events_per_year and years must be > 0")
    n = len(x)
    # expected number of in-record exceedances of the T-year level: the
    # record spans n / events_per_year years, so k = record_years / T
    k = n / (events_per_year * years)
    if k < 1.0:
        raise AnalysisError(
            f"record of {n} events (~{n / events_per_year:.1f} years) "
            f"cannot resolve a {years}-year return period; "
            "use extrapolated_return_level"
        )
    target_rank = n - k  # 0-based rank from the bottom
    lo = int(np.floor(target_rank))
    frac = target_rank - lo
    if lo >= n - 1:
        return float(x[-1])
    return float(x[lo] * (1 - frac) + x[lo + 1] * frac)


def extrapolated_return_level(
    magnitudes: np.ndarray,
    events_per_year: float,
    years: float,
    tail_fraction: float = 0.2,
) -> float:
    """Pareto-tail return level fitted on the top ``tail_fraction``.

    Extends beyond the record by MLE tail extrapolation — exactly the
    step whose uncertainty the paper's X-event discussion warns about.
    """
    x = np.asarray(magnitudes, dtype=float)
    if x.ndim != 1 or len(x) < 10:
        raise AnalysisError("need at least 10 observed magnitudes")
    if not 0.0 < tail_fraction <= 1.0:
        raise AnalysisError(
            f"tail_fraction must be in (0, 1], got {tail_fraction}"
        )
    if events_per_year <= 0 or years <= 0:
        raise AnalysisError("events_per_year and years must be > 0")
    # inside the record, order statistics are more reliable than the fit
    if len(x) / (events_per_year * years) >= 1.0:
        return empirical_return_level(x, events_per_year, years)
    xmin = float(np.quantile(x, 1.0 - tail_fraction))
    fit = pareto_mle(x, xmin=xmin)
    # P(X > level) = tail_fraction * (xmin/level)^alpha  == target
    target = 1.0 / (events_per_year * years)
    ratio = target / tail_fraction
    return float(xmin * ratio ** (-1.0 / fit.alpha))


@dataclass(frozen=True)
class ReturnLevelCurve:
    """Return levels over a grid of return periods."""

    years: np.ndarray
    levels: np.ndarray
    method: str


def return_level_curve(
    magnitudes: np.ndarray,
    events_per_year: float,
    years_grid: np.ndarray | list[float],
    tail_fraction: float = 0.2,
) -> ReturnLevelCurve:
    """Extrapolated return levels across a period grid."""
    years_grid = np.asarray(list(years_grid), dtype=float)
    if years_grid.ndim != 1 or len(years_grid) == 0:
        raise AnalysisError("years_grid must be a non-empty 1-D grid")
    levels = np.asarray([
        extrapolated_return_level(magnitudes, events_per_year, float(y),
                                  tail_fraction)
        for y in years_grid
    ])
    return ReturnLevelCurve(years=years_grid, levels=levels,
                            method=f"pareto-tail({tail_fraction})")
