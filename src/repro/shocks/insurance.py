"""Insurance viability under thin vs. heavy tails (paper §3.4.6).

"We can not rely on insurance because insurance is based on the
estimated average loss of multiple incidents."  :class:`Insurer` is a
minimal risk-pooling model: it collects premiums priced from an
*estimated* mean loss (plus a loading factor) and pays realized losses
from a capital reserve.  Under Gaussian losses pooling works; under
Pareto losses with alpha near or below 1 the estimated mean is
meaningless and the insurer's ruin probability stays high no matter the
loading — the quantitative content of the paper's claim.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike, make_rng
from .distributions import MagnitudeDistribution

__all__ = ["InsuranceOutcome", "Insurer"]


@dataclass(frozen=True)
class InsuranceOutcome:
    """Result of simulating many insurer lifetimes."""

    ruin_probability: float
    mean_final_capital: float
    premium: float
    trials: int
    periods: int


@dataclass(frozen=True)
class Insurer:
    """A pooled insurer with premium loading and finite initial capital.

    Parameters
    ----------
    initial_capital:
        Reserve the insurer starts with (the redundancy buffer).
    loading:
        Premium markup over the estimated mean loss per period
        (0.2 = 20 % safety margin).
    estimation_window:
        Number of historical losses used to *estimate* the mean when
        pricing — the paper's point is precisely that this estimate fails
        for heavy tails.
    """

    initial_capital: float = 100.0
    loading: float = 0.2
    estimation_window: int = 200

    def __post_init__(self) -> None:
        if self.initial_capital < 0:
            raise ConfigurationError(
                f"initial capital must be >= 0, got {self.initial_capital}"
            )
        if self.loading < 0:
            raise ConfigurationError(f"loading must be >= 0, got {self.loading}")
        if self.estimation_window < 2:
            raise ConfigurationError(
                f"estimation window must be >= 2, got {self.estimation_window}"
            )

    def price_premium(
        self, losses: MagnitudeDistribution, seed: SeedLike = None
    ) -> float:
        """Premium per period: (1 + loading) × estimated mean historical loss."""
        rng = make_rng(seed)
        history = losses.sample(self.estimation_window, rng)
        return float((1.0 + self.loading) * history.mean())

    def simulate(
        self,
        losses: MagnitudeDistribution,
        periods: int = 100,
        trials: int = 500,
        seed: SeedLike = None,
        premium: float | None = None,
    ) -> InsuranceOutcome:
        """Monte-Carlo ruin analysis.

        Each trial prices a premium from a fresh loss history (unless a
        fixed ``premium`` is given), then runs ``periods`` of
        premium-in / loss-out accounting; ruin = capital below zero at
        any time.
        """
        if periods <= 0:
            raise ConfigurationError(f"periods must be > 0, got {periods}")
        if trials <= 0:
            raise ConfigurationError(f"trials must be > 0, got {trials}")
        rng = make_rng(seed)
        ruins = 0
        finals = np.empty(trials)
        priced = premium
        for trial in range(trials):
            p = self.price_premium(losses, rng) if premium is None else premium
            if trial == 0 and premium is None:
                priced = p
            capital = self.initial_capital
            ruined = False
            loss_draws = losses.sample(periods, rng)
            for loss in loss_draws:
                capital += p - float(loss)
                if capital < 0:
                    ruined = True
                    break
            ruins += ruined
            finals[trial] = capital
        return InsuranceOutcome(
            ruin_probability=ruins / trials,
            mean_final_capital=float(finals.mean()),
            premium=float(priced if priced is not None else 0.0),
            trials=trials,
            periods=periods,
        )
