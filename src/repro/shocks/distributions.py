"""Magnitude distributions: thin-tailed vs. heavy-tailed (paper §3.4.6).

Taleb's Black-Swan argument, as the paper relays it: "common statistics
based on Gaussian distribution, mean values, and standard deviations
etc. do not work for extreme events ... Many extreme events, such as
earthquakes, are known to follow a power-law distribution, and depending
on the parameter, a power-law distribution may not have a finite average
value or a finite standard deviation."

:class:`ParetoMagnitudes` exposes exactly that parameter dependence:
``alpha <= 1`` means infinite mean, ``alpha <= 2`` infinite variance.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike, make_rng

__all__ = [
    "MagnitudeDistribution",
    "GaussianMagnitudes",
    "LognormalMagnitudes",
    "ExponentialMagnitudes",
    "ParetoMagnitudes",
]


class MagnitudeDistribution(ABC):
    """A non-negative shock-magnitude law."""

    @abstractmethod
    def sample(self, size: int, seed: SeedLike = None) -> np.ndarray:
        """Draw ``size`` magnitudes."""

    @property
    @abstractmethod
    def mean(self) -> float:
        """Theoretical mean; ``inf`` when it does not exist."""

    @property
    @abstractmethod
    def variance(self) -> float:
        """Theoretical variance; ``inf`` when it does not exist."""

    @property
    def has_finite_mean(self) -> bool:
        """Whether an insurer can even price the average loss."""
        return np.isfinite(self.mean)

    @property
    def has_finite_variance(self) -> bool:
        """Whether loss pooling reduces relative risk (CLT applies)."""
        return np.isfinite(self.variance)


@dataclass(frozen=True)
class GaussianMagnitudes(MagnitudeDistribution):
    """|N(mu, sigma²)| — the thin-tailed baseline world."""

    mu: float = 1.0
    sigma: float = 0.25

    def __post_init__(self) -> None:
        if self.sigma <= 0:
            raise ConfigurationError(f"sigma must be > 0, got {self.sigma}")

    def sample(self, size: int, seed: SeedLike = None) -> np.ndarray:
        rng = make_rng(seed)
        return np.abs(rng.normal(self.mu, self.sigma, size=size))

    @property
    def mean(self) -> float:
        # Exact folded-normal mean; ≈ mu when mu >> sigma.
        from scipy.stats import foldnorm

        return float(foldnorm.mean(c=self.mu / self.sigma, scale=self.sigma))

    @property
    def variance(self) -> float:
        from scipy.stats import foldnorm

        return float(foldnorm.var(c=self.mu / self.sigma, scale=self.sigma))


@dataclass(frozen=True)
class LognormalMagnitudes(MagnitudeDistribution):
    """Lognormal: heavy-ish tail but all moments finite."""

    mu: float = 0.0
    sigma: float = 1.0

    def __post_init__(self) -> None:
        if self.sigma <= 0:
            raise ConfigurationError(f"sigma must be > 0, got {self.sigma}")

    def sample(self, size: int, seed: SeedLike = None) -> np.ndarray:
        rng = make_rng(seed)
        return rng.lognormal(self.mu, self.sigma, size=size)

    @property
    def mean(self) -> float:
        return float(np.exp(self.mu + self.sigma**2 / 2.0))

    @property
    def variance(self) -> float:
        m = self.mean
        return float((np.exp(self.sigma**2) - 1.0) * m * m)


@dataclass(frozen=True)
class ExponentialMagnitudes(MagnitudeDistribution):
    """Exponential(scale): memoryless thin tail."""

    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ConfigurationError(f"scale must be > 0, got {self.scale}")

    def sample(self, size: int, seed: SeedLike = None) -> np.ndarray:
        rng = make_rng(seed)
        return rng.exponential(self.scale, size=size)

    @property
    def mean(self) -> float:
        return self.scale

    @property
    def variance(self) -> float:
        return self.scale**2


@dataclass(frozen=True)
class ParetoMagnitudes(MagnitudeDistribution):
    """Pareto(alpha, xmin): the paper's power-law X-event regime.

    P(X > x) = (xmin / x)^alpha for x >= xmin.

    * ``alpha <= 1``: no finite mean — "we can not rely on insurance
      because insurance is based on the estimated average loss".
    * ``alpha <= 2``: no finite variance — pooling does not tame risk.
    """

    alpha: float = 1.5
    xmin: float = 1.0

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ConfigurationError(f"alpha must be > 0, got {self.alpha}")
        if self.xmin <= 0:
            raise ConfigurationError(f"xmin must be > 0, got {self.xmin}")

    def sample(self, size: int, seed: SeedLike = None) -> np.ndarray:
        rng = make_rng(seed)
        u = rng.random(size)
        return self.xmin * (1.0 - u) ** (-1.0 / self.alpha)

    @property
    def mean(self) -> float:
        if self.alpha <= 1.0:
            return float("inf")
        return self.alpha * self.xmin / (self.alpha - 1.0)

    @property
    def variance(self) -> float:
        if self.alpha <= 2.0:
            return float("inf")
        a, m = self.alpha, self.xmin
        return (m**2 * a) / ((a - 1.0) ** 2 * (a - 2.0))

    def survival(self, x: np.ndarray | float) -> np.ndarray | float:
        """P(X > x), the exceedance curve used by heavy-tail diagnostics."""
        x = np.asarray(x, dtype=float)
        out = np.where(x < self.xmin, 1.0, (self.xmin / np.maximum(x, self.xmin))
                       ** self.alpha)
        return out if out.ndim else float(out)
