"""Shock arrival processes.

"Also some shocks happen randomly and some are not" (§5.1): we provide a
memoryless Poisson stream (the canonical random-arrival model), a
clustered (Hawkes-lite) stream where one shock raises the short-term
rate of further shocks — aftershock behaviour typical of earthquakes —
and a deterministic schedule for scripted scenarios.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike, make_rng
from .distributions import MagnitudeDistribution, ParetoMagnitudes
from .events import Shock, ShockType

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "ClusteredArrivals",
    "ScheduledArrivals",
]


class ArrivalProcess(ABC):
    """Generates a list of :class:`Shock` events over a time horizon."""

    @abstractmethod
    def generate(self, horizon: float, seed: SeedLike = None) -> list[Shock]:
        """Return shocks with times in [0, horizon), sorted by time."""


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson arrivals with i.i.d. magnitudes."""

    rate: float
    magnitudes: MagnitudeDistribution = field(default_factory=ParetoMagnitudes)
    shock_type: ShockType = field(default=ShockType("poisson"))

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ConfigurationError(f"rate must be >= 0, got {self.rate}")

    def generate(self, horizon: float, seed: SeedLike = None) -> list[Shock]:
        if horizon < 0:
            raise ConfigurationError(f"horizon must be >= 0, got {horizon}")
        rng = make_rng(seed)
        if self.rate == 0 or horizon == 0:
            return []
        n = rng.poisson(self.rate * horizon)
        times = np.sort(rng.random(n) * horizon)
        mags = self.magnitudes.sample(n, rng)
        return [
            Shock(time=float(t), magnitude=float(m), shock_type=self.shock_type)
            for t, m in zip(times, mags)
        ]


@dataclass(frozen=True)
class ClusteredArrivals(ArrivalProcess):
    """Self-exciting arrivals: each shock spawns Poisson(branching) aftershocks.

    Aftershock delays are exponential with mean ``aftershock_scale`` and
    magnitudes are damped by ``aftershock_damping`` per generation.
    ``branching`` must stay < 1 for the cascade to stay finite.
    """

    base_rate: float
    branching: float = 0.5
    aftershock_scale: float = 1.0
    aftershock_damping: float = 0.7
    magnitudes: MagnitudeDistribution = field(default_factory=ParetoMagnitudes)
    shock_type: ShockType = field(default=ShockType("clustered"))

    def __post_init__(self) -> None:
        if self.base_rate < 0:
            raise ConfigurationError(f"base_rate must be >= 0, got {self.base_rate}")
        if not 0 <= self.branching < 1:
            raise ConfigurationError(
                f"branching must be in [0, 1) for stability, got {self.branching}"
            )
        if self.aftershock_scale <= 0:
            raise ConfigurationError(
                f"aftershock_scale must be > 0, got {self.aftershock_scale}"
            )
        if not 0 < self.aftershock_damping <= 1:
            raise ConfigurationError(
                f"aftershock_damping must be in (0, 1], got {self.aftershock_damping}"
            )

    def generate(self, horizon: float, seed: SeedLike = None) -> list[Shock]:
        if horizon < 0:
            raise ConfigurationError(f"horizon must be >= 0, got {horizon}")
        rng = make_rng(seed)
        primaries = PoissonArrivals(
            self.base_rate, self.magnitudes, self.shock_type
        ).generate(horizon, rng)
        shocks = list(primaries)
        frontier = list(primaries)
        while frontier:
            parent = frontier.pop()
            n_children = rng.poisson(self.branching)
            for _ in range(n_children):
                delay = rng.exponential(self.aftershock_scale)
                t = parent.time + delay
                if t >= horizon:
                    continue
                child = Shock(
                    time=float(t),
                    magnitude=float(parent.magnitude * self.aftershock_damping),
                    shock_type=self.shock_type,
                )
                shocks.append(child)
                frontier.append(child)
        return sorted(shocks)


@dataclass(frozen=True)
class ScheduledArrivals(ArrivalProcess):
    """A fixed, scripted shock sequence (for reproducible scenarios)."""

    shocks: tuple[Shock, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "shocks", tuple(sorted(self.shocks)))

    @classmethod
    def at(cls, times_and_magnitudes: Sequence[tuple[float, float]],
           shock_type: ShockType = ShockType("scheduled")) -> "ScheduledArrivals":
        """Build from (time, magnitude) pairs."""
        return cls(tuple(
            Shock(time=t, magnitude=m, shock_type=shock_type)
            for t, m in times_and_magnitudes
        ))

    def generate(self, horizon: float, seed: SeedLike = None) -> list[Shock]:
        if horizon < 0:
            raise ConfigurationError(f"horizon must be >= 0, got {horizon}")
        return [s for s in self.shocks if s.time < horizon]
