"""Heavy-tail diagnostics: detecting the X-event regime from data.

If a loss process is power-law with a small exponent, sample means never
settle and "we can not rely on insurance" (§3.4.6).  These estimators
let an analyst decide, from observed magnitudes, which regime they are
in: the Hill tail-index estimator, a maximum-likelihood Pareto exponent
(Clauset-style, for a fixed xmin), and a sample-mean stability
diagnostic that directly visualizes the non-convergence Taleb warns of.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError

__all__ = [
    "hill_estimator",
    "pareto_mle",
    "TailFit",
    "running_mean",
    "mean_stability_ratio",
]


def _clean_positive(samples: np.ndarray) -> np.ndarray:
    x = np.asarray(samples, dtype=float)
    if x.ndim != 1:
        raise AnalysisError("samples must be 1-D")
    x = x[np.isfinite(x)]
    x = x[x > 0]
    if len(x) < 3:
        raise AnalysisError("need at least 3 positive samples")
    return x


def hill_estimator(samples: np.ndarray, k: int | None = None) -> float:
    """Hill estimate of the tail index alpha from the top-``k`` order stats.

    alpha_hat = k / Σ_{i<k} log(x_(n-i) / x_(n-k)); ``k`` defaults to the
    top 10 % of the sample (at least 2 points).
    """
    x = np.sort(_clean_positive(samples))
    n = len(x)
    if k is None:
        k = max(2, n // 10)
    if not 2 <= k < n:
        raise AnalysisError(f"k must be in [2, {n - 1}], got {k}")
    tail = x[n - k:]
    threshold = x[n - k - 1]
    logs = np.log(tail / threshold)
    total = logs.sum()
    if total <= 0:
        raise AnalysisError("degenerate tail: all top samples equal the threshold")
    return float(k / total)


@dataclass(frozen=True)
class TailFit:
    """A fitted Pareto tail: exponent, threshold, and moment verdicts."""

    alpha: float
    xmin: float
    n_tail: int

    @property
    def finite_mean(self) -> bool:
        """Whether the fitted tail implies a finite mean (alpha > 1)."""
        return self.alpha > 1.0

    @property
    def finite_variance(self) -> bool:
        """Whether the fitted tail implies a finite variance (alpha > 2)."""
        return self.alpha > 2.0

    @property
    def insurable(self) -> bool:
        """The paper's criterion: insurance needs an estimable average loss."""
        return self.finite_mean


def pareto_mle(samples: np.ndarray, xmin: float | None = None) -> TailFit:
    """Maximum-likelihood Pareto exponent above ``xmin``.

    alpha_hat = n / Σ log(x_i / xmin) over samples ≥ xmin; ``xmin``
    defaults to the sample minimum (pure Pareto assumption).
    """
    x = _clean_positive(samples)
    xmin = float(x.min()) if xmin is None else float(xmin)
    if xmin <= 0:
        raise AnalysisError(f"xmin must be > 0, got {xmin}")
    tail = x[x >= xmin]
    if len(tail) < 3:
        raise AnalysisError(f"fewer than 3 samples above xmin={xmin}")
    logs = np.log(tail / xmin)
    total = logs.sum()
    if total <= 0:
        raise AnalysisError("degenerate tail: all samples equal xmin")
    return TailFit(alpha=float(len(tail) / total), xmin=xmin, n_tail=len(tail))


def running_mean(samples: np.ndarray) -> np.ndarray:
    """Cumulative sample mean — flat for thin tails, jumpy for alpha ≤ 1."""
    x = np.asarray(samples, dtype=float)
    if x.ndim != 1 or len(x) == 0:
        raise AnalysisError("samples must be a non-empty 1-D array")
    return np.cumsum(x) / np.arange(1, len(x) + 1)


def mean_stability_ratio(samples: np.ndarray, window: float = 0.2) -> float:
    """Relative swing of the running mean over the last ``window`` fraction.

    max/min of the cumulative mean over the final stretch, minus 1.
    Near 0 for a converging (finite-mean) process; order-of-magnitude
    large when single late samples still move the mean — the quantitative
    form of "do not work for extreme events".
    """
    if not 0 < window <= 1:
        raise AnalysisError(f"window must be in (0, 1], got {window}")
    means = running_mean(samples)
    start = int(len(means) * (1.0 - window))
    tail = means[start:]
    if len(tail) < 2:
        raise AnalysisError("window too small: fewer than 2 running-mean points")
    lo = tail.min()
    if lo <= 0:
        raise AnalysisError("running mean must stay positive for the ratio")
    return float(tail.max() / lo - 1.0)
