"""k-recoverability: the paper's resilience criterion for DCSP systems.

Paper §4.2: "If the system can fix its configuration for any perturbation
of type D within k steps, we call the system k-recoverable."  Because the
repair process flips one bit per step (or ``r`` bits per step for an
adaptability-``r`` system), the optimal recovery time from a damaged
state is the Hamming distance to the nearest fit configuration divided by
the per-step flip budget.

This module checks k-recoverability *exactly* by exhausting the damage
envelope of an event type, and reports the binding worst case so callers
can see which perturbation saturates the bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import combinations
from typing import Callable, Iterable, Iterator, Optional, Sequence

import numpy as np

from ..csp.bitstring import (
    BitSpace,
    BitString,
    pack_matrix,
    packed_hamming,
    to_matrix,
)
from ..csp.problem import CSP
from ..errors import ConfigurationError

__all__ = [
    "DamageModel",
    "BoundedComponentDamage",
    "AdversarialBitDamage",
    "PackedFitSet",
    "RecoverabilityReport",
    "recovery_steps",
    "is_k_recoverable",
    "minimal_recovery_bound",
    "adaptation_bound",
]


class PackedFitSet:
    """A fit set packed once into uint64 words for batched queries.

    The exhaustive recoverability checks ask "distance to the nearest fit
    configuration" once per damage outcome; scanning the fit set with
    scalar :meth:`BitString.hamming` per query is O(|outcomes|·|fit|·n)
    Python work.  Packing the fit set once (``pack_matrix``) turns each
    batch of queries into one XOR + popcount broadcast
    (:func:`packed_hamming`), with identical distances.
    """

    def __init__(self, fit: Iterable[BitString]):
        self.members: list[BitString] = list(fit)
        self._n = self.members[0].n if self.members else 0
        self._words = (
            pack_matrix(to_matrix(self.members)) if self.members else None
        )

    def __len__(self) -> int:
        return len(self.members)

    def min_distances(self, states: Sequence[BitString]) -> np.ndarray:
        """Min Hamming distance from each state into the fit set.

        Returns ``-1`` per state when the fit set is empty (recovery
        impossible), matching :meth:`BitSpace.recovery_distance`.
        """
        states = list(states)
        if self._words is None:
            return np.full(len(states), -1, dtype=np.int64)
        if not states:
            return np.zeros(0, dtype=np.int64)
        matrix = to_matrix(states)
        if matrix.shape[1] != self._n:
            raise ConfigurationError(
                f"states have {matrix.shape[1]} bits but fit set has {self._n}"
            )
        packed = pack_matrix(matrix)
        dists = packed_hamming(packed[:, None, :], self._words[None, :, :])
        return dists.min(axis=1)


class DamageModel:
    """An event type D: the set of post-damage states reachable from a state."""

    def outcomes(self, state: BitString) -> Iterator[BitString]:
        """Enumerate every state the event can leave the system in."""
        raise NotImplementedError

    @property
    def label(self) -> str:
        """Human-readable event-type name."""
        return type(self).__name__


@dataclass(frozen=True)
class BoundedComponentDamage(DamageModel):
    """Space-debris-style damage: at most ``max_failures`` good components fail.

    Matches the paper's spacecraft example: "occasionally hit by space
    debris causing at most k component failures."  Damage only clears bits
    (working → failed); it never repairs.
    """

    max_failures: int

    def __post_init__(self) -> None:
        if self.max_failures < 0:
            raise ConfigurationError(
                f"max_failures must be >= 0, got {self.max_failures}"
            )

    def outcomes(self, state: BitString) -> Iterator[BitString]:
        good = state.ones_indices()
        budget = min(self.max_failures, len(good))
        for r in range(budget + 1):
            for idxs in combinations(good, r):
                yield state.set_bits(idxs, 0)

    @property
    def label(self) -> str:
        return f"debris(max_failures={self.max_failures})"


@dataclass(frozen=True)
class AdversarialBitDamage(DamageModel):
    """Worst-case damage: any configuration within Hamming radius ``radius``.

    Unlike :class:`BoundedComponentDamage` this may also *flip on* bits,
    modelling corruption rather than pure failure.
    """

    radius: int

    def __post_init__(self) -> None:
        if self.radius < 0:
            raise ConfigurationError(f"radius must be >= 0, got {self.radius}")

    def outcomes(self, state: BitString) -> Iterator[BitString]:
        yield from BitSpace(state.n).ball(state, self.radius)

    @property
    def label(self) -> str:
        return f"adversarial(radius={self.radius})"


@dataclass(frozen=True)
class RecoverabilityReport:
    """Outcome of an exhaustive k-recoverability check.

    ``worst_steps`` is the maximum over all fit starting states and all
    damage outcomes of the optimal recovery step count; ``witness`` is a
    (start, damaged) pair achieving it.  ``recoverable`` additionally
    requires that recovery is possible at all (the fit set of the
    post-event environment is non-empty and reachable).
    """

    k: int
    worst_steps: Optional[int]
    recoverable: bool
    witness: Optional[tuple[BitString, BitString]]
    event_label: str

    @property
    def is_k_recoverable(self) -> bool:
        """True iff every damage outcome recovers within k steps."""
        return self.recoverable and self.worst_steps is not None \
            and self.worst_steps <= self.k


def recovery_steps(
    damaged: BitString,
    fit: "Sequence[BitString] | frozenset[BitString] | PackedFitSet",
    flips_per_step: int = 1,
) -> Optional[int]:
    """Optimal number of repair steps from ``damaged`` into the fit set.

    With a budget of ``flips_per_step`` bit flips per step, the optimum is
    ``ceil(hamming_distance / flips_per_step)``.  Returns ``None`` when
    the fit set is empty.  Passing a :class:`PackedFitSet` (built once
    for many queries) or a
    :class:`~repro.csp.bitengine.CompiledBitCSP` (whole-space BFS
    distance map) — anything exposing ``min_distances`` — uses the
    batched fast path.
    """
    if flips_per_step < 1:
        raise ConfigurationError(f"flips_per_step must be >= 1, got {flips_per_step}")
    if hasattr(fit, "min_distances"):
        distance = int(fit.min_distances([damaged])[0])
    else:
        distance = BitSpace(damaged.n).recovery_distance(damaged, fit)
    if distance < 0:
        return None
    return math.ceil(distance / flips_per_step)


def is_k_recoverable(
    csp: CSP,
    damage: DamageModel,
    k: int,
    post_event_csp: Optional[CSP] = None,
    flips_per_step: int = 1,
    start_states: Optional[Iterable[BitString]] = None,
    engine=None,
) -> RecoverabilityReport:
    """Exhaustively decide k-recoverability of a boolean CSP system.

    For every fit state ``s`` of ``csp`` (or the supplied ``start_states``)
    and every outcome of ``damage``, the optimal recovery step count into
    the fit set of ``post_event_csp`` (defaults to the same environment)
    must be at most ``k``.

    ``engine`` selects the CSP kernels (see
    :func:`repro.csp.engine.make_csp_engine`; default honours
    ``REPRO_CSP_ENGINE``).  The bit engine compiles both environments
    once — fit sets from the compiled fit masks, distances from one
    Hamming-BFS map — and reproduces the object engine's report exactly,
    witness included; the tiled engine streams the state space in
    blocks and walks an implicit BFS frontier, pushing the same exact
    check past the bit engine's 2^20 envelope (n ≈ 24+).  Non-boolean
    CSPs and ``n`` beyond the enumeration cap fall back to the object
    path automatically.

    Exhaustive over 2^n states, so intended for the model-scale systems
    the paper analyses; larger systems should use the sampled
    fault-injection harness in :mod:`repro.faults`.
    """
    from ..csp.engine import make_csp_engine
    from ..runtime import trace

    if k < 0:
        raise ConfigurationError(f"k must be >= 0, got {k}")
    if flips_per_step < 1:
        raise ConfigurationError(
            f"flips_per_step must be >= 1, got {flips_per_step}"
        )
    engine = make_csp_engine(engine)
    target = csp if post_event_csp is None else post_event_csp
    tr = trace.current()
    compiled = engine.try_compile(csp)
    compiled_target = (
        compiled if target is csp else engine.try_compile(target)
    ) if compiled is not None else None
    if compiled is not None and compiled_target is not None:
        label = compiled.engine_label
        with tr.timer(f"csp.recover.{label}"):
            fit_after = compiled_target
            starts = list(start_states) if start_states is not None \
                else sorted(compiled.fit_bitstrings())
            report = _worst_case_report(
                starts, damage, fit_after, k, flips_per_step
            )
        tr.count(f"csp.recover.checks.{label}")
        return report
    with tr.timer("csp.recover.object"):
        fit_after = PackedFitSet(target.fit_bitstrings())
        starts = list(start_states) if start_states is not None \
            else sorted(csp.fit_bitstrings())
        report = _worst_case_report(
            starts, damage, fit_after, k, flips_per_step
        )
    tr.count("csp.recover.checks.object")
    return report


def _worst_case_report(
    starts: Sequence[BitString],
    damage: DamageModel,
    fit_after,
    k: int,
    flips_per_step: int,
) -> RecoverabilityReport:
    """The shared worst-case sweep over starts × damage outcomes.

    ``fit_after`` is anything with ``min_distances`` and a truthy size —
    a :class:`PackedFitSet` (object engine), a
    :class:`~repro.csp.bitengine.CompiledBitCSP` (bit engine) or a
    :class:`~repro.csp.tiledengine.TiledBitCSP` (tiled engine); all
    return identical distances, so the report is engine-independent.
    """
    fit_count = len(fit_after) if isinstance(fit_after, PackedFitSet) \
        else len(fit_after.fit_indices)
    worst: Optional[int] = None
    witness: Optional[tuple[BitString, BitString]] = None
    for start in starts:
        outcomes = list(damage.outcomes(start))
        if not outcomes:
            continue
        if not fit_count:
            return RecoverabilityReport(
                k=k,
                worst_steps=None,
                recoverable=False,
                witness=(start, outcomes[0]),
                event_label=damage.label,
            )
        dists = fit_after.min_distances(outcomes)
        steps = (dists + flips_per_step - 1) // flips_per_step
        pos = int(np.argmax(steps))
        if worst is None or int(steps[pos]) > worst:
            worst = int(steps[pos])
            witness = (start, outcomes[pos])
    return RecoverabilityReport(
        k=k,
        worst_steps=worst,
        recoverable=True,
        witness=witness,
        event_label=damage.label,
    )


def minimal_recovery_bound(
    csp: CSP,
    damage: DamageModel,
    post_event_csp: Optional[CSP] = None,
    flips_per_step: int = 1,
    engine=None,
) -> Optional[int]:
    """The smallest k for which the system is k-recoverable (None if never)."""
    report = is_k_recoverable(
        csp, damage, k=0, post_event_csp=post_event_csp,
        flips_per_step=flips_per_step, engine=engine,
    )
    if not report.recoverable:
        return None
    return report.worst_steps


def adaptation_bound(
    before: CSP,
    after: CSP,
    flips_per_step: int = 1,
    engine=None,
) -> Optional[int]:
    """Worst-case adaptation steps for a pure environment shift C → C'.

    Fig. 4's picture with no state damage: the system sits at some fit
    configuration of ``before`` when the environment becomes ``after``;
    it must flip bits until it is fit again.  The bound is the maximum
    over old fit states of the optimal recovery step count into the new
    fit set.  Returns ``None`` when the new environment is unsatisfiable,
    and 0 when every old fit state is already fit in the new environment.

    Exhaustive (2^n); model scale only.
    """
    from ..csp.engine import make_csp_engine
    from ..runtime import trace

    if flips_per_step < 1:
        raise ConfigurationError(
            f"flips_per_step must be >= 1, got {flips_per_step}"
        )
    engine = make_csp_engine(engine)
    tr = trace.current()
    compiled_after = engine.try_compile(after)
    compiled_before = engine.try_compile(before) \
        if compiled_after is not None else None
    if compiled_after is not None and compiled_before is not None:
        label = compiled_after.engine_label
        with tr.timer(f"csp.recover.{label}"):
            if not len(compiled_after.fit_indices):
                result = None
            else:
                starts_idx = compiled_before.fit_indices
                if not len(starts_idx):
                    result = 0
                else:
                    # min_distances_masks is engine-independent: a BFS
                    # table lookup on the bit engine, an implicit
                    # frontier walk on the tiled engine
                    dists = compiled_after.min_distances_masks(starts_idx)
                    steps = (dists + flips_per_step - 1) // flips_per_step
                    result = int(steps.max())
        tr.count(f"csp.recover.checks.{label}")
        return result
    with tr.timer("csp.recover.object"):
        fit_after = after.fit_bitstrings()
        if not fit_after:
            result = None
        else:
            packed = PackedFitSet(fit_after)
            starts = list(before.fit_bitstrings())
            if not starts:
                result = 0
            else:
                dists = packed.min_distances(starts)
                steps = (dists + flips_per_step - 1) // flips_per_step
                result = int(steps.max())
    tr.count("csp.recover.checks.object")
    return result
