"""The paper's taxonomy of resilience strategies (§3).

The working hypothesis classifies resilience strategies into three
*passive* categories — redundancy, diversity, adaptability — plus
*active* resilience, which adds human intelligence to the decision loop
(anticipation, modeling, emergency response, consensus building, mode
switching).  This module gives the taxonomy a typed, documented surface
so reports, budget allocations and the multi-agent testbed all speak the
same vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Mapping

from ..errors import ConfigurationError

__all__ = ["Strategy", "ActiveMechanism", "StrategyMix", "STRATEGY_DESCRIPTIONS"]


class Strategy(Enum):
    """Top-level resilience strategy categories from the paper."""

    REDUNDANCY = "redundancy"
    DIVERSITY = "diversity"
    ADAPTABILITY = "adaptability"
    ACTIVE = "active"

    @property
    def is_passive(self) -> bool:
        """Redundancy/diversity/adaptability need no human intervention."""
        return self is not Strategy.ACTIVE


class ActiveMechanism(Enum):
    """The sub-dimensions of active resilience (§3.4)."""

    ANTICIPATION = "anticipation"
    MODELING = "modeling"
    EMERGENCY_RESPONSE = "emergency-response"
    CONSENSUS_BUILDING = "consensus-building"
    MODE_SWITCHING = "mode-switching"


STRATEGY_DESCRIPTIONS: Mapping[Strategy, str] = {
    Strategy.REDUNDANCY: (
        "Spare capacity that substitutes for failed parts: gene knockout "
        "tolerance, RAID, excess generation capacity, monetary reserves, "
        "interoperable equipment (paper §3.1)."
    ),
    Strategy.DIVERSITY: (
        "Heterogeneity that prevents a single cause from killing "
        "everything: species diversity, design diversity (Boeing 777), "
        "age-diverse forests, diversified portfolios (paper §3.2)."
    ),
    Strategy.ADAPTABILITY: (
        "Speed of reconfiguration against environmental change: "
        "evolution, MAPE loops, feedback control, co-regulation "
        "(paper §3.3)."
    ),
    Strategy.ACTIVE: (
        "Human intelligence in the loop: anticipation, modeling, "
        "emergency response, consensus building, mode switching "
        "(paper §3.4)."
    ),
}


@dataclass(frozen=True)
class StrategyMix:
    """A budget allocation across the three passive strategies.

    The paper's tradeoff question (§4.4): "Should we invest our resource
    on redundancy, diversity, adaptability...?  What combination of
    resilience strategies is optimum under a given condition[?]"
    A mix is a non-negative split that sums to 1; the agents testbed maps
    it to initial resources, genome spread and flips-per-step.
    """

    redundancy: float
    diversity: float
    adaptability: float

    def __post_init__(self) -> None:
        parts = (self.redundancy, self.diversity, self.adaptability)
        if any(p < 0 for p in parts):
            raise ConfigurationError(f"strategy weights must be >= 0: {parts}")
        total = sum(parts)
        if abs(total - 1.0) > 1e-9:
            raise ConfigurationError(
                f"strategy weights must sum to 1, got {total:.6f}"
            )

    @classmethod
    def of(cls, redundancy: float, diversity: float, adaptability: float
           ) -> "StrategyMix":
        """Build a mix from raw non-negative weights (normalised to 1)."""
        total = redundancy + diversity + adaptability
        if total <= 0:
            raise ConfigurationError("at least one strategy weight must be positive")
        return cls(redundancy / total, diversity / total, adaptability / total)

    @classmethod
    def uniform(cls) -> "StrategyMix":
        """Equal thirds across the three passive strategies."""
        third = 1.0 / 3.0
        return cls(third, third, 1.0 - 2 * third)

    @classmethod
    def pure(cls, strategy: Strategy) -> "StrategyMix":
        """All budget on one passive strategy."""
        if strategy is Strategy.REDUNDANCY:
            return cls(1.0, 0.0, 0.0)
        if strategy is Strategy.DIVERSITY:
            return cls(0.0, 1.0, 0.0)
        if strategy is Strategy.ADAPTABILITY:
            return cls(0.0, 0.0, 1.0)
        raise ConfigurationError("pure() takes a passive strategy")

    def as_dict(self) -> dict[str, float]:
        """Mapping form, keyed by strategy value names."""
        return {
            Strategy.REDUNDANCY.value: self.redundancy,
            Strategy.DIVERSITY.value: self.diversity,
            Strategy.ADAPTABILITY.value: self.adaptability,
        }

    def blended(self, other: "StrategyMix", weight: float) -> "StrategyMix":
        """Convex combination ``(1-weight)*self + weight*other``."""
        if not 0.0 <= weight <= 1.0:
            raise ConfigurationError(f"weight must be in [0, 1], got {weight}")
        return StrategyMix(
            (1 - weight) * self.redundancy + weight * other.redundancy,
            (1 - weight) * self.diversity + weight * other.diversity,
            (1 - weight) * self.adaptability + weight * other.adaptability,
        )
