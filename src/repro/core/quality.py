"""Quality-over-time traces, the raw material of the resilience metric.

Bruneau's framework (paper §4.1, Fig. 3) measures resilience from the
system quality signal Q(t) on a 0..100 scale: quality drops abruptly at
the shock time t0 and recovers by t1.  :class:`QualityTrace` stores a
sampled Q(t), enforces the scale, and provides the integrals and
landmarks (drop depth, recovery time) every resilience metric in
:mod:`repro.core.bruneau` consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..errors import AnalysisError, ConfigurationError

__all__ = ["QualityTrace", "FULL_QUALITY", "step_trace", "linear_recovery_trace"]

FULL_QUALITY = 100.0


@dataclass(frozen=True)
class QualityTrace:
    """A sampled quality signal Q(t) on the canonical 0..100 scale.

    ``times`` must be strictly increasing; ``quality`` is sampled at those
    instants and interpreted by linear interpolation in between.
    """

    times: np.ndarray
    quality: np.ndarray

    def __post_init__(self) -> None:
        times = np.asarray(self.times, dtype=float)
        quality = np.asarray(self.quality, dtype=float)
        object.__setattr__(self, "times", times)
        object.__setattr__(self, "quality", quality)
        if times.ndim != 1 or quality.ndim != 1:
            raise ConfigurationError("times and quality must be 1-D arrays")
        if len(times) != len(quality):
            raise ConfigurationError(
                f"{len(times)} times but {len(quality)} quality samples"
            )
        if len(times) < 2:
            raise ConfigurationError("a quality trace needs at least two samples")
        if not np.all(np.diff(times) > 0):
            raise ConfigurationError("times must be strictly increasing")
        if np.any(quality < 0.0) or np.any(quality > FULL_QUALITY):
            raise ConfigurationError("quality must lie in [0, 100]")

    # -- construction helpers ---------------------------------------------

    @classmethod
    def from_samples(
        cls, times: Iterable[float], quality: Iterable[float]
    ) -> "QualityTrace":
        """Build a trace from any pair of iterables."""
        return cls(np.asarray(list(times), float), np.asarray(list(quality), float))

    @classmethod
    def from_fraction(
        cls, times: Iterable[float], fraction: Iterable[float]
    ) -> "QualityTrace":
        """Build from a 0..1 fraction signal (e.g. satisfied-constraint share)."""
        q = np.asarray(list(fraction), float) * FULL_QUALITY
        return cls(np.asarray(list(times), float), q)

    # -- landmarks ----------------------------------------------------------

    @property
    def t_start(self) -> float:
        """First sampled instant."""
        return float(self.times[0])

    @property
    def t_end(self) -> float:
        """Last sampled instant."""
        return float(self.times[-1])

    @property
    def min_quality(self) -> float:
        """Deepest degradation level reached."""
        return float(self.quality.min())

    @property
    def drop_depth(self) -> float:
        """100 − min Q(t): Bruneau's robustness loss dimension."""
        return FULL_QUALITY - self.min_quality

    def at(self, t: float) -> float:
        """Linearly interpolated quality at time ``t`` (clamped to range)."""
        return float(np.interp(t, self.times, self.quality))

    def shock_time(self, threshold: float = FULL_QUALITY) -> float | None:
        """First instant quality falls strictly below ``threshold`` (t0)."""
        below = np.nonzero(self.quality < threshold)[0]
        if len(below) == 0:
            return None
        return float(self.times[below[0]])

    def recovery_time(self, threshold: float = FULL_QUALITY) -> float | None:
        """First instant at/after the shock when quality regains ``threshold`` (t1).

        Returns ``None`` when the system never degrades or never recovers.
        """
        t0 = self.shock_time(threshold)
        if t0 is None:
            return None
        after = self.times >= t0
        regained = np.nonzero(after & (self.quality >= threshold))[0]
        if len(regained) == 0:
            return None
        return float(self.times[regained[0]])

    def time_to_recover(self, threshold: float = FULL_QUALITY) -> float | None:
        """t1 − t0, Bruneau's rapidity dimension; ``None`` if unrecovered."""
        t0 = self.shock_time(threshold)
        t1 = self.recovery_time(threshold)
        if t0 is None or t1 is None:
            return None
        return t1 - t0

    # -- integrals ------------------------------------------------------------

    def degradation_integral(
        self, t0: float | None = None, t1: float | None = None
    ) -> float:
        """∫ (100 − Q(t)) dt over [t0, t1] by the trapezoid rule.

        This is the paper's resilience loss R; the window defaults to the
        whole trace.
        """
        t0 = self.t_start if t0 is None else t0
        t1 = self.t_end if t1 is None else t1
        if t1 < t0:
            raise AnalysisError(f"empty integration window [{t0}, {t1}]")
        if t1 == t0:
            return 0.0
        grid = np.union1d(self.times, np.asarray([t0, t1], dtype=float))
        grid = grid[(grid >= t0) & (grid <= t1)]
        deficit = FULL_QUALITY - np.interp(grid, self.times, self.quality)
        return float(np.trapezoid(deficit, grid))

    def mean_quality(self) -> float:
        """Time-averaged quality across the trace."""
        span = self.t_end - self.t_start
        return FULL_QUALITY - self.degradation_integral() / span

    def availability(self, threshold: float = FULL_QUALITY,
                     resolution: int = 2000) -> float:
        """Fraction of the trace's time span at quality ≥ ``threshold``.

        The classic operations metric ("three nines") evaluated on the
        interpolated signal; ``resolution`` controls the time grid.
        """
        if not 0.0 <= threshold <= FULL_QUALITY:
            raise ConfigurationError(
                f"threshold must be in [0, 100], got {threshold}"
            )
        if resolution < 2:
            raise ConfigurationError(
                f"resolution must be >= 2, got {resolution}"
            )
        grid = np.union1d(
            self.times, np.linspace(self.t_start, self.t_end, resolution)
        )
        values = np.interp(grid, self.times, self.quality)
        up = values >= threshold
        # trapezoid weight per grid point
        widths = np.zeros_like(grid)
        widths[:-1] += np.diff(grid) / 2.0
        widths[1:] += np.diff(grid) / 2.0
        total = widths.sum()
        return float(np.sum(widths[up]) / total)

    # -- composition ------------------------------------------------------------

    def concat(self, other: "QualityTrace") -> "QualityTrace":
        """Append a later trace (its times must start after this one ends)."""
        if other.t_start <= self.t_end:
            raise ConfigurationError(
                "cannot concatenate traces with overlapping time ranges"
            )
        return QualityTrace(
            np.concatenate([self.times, other.times]),
            np.concatenate([self.quality, other.quality]),
        )


def step_trace(
    t0: float,
    t1: float,
    depth: float,
    t_pre: float | None = None,
    t_post: float | None = None,
    dt: float = 1.0,
) -> QualityTrace:
    """A rectangular shock: quality drops by ``depth`` at t0, restores at t1.

    Useful as an analytic fixture — its resilience loss is exactly
    ``depth * (t1 - t0)``.
    """
    if not 0.0 <= depth <= FULL_QUALITY:
        raise ConfigurationError(f"depth must be in [0, 100], got {depth}")
    if t1 <= t0:
        raise ConfigurationError("t1 must follow t0")
    t_pre = t0 - dt if t_pre is None else t_pre
    t_post = t1 + dt if t_post is None else t_post
    eps = min(dt, t1 - t0) * 1e-6
    times = [t_pre, t0 - eps, t0, t1 - eps, t1, t_post]
    quality = [
        FULL_QUALITY,
        FULL_QUALITY,
        FULL_QUALITY - depth,
        FULL_QUALITY - depth,
        FULL_QUALITY,
        FULL_QUALITY,
    ]
    return QualityTrace.from_samples(times, quality)


def linear_recovery_trace(
    t0: float,
    t1: float,
    depth: float,
    t_pre: float | None = None,
    t_post: float | None = None,
    dt: float = 1.0,
) -> QualityTrace:
    """Bruneau's Fig. 3 triangle: abrupt drop at t0, linear recovery by t1.

    Its resilience loss is exactly ``depth * (t1 - t0) / 2`` — the area of
    the triangle.
    """
    if not 0.0 <= depth <= FULL_QUALITY:
        raise ConfigurationError(f"depth must be in [0, 100], got {depth}")
    if t1 <= t0:
        raise ConfigurationError("t1 must follow t0")
    t_pre = t0 - dt if t_pre is None else t_pre
    t_post = t1 + dt if t_post is None else t_post
    eps = min(dt, t1 - t0) * 1e-6
    times = [t_pre, t0 - eps, t0, t1, t_post]
    quality = [
        FULL_QUALITY,
        FULL_QUALITY,
        FULL_QUALITY - depth,
        FULL_QUALITY,
        FULL_QUALITY,
    ]
    return QualityTrace.from_samples(times, quality)
