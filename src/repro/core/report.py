"""Resilience reports: a common result surface for experiments.

Benchmarks and the fault-injection harness both need to compare systems
on the same axes the paper defines: Bruneau loss, recovery time,
k-recoverability, and the strategy mix that produced them.
:class:`ResilienceReport` aggregates per-trial assessments and renders
the aligned text tables printed by the benchmark suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

from ..errors import AnalysisError
from .bruneau import ResilienceAssessment, assess
from .quality import QualityTrace

__all__ = ["TrialOutcome", "ResilienceReport", "compare_reports"]


@dataclass(frozen=True)
class TrialOutcome:
    """One simulated shock episode for one system configuration."""

    assessment: ResilienceAssessment
    survived: bool
    label: str = ""


@dataclass
class ResilienceReport:
    """Aggregated resilience statistics for one named system/configuration."""

    name: str
    outcomes: list[TrialOutcome] = field(default_factory=list)

    def add_trace(self, trace: QualityTrace, survived: bool = True,
                  label: str = "") -> None:
        """Assess a quality trace and append it as a trial outcome."""
        self.outcomes.append(
            TrialOutcome(assessment=assess(trace), survived=survived, label=label)
        )

    def add(self, outcome: TrialOutcome) -> None:
        """Append a pre-assessed outcome."""
        self.outcomes.append(outcome)

    # -- aggregates -----------------------------------------------------------

    def _require_outcomes(self) -> None:
        if not self.outcomes:
            raise AnalysisError(f"report {self.name!r} has no trial outcomes")

    @property
    def n_trials(self) -> int:
        """Number of recorded trials."""
        return len(self.outcomes)

    @property
    def survival_rate(self) -> float:
        """Fraction of trials in which the system survived."""
        self._require_outcomes()
        return sum(o.survived for o in self.outcomes) / self.n_trials

    @property
    def mean_loss(self) -> float:
        """Mean Bruneau resilience loss across trials."""
        self._require_outcomes()
        return float(np.mean([o.assessment.loss for o in self.outcomes]))

    @property
    def mean_drop_depth(self) -> float:
        """Mean robustness loss (quality drop) across trials."""
        self._require_outcomes()
        return float(np.mean([o.assessment.drop_depth for o in self.outcomes]))

    @property
    def recovery_rate(self) -> float:
        """Fraction of trials that regained full quality."""
        self._require_outcomes()
        return sum(o.assessment.recovered for o in self.outcomes) / self.n_trials

    @property
    def mean_recovery_time(self) -> Optional[float]:
        """Mean t1 − t0 over the trials that recovered (None if none did)."""
        self._require_outcomes()
        times = [
            o.assessment.recovery_time
            for o in self.outcomes
            if o.assessment.recovery_time is not None
        ]
        if not times:
            return None
        return float(np.mean(times))

    def summary_row(self) -> dict[str, object]:
        """One flat dict per system, ready for table rendering."""
        mean_rt = self.mean_recovery_time
        return {
            "system": self.name,
            "trials": self.n_trials,
            "survival_rate": round(self.survival_rate, 4),
            "recovery_rate": round(self.recovery_rate, 4),
            "mean_loss": round(self.mean_loss, 3),
            "mean_drop": round(self.mean_drop_depth, 3),
            "mean_recovery_time": None if mean_rt is None else round(mean_rt, 3),
        }


def compare_reports(reports: Sequence[ResilienceReport]) -> str:
    """Render aligned comparison rows for a set of reports.

    Columns follow :meth:`ResilienceReport.summary_row`; missing recovery
    times render as ``-``.  Uses the shared benchmark table renderer so
    report output matches the experiment tables.
    """
    from ..analysis.tables import render_table

    if not reports:
        raise AnalysisError("no reports to compare")
    return render_table([r.summary_row() for r in reports])
