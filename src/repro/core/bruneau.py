"""Bruneau's quantitative resilience metric (paper §4.1, Fig. 3).

The paper adopts Bruneau's seismic-resilience definition: when quality
degrades abruptly at t0 and recovers by t1, the resilience *loss* is

    R = ∫_{t0}^{t1} (100 − Q(t)) dt

"As the measured triangle area gets smaller, the system becomes more
resilient."  The paper highlights the two dimensions of this area:

* **resistance** — reduced service degradation at t0 (drop depth), and
* **recoverability** — reduced time to recovery (t1 − t0),

and chooses to focus on recoverability.  This module computes the loss,
its decomposition, and a bounded resilience score for comparing systems.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import AnalysisError
from .quality import FULL_QUALITY, QualityTrace

__all__ = ["ResilienceAssessment", "resilience_loss", "assess", "resilience_score"]


@dataclass(frozen=True)
class ResilienceAssessment:
    """Decomposed Bruneau assessment of one quality trace.

    Attributes
    ----------
    loss:
        The integral R = ∫(100 − Q) dt over the degradation episode
        (or over the whole trace when the system never fully recovers).
    drop_depth:
        Bruneau's robustness dimension: 100 − min Q(t).
    recovery_time:
        Bruneau's rapidity dimension: t1 − t0, ``None`` when the system
        never regains the threshold within the trace ("unrecovered").
    recovered:
        Whether full (threshold) quality was regained.
    threshold:
        The quality level that counts as "recovered" (default 100).
    """

    loss: float
    drop_depth: float
    recovery_time: float | None
    recovered: bool
    threshold: float = FULL_QUALITY

    @property
    def normalized_loss(self) -> float:
        """Loss as a fraction of the worst-case rectangle 100 × window.

        0 means no degradation at all; 1 means total outage for the whole
        assessed window.
        """
        return self._normalized

    # populated by assess(); stored privately to keep the dataclass frozen
    _normalized: float = 0.0


def resilience_loss(trace: QualityTrace, threshold: float = FULL_QUALITY) -> float:
    """The paper's R = ∫ (100 − Q(t)) dt over the degradation episode.

    Integration runs from the shock time t0 to the recovery time t1; when
    the system never recovers to ``threshold``, integration extends to the
    end of the trace (an unrecovered system keeps accruing loss for as
    long as we observe it).  A trace that never degrades has zero loss.
    """
    t0 = trace.shock_time(threshold)
    if t0 is None:
        return 0.0
    t1 = trace.recovery_time(threshold)
    if t1 is None:
        t1 = trace.t_end
    return trace.degradation_integral(t0, t1)


def assess(trace: QualityTrace, threshold: float = FULL_QUALITY) -> ResilienceAssessment:
    """Full Bruneau assessment: loss + robustness/rapidity decomposition."""
    t0 = trace.shock_time(threshold)
    t1 = trace.recovery_time(threshold)
    loss = resilience_loss(trace, threshold)
    window_start = trace.t_start if t0 is None else t0
    window_end = trace.t_end if t1 is None else t1
    window = max(window_end - window_start, 0.0)
    worst_case = FULL_QUALITY * window
    normalized = 0.0 if worst_case == 0.0 else min(loss / worst_case, 1.0)
    return ResilienceAssessment(
        loss=loss,
        drop_depth=trace.drop_depth,
        recovery_time=trace.time_to_recover(threshold),
        recovered=t1 is not None or t0 is None,
        threshold=threshold,
        _normalized=normalized,
    )


def resilience_score(
    trace: QualityTrace,
    horizon: float | None = None,
    threshold: float = FULL_QUALITY,
) -> float:
    """A bounded 0..1 resilience score for cross-system comparison.

    ``1 − loss / (100 × horizon)``, where ``horizon`` defaults to the
    trace duration.  A system that never degrades scores 1; a system that
    is completely down for the whole horizon scores 0.  Higher is more
    resilient, matching "as the triangle gets smaller, the system becomes
    more resilient".
    """
    if horizon is None:
        horizon = trace.t_end - trace.t_start
    if horizon <= 0:
        raise AnalysisError(f"horizon must be positive, got {horizon}")
    loss = resilience_loss(trace, threshold)
    return max(0.0, 1.0 - loss / (FULL_QUALITY * horizon))
