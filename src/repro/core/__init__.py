"""Core resilience model: quality traces, the Bruneau metric,
k-recoverability, the strategy taxonomy, and report aggregation.

This subpackage is the paper's primary contribution (§4): a quantitative,
domain-neutral definition of resilience.
"""

from .bruneau import ResilienceAssessment, assess, resilience_loss, resilience_score
from .quality import FULL_QUALITY, QualityTrace, linear_recovery_trace, step_trace
from .recoverability import (
    AdversarialBitDamage,
    adaptation_bound,
    BoundedComponentDamage,
    DamageModel,
    RecoverabilityReport,
    is_k_recoverable,
    minimal_recovery_bound,
    recovery_steps,
)
from .report import ResilienceReport, TrialOutcome, compare_reports
from .strategies import (
    STRATEGY_DESCRIPTIONS,
    ActiveMechanism,
    Strategy,
    StrategyMix,
)

__all__ = [
    "ResilienceAssessment",
    "assess",
    "resilience_loss",
    "resilience_score",
    "FULL_QUALITY",
    "QualityTrace",
    "linear_recovery_trace",
    "step_trace",
    "AdversarialBitDamage",
    "adaptation_bound",
    "BoundedComponentDamage",
    "DamageModel",
    "RecoverabilityReport",
    "is_k_recoverable",
    "minimal_recovery_bound",
    "recovery_steps",
    "ResilienceReport",
    "TrialOutcome",
    "compare_reports",
    "STRATEGY_DESCRIPTIONS",
    "ActiveMechanism",
    "Strategy",
    "StrategyMix",
]
