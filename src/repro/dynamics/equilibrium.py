"""Mutation–selection balance.

Selection pushes a trait toward its optimum; recurrent mutation erodes
it.  The equilibrium — the classic balance q̂ ≈ u/s for a deleterious
allele at per-locus mutation rate u and selection coefficient s — sets
the ceiling the stickleback experiment (E25) observes: armor re-evolves
under predation but saturates *below* the maximum because mutation keeps
re-breaking armor loci.  This module provides the analytic equilibrium
and a deterministic multi-locus recursion for cross-checking simulated
populations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "deleterious_equilibrium_frequency",
    "expected_trait_at_balance",
    "LocusDynamics",
]


def deleterious_equilibrium_frequency(mutation_rate: float,
                                      s: float) -> float:
    """Equilibrium frequency q̂ of a deleterious allele.

    Haploid balance: forward mutation u (good → broken) against selection
    s removing broken copies gives q̂ = u / (u + s) exactly for the
    one-locus recursion used here (≈ u/s when u ≪ s), clamped to [0, 1].
    """
    if not 0.0 <= mutation_rate <= 1.0:
        raise ConfigurationError(
            f"mutation_rate must be in [0, 1], got {mutation_rate}"
        )
    if s < 0:
        raise ConfigurationError(f"s must be >= 0, got {s}")
    if mutation_rate + s == 0:
        return 0.0
    return mutation_rate / (mutation_rate + s)


def expected_trait_at_balance(n_loci: int, mutation_rate: float,
                              s: float) -> float:
    """Expected number of *functional* loci at mutation–selection balance.

    n_loci × (1 − q̂): the analytic ceiling a re-evolving trait
    saturates at (cf. the stickleback armor plateau in E25).
    """
    if n_loci < 0:
        raise ConfigurationError(f"n_loci must be >= 0, got {n_loci}")
    q_hat = deleterious_equilibrium_frequency(mutation_rate, s)
    return n_loci * (1.0 - q_hat)


@dataclass(frozen=True)
class LocusDynamics:
    """Deterministic one-locus recursion with two-way mutation.

    q' = (selection-weighted broken share) with symmetric per-generation
    mutation u in both directions (good ↔ broken), relative fitness of
    broken copies 1 − s.
    """

    mutation_rate: float
    s: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.mutation_rate <= 0.5:
            raise ConfigurationError(
                f"mutation_rate must be in [0, 0.5], got {self.mutation_rate}"
            )
        if not 0.0 <= self.s < 1.0:
            raise ConfigurationError(f"s must be in [0, 1), got {self.s}")

    def step(self, q: float) -> float:
        """One generation of selection then mutation on the broken share."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"q must be in [0, 1], got {q}")
        # selection
        broken = q * (1.0 - self.s)
        good = (1.0 - q)
        q_sel = broken / (broken + good)
        # two-way mutation
        u = self.mutation_rate
        return q_sel * (1.0 - u) + (1.0 - q_sel) * u

    def equilibrium(self, tolerance: float = 1e-12,
                    max_iter: int = 100_000) -> float:
        """Fixed point of the recursion, by iteration from q = 0.5."""
        q = 0.5
        for _ in range(max_iter):
            q_next = self.step(q)
            if abs(q_next - q) < tolerance:
                return q_next
            q = q_next
        return q  # pragma: no cover - always converges fast

    def trajectory(self, q0: float, generations: int) -> np.ndarray:
        """The broken-share time course from ``q0``."""
        if generations < 0:
            raise ConfigurationError(
                f"generations must be >= 0, got {generations}"
            )
        out = np.empty(generations + 1)
        out[0] = q0
        q = q0
        for t in range(generations):
            q = self.step(q)
            out[t + 1] = q
        return out
