"""Continuous-time replicator dynamics.

The paper states the discrete replicator equation (§3.2.4); its
continuous limit

    dx_i/dt = x_i (f_i(x) − φ(x)),   φ(x) = Σ_j x_j f_j(x)

over population *shares* x is the standard evolutionary-dynamics form.
Provided for cross-checking the discrete implementation (small steps of
the discrete map converge to the flow) and for payoff-matrix games,
where fitness is frequency-dependent: f = A x.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np
from scipy.integrate import solve_ivp

from ..errors import ConfigurationError

__all__ = ["ContinuousReplicator", "ReplicatorFlow"]

FitnessFn = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class ReplicatorFlow:
    """An integrated share trajectory."""

    times: np.ndarray  # (T,)
    shares: np.ndarray  # (T, N), rows on the simplex

    @property
    def final(self) -> np.ndarray:
        """Shares at the last integration time."""
        return self.shares[-1]

    def dominant_share(self) -> np.ndarray:
        """Largest share at each sample."""
        return self.shares.max(axis=1)


class ContinuousReplicator:
    """dx/dt = x ∘ (f(x) − x·f(x)) on the probability simplex.

    ``fitness`` maps shares to per-type fitness; pass a constant vector
    for the paper's fixed-fitness case or ``lambda x: A @ x`` for a
    matrix game.
    """

    def __init__(self, fitness: FitnessFn | np.ndarray, n_types: int):
        if n_types < 1:
            raise ConfigurationError(f"n_types must be >= 1, got {n_types}")
        if isinstance(fitness, np.ndarray) or isinstance(fitness, (list, tuple)):
            vector = np.asarray(fitness, dtype=float)
            if vector.shape != (n_types,):
                raise ConfigurationError(
                    f"constant fitness must have shape ({n_types},)"
                )
            self._fitness: FitnessFn = lambda x: vector
        else:
            self._fitness = fitness
        self.n_types = n_types

    def _rhs(self, t: float, x: np.ndarray) -> np.ndarray:
        x = np.clip(x, 0.0, None)
        f = np.asarray(self._fitness(x), dtype=float)
        if f.shape != (self.n_types,):
            raise ConfigurationError(
                f"fitness returned shape {f.shape}, expected ({self.n_types},)"
            )
        mean = float(x @ f)
        return x * (f - mean)

    def integrate(
        self,
        initial_shares: np.ndarray | list[float],
        t_end: float,
        n_samples: int = 200,
    ) -> ReplicatorFlow:
        """Integrate from ``initial_shares`` (must lie on the simplex)."""
        x0 = np.asarray(initial_shares, dtype=float)
        if x0.shape != (self.n_types,):
            raise ConfigurationError(
                f"initial shares must have shape ({self.n_types},)"
            )
        if np.any(x0 < 0) or abs(x0.sum() - 1.0) > 1e-9:
            raise ConfigurationError(
                "initial shares must be non-negative and sum to 1"
            )
        if t_end <= 0:
            raise ConfigurationError(f"t_end must be > 0, got {t_end}")
        if n_samples < 2:
            raise ConfigurationError(
                f"n_samples must be >= 2, got {n_samples}"
            )
        times = np.linspace(0.0, t_end, n_samples)
        solution = solve_ivp(
            self._rhs, (0.0, t_end), x0, t_eval=times,
            rtol=1e-8, atol=1e-10, method="RK45",
        )
        if not solution.success:  # pragma: no cover - solver failure
            raise ConfigurationError(
                f"integration failed: {solution.message}"
            )
        shares = solution.y.T
        # renormalize tiny drift off the simplex
        shares = np.clip(shares, 0.0, None)
        shares = shares / shares.sum(axis=1, keepdims=True)
        return ReplicatorFlow(times=times, shares=shares)
