"""Replicator dynamics (paper §3.2.4).

The paper's discrete replicator equation:

    p_i^{t+1} = p_i^t · π_i / π̄_t

where π_i is the fitness of species i and π̄_t the population-weighted
mean fitness at time t.  "Assuming this replicator equation ... the most
fit species will ultimately dominate the entire ecosystem without a
mechanism that penalizes such domination" — that penalty is the
density-dependent fitness from :mod:`repro.dynamics.fitness`.

:class:`ReplicatorSystem` supports constant per-species fitness,
density-dependent fitness, and optional environmental regime switches
(each regime re-ranks species fitness), which is how the
diversity-improves-survival experiments (E07) perturb ecosystems.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError, SimulationError
from .diversity import maruyama_diversity_index
from .fitness import DensityDependence, NoDensityDependence

__all__ = ["ReplicatorTrajectory", "ReplicatorSystem", "replicator_step"]

FitnessVector = Callable[[np.ndarray, int], np.ndarray]
"""Maps (populations, t) to the per-species fitness vector at time t."""


def replicator_step(populations: np.ndarray, fitness: np.ndarray) -> np.ndarray:
    """One application of the paper's discrete replicator equation.

    π̄_t is the population-weighted mean fitness; total population is
    therefore conserved up to the relative-fitness normalization (the
    equation rescales shares, not absolute growth).
    """
    populations = np.asarray(populations, dtype=float)
    fitness = np.asarray(fitness, dtype=float)
    if populations.shape != fitness.shape:
        raise ConfigurationError(
            f"populations {populations.shape} and fitness {fitness.shape} differ"
        )
    if np.any(populations < 0):
        raise ConfigurationError("populations must be non-negative")
    if np.any(fitness <= 0):
        raise ConfigurationError("fitness values must be positive")
    total = populations.sum()
    if total <= 0:
        raise SimulationError("total population is zero; ecosystem is extinct")
    mean_fitness = float(populations @ fitness / total)
    return populations * fitness / mean_fitness


@dataclass
class ReplicatorTrajectory:
    """The simulated time course of a replicator system."""

    populations: np.ndarray  # (T+1, N)
    times: np.ndarray  # (T+1,)

    @property
    def final(self) -> np.ndarray:
        """Populations at the last simulated step."""
        return self.populations[-1]

    def shares(self) -> np.ndarray:
        """Population fractions over time, shape (T+1, N)."""
        totals = self.populations.sum(axis=1, keepdims=True)
        return self.populations / totals

    def diversity_series(self) -> np.ndarray:
        """The paper's diversity index G at each step."""
        return np.asarray(
            [maruyama_diversity_index(row) for row in self.populations]
        )

    def dominant_share(self) -> np.ndarray:
        """Largest species share at each step (1 = total monopoly)."""
        return self.shares().max(axis=1)

    def surviving_species(self, threshold: float = 1e-6) -> int:
        """Species whose final share exceeds ``threshold``."""
        return int(np.sum(self.shares()[-1] > threshold))


class ReplicatorSystem:
    """Discrete-time replicator dynamics with optional density dependence.

    Parameters
    ----------
    base_fitness:
        Per-species intrinsic fitness π_i (positive).  May be replaced per
        regime via :meth:`run` with a ``fitness_schedule``.
    density:
        A :class:`~repro.dynamics.fitness.DensityDependence` multiplier on
        fitness as a function of each species' population share; default
        is none (the paper's raw replicator equation).
    extinction_threshold:
        Populations falling below this absolute size are set to zero
        (species gone; standing variation lost).
    """

    def __init__(
        self,
        base_fitness: Sequence[float],
        density: Optional[DensityDependence] = None,
        extinction_threshold: float = 0.0,
    ):
        self.base_fitness = np.asarray(base_fitness, dtype=float)
        if self.base_fitness.ndim != 1 or len(self.base_fitness) == 0:
            raise ConfigurationError("base_fitness must be a non-empty vector")
        if np.any(self.base_fitness <= 0):
            raise ConfigurationError("base_fitness values must be positive")
        self.density = density or NoDensityDependence()
        if extinction_threshold < 0:
            raise ConfigurationError(
                f"extinction_threshold must be >= 0, got {extinction_threshold}"
            )
        self.extinction_threshold = extinction_threshold

    @property
    def n_species(self) -> int:
        """Number of species tracked."""
        return len(self.base_fitness)

    def fitness_at(self, populations: np.ndarray,
                   base: Optional[np.ndarray] = None) -> np.ndarray:
        """Effective fitness: intrinsic value × density-dependence factor."""
        base = self.base_fitness if base is None else base
        total = populations.sum()
        shares = populations / total if total > 0 else populations
        return base * self.density.factor(shares)

    def run(
        self,
        initial: Sequence[float],
        steps: int,
        fitness_schedule: Optional[Callable[[int], np.ndarray]] = None,
    ) -> ReplicatorTrajectory:
        """Iterate the replicator equation for ``steps`` generations.

        ``fitness_schedule(t)`` may supply a different intrinsic fitness
        vector at each generation (an environment change re-ranks who is
        fit); default keeps ``base_fitness`` fixed.
        """
        if steps < 0:
            raise ConfigurationError(f"steps must be >= 0, got {steps}")
        pops = np.asarray(initial, dtype=float)
        if pops.shape != (self.n_species,):
            raise ConfigurationError(
                f"initial populations must have shape ({self.n_species},)"
            )
        if np.any(pops < 0):
            raise ConfigurationError("initial populations must be non-negative")
        history = np.empty((steps + 1, self.n_species), dtype=float)
        history[0] = pops
        for t in range(steps):
            base = (
                np.asarray(fitness_schedule(t), dtype=float)
                if fitness_schedule is not None
                else self.base_fitness
            )
            if base.shape != (self.n_species,):
                raise ConfigurationError(
                    f"fitness_schedule({t}) returned shape {base.shape}, "
                    f"expected ({self.n_species},)"
                )
            if np.any(base <= 0):
                raise ConfigurationError(
                    f"fitness_schedule({t}) returned non-positive fitness"
                )
            alive = pops > 0
            if not np.any(alive):
                history[t + 1:] = 0.0
                return ReplicatorTrajectory(
                    populations=history[: t + 2].copy(),
                    times=np.arange(t + 2, dtype=float),
                )
            effective = self.fitness_at(pops, base)
            pops = replicator_step(pops, effective)
            if self.extinction_threshold > 0:
                pops = np.where(pops < self.extinction_threshold, 0.0, pops)
            history[t + 1] = pops
        return ReplicatorTrajectory(
            populations=history, times=np.arange(steps + 1, dtype=float)
        )
