"""Population dynamics: diversity indices, replicator equation, fitness
shapes, mutation and drift (paper §3.2, §3.3, Fig. 2).
"""

from .continuous import ContinuousReplicator, ReplicatorFlow
from .diversity import (
    effective_species_count,
    evenness,
    hill_number,
    inverse_simpson,
    maruyama_diversity_index,
    shannon_entropy,
    simpson_index,
)
from .drift import MoranModel, WrightFisherModel, fixation_probability_theory
from .equilibrium import (
    LocusDynamics,
    deleterious_equilibrium_frequency,
    expected_trait_at_balance,
)
from .fitness import (
    ConcaveFitness,
    DensityDependence,
    LinearFitness,
    LogFitness,
    NoDensityDependence,
    PowerDensityDependence,
    TraitFitness,
    is_effectively_neutral,
    selection_coefficient,
)
from .mutation import BitFlipMutator, TraitArchitecture
from .replicator import ReplicatorSystem, ReplicatorTrajectory, replicator_step

__all__ = [
    "ContinuousReplicator",
    "ReplicatorFlow",
    "effective_species_count",
    "evenness",
    "hill_number",
    "inverse_simpson",
    "maruyama_diversity_index",
    "shannon_entropy",
    "simpson_index",
    "MoranModel",
    "LocusDynamics",
    "deleterious_equilibrium_frequency",
    "expected_trait_at_balance",
    "WrightFisherModel",
    "fixation_probability_theory",
    "ConcaveFitness",
    "DensityDependence",
    "LinearFitness",
    "LogFitness",
    "NoDensityDependence",
    "PowerDensityDependence",
    "TraitFitness",
    "is_effectively_neutral",
    "selection_coefficient",
    "BitFlipMutator",
    "TraitArchitecture",
    "ReplicatorSystem",
    "ReplicatorTrajectory",
    "replicator_step",
]
