"""Diversity indices (paper §3.2.4).

The paper measures ecosystem diversity with the index

    G(p_1, ..., p_N) = ( Σ_i p_i² / N )^{-1}

over absolute species populations p_i: G is maximal (= 1/p²) when all N
species share the same size p, and minimal (= 1/(N p²)) when one species
holds the entire population N·p.  This module implements that index
exactly as stated, plus the standard ecology family it belongs to
(Simpson, Shannon, Hill numbers) so experiments can cross-check that the
qualitative conclusions do not hinge on the specific index.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..errors import AnalysisError

__all__ = [
    "maruyama_diversity_index",
    "simpson_index",
    "inverse_simpson",
    "shannon_entropy",
    "evenness",
    "hill_number",
    "effective_species_count",
]


def _as_populations(populations: Iterable[float]) -> np.ndarray:
    pops = np.asarray(list(populations) if not isinstance(populations, np.ndarray)
                      else populations, dtype=float)
    if pops.ndim != 1 or len(pops) == 0:
        raise AnalysisError("populations must be a non-empty 1-D sequence")
    if np.any(pops < 0):
        raise AnalysisError("populations must be non-negative")
    if not np.any(pops > 0):
        raise AnalysisError("at least one population must be positive")
    return pops


def maruyama_diversity_index(populations: Iterable[float]) -> float:
    """The paper's diversity index G = (Σ p_i² / N)^{-1}.

    Defined over absolute populations (not fractions).  For N species of
    equal size p it equals 1/p²; under total domination by one species of
    size N·p it equals 1/(N p²) — a factor N smaller, which is the
    paper's argument that monocultures are maximally fragile.
    """
    pops = _as_populations(populations)
    denom = float(np.sum(pops**2))
    if denom == 0.0:
        raise AnalysisError(
            "populations too small: sum of squares underflowed to zero"
        )
    return len(pops) / denom


def _fractions(populations: Iterable[float]) -> np.ndarray:
    pops = _as_populations(populations)
    return pops / pops.sum()


def simpson_index(populations: Iterable[float]) -> float:
    """Simpson concentration λ = Σ f_i² over population fractions.

    Probability two random individuals are conspecific; *lower* is more
    diverse.
    """
    f = _fractions(populations)
    return float(np.sum(f**2))


def inverse_simpson(populations: Iterable[float]) -> float:
    """1/λ — the effective number of equally-common species (Hill q=2)."""
    return 1.0 / simpson_index(populations)


def shannon_entropy(populations: Iterable[float], base: float = np.e) -> float:
    """Shannon diversity H = −Σ f_i log f_i (zero-population terms drop)."""
    f = _fractions(populations)
    f = f[f > 0]
    return float(-np.sum(f * np.log(f)) / np.log(base))


def evenness(populations: Iterable[float]) -> float:
    """Pielou evenness H / ln(N) in [0, 1]; 1 means perfectly even.

    A single-species community is defined to have evenness 0 (no
    heterogeneity at all).
    """
    pops = _as_populations(populations)
    n_present = int(np.sum(pops > 0))
    if n_present <= 1:
        return 0.0
    return shannon_entropy(pops) / np.log(n_present)


def hill_number(populations: Iterable[float], q: float) -> float:
    """Hill number of order ``q``: the unified diversity family.

    q=0 is species richness, q→1 is exp(Shannon), q=2 is inverse Simpson.
    """
    f = _fractions(populations)
    f = f[f > 0]
    if q < 0:
        raise AnalysisError(f"Hill order must be >= 0, got {q}")
    if abs(q - 1.0) < 1e-12:
        return float(np.exp(-np.sum(f * np.log(f))))
    return float(np.sum(f**q) ** (1.0 / (1.0 - q)))


def effective_species_count(populations: Iterable[float]) -> float:
    """Alias for the q=2 Hill number (inverse Simpson)."""
    return hill_number(populations, 2.0)
