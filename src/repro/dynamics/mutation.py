"""Mutation models over bit-string genomes (paper §3.3.1, §3.1.1).

Evolutionary adaptability works through mutation: "When a life
reproduces, there are mutations on the genes.  These mutations could be
random, and the variations that fit the current environment most have
better chances to survive."  The stickleback case (§3.1.1) adds the
*dormant trait* mechanism: a genotype that is redundant in one
environment persists (neutral) and re-activates when predation pressure
returns.

:class:`BitFlipMutator` mutates genomes; :class:`TraitArchitecture`
maps genomes to trait scores with optional dormant (currently-neutral)
loci, which the stickleback experiment (E25) re-weights when the
environment changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..csp.bitstring import BitString
from ..errors import ConfigurationError
from ..rng import SeedLike, make_rng

__all__ = ["BitFlipMutator", "TraitArchitecture"]


@dataclass(frozen=True)
class BitFlipMutator:
    """Independent per-locus bit-flip mutation with probability ``rate``."""

    rate: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigurationError(f"mutation rate must be in [0, 1], got {self.rate}")

    def mutate(self, genome: BitString, seed: SeedLike = None) -> BitString:
        """Return a mutated copy of ``genome``."""
        rng = make_rng(seed)
        flips = np.nonzero(rng.random(genome.n) < self.rate)[0]
        if len(flips) == 0:
            return genome
        return genome.flip(*(int(i) for i in flips))

    def mutate_population(
        self, genomes: Sequence[BitString], seed: SeedLike = None
    ) -> list[BitString]:
        """Mutate every genome with one shared random stream."""
        rng = make_rng(seed)
        return [self.mutate(g, rng) for g in genomes]

    def expected_flips(self, n: int) -> float:
        """Mean number of flipped loci per length-``n`` genome."""
        return self.rate * n


@dataclass(frozen=True)
class TraitArchitecture:
    """Maps genomes to a trait score with active and dormant loci.

    ``active_loci`` contribute to the trait in the current environment;
    ``dormant_loci`` are carried neutrally (the stickleback armor-plate
    genotype "was dormant (and thus, redundant) during the peaceful years
    but became active when the necessity arose").  Calling
    :meth:`awaken` moves dormant loci into the active set, modeling the
    return of predation pressure.
    """

    n: int
    active_loci: tuple[int, ...]
    dormant_loci: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "active_loci", tuple(self.active_loci))
        object.__setattr__(self, "dormant_loci", tuple(self.dormant_loci))
        all_loci = self.active_loci + self.dormant_loci
        if len(set(all_loci)) != len(all_loci):
            raise ConfigurationError("active and dormant loci must be disjoint")
        for locus in all_loci:
            if not 0 <= locus < self.n:
                raise ConfigurationError(
                    f"locus {locus} out of range for genome length {self.n}"
                )

    def trait_score(self, genome: BitString) -> int:
        """Number of set active loci — the expressed advantage x."""
        self._check(genome)
        return sum(genome[i] for i in self.active_loci)

    def dormant_score(self, genome: BitString) -> int:
        """Number of set dormant loci — standing variation held in reserve."""
        self._check(genome)
        return sum(genome[i] for i in self.dormant_loci)

    def awaken(self) -> "TraitArchitecture":
        """Environment change: dormant loci become selectively active."""
        return TraitArchitecture(
            n=self.n,
            active_loci=self.active_loci + self.dormant_loci,
            dormant_loci=(),
        )

    def _check(self, genome: BitString) -> None:
        if genome.n != self.n:
            raise ConfigurationError(
                f"genome has {genome.n} loci, architecture expects {self.n}"
            )
