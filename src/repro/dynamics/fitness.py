"""Fitness functions: linear vs. diminishing-return (paper §3.2.4, Fig. 2).

The paper argues that the *law of diminishing return* is an intrinsic
diversity-preserving mechanism: with a concave fitness function "a
contribution of each advantageous mutation to the fitness declines" as a
species gains advantage (Akashi et al.'s weak-selection explanation of
slightly deleterious mutations), and a density-dependent decreasing
fitness "gives spaces for other species to occupy."  Artificial systems
that stay linear (money) instead polarize.

Two orthogonal notions are covered:

* **trait fitness** π(x) as a function of an advantage score x (number of
  advantageous alleles) — linear vs. concave shapes feed the
  weak-selection experiments (E06);
* **density-dependent fitness** π_i(p_i) as a function of a species' own
  population — decreasing shapes stabilize coexistence in the replicator
  dynamics (E05/E06).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "TraitFitness",
    "LinearFitness",
    "ConcaveFitness",
    "LogFitness",
    "DensityDependence",
    "NoDensityDependence",
    "PowerDensityDependence",
    "selection_coefficient",
    "is_effectively_neutral",
]


class TraitFitness(ABC):
    """Fitness as a function of an advantage score x ≥ 0."""

    @abstractmethod
    def __call__(self, x: np.ndarray | float) -> np.ndarray | float:
        """Fitness π(x); must be positive and non-decreasing in x."""

    def marginal_gain(self, x: float, dx: float = 1.0) -> float:
        """π(x + dx) − π(x): the contribution of one more advantageous allele."""
        return float(self(x + dx)) - float(self(x))


@dataclass(frozen=True)
class LinearFitness(TraitFitness):
    """π(x) = base + slope·x — no diminishing return (the "money" regime)."""

    base: float = 1.0
    slope: float = 0.1

    def __post_init__(self) -> None:
        if self.base <= 0:
            raise ConfigurationError(f"base fitness must be > 0, got {self.base}")
        if self.slope < 0:
            raise ConfigurationError(f"slope must be >= 0, got {self.slope}")

    def __call__(self, x):
        return self.base + self.slope * np.asarray(x, dtype=float)


@dataclass(frozen=True)
class ConcaveFitness(TraitFitness):
    """π(x) = base + gain·(1 − e^{−x/scale}) — saturating cumulative advantage.

    This is the Fig. 2 shape: early advantageous alleles contribute a
    lot, later ones almost nothing, so selection on the marginal allele
    becomes weak near saturation.
    """

    base: float = 1.0
    gain: float = 1.0
    scale: float = 5.0

    def __post_init__(self) -> None:
        if self.base <= 0:
            raise ConfigurationError(f"base fitness must be > 0, got {self.base}")
        if self.gain < 0:
            raise ConfigurationError(f"gain must be >= 0, got {self.gain}")
        if self.scale <= 0:
            raise ConfigurationError(f"scale must be > 0, got {self.scale}")

    def __call__(self, x):
        x = np.asarray(x, dtype=float)
        return self.base + self.gain * (1.0 - np.exp(-x / self.scale))


@dataclass(frozen=True)
class LogFitness(TraitFitness):
    """π(x) = base + gain·log(1 + x) — the logarithmic law of sensation.

    The paper notes human sensitivity to stimulus is "logalismic"
    [logarithmic]; this is the classic Weber–Fechner diminishing return.
    """

    base: float = 1.0
    gain: float = 0.5

    def __post_init__(self) -> None:
        if self.base <= 0:
            raise ConfigurationError(f"base fitness must be > 0, got {self.base}")
        if self.gain < 0:
            raise ConfigurationError(f"gain must be >= 0, got {self.gain}")

    def __call__(self, x):
        x = np.asarray(x, dtype=float)
        if np.any(x < 0):
            raise ConfigurationError("advantage score must be >= 0")
        return self.base + self.gain * np.log1p(x)


class DensityDependence(ABC):
    """A multiplier on fitness as a function of own population share."""

    @abstractmethod
    def factor(self, share: np.ndarray) -> np.ndarray:
        """Multiplicative penalty given population shares in [0, 1]."""


@dataclass(frozen=True)
class NoDensityDependence(DensityDependence):
    """Fitness independent of population size — domination goes unchecked."""

    def factor(self, share: np.ndarray) -> np.ndarray:
        return np.ones_like(np.asarray(share, dtype=float))


@dataclass(frozen=True)
class PowerDensityDependence(DensityDependence):
    """factor(f) = (1 − f)^strength + floor — fitness decays as share grows.

    ``strength`` > 0 penalizes dominating species ("the dominating species
    loses its advantage as its population increases"); ``floor`` keeps
    fitness positive.
    """

    strength: float = 1.0
    floor: float = 0.05

    def __post_init__(self) -> None:
        if self.strength <= 0:
            raise ConfigurationError(f"strength must be > 0, got {self.strength}")
        if not 0 < self.floor <= 1:
            raise ConfigurationError(f"floor must be in (0, 1], got {self.floor}")

    def factor(self, share: np.ndarray) -> np.ndarray:
        share = np.clip(np.asarray(share, dtype=float), 0.0, 1.0)
        return (1.0 - share) ** self.strength + self.floor


def selection_coefficient(fitness_a: float, fitness_b: float) -> float:
    """s = π_a/π_b − 1: relative advantage of type a over type b."""
    if fitness_b <= 0:
        raise ConfigurationError(f"reference fitness must be > 0, got {fitness_b}")
    return fitness_a / fitness_b - 1.0


def is_effectively_neutral(s: float, population_size: int) -> bool:
    """Ohta's near-neutrality criterion: |s| < 1/(2N).

    When selection is weaker than drift the mutation behaves as neutral —
    the mechanism by which concave fitness lets slightly deleterious
    variants persist (paper §3.2.4).
    """
    if population_size <= 0:
        raise ConfigurationError(
            f"population size must be > 0, got {population_size}"
        )
    return abs(s) < 1.0 / (2.0 * population_size)
