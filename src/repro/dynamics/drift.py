"""Genetic drift under weak selection: Wright–Fisher and Moran models.

Kimura's neutral theory and Ohta's near-neutral refinement (paper
§3.2.4) hinge on the interplay of selection strength s and population
size N: when |s| ≪ 1/N, drift dominates and slightly deleterious alleles
persist — the gene-level diversity reservoir the paper credits for
biological resilience.  These models provide the stochastic substrate for
validating :func:`repro.dynamics.fitness.is_effectively_neutral` and the
concave-fitness experiments (E06).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..rng import SeedLike, make_rng

__all__ = [
    "WrightFisherModel",
    "MoranModel",
    "fixation_probability_theory",
]


def fixation_probability_theory(s: float, population_size: int,
                                initial_copies: int = 1) -> float:
    """Kimura's diffusion approximation of fixation probability.

    P(fix) = (1 − e^{−2sp₀N}) / (1 − e^{−2sN}) with p₀ the initial
    frequency; the neutral limit (s → 0) gives p₀.  Used as the analytic
    reference for both simulation models.
    """
    if population_size <= 0:
        raise ConfigurationError(f"population size must be > 0, got {population_size}")
    if not 0 <= initial_copies <= population_size:
        raise ConfigurationError(
            f"initial copies must be in [0, {population_size}], got {initial_copies}"
        )
    p0 = initial_copies / population_size
    if abs(s) < 1e-12:
        return p0
    num = -np.expm1(-2.0 * s * p0 * population_size)
    den = -np.expm1(-2.0 * s * population_size)
    return float(num / den)


@dataclass(frozen=True)
class WrightFisherModel:
    """Haploid two-allele Wright–Fisher model with selection ``s``.

    Each generation, N offspring are drawn binomially with the mutant
    allele weighted by (1 + s).
    """

    population_size: int
    s: float = 0.0

    def __post_init__(self) -> None:
        if self.population_size <= 0:
            raise ConfigurationError(
                f"population size must be > 0, got {self.population_size}"
            )
        if self.s <= -1.0:
            raise ConfigurationError(f"selection coefficient must be > -1, got {self.s}")

    def step(self, copies: int, rng: np.random.Generator) -> int:
        """One generation: binomial resampling under selection."""
        n = self.population_size
        if not 0 <= copies <= n:
            raise ConfigurationError(f"copies must be in [0, {n}], got {copies}")
        if copies in (0, n):
            return copies
        p = copies * (1.0 + self.s) / (copies * (1.0 + self.s) + (n - copies))
        return int(rng.binomial(n, p))

    def run_to_absorption(
        self,
        initial_copies: int = 1,
        max_generations: int = 1_000_000,
        seed: SeedLike = None,
    ) -> tuple[bool, int]:
        """Simulate until fixation or loss; returns (fixed?, generations)."""
        rng = make_rng(seed)
        copies = initial_copies
        for generation in range(max_generations):
            if copies == 0:
                return False, generation
            if copies == self.population_size:
                return True, generation
            copies = self.step(copies, rng)
        raise ConfigurationError(
            f"no absorption within {max_generations} generations"
        )

    def fixation_probability(
        self,
        initial_copies: int = 1,
        trials: int = 1000,
        seed: SeedLike = None,
    ) -> float:
        """Monte-Carlo fixation probability over ``trials`` replicates."""
        if trials <= 0:
            raise ConfigurationError(f"trials must be > 0, got {trials}")
        rng = make_rng(seed)
        fixed = 0
        for _ in range(trials):
            outcome, _ = self.run_to_absorption(initial_copies, seed=rng)
            fixed += outcome
        return fixed / trials


@dataclass(frozen=True)
class MoranModel:
    """Two-type Moran process: one birth-death event per step.

    The mutant reproduces with probability proportional to (1 + s); the
    replaced individual is uniform.  Exact fixation probability is
    available in closed form, giving a sharp test oracle.
    """

    population_size: int
    s: float = 0.0

    def __post_init__(self) -> None:
        if self.population_size <= 0:
            raise ConfigurationError(
                f"population size must be > 0, got {self.population_size}"
            )
        if self.s <= -1.0:
            raise ConfigurationError(f"selection coefficient must be > -1, got {self.s}")

    def exact_fixation_probability(self, initial_copies: int = 1) -> float:
        """ρ = (1 − r^{−i}) / (1 − r^{−N}) with r = 1 + s (i initial copies)."""
        n = self.population_size
        if not 0 <= initial_copies <= n:
            raise ConfigurationError(
                f"initial copies must be in [0, {n}], got {initial_copies}"
            )
        r = 1.0 + self.s
        if abs(self.s) < 1e-12:
            return initial_copies / n
        num = 1.0 - r ** (-initial_copies)
        den = 1.0 - r ** (-n)
        return float(num / den)

    def step(self, copies: int, rng: np.random.Generator) -> int:
        """One birth-death event."""
        n = self.population_size
        if copies in (0, n):
            return copies
        mutant_weight = copies * (1.0 + self.s)
        p_mutant_birth = mutant_weight / (mutant_weight + (n - copies))
        birth_is_mutant = rng.random() < p_mutant_birth
        death_is_mutant = rng.random() < copies / n
        return copies + int(birth_is_mutant) - int(death_is_mutant)

    def run_to_absorption(
        self,
        initial_copies: int = 1,
        max_steps: int = 10_000_000,
        seed: SeedLike = None,
    ) -> tuple[bool, int]:
        """Simulate until fixation or loss; returns (fixed?, steps)."""
        rng = make_rng(seed)
        copies = initial_copies
        for step_i in range(max_steps):
            if copies == 0:
                return False, step_i
            if copies == self.population_size:
                return True, step_i
            copies = self.step(copies, rng)
        raise ConfigurationError(f"no absorption within {max_steps} steps")
